file(REMOVE_RECURSE
  "CMakeFiles/datanet_scheduler.dir/datanet_sched.cpp.o"
  "CMakeFiles/datanet_scheduler.dir/datanet_sched.cpp.o.d"
  "CMakeFiles/datanet_scheduler.dir/flow_sched.cpp.o"
  "CMakeFiles/datanet_scheduler.dir/flow_sched.cpp.o.d"
  "CMakeFiles/datanet_scheduler.dir/locality.cpp.o"
  "CMakeFiles/datanet_scheduler.dir/locality.cpp.o.d"
  "CMakeFiles/datanet_scheduler.dir/lpt.cpp.o"
  "CMakeFiles/datanet_scheduler.dir/lpt.cpp.o.d"
  "CMakeFiles/datanet_scheduler.dir/scheduler.cpp.o"
  "CMakeFiles/datanet_scheduler.dir/scheduler.cpp.o.d"
  "libdatanet_scheduler.a"
  "libdatanet_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datanet_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
