file(REMOVE_RECURSE
  "libdatanet_scheduler.a"
)
