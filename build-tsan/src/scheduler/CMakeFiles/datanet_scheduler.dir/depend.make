# Empty dependencies file for datanet_scheduler.
# This may be replaced when dependencies are built.
