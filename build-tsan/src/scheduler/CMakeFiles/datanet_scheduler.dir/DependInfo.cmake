
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scheduler/datanet_sched.cpp" "src/scheduler/CMakeFiles/datanet_scheduler.dir/datanet_sched.cpp.o" "gcc" "src/scheduler/CMakeFiles/datanet_scheduler.dir/datanet_sched.cpp.o.d"
  "/root/repo/src/scheduler/flow_sched.cpp" "src/scheduler/CMakeFiles/datanet_scheduler.dir/flow_sched.cpp.o" "gcc" "src/scheduler/CMakeFiles/datanet_scheduler.dir/flow_sched.cpp.o.d"
  "/root/repo/src/scheduler/locality.cpp" "src/scheduler/CMakeFiles/datanet_scheduler.dir/locality.cpp.o" "gcc" "src/scheduler/CMakeFiles/datanet_scheduler.dir/locality.cpp.o.d"
  "/root/repo/src/scheduler/lpt.cpp" "src/scheduler/CMakeFiles/datanet_scheduler.dir/lpt.cpp.o" "gcc" "src/scheduler/CMakeFiles/datanet_scheduler.dir/lpt.cpp.o.d"
  "/root/repo/src/scheduler/scheduler.cpp" "src/scheduler/CMakeFiles/datanet_scheduler.dir/scheduler.cpp.o" "gcc" "src/scheduler/CMakeFiles/datanet_scheduler.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/datanet_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dfs/CMakeFiles/datanet_dfs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/datanet_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
