file(REMOVE_RECURSE
  "CMakeFiles/datanet_mapred.dir/engine.cpp.o"
  "CMakeFiles/datanet_mapred.dir/engine.cpp.o.d"
  "CMakeFiles/datanet_mapred.dir/job.cpp.o"
  "CMakeFiles/datanet_mapred.dir/job.cpp.o.d"
  "CMakeFiles/datanet_mapred.dir/report_json.cpp.o"
  "CMakeFiles/datanet_mapred.dir/report_json.cpp.o.d"
  "libdatanet_mapred.a"
  "libdatanet_mapred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datanet_mapred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
