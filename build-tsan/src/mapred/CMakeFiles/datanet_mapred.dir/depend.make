# Empty dependencies file for datanet_mapred.
# This may be replaced when dependencies are built.
