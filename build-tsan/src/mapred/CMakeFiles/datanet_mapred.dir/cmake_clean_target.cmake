file(REMOVE_RECURSE
  "libdatanet_mapred.a"
)
