
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapred/engine.cpp" "src/mapred/CMakeFiles/datanet_mapred.dir/engine.cpp.o" "gcc" "src/mapred/CMakeFiles/datanet_mapred.dir/engine.cpp.o.d"
  "/root/repo/src/mapred/job.cpp" "src/mapred/CMakeFiles/datanet_mapred.dir/job.cpp.o" "gcc" "src/mapred/CMakeFiles/datanet_mapred.dir/job.cpp.o.d"
  "/root/repo/src/mapred/report_json.cpp" "src/mapred/CMakeFiles/datanet_mapred.dir/report_json.cpp.o" "gcc" "src/mapred/CMakeFiles/datanet_mapred.dir/report_json.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/datanet_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/datanet_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/datanet_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dfs/CMakeFiles/datanet_dfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
