# Empty dependencies file for datanet_sim.
# This may be replaced when dependencies are built.
