file(REMOVE_RECURSE
  "libdatanet_sim.a"
)
