
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster_sim.cpp" "src/sim/CMakeFiles/datanet_sim.dir/cluster_sim.cpp.o" "gcc" "src/sim/CMakeFiles/datanet_sim.dir/cluster_sim.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/datanet_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/datanet_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/job_sim.cpp" "src/sim/CMakeFiles/datanet_sim.dir/job_sim.cpp.o" "gcc" "src/sim/CMakeFiles/datanet_sim.dir/job_sim.cpp.o.d"
  "/root/repo/src/sim/selection_sim.cpp" "src/sim/CMakeFiles/datanet_sim.dir/selection_sim.cpp.o" "gcc" "src/sim/CMakeFiles/datanet_sim.dir/selection_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/datanet_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dfs/CMakeFiles/datanet_dfs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/datanet_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/scheduler/CMakeFiles/datanet_scheduler.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
