file(REMOVE_RECURSE
  "CMakeFiles/datanet_sim.dir/cluster_sim.cpp.o"
  "CMakeFiles/datanet_sim.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/datanet_sim.dir/event_queue.cpp.o"
  "CMakeFiles/datanet_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/datanet_sim.dir/job_sim.cpp.o"
  "CMakeFiles/datanet_sim.dir/job_sim.cpp.o.d"
  "CMakeFiles/datanet_sim.dir/selection_sim.cpp.o"
  "CMakeFiles/datanet_sim.dir/selection_sim.cpp.o.d"
  "libdatanet_sim.a"
  "libdatanet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datanet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
