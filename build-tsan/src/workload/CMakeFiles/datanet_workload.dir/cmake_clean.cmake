file(REMOVE_RECURSE
  "CMakeFiles/datanet_workload.dir/dataset.cpp.o"
  "CMakeFiles/datanet_workload.dir/dataset.cpp.o.d"
  "CMakeFiles/datanet_workload.dir/github_gen.cpp.o"
  "CMakeFiles/datanet_workload.dir/github_gen.cpp.o.d"
  "CMakeFiles/datanet_workload.dir/io.cpp.o"
  "CMakeFiles/datanet_workload.dir/io.cpp.o.d"
  "CMakeFiles/datanet_workload.dir/movie_gen.cpp.o"
  "CMakeFiles/datanet_workload.dir/movie_gen.cpp.o.d"
  "CMakeFiles/datanet_workload.dir/record.cpp.o"
  "CMakeFiles/datanet_workload.dir/record.cpp.o.d"
  "CMakeFiles/datanet_workload.dir/text_gen.cpp.o"
  "CMakeFiles/datanet_workload.dir/text_gen.cpp.o.d"
  "CMakeFiles/datanet_workload.dir/worldcup_gen.cpp.o"
  "CMakeFiles/datanet_workload.dir/worldcup_gen.cpp.o.d"
  "libdatanet_workload.a"
  "libdatanet_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datanet_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
