# Empty dependencies file for datanet_workload.
# This may be replaced when dependencies are built.
