file(REMOVE_RECURSE
  "libdatanet_workload.a"
)
