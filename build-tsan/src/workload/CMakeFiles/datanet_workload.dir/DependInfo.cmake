
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/dataset.cpp" "src/workload/CMakeFiles/datanet_workload.dir/dataset.cpp.o" "gcc" "src/workload/CMakeFiles/datanet_workload.dir/dataset.cpp.o.d"
  "/root/repo/src/workload/github_gen.cpp" "src/workload/CMakeFiles/datanet_workload.dir/github_gen.cpp.o" "gcc" "src/workload/CMakeFiles/datanet_workload.dir/github_gen.cpp.o.d"
  "/root/repo/src/workload/io.cpp" "src/workload/CMakeFiles/datanet_workload.dir/io.cpp.o" "gcc" "src/workload/CMakeFiles/datanet_workload.dir/io.cpp.o.d"
  "/root/repo/src/workload/movie_gen.cpp" "src/workload/CMakeFiles/datanet_workload.dir/movie_gen.cpp.o" "gcc" "src/workload/CMakeFiles/datanet_workload.dir/movie_gen.cpp.o.d"
  "/root/repo/src/workload/record.cpp" "src/workload/CMakeFiles/datanet_workload.dir/record.cpp.o" "gcc" "src/workload/CMakeFiles/datanet_workload.dir/record.cpp.o.d"
  "/root/repo/src/workload/text_gen.cpp" "src/workload/CMakeFiles/datanet_workload.dir/text_gen.cpp.o" "gcc" "src/workload/CMakeFiles/datanet_workload.dir/text_gen.cpp.o.d"
  "/root/repo/src/workload/worldcup_gen.cpp" "src/workload/CMakeFiles/datanet_workload.dir/worldcup_gen.cpp.o" "gcc" "src/workload/CMakeFiles/datanet_workload.dir/worldcup_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/datanet_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/datanet_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dfs/CMakeFiles/datanet_dfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
