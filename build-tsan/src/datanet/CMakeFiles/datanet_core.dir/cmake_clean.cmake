file(REMOVE_RECURSE
  "CMakeFiles/datanet_core.dir/aggregation.cpp.o"
  "CMakeFiles/datanet_core.dir/aggregation.cpp.o.d"
  "CMakeFiles/datanet_core.dir/datanet.cpp.o"
  "CMakeFiles/datanet_core.dir/datanet.cpp.o.d"
  "CMakeFiles/datanet_core.dir/experiment.cpp.o"
  "CMakeFiles/datanet_core.dir/experiment.cpp.o.d"
  "CMakeFiles/datanet_core.dir/rebalance.cpp.o"
  "CMakeFiles/datanet_core.dir/rebalance.cpp.o.d"
  "libdatanet_core.a"
  "libdatanet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datanet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
