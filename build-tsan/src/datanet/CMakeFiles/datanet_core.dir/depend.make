# Empty dependencies file for datanet_core.
# This may be replaced when dependencies are built.
