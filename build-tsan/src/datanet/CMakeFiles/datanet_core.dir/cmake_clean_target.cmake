file(REMOVE_RECURSE
  "libdatanet_core.a"
)
