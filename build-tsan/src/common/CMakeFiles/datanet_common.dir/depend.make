# Empty dependencies file for datanet_common.
# This may be replaced when dependencies are built.
