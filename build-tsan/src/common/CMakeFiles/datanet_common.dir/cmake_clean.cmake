file(REMOVE_RECURSE
  "CMakeFiles/datanet_common.dir/json.cpp.o"
  "CMakeFiles/datanet_common.dir/json.cpp.o.d"
  "CMakeFiles/datanet_common.dir/string_util.cpp.o"
  "CMakeFiles/datanet_common.dir/string_util.cpp.o.d"
  "CMakeFiles/datanet_common.dir/table.cpp.o"
  "CMakeFiles/datanet_common.dir/table.cpp.o.d"
  "CMakeFiles/datanet_common.dir/thread_pool.cpp.o"
  "CMakeFiles/datanet_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/datanet_common.dir/units.cpp.o"
  "CMakeFiles/datanet_common.dir/units.cpp.o.d"
  "CMakeFiles/datanet_common.dir/varint.cpp.o"
  "CMakeFiles/datanet_common.dir/varint.cpp.o.d"
  "libdatanet_common.a"
  "libdatanet_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datanet_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
