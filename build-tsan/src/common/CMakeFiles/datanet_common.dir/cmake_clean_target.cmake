file(REMOVE_RECURSE
  "libdatanet_common.a"
)
