# Empty dependencies file for datanet_bloom.
# This may be replaced when dependencies are built.
