file(REMOVE_RECURSE
  "libdatanet_bloom.a"
)
