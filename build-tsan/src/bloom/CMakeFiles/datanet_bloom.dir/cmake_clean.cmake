file(REMOVE_RECURSE
  "CMakeFiles/datanet_bloom.dir/bloom_filter.cpp.o"
  "CMakeFiles/datanet_bloom.dir/bloom_filter.cpp.o.d"
  "CMakeFiles/datanet_bloom.dir/hyperloglog.cpp.o"
  "CMakeFiles/datanet_bloom.dir/hyperloglog.cpp.o.d"
  "libdatanet_bloom.a"
  "libdatanet_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datanet_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
