
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bloom/bloom_filter.cpp" "src/bloom/CMakeFiles/datanet_bloom.dir/bloom_filter.cpp.o" "gcc" "src/bloom/CMakeFiles/datanet_bloom.dir/bloom_filter.cpp.o.d"
  "/root/repo/src/bloom/hyperloglog.cpp" "src/bloom/CMakeFiles/datanet_bloom.dir/hyperloglog.cpp.o" "gcc" "src/bloom/CMakeFiles/datanet_bloom.dir/hyperloglog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/datanet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
