file(REMOVE_RECURSE
  "CMakeFiles/datanet_elasticmap.dir/block_meta.cpp.o"
  "CMakeFiles/datanet_elasticmap.dir/block_meta.cpp.o.d"
  "CMakeFiles/datanet_elasticmap.dir/cost_model.cpp.o"
  "CMakeFiles/datanet_elasticmap.dir/cost_model.cpp.o.d"
  "CMakeFiles/datanet_elasticmap.dir/elastic_map.cpp.o"
  "CMakeFiles/datanet_elasticmap.dir/elastic_map.cpp.o.d"
  "CMakeFiles/datanet_elasticmap.dir/index.cpp.o"
  "CMakeFiles/datanet_elasticmap.dir/index.cpp.o.d"
  "CMakeFiles/datanet_elasticmap.dir/meta_store.cpp.o"
  "CMakeFiles/datanet_elasticmap.dir/meta_store.cpp.o.d"
  "CMakeFiles/datanet_elasticmap.dir/separator.cpp.o"
  "CMakeFiles/datanet_elasticmap.dir/separator.cpp.o.d"
  "libdatanet_elasticmap.a"
  "libdatanet_elasticmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datanet_elasticmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
