
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elasticmap/block_meta.cpp" "src/elasticmap/CMakeFiles/datanet_elasticmap.dir/block_meta.cpp.o" "gcc" "src/elasticmap/CMakeFiles/datanet_elasticmap.dir/block_meta.cpp.o.d"
  "/root/repo/src/elasticmap/cost_model.cpp" "src/elasticmap/CMakeFiles/datanet_elasticmap.dir/cost_model.cpp.o" "gcc" "src/elasticmap/CMakeFiles/datanet_elasticmap.dir/cost_model.cpp.o.d"
  "/root/repo/src/elasticmap/elastic_map.cpp" "src/elasticmap/CMakeFiles/datanet_elasticmap.dir/elastic_map.cpp.o" "gcc" "src/elasticmap/CMakeFiles/datanet_elasticmap.dir/elastic_map.cpp.o.d"
  "/root/repo/src/elasticmap/index.cpp" "src/elasticmap/CMakeFiles/datanet_elasticmap.dir/index.cpp.o" "gcc" "src/elasticmap/CMakeFiles/datanet_elasticmap.dir/index.cpp.o.d"
  "/root/repo/src/elasticmap/meta_store.cpp" "src/elasticmap/CMakeFiles/datanet_elasticmap.dir/meta_store.cpp.o" "gcc" "src/elasticmap/CMakeFiles/datanet_elasticmap.dir/meta_store.cpp.o.d"
  "/root/repo/src/elasticmap/separator.cpp" "src/elasticmap/CMakeFiles/datanet_elasticmap.dir/separator.cpp.o" "gcc" "src/elasticmap/CMakeFiles/datanet_elasticmap.dir/separator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/datanet_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/datanet_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/bloom/CMakeFiles/datanet_bloom.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dfs/CMakeFiles/datanet_dfs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/datanet_workload.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
