file(REMOVE_RECURSE
  "libdatanet_elasticmap.a"
)
