# Empty dependencies file for datanet_elasticmap.
# This may be replaced when dependencies are built.
