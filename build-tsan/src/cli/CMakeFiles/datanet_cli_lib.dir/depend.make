# Empty dependencies file for datanet_cli_lib.
# This may be replaced when dependencies are built.
