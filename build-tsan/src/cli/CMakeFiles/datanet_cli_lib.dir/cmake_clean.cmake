file(REMOVE_RECURSE
  "CMakeFiles/datanet_cli_lib.dir/args.cpp.o"
  "CMakeFiles/datanet_cli_lib.dir/args.cpp.o.d"
  "CMakeFiles/datanet_cli_lib.dir/commands.cpp.o"
  "CMakeFiles/datanet_cli_lib.dir/commands.cpp.o.d"
  "libdatanet_cli_lib.a"
  "libdatanet_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datanet_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
