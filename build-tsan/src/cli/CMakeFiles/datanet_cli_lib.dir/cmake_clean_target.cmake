file(REMOVE_RECURSE
  "libdatanet_cli_lib.a"
)
