
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/distinct_users.cpp" "src/apps/CMakeFiles/datanet_apps.dir/distinct_users.cpp.o" "gcc" "src/apps/CMakeFiles/datanet_apps.dir/distinct_users.cpp.o.d"
  "/root/repo/src/apps/filter.cpp" "src/apps/CMakeFiles/datanet_apps.dir/filter.cpp.o" "gcc" "src/apps/CMakeFiles/datanet_apps.dir/filter.cpp.o.d"
  "/root/repo/src/apps/histogram.cpp" "src/apps/CMakeFiles/datanet_apps.dir/histogram.cpp.o" "gcc" "src/apps/CMakeFiles/datanet_apps.dir/histogram.cpp.o.d"
  "/root/repo/src/apps/moving_average.cpp" "src/apps/CMakeFiles/datanet_apps.dir/moving_average.cpp.o" "gcc" "src/apps/CMakeFiles/datanet_apps.dir/moving_average.cpp.o.d"
  "/root/repo/src/apps/sessionize.cpp" "src/apps/CMakeFiles/datanet_apps.dir/sessionize.cpp.o" "gcc" "src/apps/CMakeFiles/datanet_apps.dir/sessionize.cpp.o.d"
  "/root/repo/src/apps/topk_search.cpp" "src/apps/CMakeFiles/datanet_apps.dir/topk_search.cpp.o" "gcc" "src/apps/CMakeFiles/datanet_apps.dir/topk_search.cpp.o.d"
  "/root/repo/src/apps/word_count.cpp" "src/apps/CMakeFiles/datanet_apps.dir/word_count.cpp.o" "gcc" "src/apps/CMakeFiles/datanet_apps.dir/word_count.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/datanet_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/bloom/CMakeFiles/datanet_bloom.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mapred/CMakeFiles/datanet_mapred.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/datanet_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/datanet_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dfs/CMakeFiles/datanet_dfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
