# Empty dependencies file for datanet_apps.
# This may be replaced when dependencies are built.
