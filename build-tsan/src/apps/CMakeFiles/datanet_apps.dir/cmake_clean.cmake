file(REMOVE_RECURSE
  "CMakeFiles/datanet_apps.dir/distinct_users.cpp.o"
  "CMakeFiles/datanet_apps.dir/distinct_users.cpp.o.d"
  "CMakeFiles/datanet_apps.dir/filter.cpp.o"
  "CMakeFiles/datanet_apps.dir/filter.cpp.o.d"
  "CMakeFiles/datanet_apps.dir/histogram.cpp.o"
  "CMakeFiles/datanet_apps.dir/histogram.cpp.o.d"
  "CMakeFiles/datanet_apps.dir/moving_average.cpp.o"
  "CMakeFiles/datanet_apps.dir/moving_average.cpp.o.d"
  "CMakeFiles/datanet_apps.dir/sessionize.cpp.o"
  "CMakeFiles/datanet_apps.dir/sessionize.cpp.o.d"
  "CMakeFiles/datanet_apps.dir/topk_search.cpp.o"
  "CMakeFiles/datanet_apps.dir/topk_search.cpp.o.d"
  "CMakeFiles/datanet_apps.dir/word_count.cpp.o"
  "CMakeFiles/datanet_apps.dir/word_count.cpp.o.d"
  "libdatanet_apps.a"
  "libdatanet_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datanet_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
