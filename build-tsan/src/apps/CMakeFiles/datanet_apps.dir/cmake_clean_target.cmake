file(REMOVE_RECURSE
  "libdatanet_apps.a"
)
