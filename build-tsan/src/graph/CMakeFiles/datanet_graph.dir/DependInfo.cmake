
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/assignment.cpp" "src/graph/CMakeFiles/datanet_graph.dir/assignment.cpp.o" "gcc" "src/graph/CMakeFiles/datanet_graph.dir/assignment.cpp.o.d"
  "/root/repo/src/graph/bipartite.cpp" "src/graph/CMakeFiles/datanet_graph.dir/bipartite.cpp.o" "gcc" "src/graph/CMakeFiles/datanet_graph.dir/bipartite.cpp.o.d"
  "/root/repo/src/graph/maxflow.cpp" "src/graph/CMakeFiles/datanet_graph.dir/maxflow.cpp.o" "gcc" "src/graph/CMakeFiles/datanet_graph.dir/maxflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/datanet_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dfs/CMakeFiles/datanet_dfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
