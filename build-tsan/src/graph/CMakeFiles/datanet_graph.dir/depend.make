# Empty dependencies file for datanet_graph.
# This may be replaced when dependencies are built.
