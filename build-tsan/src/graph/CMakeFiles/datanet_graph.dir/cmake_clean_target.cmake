file(REMOVE_RECURSE
  "libdatanet_graph.a"
)
