file(REMOVE_RECURSE
  "CMakeFiles/datanet_graph.dir/assignment.cpp.o"
  "CMakeFiles/datanet_graph.dir/assignment.cpp.o.d"
  "CMakeFiles/datanet_graph.dir/bipartite.cpp.o"
  "CMakeFiles/datanet_graph.dir/bipartite.cpp.o.d"
  "CMakeFiles/datanet_graph.dir/maxflow.cpp.o"
  "CMakeFiles/datanet_graph.dir/maxflow.cpp.o.d"
  "libdatanet_graph.a"
  "libdatanet_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datanet_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
