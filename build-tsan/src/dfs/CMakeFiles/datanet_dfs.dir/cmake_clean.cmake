file(REMOVE_RECURSE
  "CMakeFiles/datanet_dfs.dir/fsck.cpp.o"
  "CMakeFiles/datanet_dfs.dir/fsck.cpp.o.d"
  "CMakeFiles/datanet_dfs.dir/mini_dfs.cpp.o"
  "CMakeFiles/datanet_dfs.dir/mini_dfs.cpp.o.d"
  "CMakeFiles/datanet_dfs.dir/placement.cpp.o"
  "CMakeFiles/datanet_dfs.dir/placement.cpp.o.d"
  "CMakeFiles/datanet_dfs.dir/topology.cpp.o"
  "CMakeFiles/datanet_dfs.dir/topology.cpp.o.d"
  "libdatanet_dfs.a"
  "libdatanet_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datanet_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
