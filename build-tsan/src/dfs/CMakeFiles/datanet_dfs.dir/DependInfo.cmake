
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dfs/fsck.cpp" "src/dfs/CMakeFiles/datanet_dfs.dir/fsck.cpp.o" "gcc" "src/dfs/CMakeFiles/datanet_dfs.dir/fsck.cpp.o.d"
  "/root/repo/src/dfs/mini_dfs.cpp" "src/dfs/CMakeFiles/datanet_dfs.dir/mini_dfs.cpp.o" "gcc" "src/dfs/CMakeFiles/datanet_dfs.dir/mini_dfs.cpp.o.d"
  "/root/repo/src/dfs/placement.cpp" "src/dfs/CMakeFiles/datanet_dfs.dir/placement.cpp.o" "gcc" "src/dfs/CMakeFiles/datanet_dfs.dir/placement.cpp.o.d"
  "/root/repo/src/dfs/topology.cpp" "src/dfs/CMakeFiles/datanet_dfs.dir/topology.cpp.o" "gcc" "src/dfs/CMakeFiles/datanet_dfs.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/datanet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
