# Empty dependencies file for datanet_dfs.
# This may be replaced when dependencies are built.
