file(REMOVE_RECURSE
  "libdatanet_dfs.a"
)
