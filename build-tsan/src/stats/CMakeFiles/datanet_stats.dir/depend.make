# Empty dependencies file for datanet_stats.
# This may be replaced when dependencies are built.
