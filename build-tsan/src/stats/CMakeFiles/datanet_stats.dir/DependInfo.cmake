
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/concentration.cpp" "src/stats/CMakeFiles/datanet_stats.dir/concentration.cpp.o" "gcc" "src/stats/CMakeFiles/datanet_stats.dir/concentration.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/datanet_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/datanet_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/fit.cpp" "src/stats/CMakeFiles/datanet_stats.dir/fit.cpp.o" "gcc" "src/stats/CMakeFiles/datanet_stats.dir/fit.cpp.o.d"
  "/root/repo/src/stats/gamma.cpp" "src/stats/CMakeFiles/datanet_stats.dir/gamma.cpp.o" "gcc" "src/stats/CMakeFiles/datanet_stats.dir/gamma.cpp.o.d"
  "/root/repo/src/stats/goodness_of_fit.cpp" "src/stats/CMakeFiles/datanet_stats.dir/goodness_of_fit.cpp.o" "gcc" "src/stats/CMakeFiles/datanet_stats.dir/goodness_of_fit.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/datanet_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/datanet_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/zipf.cpp" "src/stats/CMakeFiles/datanet_stats.dir/zipf.cpp.o" "gcc" "src/stats/CMakeFiles/datanet_stats.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/datanet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
