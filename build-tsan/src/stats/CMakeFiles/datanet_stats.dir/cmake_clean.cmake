file(REMOVE_RECURSE
  "CMakeFiles/datanet_stats.dir/concentration.cpp.o"
  "CMakeFiles/datanet_stats.dir/concentration.cpp.o.d"
  "CMakeFiles/datanet_stats.dir/descriptive.cpp.o"
  "CMakeFiles/datanet_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/datanet_stats.dir/fit.cpp.o"
  "CMakeFiles/datanet_stats.dir/fit.cpp.o.d"
  "CMakeFiles/datanet_stats.dir/gamma.cpp.o"
  "CMakeFiles/datanet_stats.dir/gamma.cpp.o.d"
  "CMakeFiles/datanet_stats.dir/goodness_of_fit.cpp.o"
  "CMakeFiles/datanet_stats.dir/goodness_of_fit.cpp.o.d"
  "CMakeFiles/datanet_stats.dir/histogram.cpp.o"
  "CMakeFiles/datanet_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/datanet_stats.dir/zipf.cpp.o"
  "CMakeFiles/datanet_stats.dir/zipf.cpp.o.d"
  "libdatanet_stats.a"
  "libdatanet_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datanet_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
