file(REMOVE_RECURSE
  "libdatanet_stats.a"
)
