# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-tsan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-tsan/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_movie_analysis "/root/repo/build-tsan/examples/movie_analysis")
set_tests_properties(example_movie_analysis PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_github_events "/root/repo/build-tsan/examples/github_events")
set_tests_properties(example_github_events PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity_planning "/root/repo/build-tsan/examples/capacity_planning")
set_tests_properties(example_capacity_planning PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_worldcup_sessions "/root/repo/build-tsan/examples/worldcup_sessions")
set_tests_properties(example_worldcup_sessions PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_meta_persistence "/root/repo/build-tsan/examples/meta_persistence")
set_tests_properties(example_meta_persistence PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_tolerance "/root/repo/build-tsan/examples/fault_tolerance")
set_tests_properties(example_fault_tolerance PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
