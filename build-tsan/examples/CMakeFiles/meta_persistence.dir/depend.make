# Empty dependencies file for meta_persistence.
# This may be replaced when dependencies are built.
