file(REMOVE_RECURSE
  "CMakeFiles/meta_persistence.dir/meta_persistence.cpp.o"
  "CMakeFiles/meta_persistence.dir/meta_persistence.cpp.o.d"
  "meta_persistence"
  "meta_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meta_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
