# Empty dependencies file for github_events.
# This may be replaced when dependencies are built.
