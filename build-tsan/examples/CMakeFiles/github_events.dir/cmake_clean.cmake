file(REMOVE_RECURSE
  "CMakeFiles/github_events.dir/github_events.cpp.o"
  "CMakeFiles/github_events.dir/github_events.cpp.o.d"
  "github_events"
  "github_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/github_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
