file(REMOVE_RECURSE
  "CMakeFiles/movie_analysis.dir/movie_analysis.cpp.o"
  "CMakeFiles/movie_analysis.dir/movie_analysis.cpp.o.d"
  "movie_analysis"
  "movie_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
