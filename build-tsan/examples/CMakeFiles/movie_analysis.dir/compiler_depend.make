# Empty compiler generated dependencies file for movie_analysis.
# This may be replaced when dependencies are built.
