# Empty compiler generated dependencies file for worldcup_sessions.
# This may be replaced when dependencies are built.
