file(REMOVE_RECURSE
  "CMakeFiles/worldcup_sessions.dir/worldcup_sessions.cpp.o"
  "CMakeFiles/worldcup_sessions.dir/worldcup_sessions.cpp.o.d"
  "worldcup_sessions"
  "worldcup_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worldcup_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
