file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_probability.dir/bench_fig2_probability.cpp.o"
  "CMakeFiles/bench_fig2_probability.dir/bench_fig2_probability.cpp.o.d"
  "bench_fig2_probability"
  "bench_fig2_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
