# Empty dependencies file for bench_fig10_balance.
# This may be replaced when dependencies are built.
