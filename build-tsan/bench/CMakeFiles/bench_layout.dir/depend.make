# Empty dependencies file for bench_layout.
# This may be replaced when dependencies are built.
