file(REMOVE_RECURSE
  "CMakeFiles/bench_layout.dir/bench_layout.cpp.o"
  "CMakeFiles/bench_layout.dir/bench_layout.cpp.o.d"
  "bench_layout"
  "bench_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
