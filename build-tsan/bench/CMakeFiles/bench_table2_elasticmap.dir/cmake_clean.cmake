file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_elasticmap.dir/bench_table2_elasticmap.cpp.o"
  "CMakeFiles/bench_table2_elasticmap.dir/bench_table2_elasticmap.cpp.o.d"
  "bench_table2_elasticmap"
  "bench_table2_elasticmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_elasticmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
