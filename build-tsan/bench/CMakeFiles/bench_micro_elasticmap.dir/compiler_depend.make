# Empty compiler generated dependencies file for bench_micro_elasticmap.
# This may be replaced when dependencies are built.
