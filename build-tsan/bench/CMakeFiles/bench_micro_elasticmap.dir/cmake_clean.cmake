file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_elasticmap.dir/bench_micro_elasticmap.cpp.o"
  "CMakeFiles/bench_micro_elasticmap.dir/bench_micro_elasticmap.cpp.o.d"
  "bench_micro_elasticmap"
  "bench_micro_elasticmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_elasticmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
