# Empty compiler generated dependencies file for bench_micro_reduce.
# This may be replaced when dependencies are built.
