file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_reduce.dir/bench_micro_reduce.cpp.o"
  "CMakeFiles/bench_micro_reduce.dir/bench_micro_reduce.cpp.o.d"
  "bench_micro_reduce"
  "bench_micro_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
