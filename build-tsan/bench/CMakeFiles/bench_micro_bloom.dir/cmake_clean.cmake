file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_bloom.dir/bench_micro_bloom.cpp.o"
  "CMakeFiles/bench_micro_bloom.dir/bench_micro_bloom.cpp.o.d"
  "bench_micro_bloom"
  "bench_micro_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
