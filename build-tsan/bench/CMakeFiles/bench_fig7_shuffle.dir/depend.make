# Empty dependencies file for bench_fig7_shuffle.
# This may be replaced when dependencies are built.
