file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_shuffle.dir/bench_fig7_shuffle.cpp.o"
  "CMakeFiles/bench_fig7_shuffle.dir/bench_fig7_shuffle.cpp.o.d"
  "bench_fig7_shuffle"
  "bench_fig7_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
