file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_github.dir/bench_fig8_github.cpp.o"
  "CMakeFiles/bench_fig8_github.dir/bench_fig8_github.cpp.o.d"
  "bench_fig8_github"
  "bench_fig8_github.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_github.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
