file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_hll.dir/bench_micro_hll.cpp.o"
  "CMakeFiles/bench_micro_hll.dir/bench_micro_hll.cpp.o.d"
  "bench_micro_hll"
  "bench_micro_hll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_hll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
