# Empty compiler generated dependencies file for bench_micro_hll.
# This may be replaced when dependencies are built.
