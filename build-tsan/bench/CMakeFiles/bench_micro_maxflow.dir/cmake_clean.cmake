file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_maxflow.dir/bench_micro_maxflow.cpp.o"
  "CMakeFiles/bench_micro_maxflow.dir/bench_micro_maxflow.cpp.o.d"
  "bench_micro_maxflow"
  "bench_micro_maxflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_maxflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
