# Empty dependencies file for bench_micro_maxflow.
# This may be replaced when dependencies are built.
