file(REMOVE_RECURSE
  "CMakeFiles/bench_amortization.dir/bench_amortization.cpp.o"
  "CMakeFiles/bench_amortization.dir/bench_amortization.cpp.o.d"
  "bench_amortization"
  "bench_amortization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_amortization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
