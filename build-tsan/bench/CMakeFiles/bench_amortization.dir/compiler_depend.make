# Empty compiler generated dependencies file for bench_amortization.
# This may be replaced when dependencies are built.
