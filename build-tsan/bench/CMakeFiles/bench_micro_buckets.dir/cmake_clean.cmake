file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_buckets.dir/bench_micro_buckets.cpp.o"
  "CMakeFiles/bench_micro_buckets.dir/bench_micro_buckets.cpp.o.d"
  "bench_micro_buckets"
  "bench_micro_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
