# Empty dependencies file for bench_micro_buckets.
# This may be replaced when dependencies are built.
