file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_maptime.dir/bench_fig6_maptime.cpp.o"
  "CMakeFiles/bench_fig6_maptime.dir/bench_fig6_maptime.cpp.o.d"
  "bench_fig6_maptime"
  "bench_fig6_maptime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_maptime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
