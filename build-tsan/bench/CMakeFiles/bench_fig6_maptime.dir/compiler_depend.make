# Empty compiler generated dependencies file for bench_fig6_maptime.
# This may be replaced when dependencies are built.
