file(REMOVE_RECURSE
  "CMakeFiles/bench_sim_vs_analytic.dir/bench_sim_vs_analytic.cpp.o"
  "CMakeFiles/bench_sim_vs_analytic.dir/bench_sim_vs_analytic.cpp.o.d"
  "bench_sim_vs_analytic"
  "bench_sim_vs_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_vs_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
