file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_blockmap.dir/bench_table1_blockmap.cpp.o"
  "CMakeFiles/bench_table1_blockmap.dir/bench_table1_blockmap.cpp.o.d"
  "bench_table1_blockmap"
  "bench_table1_blockmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_blockmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
