# Empty compiler generated dependencies file for bench_table1_blockmap.
# This may be replaced when dependencies are built.
