
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_rebalance.cpp" "bench/CMakeFiles/bench_rebalance.dir/bench_rebalance.cpp.o" "gcc" "bench/CMakeFiles/bench_rebalance.dir/bench_rebalance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/cli/CMakeFiles/datanet_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/datanet/CMakeFiles/datanet_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/elasticmap/CMakeFiles/datanet_elasticmap.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/apps/CMakeFiles/datanet_apps.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/bloom/CMakeFiles/datanet_bloom.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mapred/CMakeFiles/datanet_mapred.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/datanet_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/stats/CMakeFiles/datanet_stats.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/datanet_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/scheduler/CMakeFiles/datanet_scheduler.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/graph/CMakeFiles/datanet_graph.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/dfs/CMakeFiles/datanet_dfs.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/datanet_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
