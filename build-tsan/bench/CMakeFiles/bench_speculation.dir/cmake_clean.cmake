file(REMOVE_RECURSE
  "CMakeFiles/bench_speculation.dir/bench_speculation.cpp.o"
  "CMakeFiles/bench_speculation.dir/bench_speculation.cpp.o.d"
  "bench_speculation"
  "bench_speculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
