# Empty dependencies file for bench_speculation.
# This may be replaced when dependencies are built.
