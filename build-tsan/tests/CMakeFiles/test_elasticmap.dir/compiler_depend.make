# Empty compiler generated dependencies file for test_elasticmap.
# This may be replaced when dependencies are built.
