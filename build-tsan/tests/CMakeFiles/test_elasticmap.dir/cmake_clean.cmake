file(REMOVE_RECURSE
  "CMakeFiles/test_elasticmap.dir/elasticmap_test.cpp.o"
  "CMakeFiles/test_elasticmap.dir/elasticmap_test.cpp.o.d"
  "test_elasticmap"
  "test_elasticmap.pdb"
  "test_elasticmap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elasticmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
