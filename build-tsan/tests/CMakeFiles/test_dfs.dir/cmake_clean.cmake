file(REMOVE_RECURSE
  "CMakeFiles/test_dfs.dir/dfs_test.cpp.o"
  "CMakeFiles/test_dfs.dir/dfs_test.cpp.o.d"
  "test_dfs"
  "test_dfs.pdb"
  "test_dfs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
