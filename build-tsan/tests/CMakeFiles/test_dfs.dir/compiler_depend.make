# Empty compiler generated dependencies file for test_dfs.
# This may be replaced when dependencies are built.
