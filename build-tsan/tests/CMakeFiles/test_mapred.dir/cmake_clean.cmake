file(REMOVE_RECURSE
  "CMakeFiles/test_mapred.dir/mapred_test.cpp.o"
  "CMakeFiles/test_mapred.dir/mapred_test.cpp.o.d"
  "test_mapred"
  "test_mapred.pdb"
  "test_mapred[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
