# Empty dependencies file for test_mapred.
# This may be replaced when dependencies are built.
