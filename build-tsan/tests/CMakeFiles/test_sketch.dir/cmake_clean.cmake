file(REMOVE_RECURSE
  "CMakeFiles/test_sketch.dir/sketch_test.cpp.o"
  "CMakeFiles/test_sketch.dir/sketch_test.cpp.o.d"
  "test_sketch"
  "test_sketch.pdb"
  "test_sketch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
