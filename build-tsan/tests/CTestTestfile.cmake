# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_common[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_stats[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_bloom[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_dfs[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_workload[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_elasticmap[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_graph[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_mapred[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_apps[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_integration[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_extensions[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_features[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_cli[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_properties[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_sketch[1]_include.cmake")
