file(REMOVE_RECURSE
  "CMakeFiles/datanet_cli.dir/datanet_cli.cpp.o"
  "CMakeFiles/datanet_cli.dir/datanet_cli.cpp.o.d"
  "datanet_cli"
  "datanet_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datanet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
