# Empty dependencies file for datanet_cli.
# This may be replaced when dependencies are built.
