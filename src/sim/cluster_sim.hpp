#pragma once
// Discrete-event cluster simulator: a second, higher-fidelity timing backend
// next to the analytic cost model in mapred::Engine. Each node has
// `slots` compute slots, a FIFO disk (one read at a time — concurrent tasks
// on one node queue for I/O), and a NIC that bounds remote reads. Task
// lifecycle: wait for a slot -> queue on the source disk -> read -> compute
// -> release slot and pull the next task from the scheduler (genuine
// pull-on-slot-free, the paper's "worker process requests a task" loop).
//
// With SimConfig::speculative set, a slot whose pull goes unanswered turns
// into a speculative backup runner (the Hadoop straggler defence): it
// duplicates the running task with the latest projected finish — provided
// this slot would beat it strictly — and the first attempt to finish wins,
// cancelling the rival and freeing its slot at the win time. Every choice
// is deterministic (ties to the lowest task id; the event queue breaks
// time ties FIFO), so reports stay reproducible.
//
// Used by bench_sim_vs_analytic to check that the paper's conclusions are
// robust to the timing model, not an artifact of the closed-form engine.

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/event_queue.hpp"

namespace datanet::sim {

struct NodeConfig {
  std::uint32_t slots = 2;
  double disk_mbps = 80.0;   // sequential read bandwidth
  double nic_mbps = 100.0;   // remote-read ceiling
  double cpu_speed = 1.0;    // relative compute speed
};

struct SimConfig {
  std::uint32_t num_nodes = 1;
  NodeConfig node;  // homogeneous default
  // Optional per-node overrides (size 0 or num_nodes).
  std::vector<NodeConfig> per_node;
  // Idle slots launch speculative duplicates of projected stragglers.
  bool speculative = false;

  [[nodiscard]] const NodeConfig& node_config(std::uint32_t n) const {
    return per_node.empty() ? node : per_node[n];
  }
};

struct SimTask {
  std::uint64_t input_bytes = 0;
  double cpu_seconds = 1.0;  // at speed 1.0
  bool remote = false;       // read crosses the network (see RemoteFn)
};

// Pull scheduler: invoked when a slot on `node` frees; returns the index of
// the next task to run there, or nullopt when none remain for it.
using PullFn = std::function<std::optional<std::size_t>(std::uint32_t node)>;

// Optional placement-dependent remoteness: whether running `task` on `node`
// requires a network read. When provided it overrides SimTask::remote.
using RemoteFn = std::function<bool(std::uint32_t node, std::size_t task)>;

struct SimResult {
  std::vector<Time> task_finish;   // per task (indexed as given)
  std::vector<std::uint32_t> task_node;  // winning attempt's node
  std::vector<Time> node_finish;   // last completion per node
  Time makespan = 0.0;
  std::uint64_t remote_reads = 0;  // reads started, duplicates included
  std::uint64_t speculative_launched = 0;
  std::uint64_t speculative_wins = 0;
};

class ClusterSim {
 public:
  explicit ClusterSim(SimConfig config);

  // Execute `tasks` with assignments pulled from `next_task`. Every task
  // handed out by the scheduler runs exactly once; tasks never handed out
  // keep finish time 0 and an invalid node (the caller's scheduler is
  // responsible for completeness).
  [[nodiscard]] SimResult run(const std::vector<SimTask>& tasks,
                              const PullFn& next_task,
                              const RemoteFn& is_remote = nullptr);

 private:
  SimConfig config_;
};

}  // namespace datanet::sim
