#include "sim/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace datanet::sim {

void EventQueue::schedule(Time at, std::function<void()> fn) {
  if (at < now_) throw std::invalid_argument("EventQueue: scheduling in the past");
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; the function is copied out before pop.
  Entry e = heap_.top();
  heap_.pop();
  now_ = e.at;
  e.fn();
  return true;
}

void EventQueue::run() {
  while (step()) {
  }
}

}  // namespace datanet::sim
