#pragma once
// A minimal discrete-event simulation core: a time-ordered event queue with
// deterministic FIFO tie-breaking. The cluster simulator (cluster_sim.hpp)
// builds on it; it is generic enough for any future event-driven model.

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace datanet::sim {

using Time = double;

class EventQueue {
 public:
  // Schedule `fn` at absolute time `at` (must be >= now()).
  void schedule(Time at, std::function<void()> fn);

  // Pop and execute the earliest event; returns false when empty.
  bool step();

  // Run until no events remain.
  void run();

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // insertion order breaks time ties deterministically
    std::function<void()> fn;
    bool operator>(const Entry& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace datanet::sim
