#pragma once
// Event-driven model of a full analysis job over node-local filtered data:
// map tasks (slots per node, FIFO disk), then a shuffle in which every node
// streams its partitioned map output to the reducer hosts over full-duplex
// NICs (tx and rx channels are FIFO resources), then reduce compute. The
// event-driven counterpart of the analytic shuffle model behind Fig. 7: an
// imbalanced map phase delays every reducer's last inbound transfer.

#include <cstdint>
#include <vector>

#include "sim/cluster_sim.hpp"

namespace datanet::sim {

struct JobSimOptions {
  SimConfig cluster;
  double map_cpu_seconds_per_mib = 0.5;
  // Post-combiner map output per input byte (key-cardinality-bound jobs
  // combine heavily; 0.05 is a WordCount-like ratio).
  double output_ratio = 0.05;
  std::uint32_t num_reducers = 8;
  double reduce_cpu_seconds_per_mib = 0.2;
};

struct JobSimReport {
  SimResult map;                     // map-phase per-task/node timing
  std::vector<Time> shuffle_finish;  // per reducer: last inbound transfer
  std::vector<Time> reduce_finish;   // per reducer
  std::vector<std::uint32_t> reducer_host;
  Time map_phase = 0.0;
  Time makespan = 0.0;

  [[nodiscard]] Time shuffle_span() const {
    // The paper's shuffle-task duration: from the first map completion to
    // the reducer's data being fully in place.
    Time first_map = map_phase;
    for (const Time t : map.task_finish) {
      if (t > 0.0 && t < first_map) first_map = t;
    }
    Time worst = 0.0;
    for (const Time t : shuffle_finish) worst = std::max(worst, t);
    return worst - first_map;
  }
};

// `node_input_bytes[n]` is the filtered data resident on node n (the output
// of a selection phase); each node maps it as `slots` equal tasks. Reducer r
// is hosted on node `reducer_hosts[r]` (empty = round-robin).
[[nodiscard]] JobSimReport simulate_analysis_job(
    const std::vector<std::uint64_t>& node_input_bytes,
    const JobSimOptions& options,
    const std::vector<std::uint32_t>& reducer_hosts = {});

}  // namespace datanet::sim
