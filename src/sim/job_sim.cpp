#include "sim/job_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace datanet::sim {

namespace {
constexpr double kMiB = 1024.0 * 1024.0;
}

JobSimReport simulate_analysis_job(
    const std::vector<std::uint64_t>& node_input_bytes,
    const JobSimOptions& options,
    const std::vector<std::uint32_t>& reducer_hosts) {
  const std::uint32_t nodes = options.cluster.num_nodes;
  if (node_input_bytes.size() != nodes) {
    throw std::invalid_argument("simulate_analysis_job: node count mismatch");
  }
  if (options.num_reducers == 0) {
    throw std::invalid_argument("simulate_analysis_job: zero reducers");
  }
  if (!reducer_hosts.empty() &&
      reducer_hosts.size() != options.num_reducers) {
    throw std::invalid_argument("simulate_analysis_job: reducer_hosts size");
  }

  JobSimReport report;
  report.reducer_host.resize(options.num_reducers);
  for (std::uint32_t r = 0; r < options.num_reducers; ++r) {
    report.reducer_host[r] =
        reducer_hosts.empty() ? r % nodes : reducer_hosts[r];
    if (report.reducer_host[r] >= nodes) {
      throw std::invalid_argument("simulate_analysis_job: bad reducer host");
    }
  }

  // ---- map phase: one task per slot per node over the local data ----
  std::vector<SimTask> tasks;
  std::vector<std::uint32_t> task_owner;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const auto slots = options.cluster.node_config(n).slots;
    const std::uint64_t per_slot = node_input_bytes[n] / slots;
    for (std::uint32_t s = 0; s < slots; ++s) {
      const std::uint64_t bytes =
          (s + 1 == slots) ? node_input_bytes[n] - per_slot * (slots - 1)
                           : per_slot;
      if (bytes == 0) continue;
      tasks.push_back(SimTask{
          .input_bytes = bytes,
          .cpu_seconds = options.map_cpu_seconds_per_mib *
                         static_cast<double>(bytes) / kMiB,
          .remote = false});
      task_owner.push_back(n);
    }
  }
  ClusterSim cluster(options.cluster);
  std::vector<std::vector<std::size_t>> per_node(nodes);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    per_node[task_owner[t]].push_back(t);
  }
  std::vector<std::size_t> cursor(nodes, 0);
  report.map = cluster.run(tasks, [&](std::uint32_t n) -> std::optional<std::size_t> {
    if (cursor[n] >= per_node[n].size()) return std::nullopt;
    return per_node[n][cursor[n]++];
  });
  report.map_phase = report.map.makespan;

  // Per-node map finish (0 for nodes with no data).
  std::vector<Time> node_map_finish(nodes, 0.0);
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    node_map_finish[task_owner[t]] =
        std::max(node_map_finish[task_owner[t]], report.map.task_finish[t]);
  }

  // ---- shuffle: (src, reducer) transfers over FIFO duplex NICs ----
  // Deterministic service order: by source map finish, then src, then r.
  struct Transfer {
    std::uint32_t src, r;
    double bytes;
    Time ready;
  };
  std::vector<Transfer> transfers;
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const double out = static_cast<double>(node_input_bytes[n]) *
                       options.output_ratio / options.num_reducers;
    if (out <= 0.0) continue;
    for (std::uint32_t r = 0; r < options.num_reducers; ++r) {
      if (report.reducer_host[r] == n) continue;  // local partition
      transfers.push_back(Transfer{n, r, out, node_map_finish[n]});
    }
  }
  std::sort(transfers.begin(), transfers.end(),
            [](const Transfer& a, const Transfer& b) {
              if (a.ready != b.ready) return a.ready < b.ready;
              if (a.src != b.src) return a.src < b.src;
              return a.r < b.r;
            });

  std::vector<Time> tx_free(nodes, 0.0), rx_free(nodes, 0.0);
  report.shuffle_finish.assign(options.num_reducers, 0.0);
  // A reducer's data is "in place" no earlier than its host's own map end
  // (local partition needs no transfer but exists once the map finishes).
  for (std::uint32_t r = 0; r < options.num_reducers; ++r) {
    report.shuffle_finish[r] = node_map_finish[report.reducer_host[r]];
  }
  for (const auto& t : transfers) {
    const std::uint32_t dst = report.reducer_host[t.r];
    const double nic =
        std::min(options.cluster.node_config(t.src).nic_mbps,
                 options.cluster.node_config(dst).nic_mbps);
    const Time start = std::max({t.ready, tx_free[t.src], rx_free[dst]});
    const Time end = start + t.bytes / kMiB / nic;
    tx_free[t.src] = end;
    rx_free[dst] = end;
    report.shuffle_finish[t.r] = std::max(report.shuffle_finish[t.r], end);
  }

  // ---- reduce ----
  report.reduce_finish.assign(options.num_reducers, 0.0);
  for (std::uint32_t r = 0; r < options.num_reducers; ++r) {
    double total_in = 0.0;
    for (std::uint32_t n = 0; n < nodes; ++n) {
      total_in += static_cast<double>(node_input_bytes[n]) *
                  options.output_ratio / options.num_reducers;
    }
    const auto host = report.reducer_host[r];
    report.reduce_finish[r] =
        report.shuffle_finish[r] +
        options.reduce_cpu_seconds_per_mib * total_in / kMiB /
            options.cluster.node_config(host).cpu_speed;
    report.makespan = std::max(report.makespan, report.reduce_finish[r]);
  }
  return report;
}

}  // namespace datanet::sim
