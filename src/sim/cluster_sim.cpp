#include "sim/cluster_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace datanet::sim {

namespace {
constexpr double kMiB = 1024.0 * 1024.0;
}

ClusterSim::ClusterSim(SimConfig config) : config_(std::move(config)) {
  if (config_.num_nodes == 0) throw std::invalid_argument("sim: num_nodes == 0");
  if (!config_.per_node.empty() &&
      config_.per_node.size() != config_.num_nodes) {
    throw std::invalid_argument("sim: per_node size mismatch");
  }
  for (std::uint32_t n = 0; n < config_.num_nodes; ++n) {
    const auto& nc = config_.node_config(n);
    if (nc.slots == 0 || !(nc.disk_mbps > 0.0) || !(nc.nic_mbps > 0.0) ||
        !(nc.cpu_speed > 0.0)) {
      throw std::invalid_argument("sim: invalid node config");
    }
  }
}

SimResult ClusterSim::run(const std::vector<SimTask>& tasks,
                          const PullFn& next_task, const RemoteFn& is_remote) {
  if (!next_task) throw std::invalid_argument("sim: null scheduler");

  SimResult result;
  result.task_finish.assign(tasks.size(), 0.0);
  result.task_node.assign(tasks.size(), config_.num_nodes);  // invalid = unrun
  result.node_finish.assign(config_.num_nodes, 0.0);

  EventQueue queue;
  // Per-node FIFO disk: the time at which the disk frees.
  std::vector<Time> disk_free(config_.num_nodes, 0.0);

  // A task may have up to two live attempts (the scheduler's original and
  // one speculative duplicate); the first finish event wins and cancels the
  // rival, whose slot frees at the win time.
  struct Attempt {
    std::size_t task;
    std::uint32_t node;
    Time finish;
    bool speculative;
    bool cancelled = false;
  };
  std::vector<Attempt> attempts;
  std::vector<std::uint8_t> task_done(tasks.size(), 0);
  std::vector<std::uint8_t> task_backed(tasks.size(), 0);
  std::vector<std::vector<std::size_t>> task_live(tasks.size());

  std::function<void(std::uint32_t)> pull;

  // Projected finish of `t` if started on `node` now (disk FIFO + NIC bound
  // + compute). Finish times never change after launch, so projections are
  // exact — backup selection can compare against them safely.
  const auto project = [&](std::uint32_t node, std::size_t t) {
    const SimTask& task = tasks[t];
    const auto& nc = config_.node_config(node);
    const bool remote = is_remote ? is_remote(node, t) : task.remote;
    const double rate_mbps =
        remote ? std::min(nc.disk_mbps, nc.nic_mbps) : nc.disk_mbps;
    const double read_dur =
        static_cast<double>(task.input_bytes) / kMiB / rate_mbps;
    const Time read_end = std::max(queue.now(), disk_free[node]) + read_dur;
    const Time finish = read_end + task.cpu_seconds / nc.cpu_speed;
    return std::tuple(read_end, finish, remote);
  };

  const auto launch = [&](std::uint32_t node, std::size_t t, bool speculative) {
    const auto [read_end, finish, remote] = project(node, t);
    disk_free[node] = read_end;
    if (remote) ++result.remote_reads;
    const std::size_t aid = attempts.size();
    attempts.push_back({t, node, finish, speculative});
    task_live[t].push_back(aid);
    queue.schedule(finish, [&, aid, node, finish] {
      if (attempts[aid].cancelled) return;  // rival won; slot re-pulled then
      const std::size_t task = attempts[aid].task;
      task_done[task] = 1;
      result.task_finish[task] = finish;
      result.task_node[task] = node;
      result.node_finish[node] = std::max(result.node_finish[node], finish);
      if (attempts[aid].speculative) ++result.speculative_wins;
      for (const std::size_t rid : task_live[task]) {
        if (rid == aid || attempts[rid].cancelled) continue;
        attempts[rid].cancelled = true;  // preempt: its finish event no-ops
        const std::uint32_t rn = attempts[rid].node;
        result.node_finish[rn] = std::max(result.node_finish[rn], finish);
        queue.schedule(finish, [&, rn] { pull(rn); });
      }
      task_live[task].clear();
      pull(node);
    });
  };

  pull = [&](std::uint32_t node) {
    const auto t = next_task(node);
    if (t) {
      if (*t >= tasks.size()) throw std::logic_error("sim: bad task index");
      launch(node, *t, /*speculative=*/false);
      return;
    }
    if (!config_.speculative) return;  // slot retires
    // Speculation: duplicate the running, not-yet-backed task with the
    // latest projected finish — but only when this slot would beat it
    // strictly. Ascending scan keeps ties on the lowest task id.
    std::size_t best = tasks.size();
    Time best_finish = 0.0;
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      if (task_done[j] || task_backed[j] || task_live[j].empty()) continue;
      const Attempt& running = attempts[task_live[j].front()];
      if (running.cancelled || running.node == node) continue;
      const auto [read_end, backup_finish, remote] = project(node, j);
      (void)read_end;
      (void)remote;
      if (backup_finish >= running.finish) continue;
      if (best == tasks.size() || running.finish > best_finish) {
        best = j;
        best_finish = running.finish;
      }
    }
    if (best == tasks.size()) return;  // nothing worth duplicating: retire
    task_backed[best] = 1;
    ++result.speculative_launched;
    launch(node, best, /*speculative=*/true);
  };

  // Kick off every slot at t = 0.
  for (std::uint32_t n = 0; n < config_.num_nodes; ++n) {
    for (std::uint32_t s = 0; s < config_.node_config(n).slots; ++s) {
      queue.schedule(0.0, [&, n] { pull(n); });
    }
  }
  queue.run();

  result.makespan =
      *std::max_element(result.node_finish.begin(), result.node_finish.end());
  return result;
}

}  // namespace datanet::sim
