#include "sim/cluster_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace datanet::sim {

namespace {
constexpr double kMiB = 1024.0 * 1024.0;
}

ClusterSim::ClusterSim(SimConfig config) : config_(std::move(config)) {
  if (config_.num_nodes == 0) throw std::invalid_argument("sim: num_nodes == 0");
  if (!config_.per_node.empty() &&
      config_.per_node.size() != config_.num_nodes) {
    throw std::invalid_argument("sim: per_node size mismatch");
  }
  for (std::uint32_t n = 0; n < config_.num_nodes; ++n) {
    const auto& nc = config_.node_config(n);
    if (nc.slots == 0 || !(nc.disk_mbps > 0.0) || !(nc.nic_mbps > 0.0) ||
        !(nc.cpu_speed > 0.0)) {
      throw std::invalid_argument("sim: invalid node config");
    }
  }
}

SimResult ClusterSim::run(const std::vector<SimTask>& tasks,
                          const PullFn& next_task, const RemoteFn& is_remote) {
  if (!next_task) throw std::invalid_argument("sim: null scheduler");

  SimResult result;
  result.task_finish.assign(tasks.size(), 0.0);
  result.task_node.assign(tasks.size(), config_.num_nodes);  // invalid = unrun
  result.node_finish.assign(config_.num_nodes, 0.0);

  EventQueue queue;
  // Per-node FIFO disk: the time at which the disk frees.
  std::vector<Time> disk_free(config_.num_nodes, 0.0);

  // A slot pulls, runs, completes, then pulls again.
  std::function<void(std::uint32_t)> pull = [&](std::uint32_t node) {
    const auto t = next_task(node);
    if (!t) return;  // slot retires
    if (*t >= tasks.size()) throw std::logic_error("sim: bad task index");
    const SimTask& task = tasks[*t];
    const auto& nc = config_.node_config(node);
    const bool remote = is_remote ? is_remote(node, *t) : task.remote;

    // Read stage: FIFO on the node's disk; remote reads are additionally
    // bounded by the NIC.
    const double rate_mbps =
        remote ? std::min(nc.disk_mbps, nc.nic_mbps) : nc.disk_mbps;
    const double read_dur =
        static_cast<double>(task.input_bytes) / kMiB / rate_mbps;
    const Time read_start = std::max(queue.now(), disk_free[node]);
    const Time read_end = read_start + read_dur;
    disk_free[node] = read_end;

    // Compute stage follows the read on this slot.
    const Time finish = read_end + task.cpu_seconds / nc.cpu_speed;
    result.task_finish[*t] = finish;
    result.task_node[*t] = node;
    if (remote) ++result.remote_reads;

    queue.schedule(finish, [&, node, finish] {
      result.node_finish[node] = std::max(result.node_finish[node], finish);
      pull(node);
    });
  };

  // Kick off every slot at t = 0.
  for (std::uint32_t n = 0; n < config_.num_nodes; ++n) {
    for (std::uint32_t s = 0; s < config_.node_config(n).slots; ++s) {
      queue.schedule(0.0, [&, n] { pull(n); });
    }
  }
  queue.run();

  result.makespan =
      *std::max_element(result.node_finish.begin(), result.node_finish.end());
  return result;
}

}  // namespace datanet::sim
