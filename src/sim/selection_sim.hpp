#pragma once
// Bridge between the real TaskSchedulers and the discrete-event cluster
// simulator: EventSimBackend is the second core::TimingBackend next to the
// analytic core::AnalyticBackend. One core::SelectionRuntime drives either —
// the same scheduler, read policy and fault policy run under event-driven
// timing with genuine pull-on-slot-free ordering (a slot frees -> that node
// requests the next block, exactly the paper's task-request loop).
// bench_sim_vs_analytic cross-checks the two backends of the one runtime.

#include <cstdint>
#include <vector>

#include "datanet/selection_runtime.hpp"
#include "dfs/mini_dfs.hpp"
#include "graph/bipartite.hpp"
#include "scheduler/scheduler.hpp"
#include "sim/cluster_sim.hpp"

namespace datanet::sim {

struct SelectionSimOptions {
  SimConfig cluster;  // cluster.speculative turns on event-level duplicates
  // Compute cost of the selection map (filtering) per input MiB, at cpu
  // speed 1.0.
  double cpu_seconds_per_mib = 0.2;
};

// Discrete-event timing backend. assign() runs the full event simulation
// (placement falls out of which slot freed first); the raw SimResult of the
// latest run stays available via last_sim(). report() translates it into
// the phase-level JobReport fields (node/map/total seconds, first finish,
// input bytes) and carries the simulator's speculative-duplicate counters
// in the attempts section — per-task engine details (map_tasks, output,
// shuffle) stay empty, since the event model times the selection scan only.
class EventSimBackend final : public core::TimingBackend {
 public:
  EventSimBackend(const dfs::MiniDfs& dfs, SelectionSimOptions options)
      : dfs_(&dfs), options_(std::move(options)) {}

  [[nodiscard]] scheduler::AssignmentRecord assign(
      scheduler::TaskScheduler& sched, const graph::BipartiteGraph& graph,
      const std::vector<std::uint64_t>& block_bytes) override;
  [[nodiscard]] mapred::JobReport report(
      const std::string& key, const std::vector<mapred::InputSplit>& splits,
      const core::ExperimentConfig& cfg,
      const std::vector<double>& node_speeds,
      const mapred::AttemptCounters& attempts) override;

  // Raw result of the most recent assign() (task finish times, makespan,
  // remote reads).
  [[nodiscard]] const SimResult& last_sim() const { return last_sim_; }

 private:
  const dfs::MiniDfs* dfs_;
  SelectionSimOptions options_;
  SimResult last_sim_;
};

}  // namespace datanet::sim
