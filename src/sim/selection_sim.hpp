#pragma once
// Bridge between the real TaskSchedulers and the discrete-event cluster
// simulator: run a selection phase (one map task per block of a scheduling
// graph) under event-driven timing with genuine pull-on-slot-free ordering.
// Complements core::run_selection's analytic timing; bench_sim_vs_analytic
// cross-checks the two backends.

#include <cstdint>
#include <vector>

#include "dfs/mini_dfs.hpp"
#include "graph/bipartite.hpp"
#include "scheduler/scheduler.hpp"
#include "sim/cluster_sim.hpp"

namespace datanet::sim {

struct SelectionSimOptions {
  SimConfig cluster;
  // Compute cost of the selection map (filtering) per input MiB, at cpu
  // speed 1.0.
  double cpu_seconds_per_mib = 0.2;
};

struct SelectionSimReport {
  SimResult sim;
  // Bytes of the target sub-dataset landing on each node (graph weights of
  // the blocks each node executed).
  std::vector<std::uint64_t> node_filtered_bytes;
};

// Drives `sched` with the simulator's pull events: the node whose slot frees
// first requests the next block, exactly the paper's task-request loop.
[[nodiscard]] SelectionSimReport simulate_selection(
    const dfs::MiniDfs& dfs, const graph::BipartiteGraph& graph,
    scheduler::TaskScheduler& sched, const SelectionSimOptions& options);

}  // namespace datanet::sim
