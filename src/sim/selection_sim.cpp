#include "sim/selection_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace datanet::sim {

SelectionSimReport simulate_selection(const dfs::MiniDfs& dfs,
                                      const graph::BipartiteGraph& graph,
                                      scheduler::TaskScheduler& sched,
                                      const SelectionSimOptions& options) {
  if (options.cluster.num_nodes != graph.num_nodes()) {
    throw std::invalid_argument("simulate_selection: node count mismatch");
  }
  sched.reset(graph);

  std::vector<SimTask> tasks(graph.num_blocks());
  for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
    const auto bytes = dfs.block(graph.block(j).block_id).size_bytes;
    tasks[j].input_bytes = bytes;
    tasks[j].cpu_seconds = options.cpu_seconds_per_mib *
                           static_cast<double>(bytes) / (1024.0 * 1024.0);
  }

  SelectionSimReport report;
  report.node_filtered_bytes.assign(graph.num_nodes(), 0);

  ClusterSim cluster(options.cluster);
  report.sim = cluster.run(
      tasks,
      [&](std::uint32_t node) -> std::optional<std::size_t> {
        const auto j = sched.next_task(node);
        if (j) report.node_filtered_bytes[node] += graph.block(*j).weight;
        return j;
      },
      [&](std::uint32_t node, std::size_t j) {
        return !dfs.is_local(graph.block(j).block_id, node);
      });
  return report;
}

}  // namespace datanet::sim
