#include "sim/selection_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace datanet::sim {

scheduler::AssignmentRecord EventSimBackend::assign(
    scheduler::TaskScheduler& sched, const graph::BipartiteGraph& graph,
    const std::vector<std::uint64_t>& block_bytes) {
  if (options_.cluster.num_nodes != graph.num_nodes()) {
    throw std::invalid_argument("simulate_selection: node count mismatch");
  }
  sched.reset(graph);

  std::vector<SimTask> tasks(graph.num_blocks());
  for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
    tasks[j].input_bytes = block_bytes[j];
    tasks[j].cpu_seconds = options_.cpu_seconds_per_mib *
                           static_cast<double>(block_bytes[j]) /
                           (1024.0 * 1024.0);
  }

  scheduler::AssignmentRecord rec;
  rec.block_to_node.assign(graph.num_blocks(), 0);
  rec.node_load.assign(graph.num_nodes(), 0);
  rec.node_input_bytes.assign(graph.num_nodes(), 0);

  ClusterSim cluster(options_.cluster);
  last_sim_ = cluster.run(
      tasks,
      [&](std::uint32_t node) -> std::optional<std::size_t> {
        const auto j = sched.next_task(node);
        if (j) {
          rec.block_to_node[*j] = node;
          rec.node_load[node] += graph.block(*j).weight;
          rec.node_input_bytes[node] += block_bytes[*j];
          const auto& hosts = graph.block(*j).hosts;
          if (std::find(hosts.begin(), hosts.end(), node) != hosts.end()) {
            ++rec.local_tasks;
          } else {
            ++rec.remote_tasks;
          }
        }
        return j;
      },
      [&](std::uint32_t node, std::size_t j) {
        return !dfs_->is_local(graph.block(j).block_id, node);
      });
  return rec;
}

mapred::JobReport EventSimBackend::report(
    const std::string& /*key*/, const std::vector<mapred::InputSplit>& splits,
    const core::ExperimentConfig& /*cfg*/,
    const std::vector<double>& /*node_speeds — heterogeneity comes from
                                  SimConfig::per_node cpu_speed instead */) {
  mapred::JobReport rep;
  rep.node_map_seconds.assign(last_sim_.node_finish.begin(),
                              last_sim_.node_finish.end());
  rep.map_phase_seconds = last_sim_.makespan;
  rep.total_seconds = last_sim_.makespan;
  double first = 0.0;
  for (const Time t : last_sim_.task_finish) {
    if (t > 0.0 && (first == 0.0 || t < first)) first = t;
  }
  rep.first_map_finish_seconds = first;
  for (const auto& s : splits) {
    rep.input_bytes += s.data.size();
  }
  return rep;
}

SelectionSimReport simulate_selection(const dfs::MiniDfs& dfs,
                                      const graph::BipartiteGraph& graph,
                                      scheduler::TaskScheduler& sched,
                                      const SelectionSimOptions& options) {
  if (options.cluster.num_nodes != graph.num_nodes()) {
    throw std::invalid_argument("simulate_selection: node count mismatch");
  }
  EventSimBackend backend(dfs, options);
  core::DirectReadPolicy read(dfs, 0.0);  // unused on the timing-only path
  core::NoFaults faults;
  const core::SelectionRuntime runtime(read, faults, backend);

  core::ExperimentConfig cfg;
  cfg.num_nodes = options.cluster.num_nodes;
  const auto result = runtime.run_graph(dfs, graph, /*key=*/"", sched, cfg,
                                        /*materialize=*/false);

  SelectionSimReport report;
  report.sim = backend.last_sim();
  report.node_filtered_bytes = result.assignment.node_load;
  return report;
}

}  // namespace datanet::sim
