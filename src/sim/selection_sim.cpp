#include "sim/selection_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace datanet::sim {

scheduler::AssignmentRecord EventSimBackend::assign(
    scheduler::TaskScheduler& sched, const graph::BipartiteGraph& graph,
    const std::vector<std::uint64_t>& block_bytes) {
  if (options_.cluster.num_nodes != graph.num_nodes()) {
    throw std::invalid_argument("EventSimBackend: node count mismatch");
  }
  sched.reset(graph);

  std::vector<SimTask> tasks(graph.num_blocks());
  for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
    tasks[j].input_bytes = block_bytes[j];
    tasks[j].cpu_seconds = options_.cpu_seconds_per_mib *
                           static_cast<double>(block_bytes[j]) /
                           (1024.0 * 1024.0);
  }

  scheduler::AssignmentRecord rec;
  rec.block_to_node.assign(graph.num_blocks(), 0);
  rec.node_load.assign(graph.num_nodes(), 0);
  rec.node_input_bytes.assign(graph.num_nodes(), 0);

  ClusterSim cluster(options_.cluster);
  last_sim_ = cluster.run(
      tasks,
      [&](std::uint32_t node) -> std::optional<std::size_t> {
        const auto j = sched.next_task(node);
        if (j) {
          rec.block_to_node[*j] = node;
          rec.node_load[node] += graph.block(*j).weight;
          rec.node_input_bytes[node] += block_bytes[*j];
          const auto& hosts = graph.block(*j).hosts;
          if (std::find(hosts.begin(), hosts.end(), node) != hosts.end()) {
            ++rec.local_tasks;
          } else {
            ++rec.remote_tasks;
          }
        }
        return j;
      },
      [&](std::uint32_t node, std::size_t j) {
        return !dfs_->is_local(graph.block(j).block_id, node);
      });
  return rec;
}

mapred::JobReport EventSimBackend::report(
    const std::string& /*key*/, const std::vector<mapred::InputSplit>& splits,
    const core::ExperimentConfig& /*cfg*/,
    const std::vector<double>& /*node_speeds — heterogeneity comes from
                                  SimConfig::per_node cpu_speed instead */,
    const mapred::AttemptCounters& /*attempts — the simulator models its own
                                     duplicates as events; the runtime merges
                                     the loop's counters on top */) {
  mapred::JobReport rep;
  rep.attempts.speculative_launched = last_sim_.speculative_launched;
  rep.attempts.speculative_wins = last_sim_.speculative_wins;
  rep.node_map_seconds.assign(last_sim_.node_finish.begin(),
                              last_sim_.node_finish.end());
  rep.map_phase_seconds = last_sim_.makespan;
  rep.total_seconds = last_sim_.makespan;
  double first = 0.0;
  for (const Time t : last_sim_.task_finish) {
    if (t > 0.0 && (first == 0.0 || t < first)) first = t;
  }
  rep.first_map_finish_seconds = first;
  for (const auto& s : splits) {
    rep.input_bytes += s.data.size();
  }
  return rep;
}

}  // namespace datanet::sim
