#include "mapred/report_json.hpp"

#include "common/json.hpp"

namespace datanet::mapred {

std::string report_to_json(const JobReport& report, bool include_output) {
  common::JsonWriter w;
  w.begin_object();

  w.key("timing").begin_object();
  w.field("map_phase_seconds", report.map_phase_seconds);
  w.field("first_map_finish_seconds", report.first_map_finish_seconds);
  w.field("shuffle_phase_seconds", report.shuffle_phase_seconds);
  w.field("reduce_phase_seconds", report.reduce_phase_seconds);
  w.field("total_seconds", report.total_seconds);
  w.key("node_map_seconds").begin_array();
  for (const double t : report.node_map_seconds) w.value(t);
  w.end_array();
  w.key("shuffle_task_seconds").begin_array();
  for (const double t : report.shuffle_task_seconds) w.value(t);
  w.end_array();
  w.end_object();

  w.key("aggregates").begin_object();
  w.field("input_records", report.input_records);
  w.field("input_bytes", report.input_bytes);
  w.field("map_output_pairs", report.map_output_pairs);
  w.field("shuffle_bytes", report.shuffle_bytes);
  w.field("skipped_lines", report.skipped_lines);
  w.field("output_keys", static_cast<std::uint64_t>(report.output.size()));
  w.end_object();

  w.key("faults").begin_object();
  w.field("retries", report.retries);
  w.field("lost_blocks", report.lost_blocks);
  w.field("under_replicated", report.under_replicated);
  w.field("degraded", report.degraded);
  w.end_object();

  w.key("attempts").begin_object();
  w.field("attempts", report.attempts.attempts);
  w.field("timeouts", report.attempts.timeouts);
  w.field("transient_retries", report.attempts.transient_retries);
  w.field("redispatches", report.attempts.redispatches);
  w.field("speculative_launched", report.attempts.speculative_launched);
  w.field("speculative_wins", report.attempts.speculative_wins);
  w.field("timing_backups", report.attempts.timing_backups);
  w.field("degraded_tasks", report.attempts.degraded_tasks);
  w.end_object();

  w.key("recovery").begin_object();
  w.field("healed_blocks", report.recovery.healed_blocks);
  w.field("pending_repairs", report.recovery.pending_repairs);
  w.field("mttr_ticks", report.recovery.mttr_ticks);
  w.field("monitor_ticks", report.recovery.monitor_ticks);
  w.field("scrubbed_replicas", report.recovery.scrubbed_replicas);
  w.field("unrepairable", report.recovery.unrepairable);
  w.end_object();

  w.key("counters").begin_object();
  for (const auto& [name, v] : report.counters) w.field(name, v);
  w.end_object();

  if (include_output) {
    w.key("output").begin_object();
    for (const auto& [k, v] : report.output) w.field(k, v);
    w.end_object();
  }

  w.end_object();
  return w.str();
}

}  // namespace datanet::mapred
