#include "mapred/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "common/arena.hpp"
#include "common/hash.hpp"
#include "common/thread_pool.hpp"

namespace datanet::mapred {

std::vector<std::string_view> split_at_record_boundaries(std::string_view data,
                                                         std::uint32_t pieces) {
  std::vector<std::string_view> chunks;
  if (data.empty()) return chunks;
  if (pieces == 0) pieces = 1;
  const std::uint64_t chunk = std::max<std::uint64_t>(data.size() / pieces, 1);
  std::size_t start = 0;
  while (start < data.size()) {
    std::size_t end = std::min<std::size_t>(start + chunk, data.size());
    if (end < data.size()) {
      const std::size_t nl = data.find('\n', end);
      end = (nl == std::string_view::npos) ? data.size() : nl + 1;
    }
    chunks.push_back(data.substr(start, end - start));
    start = end;
  }
  return chunks;
}

std::uint64_t apply_speculative_backups(
    std::vector<TaskTiming>& map_tasks, std::vector<double>& node_map_seconds,
    const std::function<double(std::size_t task, std::uint32_t node)>&
        backup_duration) {
  const std::size_t num_tasks = map_tasks.size();
  const auto num_nodes = static_cast<std::uint32_t>(node_map_seconds.size());
  if (num_tasks == 0 || num_nodes < 2) return 0;

  // Speculative execution: while one node finishes well after the rest, its
  // last-running task gets a backup on the earliest idle node and the
  // earlier copy wins. Iterated until no backup would finish earlier —
  // Hadoop keeps speculating as slots free up. (Results are unaffected;
  // only the simulated clock moves.)
  // Per-node "owner" of each task for recomputing node finish times.
  std::vector<std::uint32_t> owner(num_tasks);
  for (std::size_t t = 0; t < num_tasks; ++t) owner[t] = map_tasks[t].node;

  std::uint64_t backups = 0;
  const std::size_t max_waves = 4 * num_tasks;
  for (std::size_t wave = 0; wave < max_waves; ++wave) {
    const auto straggler = static_cast<std::uint32_t>(
        std::max_element(node_map_seconds.begin(), node_map_seconds.end()) -
        node_map_seconds.begin());
    std::uint32_t backup_node = straggler;
    double earliest_idle = node_map_seconds[straggler];
    for (std::uint32_t n = 0; n < num_nodes; ++n) {
      if (n == straggler) continue;
      if (node_map_seconds[n] < earliest_idle) {
        earliest_idle = node_map_seconds[n];
        backup_node = n;
      }
    }
    if (backup_node == straggler) break;

    // The straggler's last-finishing task.
    std::size_t tail = num_tasks;
    for (std::size_t t = 0; t < num_tasks; ++t) {
      if (owner[t] != straggler) continue;
      if (tail == num_tasks ||
          map_tasks[t].finish > map_tasks[tail].finish) {
        tail = t;
      }
    }
    if (tail == num_tasks) break;

    const double launch = std::max(earliest_idle, map_tasks[tail].start);
    const double backup_finish = launch + backup_duration(tail, backup_node);
    if (backup_finish >= map_tasks[tail].finish) break;  // no gain left

    map_tasks[tail].finish = backup_finish;
    map_tasks[tail].node = backup_node;
    owner[tail] = backup_node;
    ++backups;
    node_map_seconds[backup_node] =
        std::max(node_map_seconds[backup_node], backup_finish);
    double node_finish = 0.0;
    for (std::size_t t = 0; t < num_tasks; ++t) {
      if (owner[t] == straggler) {
        node_finish = std::max(node_finish, map_tasks[t].finish);
      }
    }
    node_map_seconds[straggler] = node_finish;
  }
  return backups;
}

namespace {

// Seed of the shuffle partitioner; also seeds the cached sort hash so one
// hash per pair serves both partitioning and grouping.
constexpr std::uint64_t kPartitionSeed = 0x9e3779b9;

// The flat counter list lives on Emitter (the base count() bumps it without
// a virtual dispatch); the std::map materializes only when the engine
// merges tasks into the report.
using CounterList = Emitter::CounterList;

// Collects emitted pairs in order into the task's arena; partitions lazily
// afterwards. Wires the base-class counter sink to its own list.
class VectorEmitter final : public Emitter {
 public:
  explicit VectorEmitter(common::Arena& arena)
      : pairs_(common::ArenaAllocator<std::pair<Key, Value>>(arena)) {
    counters_ = &counter_list_;
  }
  void emit(Key key, Value value) override {
    pairs_.emplace_back(std::move(key), std::move(value));
  }
  [[nodiscard]] common::ArenaVector<std::pair<Key, Value>>& pairs() {
    return pairs_;
  }
  [[nodiscard]] CounterList& counters() { return counter_list_; }

 private:
  common::ArenaVector<std::pair<Key, Value>> pairs_;
  CounterList counter_list_;
};

// A map-output pair with its partition hash computed once and carried along
// so grouping and partitioning never rehash (or re-compare) the full key.
struct HashedPair {
  std::uint64_t hash = 0;
  Key key;
  Value value;
};

template <class PairVec>
common::ArenaVector<HashedPair> hash_pairs(PairVec pairs,
                                           common::Arena& arena) {
  common::ArenaVector<HashedPair> out{
      common::ArenaAllocator<HashedPair>(arena)};
  out.reserve(pairs.size());
  for (auto& [key, value] : pairs) {
    const std::uint64_t h = common::hash_bytes(key, kPartitionSeed);
    out.push_back(HashedPair{h, std::move(key), std::move(value)});
  }
  return out;
}

// Group pairs by key, then apply a reducer. The sort key is (hash, key):
// equal keys share a hash, so grouping is exact, while distinct keys almost
// always order by the cached hash without touching the strings — string
// comparisons no longer dominate grouping of long common-prefix keys. The
// stable sort keeps values in emission order within a key; which key the
// reducer sees first is hash order, but every consumer of reducer output
// (JobReport.output, counters) is order-insensitive. Counter emissions are
// merged into `counters` when provided. Output lives in `arena`.
template <class HashedVec>
common::ArenaVector<std::pair<Key, Value>> reduce_pairs(
    Reducer& reducer, HashedVec pairs, common::Arena& arena,
    CounterList* counters = nullptr) {
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const HashedPair& a, const HashedPair& b) {
                     if (a.hash != b.hash) return a.hash < b.hash;
                     return a.key < b.key;
                   });
  VectorEmitter out(arena);
  std::size_t i = 0;
  std::vector<Value> values;
  while (i < pairs.size()) {
    std::size_t j = i;
    values.clear();
    while (j < pairs.size() && pairs[j].hash == pairs[i].hash &&
           pairs[j].key == pairs[i].key) {
      values.push_back(std::move(pairs[j].value));
      ++j;
    }
    reducer.reduce(pairs[i].key, values, out);
    i = j;
  }
  if (counters) {
    for (auto& [name, v] : out.counters()) {
      bool found = false;
      for (auto& [cname, total] : *counters) {
        if (cname == name) {
          total += v;
          found = true;
          break;
        }
      }
      if (!found) counters->emplace_back(std::move(name), v);
    }
  }
  return std::move(out.pairs());
}

struct TaskResult {
  // The task's scratch arena backs `partitions` and everything that fed it;
  // declared first so the vectors die before their memory does.
  std::unique_ptr<common::Arena> arena;
  // Post-combiner map output, already split into one vector per reducer
  // (index = hash % R) — the serial global partition loop is gone.
  std::vector<common::ArenaVector<HashedPair>> partitions;
  std::vector<std::uint64_t> partition_bytes;  // per reducer, this task only
  std::uint64_t pair_count = 0;
  CounterList counters;
  std::uint64_t records = 0;
  std::uint64_t skipped = 0;
};

}  // namespace

Engine::Engine(EngineOptions options) : options_(std::move(options)) {
  if (options_.num_nodes == 0) throw std::invalid_argument("num_nodes == 0");
  if (options_.slots_per_node == 0) {
    throw std::invalid_argument("slots_per_node == 0");
  }
  if (!options_.node_speed.empty()) {
    if (options_.node_speed.size() != options_.num_nodes) {
      throw std::invalid_argument("node_speed size != num_nodes");
    }
    for (const double s : options_.node_speed) {
      if (!(s > 0.0)) throw std::invalid_argument("node_speed must be > 0");
    }
  }
}

JobReport Engine::run(const Job& job, const std::vector<InputSplit>& splits) const {
  if (!job.mapper_factory || !job.reducer_factory) {
    throw std::invalid_argument("job needs mapper and reducer factories");
  }
  if (job.config.num_reducers == 0) {
    throw std::invalid_argument("num_reducers == 0");
  }
  for (const auto& s : splits) {
    if (s.node >= options_.num_nodes) {
      throw std::invalid_argument("split placed on nonexistent node");
    }
  }

  JobReport report;
  const std::uint32_t R = job.config.num_reducers;

  // One pool serves the whole run: map tasks, partition gathering, and the
  // per-partition reduce stage all share it.
  const std::uint32_t threads =
      options_.execution_threads
          ? options_.execution_threads
          : std::max(1u, std::thread::hardware_concurrency());
  common::ThreadPool pool(threads);
  const auto wall_now = [] { return std::chrono::steady_clock::now(); };
  const auto wall_since = [](std::chrono::steady_clock::time_point t0,
                             std::chrono::steady_clock::time_point t1) {
    return std::chrono::duration<double>(t1 - t0).count();
  };

  // ---- Real map execution (parallel, order-independent results). ----
  // Each task emits R pre-partitioned vectors with the key hash computed
  // once and cached alongside the pair; nothing after the map barrier ever
  // rehashes a key.
  const auto wall_map_start = wall_now();
  std::vector<TaskResult> results(splits.size());
  common::parallel_for(
      pool, splits.size(),
      [&](std::size_t t) {
        const InputSplit& split = splits[t];
        TaskResult& r = results[t];
        r.arena = std::make_unique<common::Arena>();
        common::Arena& arena = *r.arena;
        auto mapper = job.mapper_factory();
        VectorEmitter emitter(arena);
        std::uint64_t records = 0;
        const std::uint64_t skipped = workload::for_each_record(
            split.data, [&](const workload::RecordView& rv) {
              mapper->map(rv, emitter);
              ++records;
            });
        mapper->finish(emitter);
        r.records = records;
        r.skipped = skipped;
        r.counters = std::move(emitter.counters());
        auto hashed = hash_pairs(std::move(emitter.pairs()), arena);
        if (job.combiner_factory) {
          auto combiner = job.combiner_factory();
          hashed =
              hash_pairs(reduce_pairs(*combiner, std::move(hashed), arena),
                         arena);
        }
        r.pair_count = hashed.size();
        r.partitions.reserve(R);
        for (std::uint32_t p = 0; p < R; ++p) {
          r.partitions.emplace_back(common::ArenaAllocator<HashedPair>(arena));
        }
        r.partition_bytes.assign(R, 0);
        for (auto& hp : hashed) {
          const auto p = static_cast<std::uint32_t>(hp.hash % R);
          r.partition_bytes[p] += hp.key.size() + hp.value.size() + 2;
          r.partitions[p].push_back(std::move(hp));
        }
      },
      /*grain=*/1);  // map tasks are coarse; chunking would serialize them
  const auto wall_map_end = wall_now();
  report.wall_map_seconds = wall_since(wall_map_start, wall_map_end);

  // ---- Deterministic simulated map timing. ----
  report.map_tasks.resize(splits.size());
  report.node_map_seconds.assign(options_.num_nodes, 0.0);
  const auto speed_of = [&](std::uint32_t node) {
    return options_.node_speed.empty() ? 1.0 : options_.node_speed[node];
  };
  {
    // Per node: multi-slot list scheduling in task arrival order.
    std::vector<std::vector<double>> slot_free(
        options_.num_nodes, std::vector<double>(options_.slots_per_node, 0.0));
    for (std::size_t t = 0; t < splits.size(); ++t) {
      const InputSplit& split = splits[t];
      auto& slots = slot_free[split.node];
      auto it = std::min_element(slots.begin(), slots.end());
      const double start = *it;
      const double dur = job.config.cost.map_seconds(split.effective_bytes(),
                                                     results[t].records) /
                         speed_of(split.node);
      *it = start + dur;
      report.map_tasks[t] = TaskTiming{split.node, start, start + dur};
      report.node_map_seconds[split.node] =
          std::max(report.node_map_seconds[split.node], start + dur);
    }
  }

  if (options_.speculative && options_.num_nodes > 1 && !splits.empty()) {
    report.attempts.timing_backups = apply_speculative_backups(
        report.map_tasks, report.node_map_seconds,
        [&](std::size_t t, std::uint32_t node) {
          return job.config.cost.map_seconds(splits[t].effective_bytes(),
                                             results[t].records) /
                 speed_of(node);
        });
  }

  report.map_phase_seconds = splits.empty()
                                 ? 0.0
                                 : *std::max_element(report.node_map_seconds.begin(),
                                                     report.node_map_seconds.end());
  report.first_map_finish_seconds = report.map_phase_seconds;
  for (const auto& tt : report.map_tasks) {
    report.first_map_finish_seconds =
        std::min(report.first_map_finish_seconds, tt.finish);
  }

  // ---- Shuffle: gather per-task partitions, sized per reducer. ----
  const auto wall_shuffle_start = wall_now();
  for (std::size_t t = 0; t < splits.size(); ++t) {
    report.input_records += results[t].records;
    report.skipped_lines += results[t].skipped;
    report.input_bytes += splits[t].data.size();
    report.map_output_pairs += results[t].pair_count;
    for (const auto& [name, v] : results[t].counters) {
      report.counters[name] += v;  // report.counters is a map: order-free
    }
  }
  // Each reducer's partition is the concatenation of every task's slice in
  // task order — the same order the old serial partition loop produced.
  // Partitions are independent, so the gather runs on the pool; each gets
  // its own arena (shared with its reduce below — arenas are single-thread).
  std::vector<std::unique_ptr<common::Arena>> reduce_arenas(R);
  for (std::uint32_t p = 0; p < R; ++p) {
    reduce_arenas[p] = std::make_unique<common::Arena>();
  }
  std::vector<std::optional<common::ArenaVector<HashedPair>>> partitions(R);
  std::vector<std::uint64_t> partition_bytes(R, 0);
  common::parallel_for(pool, R, [&](std::size_t p) {
    auto& part = partitions[p].emplace(
        common::ArenaAllocator<HashedPair>(*reduce_arenas[p]));
    std::size_t total = 0;
    for (const auto& r : results) total += r.partitions[p].size();
    part.reserve(total);
    for (auto& r : results) {
      for (auto& hp : r.partitions[p]) part.push_back(std::move(hp));
      partition_bytes[p] += r.partition_bytes[p];
    }
  });
  for (std::uint32_t p = 0; p < R; ++p) report.shuffle_bytes += partition_bytes[p];

  report.shuffle_task_seconds.resize(R);
  for (std::uint32_t p = 0; p < R; ++p) {
    // Paper semantics: a shuffle task is alive from the first map completion
    // until the last map completes, plus its own transfer time.
    const double wait = splits.empty() ? 0.0
                                       : report.map_phase_seconds -
                                             report.first_map_finish_seconds;
    report.shuffle_task_seconds[p] =
        wait + job.config.cost.transfer_seconds(partition_bytes[p]);
  }
  report.shuffle_phase_seconds =
      R ? *std::max_element(report.shuffle_task_seconds.begin(),
                            report.shuffle_task_seconds.end())
        : 0.0;

  // ---- Real reduce (parallel over partitions) + simulated timing. ----
  // Each partition groups and reduces independently on the pool into
  // per-partition buffers; the merge below runs serially in partition order,
  // so output and counters are identical to the serial path.
  std::vector<std::optional<common::ArenaVector<std::pair<Key, Value>>>>
      reduced(R);
  std::vector<CounterList> reduce_counters(R);
  common::parallel_for(pool, R, [&](std::size_t p) {
    auto reducer = job.reducer_factory();
    reduced[p] = reduce_pairs(*reducer, std::move(*partitions[p]),
                              *reduce_arenas[p], &reduce_counters[p]);
  });
  report.reduce_task_seconds.resize(R);
  for (std::uint32_t p = 0; p < R; ++p) {
    for (auto& kv : *reduced[p]) report.output.insert(std::move(kv));
    for (const auto& [name, v] : reduce_counters[p]) report.counters[name] += v;
    report.reduce_task_seconds[p] =
        job.config.cost.reduce_seconds(partition_bytes[p]);
  }
  report.wall_shuffle_reduce_seconds =
      wall_since(wall_shuffle_start, wall_now());
  report.reduce_phase_seconds =
      R ? *std::max_element(report.reduce_task_seconds.begin(),
                            report.reduce_task_seconds.end())
        : 0.0;

  // Total: map phase, then the slowest reducer's transfer + reduce. The wait
  // component of shuffle overlaps the map phase tail by construction.
  double tail = 0.0;
  for (std::uint32_t p = 0; p < R; ++p) {
    tail = std::max(tail, job.config.cost.transfer_seconds(partition_bytes[p]) +
                              report.reduce_task_seconds[p]);
  }
  report.total_seconds = report.map_phase_seconds + tail;
  return report;
}

}  // namespace datanet::mapred
