#include "mapred/job.hpp"

namespace datanet::mapred {

namespace {
constexpr double kMiB = 1024.0 * 1024.0;
}

double CostModel::map_seconds(std::uint64_t bytes, std::uint64_t records) const {
  // time_scale maps scaled-down data volumes to full-size costs; the fixed
  // task startup charge is a real per-task constant and is NOT scaled.
  const double mib = static_cast<double>(bytes) / kMiB;
  return task_overhead_s +
         time_scale * (io_s_per_mib * mib + cpu_s_per_mib * mib +
                       cpu_us_per_record * static_cast<double>(records) * 1e-6);
}

// Shuffle/reduce operate on post-combiner aggregates (word counts, top-K
// heaps, window partials), whose size is bounded by key cardinality rather
// than input volume — so they are charged on actual bytes, NOT multiplied by
// time_scale (a full-size block combines down to roughly the same output).
double CostModel::transfer_seconds(std::uint64_t bytes) const {
  return net_s_per_mib * static_cast<double>(bytes) / kMiB;
}

double CostModel::reduce_seconds(std::uint64_t bytes) const {
  return reduce_s_per_mib * static_cast<double>(bytes) / kMiB;
}

}  // namespace datanet::mapred
