#pragma once
// The MapReduce engine: executes a Job over input splits placed on cluster
// nodes. Real work happens on a thread pool; simulated time is computed
// deterministically from the cost model and the split->node placement, so a
// run's JobReport is bit-for-bit reproducible regardless of thread count.
//
// Timing model (matches the phase structure measured in Section V):
//   * map: each node runs its splits on `slots_per_node` slots in arrival
//     order; node map time = latest slot finish. Map phase = max over nodes.
//   * shuffle (paper's definition, Section V-A-3: "starts whenever a map
//     task is finished and ends when all map tasks have been executed"):
//     shuffle task r spans [first map task finish, map phase end] plus its
//     partition transfer — so an imbalanced map phase directly stretches
//     every shuffle task.
//   * reduce: per-reducer cost on its partition; reduce phase = max.
//
// Real execution is parallel end to end: map tasks emit pre-partitioned
// output (key hash computed once per pair and cached), and the per-partition
// group+reduce stage runs on the same thread pool as the map stage. All
// results and simulated timings are bit-identical at any thread count.

#include <cstdint>
#include <functional>
#include <map>
#include <string_view>
#include <vector>

#include "mapred/job.hpp"

namespace datanet::mapred {

// One map task: a chunk of input data resident on `node`.
struct InputSplit {
  std::uint32_t node = 0;
  std::string_view data;  // newline-separated encoded records; caller-owned
  // Bytes charged to the simulated clock; defaults to data.size() but can be
  // overridden (e.g. remote reads charged with a network penalty).
  std::uint64_t charged_bytes = 0;

  [[nodiscard]] std::uint64_t effective_bytes() const {
    return charged_bytes ? charged_bytes : data.size();
  }
};

struct TaskTiming {
  std::uint32_t node = 0;
  double start = 0.0;
  double finish = 0.0;
  [[nodiscard]] double duration() const { return finish - start; }
};

// Attempt-layer accounting (the JobReport JSON's "attempts" section).
// `attempts`..`degraded_tasks` come from the SelectionRuntime's attempt
// tracker (or, for event-sim runs, sim::ClusterSim's duplicate events);
// `timing_backups` counts the analytic cost model's accepted speculative
// backup placements (apply_speculative_backups below). Zero everywhere on a
// clean run.
struct AttemptCounters {
  std::uint64_t attempts = 0;            // dispatched, duplicates included
  std::uint64_t timeouts = 0;            // attempts whose deadline expired
  std::uint64_t transient_retries = 0;   // reads failed then retried (backoff)
  std::uint64_t redispatches = 0;        // cap-counted follow-up dispatches
  std::uint64_t speculative_launched = 0;
  std::uint64_t speculative_wins = 0;    // duplicates that beat the original
  std::uint64_t timing_backups = 0;      // analytic-model backup placements
  std::uint64_t degraded_tasks = 0;      // abandoned at the retry cap
};

// Background-healing counters exported by the ReplicationMonitor through the
// SelectionRuntime (zero when no monitor is wired in). mttr_ticks is the sum
// over healed blocks of (heal tick − first-observed tick) on the monitor's
// own tick clock — mean time to repair is mttr_ticks / healed_blocks.
struct RecoveryCounters {
  std::uint64_t healed_blocks = 0;
  std::uint64_t pending_repairs = 0;  // left unhealed when the run finished
  std::uint64_t mttr_ticks = 0;
  std::uint64_t monitor_ticks = 0;
  std::uint64_t scrubbed_replicas = 0;  // marked-corrupt copies dropped
  std::uint64_t unrepairable = 0;       // no healthy source / no target
};

struct JobReport {
  // Real output of the job (reduced key -> value), sorted by key.
  std::map<Key, Value> output;

  // Simulated per-task and per-node map timing.
  std::vector<TaskTiming> map_tasks;
  std::vector<double> node_map_seconds;   // per node: latest task finish
  double map_phase_seconds = 0.0;         // max over nodes
  double first_map_finish_seconds = 0.0;  // earliest task completion

  // Simulated shuffle/reduce timing (per reducer partition).
  std::vector<double> shuffle_task_seconds;
  std::vector<double> reduce_task_seconds;
  double shuffle_phase_seconds = 0.0;  // max shuffle task
  double reduce_phase_seconds = 0.0;   // max reduce task
  double total_seconds = 0.0;

  // Measured wall-clock time of the real execution (not the simulated
  // clock): the map stage, and the shuffle+reduce stage that follows the
  // map barrier. These depend on the host machine and execution_threads;
  // they exist for perf benches and are excluded from report_to_json so
  // serialized reports stay bit-for-bit reproducible.
  double wall_map_seconds = 0.0;
  double wall_shuffle_reduce_seconds = 0.0;

  // Fault accounting, filled by the fault-aware harness (zero on clean
  // runs): task re-executions plus failed checksum read attempts, blocks
  // with no healthy replica left, and whether the output may therefore be
  // incomplete. Degradation is observable, never silent.
  std::uint64_t retries = 0;
  std::uint64_t lost_blocks = 0;
  bool degraded = false;
  // Blocks left under-replicated when the run finished (dfs::fsck after a
  // faulted selection; kills strand copies until re-replication catches up).
  std::uint64_t under_replicated = 0;
  // Attempt/timeout/speculation counters (see AttemptCounters above).
  AttemptCounters attempts;
  // Background-healing counters (see RecoveryCounters above).
  RecoveryCounters recovery;

  // Counters.
  std::uint64_t input_records = 0;
  std::uint64_t input_bytes = 0;
  std::uint64_t map_output_pairs = 0;   // after combiner
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t skipped_lines = 0;
  // User-defined named counters (Emitter::count), merged across all map and
  // reduce tasks in deterministic (name-sorted) order.
  std::map<std::string, std::uint64_t> counters;
};

struct EngineOptions {
  std::uint32_t num_nodes = 1;
  std::uint32_t slots_per_node = 2;  // Marmot nodes are dual-processor
  // Worker threads for real execution (0 = hardware concurrency).
  std::uint32_t execution_threads = 0;
  // Relative processing speed per node (empty = homogeneous 1.0). A task's
  // simulated duration on node n is cost / node_speed[n].
  std::vector<double> node_speed;
  // Hadoop-style single-wave speculative execution: when the cluster is
  // otherwise idle, the straggler node's running tail task is duplicated on
  // the earliest idle node and the earlier copy wins. Affects simulated map
  // timing only (results are identical either way).
  bool speculative = false;
};

class Engine {
 public:
  explicit Engine(EngineOptions options);

  // Execute `job` over `splits`. Splits run as independent map tasks; the
  // i-th split's node must be < num_nodes.
  [[nodiscard]] JobReport run(const Job& job,
                              const std::vector<InputSplit>& splits) const;

 private:
  EngineOptions options_;
};

// Hadoop's single-wave speculative backup pass over simulated map timings,
// the ONE speculation-timing implementation shared by the engine cost model
// and (through core::AnalyticBackend, which enables EngineOptions::
// speculative whenever the SelectionRuntime's attempt layer launched
// duplicates) the selection phase. While one node finishes well after the
// rest, its last-running task gets a backup on the earliest idle node and
// the earlier copy wins; iterated until no backup would finish earlier.
// `backup_duration(task, node)` prices the duplicate. Mutates map_tasks /
// node_map_seconds in place and returns the number of accepted backups.
std::uint64_t apply_speculative_backups(
    std::vector<TaskTiming>& map_tasks, std::vector<double>& node_map_seconds,
    const std::function<double(std::size_t task, std::uint32_t node)>&
        backup_duration);

// Cut `data` (newline-separated records) into ~`pieces` contiguous chunks of
// roughly data.size()/pieces bytes, each extended to the next record
// boundary so no record straddles two chunks (Hadoop's line-record input
// split rule). Empty data yields no chunks; a single record (or pieces == 1)
// yields one chunk spanning all of it. The returned views alias `data`.
[[nodiscard]] std::vector<std::string_view> split_at_record_boundaries(
    std::string_view data, std::uint32_t pieces);

}  // namespace datanet::mapred
