#pragma once
// Job model for the mini-MapReduce engine. Jobs execute for real (mappers
// parse records, reducers aggregate), while a per-job cost model drives the
// deterministic simulated clock used for all timing figures. Mappers are
// created per task so they may keep state (combining, windows, top-K heaps).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "workload/record.hpp"

namespace datanet::mapred {

using Key = std::string;
using Value = std::string;

class Emitter {
 public:
  // Named counters as a flat (name, total) list: mappers count per record,
  // so the accumulate path must not allocate for an existing name — lookup
  // is a string_view compare against a handful of entries.
  using CounterList = std::vector<std::pair<std::string, std::uint64_t>>;

  virtual ~Emitter() = default;
  virtual void emit(Key key, Value value) = 0;

  // Hadoop-style named counters: accumulated per task and merged into the
  // JobReport. Counting is side-channel telemetry — it never affects
  // output. Non-virtual on purpose: this runs once per record, so the bump
  // must cost a predictable branch + short memcmp, not a dispatch. Emitters
  // that sink counters point `counters_` at their list; contexts that drop
  // counts (the default) leave it null.
  void count(std::string_view counter, std::uint64_t delta = 1) {
    if (counters_ == nullptr) return;
    for (auto& [name, total] : *counters_) {
      if (name == counter) {
        total += delta;
        return;
      }
    }
    counters_->emplace_back(std::string(counter), delta);
  }

 protected:
  CounterList* counters_ = nullptr;
};

class Mapper {
 public:
  virtual ~Mapper() = default;
  // Called once per record of the task's input split.
  virtual void map(const workload::RecordView& record, Emitter& out) = 0;
  // Called once after the split is exhausted (emit held state, e.g. top-K).
  virtual void finish(Emitter& out) { (void)out; }
};

class Reducer {
 public:
  virtual ~Reducer() = default;
  // `values` are all values observed for `key` (combiner: within one task;
  // reducer: across all tasks), in deterministic task-then-emit order.
  virtual void reduce(const Key& key, std::span<const Value> values,
                      Emitter& out) = 0;
};

// Simulated-time cost model. Charged per map task:
//   io_s_per_mib * input_MiB + cpu_s_per_mib * input_MiB
//     + cpu_us_per_record * records * 1e-6
// Shuffle transfer per reducer: net_s_per_mib * partition_MiB. Reduce:
// reduce_s_per_mib * partition_MiB. All scaled by time_scale (experiments
// use it to make one scaled-down block cost what a 64 MiB block costs).
struct CostModel {
  double io_s_per_mib = 0.30;
  double cpu_s_per_mib = 0.10;
  double cpu_us_per_record = 0.0;
  double net_s_per_mib = 0.40;
  double reduce_s_per_mib = 0.20;
  double task_overhead_s = 0.0;  // fixed JVM-style startup charge per task
  double time_scale = 1.0;

  [[nodiscard]] double map_seconds(std::uint64_t bytes,
                                   std::uint64_t records) const;
  [[nodiscard]] double transfer_seconds(std::uint64_t bytes) const;
  [[nodiscard]] double reduce_seconds(std::uint64_t bytes) const;
};

struct JobConfig {
  std::string name = "job";
  std::uint32_t num_reducers = 8;
  CostModel cost;
};

struct Job {
  JobConfig config;
  std::function<std::unique_ptr<Mapper>()> mapper_factory;
  std::function<std::unique_ptr<Reducer>()> reducer_factory;
  // Optional per-task combiner (usually the reducer itself); reduces shuffle
  // volume exactly as in Hadoop.
  std::function<std::unique_ptr<Reducer>()> combiner_factory;
};

}  // namespace datanet::mapred
