#pragma once
// JSON serialization of a JobReport for machine consumption (CI dashboards,
// notebooks, the CLI's --json mode). Timing, counters, and aggregates are
// always included; the full key->value output only when `include_output`
// (it can be large).

#include <string>

#include "mapred/engine.hpp"

namespace datanet::mapred {

[[nodiscard]] std::string report_to_json(const JobReport& report,
                                         bool include_output = false);

}  // namespace datanet::mapred
