#pragma once
// Minimal POSIX socket plumbing shared by the datanetd listener and the
// client library: an owning fd wrapper plus exact-length framed reads and
// writes over loopback TCP. Deliberately tiny — no readiness loop, no
// non-blocking mode; datanetd's concurrency comes from its handler threads,
// not from multiplexed IO.
//
// Deadlines (PR 9): every read/write takes an optional IDLE timeout in
// milliseconds — the longest the call may sit in poll() without the socket
// making progress (bytes arriving / buffer draining). 0 keeps the legacy
// block-forever behaviour. Idle (not total) is the slowloris-relevant
// notion: a peer that keeps trickling bytes resets the clock per chunk, but
// one that stalls mid-frame trips SocketTimeoutError, a typed subclass of
// SocketError, so callers can distinguish "peer is slow/dead" (retryable
// with a fresh connection) from "peer sent garbage" (ProtocolError).

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace datanet::server {

class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// The idle deadline expired before the socket made progress. Subclass so
// retry policy can treat timeouts specially while generic SocketError
// handling still catches them.
class SocketTimeoutError : public SocketError {
 public:
  using SocketError::SocketError;
};

// Owning file descriptor (move-only).
class Fd {
 public:
  Fd() noexcept = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

// Listener bound to 127.0.0.1:`port` (0 = ephemeral); returns the fd and the
// actual port. Throws SocketError.
[[nodiscard]] std::pair<Fd, std::uint16_t> listen_loopback(std::uint16_t port,
                                                           int backlog = 64);

// Blocking accept; nullopt when the listener was shut down/closed.
[[nodiscard]] std::optional<Fd> accept_client(const Fd& listener);

// Blocking connect to 127.0.0.1:`port`. Throws SocketError.
[[nodiscard]] Fd connect_loopback(std::uint16_t port);

// Write all of `data` (retrying short writes / EINTR). Throws SocketError;
// SocketTimeoutError if the send buffer stays full for `idle_timeout_ms`
// (a peer that stopped reading). 0 = no deadline.
void write_all(const Fd& fd, std::string_view data,
               std::uint32_t idle_timeout_ms = 0);

// Read exactly `n` bytes into a string. Returns nullopt on clean EOF at a
// message boundary (0 bytes read); throws SocketError on mid-message EOF or
// socket errors, SocketTimeoutError when no bytes arrive for
// `idle_timeout_ms` (0 = no deadline).
[[nodiscard]] std::optional<std::string> read_exact(
    const Fd& fd, std::size_t n, std::uint32_t idle_timeout_ms = 0);

}  // namespace datanet::server
