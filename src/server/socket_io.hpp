#pragma once
// Minimal blocking POSIX socket plumbing shared by the datanetd listener and
// the client library: an owning fd wrapper plus exact-length framed reads and
// writes over loopback TCP. Deliberately tiny — no readiness loop, no
// non-blocking mode; datanetd's concurrency comes from its handler threads,
// not from multiplexed IO.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace datanet::server {

class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Owning file descriptor (move-only).
class Fd {
 public:
  Fd() noexcept = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

// Listener bound to 127.0.0.1:`port` (0 = ephemeral); returns the fd and the
// actual port. Throws SocketError.
[[nodiscard]] std::pair<Fd, std::uint16_t> listen_loopback(std::uint16_t port,
                                                           int backlog = 64);

// Blocking accept; nullopt when the listener was shut down/closed.
[[nodiscard]] std::optional<Fd> accept_client(const Fd& listener);

// Blocking connect to 127.0.0.1:`port`. Throws SocketError.
[[nodiscard]] Fd connect_loopback(std::uint16_t port);

// Write all of `data` (retrying short writes / EINTR). Throws SocketError.
void write_all(const Fd& fd, std::string_view data);

// Read exactly `n` bytes into a string. Returns nullopt on clean EOF at a
// message boundary (0 bytes read); throws SocketError on mid-message EOF or
// socket errors.
[[nodiscard]] std::optional<std::string> read_exact(const Fd& fd,
                                                    std::size_t n);

}  // namespace datanet::server
