#include "server/resilient_client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

namespace datanet::server {

namespace {

// splitmix64 step: one multiply-xorshift round per draw. Tiny, seedable,
// and stateless beyond the counter — the whole jitter stream is a pure
// function of the policy seed.
std::uint64_t next_jitter(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

std::uint32_t backoff_ms(const RetryPolicy& policy, std::uint32_t retry,
                         std::uint64_t jitter_bits) {
  // Shift with saturation: past 32 doublings everything is the cap.
  std::uint64_t exp = policy.base_backoff_ms;
  exp = retry >= 32 ? UINT64_MAX : exp << retry;
  const auto cap = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(policy.max_backoff_ms, exp));
  const std::uint32_t half = cap / 2;
  return half + static_cast<std::uint32_t>(jitter_bits % (half + 1));
}

ResilientClient::ResilientClient(std::uint16_t port, RetryPolicy policy)
    : port_(port), policy_(policy), jitter_state_(policy.seed) {}

Client& ResilientClient::connected() {
  if (client_ == nullptr) {
    client_ = std::make_unique<Client>(port_, policy_.timeout_ms);
    if (ever_connected_) ++stats_.reconnects;
    ever_connected_ = true;
  }
  return *client_;
}

void ResilientClient::sleep_before_retry(std::uint32_t retry) {
  const std::uint32_t ms =
      backoff_ms(policy_, retry, next_jitter(jitter_state_));
  if (ms != 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

ClientResult ResilientClient::query(const QueryRequest& request) {
  std::string last_error = "no attempts made";
  const std::uint32_t attempts = std::max(1u, policy_.max_attempts);
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt != 0) sleep_before_retry(attempt - 1);
    ++stats_.attempts;
    try {
      return connected().query(request);
    } catch (const SocketTimeoutError& e) {
      ++stats_.timeouts;
      last_error = e.what();
    } catch (const SocketError& e) {
      last_error = e.what();
    } catch (const ProtocolError& e) {
      // Corrupt/hostile reply bytes: the stream is unsynchronized, so the
      // connection is unusable even if the TCP session survives.
      ++stats_.protocol_errors;
      last_error = e.what();
    }
    client_.reset();  // retry on a FRESH connection
  }
  throw RetriesExhaustedError(attempts, last_error);
}

ServerStats ResilientClient::stats() {
  std::string last_error = "no attempts made";
  const std::uint32_t attempts = std::max(1u, policy_.max_attempts);
  for (std::uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt != 0) sleep_before_retry(attempt - 1);
    ++stats_.attempts;
    try {
      return connected().stats();
    } catch (const SocketTimeoutError& e) {
      ++stats_.timeouts;
      last_error = e.what();
    } catch (const SocketError& e) {
      last_error = e.what();
    } catch (const ProtocolError& e) {
      ++stats_.protocol_errors;
      last_error = e.what();
    }
    client_.reset();
  }
  throw RetriesExhaustedError(attempts, last_error);
}

}  // namespace datanet::server
