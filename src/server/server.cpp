#include "server/server.hpp"

#include <algorithm>
#include <chrono>
#include <sys/socket.h>

#include "common/hash.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/flow_sched.hpp"
#include "scheduler/locality.hpp"
#include "scheduler/lpt.hpp"

namespace datanet::server {

namespace {

std::uint64_t now_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

dfs::MetaPlane make_plane(const ServerOptions& opts) {
  opts.cfg.validate();
  dfs::MetaPlaneOptions popt;
  popt.num_shards = std::max(1u, opts.meta_shards);
  popt.dfs = core::make_dfs_options(opts.cfg);
  return {dfs::ClusterTopology::flat(opts.cfg.num_nodes), popt};
}

}  // namespace

std::uint64_t selection_digest(const core::SelectionResult& r) {
  // Chain, not XOR: node identity and order are part of the result (the
  // same bytes landing on a different node is a different selection).
  std::uint64_t h = common::hash_bytes("datanetd-selection");
  for (const std::string& node_data : r.node_local_data) {
    h = common::hash_combine(h, common::hash_bytes(node_data));
  }
  return h;
}

std::unique_ptr<scheduler::TaskScheduler> make_scheduler(
    const std::string& name, std::uint64_t seed) {
  if (name == "datanet") return std::make_unique<scheduler::DataNetScheduler>();
  if (name == "locality") {
    return std::make_unique<scheduler::LocalityScheduler>(seed);
  }
  if (name == "lpt") return std::make_unique<scheduler::LptScheduler>();
  if (name == "maxflow") return std::make_unique<scheduler::FlowScheduler>();
  return nullptr;
}

QueryOutcome execute_query(const dfs::MiniDfs& dfs, const std::string& path,
                           const core::DataNet* net,
                           const QueryRequest& request,
                           const core::ExperimentConfig& cfg) {
  QueryOutcome out;
  const auto sched = make_scheduler(request.scheduler, cfg.seed);
  if (sched == nullptr) {
    out.error = "unknown scheduler '" + request.scheduler + "'";
    return out;
  }
  try {
    core::DirectReadPolicy read(dfs, cfg.remote_read_penalty);
    core::NoFaults faults;
    core::CostOnlyBackend timing;
    const core::SelectionRuntime runtime(read, faults, timing);
    // Serving config: one engine thread per query — parallelism comes from
    // the worker pool, not from each query fanning out.
    core::ExperimentConfig qcfg = cfg;
    qcfg.execution_threads = 1;
    const std::uint64_t t0 = now_micros();
    const core::SelectionResult result =
        runtime.run(dfs, path, request.key, *sched, net, qcfg);
    out.reply.service_micros = now_micros() - t0;
    out.reply.digest = selection_digest(result);
    out.reply.blocks_scanned = result.blocks_scanned;
    for (const std::uint64_t b : result.node_filtered_bytes) {
      out.reply.matched_bytes += b;
    }
    out.ok = true;
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

QueryOutcome local_query(const ServerOptions& opts,
                         const QueryRequest& request) {
  const core::StoredDataset ds =
      core::make_movie_dataset(opts.cfg, opts.dataset_blocks);
  const core::DataNet net(*ds.dfs, ds.path);
  return execute_query(*ds.dfs, ds.path,
                       request.use_datanet_meta ? &net : nullptr, request,
                       opts.cfg);
}

Server::Server(ServerOptions opts)
    : opts_(opts),
      plane_(make_plane(opts_)),
      dispatcher_(opts_.default_limits, opts_.breaker) {
  dataset_.path = "/data/movies.log";
  // Same generation as make_movie_dataset and same per-shard DfsOptions, so
  // the served dataset's placement is byte-identical to a `--local` build
  // at any shard count (the digest contract).
  auto ingested = core::ingest_movie_dataset(plane_.dfs_for(dataset_.path),
                                             dataset_.path, opts_.cfg,
                                             opts_.dataset_blocks);
  dataset_.hot_keys = std::move(ingested.hot_keys);
  auto [fd, port] = listen_loopback(opts_.port);
  listener_ = std::move(fd);
  port_ = port;
}

Server::~Server() { stop(); }

void Server::start() {
  if (started_.exchange(true)) return;
  for (std::uint32_t i = 0; i < std::max(1u, opts_.workers); ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::request_stop() {
  {
    std::lock_guard lock(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
}

void Server::wait() {
  std::unique_lock lock(stop_mu_);
  stop_cv_.wait(lock, [this] { return stop_requested_; });
}

void Server::stop() {
  request_stop();
  std::lock_guard teardown(teardown_mu_);
  if (torn_down_) return;
  torn_down_ = true;

  // 1. No new connections; the accept loop exits on the shutdown listener.
  if (listener_.valid()) ::shutdown(listener_.get(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. No new admissions; workers drain every accepted job, publish its
  //    outcome, then exit.
  dispatcher_.stop();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();

  // 3. Wait until every accepted query's reply has been written (handlers
  //    consume outcomes and answer on still-open sockets) — the drain
  //    guarantee — then unblock handlers idling in recv() by shutting
  //    their sockets, and join them all.
  {
    std::unique_lock lock(pending_mu_);
    pending_cv_.wait(lock, [this] { return awaiting_replies_ == 0; });
  }
  std::vector<Handler> handlers;
  {
    std::lock_guard lock(handlers_mu_);
    handlers.swap(handlers_);
  }
  for (Handler& h : handlers) {
    if (h.socket->valid()) ::shutdown(h.socket->get(), SHUT_RDWR);
  }
  for (Handler& h : handlers) {
    if (h.thread.joinable()) h.thread.join();
  }
  listener_.reset();
}

void Server::reap_finished_handlers() {
  std::lock_guard lock(handlers_mu_);
  std::erase_if(handlers_, [](Handler& h) {
    if (!h.finished->load(std::memory_order_acquire)) return false;
    if (h.thread.joinable()) h.thread.join();
    return true;
  });
}

void Server::accept_loop() {
  for (;;) {
    auto client = accept_client(listener_);
    if (!client.has_value()) return;  // listener shut down
    reap_finished_handlers();
    if (live_handlers_.load(std::memory_order_relaxed) >=
        opts_.max_connections) {
      // Connection-level backpressure: refuse before spawning a handler.
      try {
        write_all(*client,
                  frame(encode_rejected({RejectReason::kShuttingDown,
                                         "connection limit reached"})));
      } catch (const SocketError&) {
      }
      continue;
    }
    Handler h;
    h.socket = std::make_shared<Fd>(std::move(*client));
    h.finished = std::make_shared<std::atomic<bool>>(false);
    live_handlers_.fetch_add(1, std::memory_order_relaxed);
    h.thread = std::thread(
        [this, socket = h.socket, finished = h.finished] {
          handle_connection(socket);
          // The Handler entry keeps the Fd alive until it is reaped; send
          // the FIN now so the peer sees EOF as soon as the exchange ends
          // (shutdown, not close — stop() may also shut this fd down, and
          // shutdown never races with fd reuse).
          if (socket->valid()) ::shutdown(socket->get(), SHUT_RDWR);
          finished->store(true, std::memory_order_release);
          live_handlers_.fetch_sub(1, std::memory_order_relaxed);
        });
    std::lock_guard lock(handlers_mu_);
    handlers_.push_back(std::move(h));
  }
}

void Server::handle_connection(const std::shared_ptr<Fd>& socket) {
  const Fd& fd = *socket;
  const std::uint32_t io_ms = opts_.io_timeout_ms;
  // One request-response at a time per connection; a protocol error is
  // answered (best effort) and the connection dropped. A peer that stalls
  // MID-frame — the slowloris shape: first header byte arrives, the rest
  // never does — trips SocketTimeoutError (a SocketError) after io_ms and
  // the handler drops the connection instead of wedging forever. Only the
  // wait for a NEW message (first byte of a header) is unbounded.
  try {
    for (;;) {
      const auto first = read_exact(fd, 1);
      if (!first.has_value()) return;  // clean EOF between messages
      const auto rest = read_exact(fd, kFrameHeaderBytes - 1, io_ms);
      if (!rest.has_value()) return;  // EOF inside the header: peer gone
      const FrameHeader header = decode_frame_header(*first + *rest);
      const auto payload = read_exact(fd, header.payload_len, io_ms);
      if (!payload.has_value()) return;
      check_frame_payload(header, *payload);

      const MsgType type = peek_type(*payload);
      if (type == MsgType::kShutdown) {
        write_all(fd, frame(encode_shutdown_ok()), io_ms);
        // Wake wait(); the owning thread (cmd_serve, a test) performs the
        // actual teardown — stop() joins this very handler, so the handler
        // cannot run it itself.
        request_stop();
        return;
      }
      if (type == MsgType::kStats) {
        write_all(fd, frame(encode_stats_ok(snapshot_stats())), io_ms);
        continue;
      }
      if (type != MsgType::kQuery) {
        write_all(fd, frame(encode_rejected(
                          {RejectReason::kBadRequest,
                           "only query/stats/shutdown messages are accepted"})), io_ms);
        continue;
      }

      QueryRequest request;
      try {
        request = decode_query(*payload);
      } catch (const ProtocolError& e) {
        write_all(fd, frame(encode_rejected({RejectReason::kBadRequest, e.what()})), io_ms);
        continue;
      }
      if (request.key.empty() || request.tenant.empty()) {
        write_all(fd, frame(encode_rejected({RejectReason::kBadRequest,
                                             "tenant and key are required"})), io_ms);
        continue;
      }
      if (make_scheduler(request.scheduler, opts_.cfg.seed) == nullptr) {
        write_all(fd, frame(encode_rejected(
                          {RejectReason::kBadRequest,
                           "unknown scheduler '" + request.scheduler + "'"})), io_ms);
        continue;
      }

      const std::uint64_t submitted_at = now_micros();
      std::uint64_t ticket = 0;
      SubmitStatus status = SubmitStatus::kStopped;
      {
        // Count the pending reply BEFORE submitting: once the dispatcher
        // has the job, stop() must not shut this socket until the reply is
        // out (the drain guarantee in stop() step 3).
        std::lock_guard lock(pending_mu_);
        status = dispatcher_.submit(request.tenant, request, &ticket);
        if (status == SubmitStatus::kAccepted) ++awaiting_replies_;
      }
      switch (status) {
        case SubmitStatus::kQueueFull:
          write_all(fd, frame(encode_rejected({RejectReason::kQueueFull,
                                               "tenant queue is full"})), io_ms);
          continue;
        case SubmitStatus::kTooManyInflight:
          write_all(fd, frame(encode_rejected({RejectReason::kTooManyInflight,
                                           "tenant in-flight cap reached"})), io_ms);
          continue;
        case SubmitStatus::kCircuitOpen:
          write_all(fd, frame(encode_rejected(
                            {RejectReason::kCircuitOpen,
                             "tenant circuit breaker is open"})), io_ms);
          continue;
        case SubmitStatus::kStopped:
          write_all(fd, frame(encode_rejected({RejectReason::kShuttingDown,
                                               "server is draining"})), io_ms);
          continue;
        case SubmitStatus::kAccepted:
          break;
      }

      // Wait for a worker to publish this ticket's outcome, answer, and
      // only then release the drain count — even when the write fails.
      QueryOutcome outcome;
      {
        std::unique_lock lock(pending_mu_);
        pending_cv_.wait(lock, [&] { return finished_.contains(ticket); });
        outcome = std::move(finished_.at(ticket));
        finished_.erase(ticket);
      }
      try {
        if (outcome.ok) {
          const std::uint64_t total = now_micros() - submitted_at;
          outcome.reply.queue_micros =
              total > outcome.reply.service_micros
                  ? total - outcome.reply.service_micros
                  : 0;
          write_all(fd, frame(encode_query_ok(outcome.reply)), io_ms);
          queries_served_.fetch_add(1, std::memory_order_relaxed);
        } else if (outcome.rejected) {
          // Worker-side shed (deadline exceeded / shard unavailable): typed,
          // so a retrying client can tell "don't bother" from "try again".
          write_all(fd, frame(encode_rejected(outcome.rejection)), io_ms);
        } else {
          write_all(fd, frame(encode_error(outcome.error)), io_ms);
        }
      } catch (...) {
        std::lock_guard lock(pending_mu_);
        --awaiting_replies_;
        pending_cv_.notify_all();
        throw;
      }
      {
        std::lock_guard lock(pending_mu_);
        --awaiting_replies_;
      }
      pending_cv_.notify_all();
    }
  } catch (const ProtocolError& e) {
    try {
      write_all(fd, frame(encode_rejected({RejectReason::kBadRequest,
                                           e.what()})), io_ms);
    } catch (const SocketError&) {
    }
  } catch (const SocketError&) {
    // Peer went away; nothing to answer.
  }
}

ServerStats Server::snapshot_stats() const {
  ServerStats s;
  s.queries_served = queries_served_.load(std::memory_order_relaxed);
  const DatasetCache::Stats cs = cache_.stats();
  s.cache_hits = cs.hits;
  s.cache_revalidations = cs.revalidations;
  s.cache_rebuilds = cs.rebuilds;
  s.cache_delta_applies = cs.delta_applies;
  s.meta_shards = plane_.num_shards();
  s.degraded_served = degraded_served_.load(std::memory_order_relaxed);
  s.deadline_shed = deadline_shed_.load(std::memory_order_relaxed);
  for (const std::string& name : dispatcher_.tenants()) {
    const TenantStats ts = dispatcher_.tenant_stats(name);
    s.circuit_rejected += ts.rejected_circuit;
    s.tenants.push_back({.tenant = name,
                         .submitted = ts.submitted,
                         .accepted = ts.accepted,
                         .rejected_queue_full = ts.rejected_queue_full,
                         .rejected_inflight = ts.rejected_inflight,
                         .dispatched = ts.dispatched,
                         .completed = ts.completed,
                         .queue_wait_micros = ts.queue_wait_micros});
  }
  return s;
}

QueryOutcome Server::run_job(const DispatchJob& job) {
  QueryOutcome outcome;
  // Deadline budget is measured from ADMISSION, not dispatch: a job that sat
  // in the tenant queue past its budget is stale — the client gave up — so
  // doing the work now only starves live queries. Shed it typed instead.
  if (job.request.deadline_ms != 0) {
    const std::uint64_t budget_micros =
        static_cast<std::uint64_t>(job.request.deadline_ms) * 1000;
    if (now_micros() - job.submitted_micros > budget_micros) {
      deadline_shed_.fetch_add(1, std::memory_order_relaxed);
      outcome.rejected = true;
      outcome.rejection = {RejectReason::kDeadlineExceeded,
                           "deadline of " +
                               std::to_string(job.request.deadline_ms) +
                               "ms exceeded while queued"};
      return outcome;
    }
  }
  try {
    const dfs::MiniDfs& shard = plane_.dfs_for(dataset_.path);
    const core::DataNet* net = nullptr;
    std::shared_ptr<const core::DataNet> cached;
    if (job.request.use_datanet_meta) {
      cached = cache_.get(plane_, dataset_.path);
      net = cached.get();
    }
    return execute_query(shard, dataset_.path, net, job.request, opts_.cfg);
  } catch (const dfs::ShardUnavailableError&) {
    // The owning metadata shard is down mid-lease ("NameNode down"). The
    // block BYTES survive a NameNode crash, so answer read-only from the
    // shard's in-memory snapshot plus the last epoch-validated bundle —
    // marked degraded so the client knows the metadata was not revalidated.
  } catch (const std::exception& e) {
    outcome.error = e.what();
    return outcome;
  }
  try {
    std::shared_ptr<const core::DataNet> stale;
    std::uint64_t staleness_micros = 0;
    if (job.request.use_datanet_meta) {
      auto bundle = cache_.get_stale(dataset_.path);
      stale = bundle.net;
      staleness_micros = bundle.age_micros;
      if (stale == nullptr) {
        // Cold cache: nothing trustworthy to serve from. Typed, not an
        // error — the client may retry after recover_shard.
        outcome.rejected = true;
        outcome.rejection = {RejectReason::kShardUnavailable,
                             "metadata shard is down and no cached bundle "
                             "exists for degraded serving"};
        return outcome;
      }
    }
    const auto snapshot =
        plane_.dfs_snapshot(plane_.shard_of(dataset_.path));
    outcome = execute_query(*snapshot, dataset_.path, stale.get(),
                            job.request, opts_.cfg);
    if (outcome.ok) {
      outcome.reply.degraded = true;
      // How long since the bundle was last known fresh: the client can
      // decide whether an aged answer is still acceptable (PR 9 leftover —
      // degraded mode used to trust the cached bundle silently).
      outcome.reply.staleness_micros = staleness_micros;
      degraded_served_.fetch_add(1, std::memory_order_relaxed);
    }
    return outcome;
  } catch (const std::exception& e) {
    outcome.ok = false;
    outcome.rejected = false;
    outcome.error = e.what();
    return outcome;
  }
}

void Server::worker_loop() {
  for (;;) {
    auto job = dispatcher_.next();
    if (!job.has_value()) return;  // stopped and drained
    QueryOutcome outcome = run_job(*job);
    // Breaker accounting: an answered query (ok, degraded included) is a
    // success; an execution error or shard-unavailable shed is a failure.
    // Deadline sheds are neutral — the CLIENT's budget expired, the server
    // did not fail — so they neither trip nor heal the breaker.
    const bool deadline =
        outcome.rejected &&
        outcome.rejection.reason == RejectReason::kDeadlineExceeded;
    if (!deadline) dispatcher_.record_outcome(job->tenant, outcome.ok);
    dispatcher_.complete(job->tenant);
    {
      std::lock_guard lock(pending_mu_);
      finished_.emplace(job->ticket, std::move(outcome));
    }
    pending_cv_.notify_all();
  }
}

}  // namespace datanet::server
