#pragma once
// ResilientClient — a retrying wrapper around the blocking Client for
// surviving a chaotic wire. datanetd queries are idempotent reads (the reply
// digest is a pure function of the hosted dataset and the request), so a
// transport failure — connection refused, reset, mid-frame truncation, idle
// timeout, corrupt reply frame — is safely retried on a FRESH connection
// with seeded-deterministic bounded exponential backoff plus jitter.
//
// What retries and what does not:
//   - SocketError (incl. SocketTimeoutError) and ProtocolError: transport is
//     suspect; drop the connection, back off, reconnect, retry.
//   - A decoded typed result (kOk — degraded or not — kRejected, kError):
//     the server ANSWERED; the loop ends and the result is returned as-is.
//     Retrying rejections is the caller's policy decision, not transport's.
// When every attempt fails, throws RetriesExhaustedError carrying the
// attempt count and the last transport error — the "never hang, never lie"
// end state the chaos drill asserts on.
//
// Determinism: jitter comes from an mt19937_64 seeded from the policy, so a
// given (policy, failure sequence) produces one backoff schedule — chaos
// tests replay exactly.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "server/client.hpp"

namespace datanet::server {

struct RetryPolicy {
  std::uint32_t max_attempts = 3;     // total tries, not retries-after-first
  std::uint32_t base_backoff_ms = 5;  // backoff before retry k: ~base*2^k
  std::uint32_t max_backoff_ms = 200;
  std::uint64_t seed = 0;             // jitter stream seed
  std::uint32_t timeout_ms = 2'000;   // per-attempt socket idle timeout
};

// Every attempt (including connects) failed at the transport layer.
class RetriesExhaustedError : public std::runtime_error {
 public:
  RetriesExhaustedError(std::uint32_t attempts_made, const std::string& last)
      : std::runtime_error("datanetd client: " +
                           std::to_string(attempts_made) +
                           " attempt(s) exhausted; last error: " + last),
        attempts(attempts_made),
        last_error(last) {}
  std::uint32_t attempts;
  std::string last_error;
};

// Pure backoff schedule: equal-jitter bounded exponential. For retry index k
// (0 = first retry), cap = min(max_backoff_ms, base_backoff_ms << k); the
// wait is cap/2 + (jitter_bits % (cap/2 + 1)) — always within (cap/2, cap].
// Free function so tests can pin the schedule without sleeping.
[[nodiscard]] std::uint32_t backoff_ms(const RetryPolicy& policy,
                                       std::uint32_t retry,
                                       std::uint64_t jitter_bits);

class ResilientClient {
 public:
  struct Stats {
    std::uint64_t attempts = 0;         // transport attempts made
    std::uint64_t reconnects = 0;       // fresh connections after a failure
    std::uint64_t timeouts = 0;         // attempts ended by SocketTimeoutError
    std::uint64_t protocol_errors = 0;  // attempts ended by ProtocolError
  };

  // Lazy-connecting: the first query/stats call dials. `port` is whatever
  // the client should talk to — the server itself, or a ChaosProxy in front
  // of it.
  explicit ResilientClient(std::uint16_t port, RetryPolicy policy = {});

  // Round-trip one idempotent query under the retry policy. Returns the
  // first typed result; throws RetriesExhaustedError when the transport
  // never yields one.
  [[nodiscard]] ClientResult query(const QueryRequest& request);
  [[nodiscard]] ServerStats stats();
  // Deliberately single-attempt: shutdown is not idempotent-observable — a
  // lost ACK after the server began draining would make every retry fail to
  // connect and misreport a successful shutdown as an error.
  void shutdown_server() { connected().shutdown_server(); }

  [[nodiscard]] const Stats& retry_stats() const noexcept { return stats_; }

 private:
  // Ensure a live connection exists (dial if needed; counts reconnects
  // after the first).
  Client& connected();
  void sleep_before_retry(std::uint32_t retry);

  std::uint16_t port_;
  RetryPolicy policy_;
  std::unique_ptr<Client> client_;
  bool ever_connected_ = false;
  std::uint64_t jitter_state_;
  Stats stats_;
};

}  // namespace datanet::server
