#pragma once
// datanetd wire protocol: length-prefixed CRC32-checked frames carrying one
// message each, built on the same dfs::wire little-endian primitives as the
// EditLog / FsImage persistence plane. A frame is
//
//   [u32 magic "DNQ1"][u32 payload_len][u32 crc32(payload)][payload]
//
// and a payload is one tag byte (MsgType) followed by the message fields.
// Both sides validate magic, bound the length, and verify the CRC before
// touching the payload, so a torn or corrupted stream surfaces as a typed
// ProtocolError instead of a malformed parse or an attacker-sized
// allocation — the same discipline as dfs::wire::Cursor.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace datanet::server {

class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

constexpr std::uint32_t kFrameMagic = 0x31514e44u;  // "DNQ1" little-endian
constexpr std::size_t kFrameHeaderBytes = 12;
// Queries and replies are small; anything bigger than this is a corrupt
// length field, not a legitimate message.
constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;

// Message-layer version. v2 (PR 9) appends a deadline budget to kQuery and a
// degraded flag to kQueryOk. v3 (PR 10) appends a staleness age to kQueryOk
// and a delta-apply counter to kStatsOk. The frame magic is unchanged;
// decoders accept older payloads (appended fields default off), so an old
// client can talk to a new server and vice versa — the back-compat contract
// the round-trip tests pin.
constexpr std::uint32_t kWireVersion = 3;

enum class MsgType : std::uint8_t {
  kQuery = 1,       // client -> server: run one selection
  kQueryOk = 2,     // server -> client: selection digest + counters
  kRejected = 3,    // server -> client: typed admission/parse rejection
  kError = 4,       // server -> client: internal failure executing the query
  kShutdown = 5,    // client -> server: drain and exit
  kShutdownOk = 6,  // server -> client: shutdown acknowledged
  kStats = 7,       // client -> server: per-tenant metering snapshot
  kStatsOk = 8,     // server -> client: the snapshot
};

enum class RejectReason : std::uint8_t {
  kBadRequest = 1,        // unparseable / unknown scheduler / empty key
  kQueueFull = 2,         // tenant's bounded queue is at capacity
  kTooManyInflight = 3,   // queueless tenant already at its in-flight cap
  kShuttingDown = 4,      // server is draining
  kDeadlineExceeded = 5,  // queued past the query's deadline budget; shed
  kCircuitOpen = 6,       // tenant's failure circuit breaker is open
  kShardUnavailable = 7,  // owning metadata shard down, no cached bundle
};

[[nodiscard]] std::string_view reject_reason_name(RejectReason r);

// One sub-dataset selection request, the wire-shaped subset of
// core::ExperimentConfig the server lets a tenant choose per query.
struct QueryRequest {
  std::string tenant;            // admission-control identity
  std::string key;               // sub-dataset key to select
  std::string scheduler = "datanet";  // datanet | locality | lpt | maxflow
  bool use_datanet_meta = true;  // false = content-blind baseline graph
  // Deadline budget in milliseconds, measured from admission (v2; 0 = no
  // deadline). A worker picking the job up after the budget elapsed sheds it
  // with a typed kDeadlineExceeded rejection instead of doing stale work.
  std::uint32_t deadline_ms = 0;
};

struct QueryReply {
  std::uint64_t digest = 0;         // selection_digest over node-local data
  std::uint64_t matched_bytes = 0;  // total filtered bytes
  std::uint64_t blocks_scanned = 0;
  std::uint64_t service_micros = 0;  // execution time, excluding queue wait
  std::uint64_t queue_micros = 0;    // admission -> dispatch wait
  // v2: true when the reply was computed in degraded mode — the owning
  // metadata shard was down and the server answered from its epoch-cached
  // bundle (last validated DataNet + last-known block placement).
  bool degraded = false;
  // v3: how long ago the bundle that answered a DEGRADED reply was last
  // known fresh (validated against the live namespace), in microseconds.
  // Zero on non-degraded replies: those were validated on this query.
  std::uint64_t staleness_micros = 0;
};

struct Rejection {
  RejectReason reason = RejectReason::kBadRequest;
  std::string detail;
};

// Per-tenant metering row in a stats snapshot — the wire shape of the
// dispatcher's TenantStats (kept field-flat here so the protocol stays free
// of dispatcher knowledge).
struct TenantMeter {
  std::string tenant;
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_inflight = 0;
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  std::uint64_t queue_wait_micros = 0;  // total admission -> dispatch wait
};

// Server-wide snapshot answered to a kStats request.
struct ServerStats {
  std::uint64_t queries_served = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_revalidations = 0;
  std::uint64_t cache_rebuilds = 0;
  // Resilience counters (v2): queries answered from the epoch-cached bundle
  // while the owning shard was down, queries shed past their deadline, and
  // submissions rejected by an open per-tenant circuit breaker.
  std::uint64_t degraded_served = 0;
  std::uint64_t deadline_shed = 0;
  std::uint64_t circuit_rejected = 0;
  std::uint32_t meta_shards = 1;  // metadata plane shard count
  std::vector<TenantMeter> tenants;  // dispatcher registration order
  // v3: dataset-cache growth absorbed by delta-apply (incremental ElasticMap
  // extension) instead of a full rebuild.
  std::uint64_t cache_delta_applies = 0;
};

// ---- frame layer ----

// Wrap a payload into a single framed buffer ready to write to the socket.
[[nodiscard]] std::string frame(std::string_view payload);

struct FrameHeader {
  std::uint32_t payload_len = 0;
  std::uint32_t crc = 0;
};

// Parse + validate the fixed 12-byte header (magic, bounded length).
[[nodiscard]] FrameHeader decode_frame_header(std::string_view header);

// Verify a received payload against its header CRC.
void check_frame_payload(const FrameHeader& header, std::string_view payload);

// ---- message layer ----

[[nodiscard]] std::string encode_query(const QueryRequest& q);
[[nodiscard]] std::string encode_query_ok(const QueryReply& r);
[[nodiscard]] std::string encode_rejected(const Rejection& r);
[[nodiscard]] std::string encode_error(std::string_view what);
[[nodiscard]] std::string encode_shutdown();
[[nodiscard]] std::string encode_shutdown_ok();
[[nodiscard]] std::string encode_stats();
[[nodiscard]] std::string encode_stats_ok(const ServerStats& s);

// First byte of a validated payload; throws ProtocolError on empty payloads
// or tags outside the MsgType range.
[[nodiscard]] MsgType peek_type(std::string_view payload);

// Each decoder checks the tag and consumes the whole payload (trailing bytes
// are a protocol error, same as FsImage::load).
[[nodiscard]] QueryRequest decode_query(std::string_view payload);
[[nodiscard]] QueryReply decode_query_ok(std::string_view payload);
[[nodiscard]] Rejection decode_rejected(std::string_view payload);
[[nodiscard]] std::string decode_error(std::string_view payload);
[[nodiscard]] ServerStats decode_stats_ok(std::string_view payload);

}  // namespace datanet::server
