#include "server/client.hpp"

namespace datanet::server {

Client::Client(std::uint16_t port, std::uint32_t io_timeout_ms)
    : fd_(connect_loopback(port)), io_timeout_ms_(io_timeout_ms) {}

std::string Client::round_trip(const std::string& payload) {
  write_all(fd_, frame(payload), io_timeout_ms_);
  // decode_frame_header is the hostile-server guard: it rejects a bad magic
  // and a length beyond kMaxPayloadBytes with a typed ProtocolError, so a
  // malicious or corrupt header can neither make the client allocate
  // unbounded memory nor block reading gigabytes that never come.
  const auto header_bytes = read_exact(fd_, kFrameHeaderBytes, io_timeout_ms_);
  if (!header_bytes.has_value()) {
    throw SocketError("datanetd client: connection closed before reply");
  }
  const FrameHeader header = decode_frame_header(*header_bytes);
  const auto reply = read_exact(fd_, header.payload_len, io_timeout_ms_);
  if (!reply.has_value()) {
    throw SocketError("datanetd client: connection closed mid-reply");
  }
  check_frame_payload(header, *reply);
  return *reply;
}

ClientResult Client::query(const QueryRequest& request) {
  const std::string payload = round_trip(encode_query(request));
  ClientResult result;
  switch (peek_type(payload)) {
    case MsgType::kQueryOk:
      result.status = ClientResult::Status::kOk;
      result.reply = decode_query_ok(payload);
      return result;
    case MsgType::kRejected:
      result.status = ClientResult::Status::kRejected;
      result.rejection = decode_rejected(payload);
      return result;
    case MsgType::kError:
      result.status = ClientResult::Status::kError;
      result.error = decode_error(payload);
      return result;
    default:
      throw ProtocolError("datanetd client: unexpected reply type");
  }
}

ServerStats Client::stats() {
  const std::string payload = round_trip(encode_stats());
  return decode_stats_ok(payload);
}

void Client::shutdown_server() {
  const std::string payload = round_trip(encode_shutdown());
  if (peek_type(payload) != MsgType::kShutdownOk) {
    throw ProtocolError("datanetd client: shutdown not acknowledged");
  }
}

}  // namespace datanet::server
