#include "server/socket_io.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace datanet::server {

namespace {

[[noreturn]] void fail(const char* what) {
  throw SocketError(std::string("datanetd socket: ") + what + ": " +
                    std::strerror(errno));
}

// Park in poll() until `events` is ready (or error/hangup, which the
// following recv/send surfaces properly). timeout_ms == 0 waits forever.
// Throws SocketTimeoutError when the deadline passes with no readiness.
void wait_ready(const Fd& fd, short events, std::uint32_t timeout_ms,
                const char* what) {
  pollfd p{.fd = fd.get(), .events = events, .revents = 0};
  for (;;) {
    const int rc = ::poll(&p, 1, timeout_ms == 0 ? -1
                                                 : static_cast<int>(timeout_ms));
    if (rc > 0) return;
    if (rc == 0) {
      throw SocketTimeoutError(std::string("datanetd socket: ") + what +
                               ": idle timeout after " +
                               std::to_string(timeout_ms) + "ms");
    }
    if (errno == EINTR) continue;
    fail(what);
  }
}

}  // namespace

Fd& Fd::operator=(Fd&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<Fd, std::uint16_t> listen_loopback(std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  const int one = 1;
  (void)::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    fail("bind");
  }
  if (::listen(fd.get(), backlog) != 0) fail("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    fail("getsockname");
  }
  return {std::move(fd), ntohs(addr.sin_port)};
}

std::optional<Fd> accept_client(const Fd& listener) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) {
      // Query/reply is strictly request-response; Nagle only adds latency.
      const int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Fd(fd);
    }
    if (errno == EINTR) continue;
    // The listener was closed/shut down by stop(); treat every other error
    // the same way — the accept loop has nothing better to do than exit.
    return std::nullopt;
  }
}

Fd connect_loopback(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    // POSIX leaves re-calling connect() after EINTR unspecified (it may
    // report EALREADY/EISCONN for a connect that actually succeeded). The
    // specified recovery is: wait for writability, then read SO_ERROR for
    // the real outcome.
    if (errno != EINTR) fail("connect");
    wait_ready(fd, POLLOUT, 0, "connect");
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      fail("connect (SO_ERROR)");
    }
    if (err != 0) {
      errno = err;
      fail("connect");
    }
  }
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void write_all(const Fd& fd, std::string_view data,
               std::uint32_t idle_timeout_ms) {
  std::size_t off = 0;
  while (off < data.size()) {
    if (idle_timeout_ms != 0) {
      wait_ready(fd, POLLOUT, idle_timeout_ms, "send");
    }
    const ssize_t n =
        ::send(fd.get(), data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("send");
    }
    off += static_cast<std::size_t>(n);
  }
}

std::optional<std::string> read_exact(const Fd& fd, std::size_t n,
                                      std::uint32_t idle_timeout_ms) {
  std::string out(n, '\0');
  std::size_t off = 0;
  while (off < n) {
    if (idle_timeout_ms != 0) {
      wait_ready(fd, POLLIN, idle_timeout_ms, "recv");
    }
    const ssize_t got = ::recv(fd.get(), out.data() + off, n - off, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      fail("recv");
    }
    if (got == 0) {
      if (off == 0) return std::nullopt;  // clean EOF between messages
      throw SocketError("datanetd socket: EOF mid-message");
    }
    off += static_cast<std::size_t>(got);
  }
  return out;
}

}  // namespace datanet::server
