#pragma once
// Multi-tenant admission control + deficit-round-robin fair dispatch for
// datanetd. Each tenant owns a bounded FIFO of pending selection jobs and a
// bounded in-flight count; submission is rejected with a TYPED reason the
// moment a bound would be exceeded (backpressure at the door, never an
// unbounded queue), and dispatch order between tenants is deficit round
// robin weighted by TenantLimits::weight — a flooding tenant can fill only
// its own queue, and a light tenant's occasional job is dispatched within
// one DRR rotation regardless of how deep the flooder's backlog is
// (tests/server_test.cpp pins the exact bound).
//
// The dispatcher is deliberately free of any socket or runtime knowledge:
// submit() is called from connection-handler threads, next()/try_next() from
// selection workers, and the whole policy is testable single-threaded —
// with one worker draining it, the dispatch order is a pure function of the
// submission sequence (determinism test).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "server/protocol.hpp"

namespace datanet::server {

struct TenantLimits {
  // Pending jobs the tenant may queue. 0 = queueless tenant: a job is
  // admitted only if an in-flight slot is free right now (rejections then
  // surface as kTooManyInflight instead of kQueueFull).
  std::size_t max_queue = 64;
  // Jobs of this tenant that may be executing concurrently.
  std::size_t max_inflight = 4;
  // DRR weight: dispatches per rotation relative to weight-1 tenants.
  std::uint32_t weight = 1;
};

// Per-tenant consecutive-failure circuit breaker (PR 9). A tenant whose
// queries keep failing at execution (worker-side errors or shard-unavailable
// sheds, NOT admission rejections) is load-shed at the door with a typed
// kCircuitOpen rejection instead of burning worker time on doomed work. The
// breaker is count-based, not clock-based, so its behaviour is a pure
// function of the outcome sequence (deterministic tests): it OPENS after
// `failure_threshold` consecutive failures, admits every `probe_interval`-th
// blocked submission as a half-open probe, and CLOSES on the first success.
struct BreakerPolicy {
  std::uint32_t failure_threshold = 0;  // 0 disables the breaker
  std::uint32_t probe_interval = 4;     // every Nth blocked submit probes
};

// One admitted unit of work. `ticket` is a process-unique admission sequence
// number (also the FIFO order within a tenant); the opaque payload is
// whatever the caller needs to complete the job (datanetd stores the parsed
// request + reply rendezvous outside the dispatcher, keyed by ticket).
struct DispatchJob {
  std::uint64_t ticket = 0;
  std::string tenant;
  QueryRequest request;
  // Host-clock stamp taken at admission; dispatch accumulates the delta
  // into the tenant's queue_wait_micros meter.
  std::uint64_t submitted_micros = 0;
};

enum class SubmitStatus : std::uint8_t {
  kAccepted = 0,
  kQueueFull = 1,       // tenant queue at max_queue
  kTooManyInflight = 2, // queueless tenant with all in-flight slots busy
  kStopped = 3,         // dispatcher is draining
  kCircuitOpen = 4,     // tenant's failure circuit breaker is open
};

struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t rejected_queue_full = 0;
  std::uint64_t rejected_inflight = 0;
  std::uint64_t rejected_circuit = 0;  // breaker-open load sheds
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;
  // Total admission->dispatch wait across this tenant's dispatched jobs
  // (host clock, micros) — the per-tenant metering the stats wire message
  // serves; divide by `dispatched` for the mean wait.
  std::uint64_t queue_wait_micros = 0;
};

class FairDispatcher {
 public:
  // Tenants not registered explicitly are created on first submit with
  // `default_limits`. The breaker policy applies to every tenant.
  explicit FairDispatcher(TenantLimits default_limits = {},
                          BreakerPolicy breaker = {})
      : default_limits_(default_limits), breaker_(breaker) {}

  // Pre-register a tenant with its own limits; no-op if already known
  // (limits are fixed at first sight, matching a config-file model).
  void register_tenant(const std::string& tenant, TenantLimits limits);

  // Admission: bound check + enqueue. O(log tenants).
  SubmitStatus submit(const std::string& tenant, QueryRequest request,
                      std::uint64_t* ticket_out = nullptr);

  // Non-blocking DRR dispatch: the next job whose tenant has a free
  // in-flight slot, or nullopt when nothing is eligible.
  std::optional<DispatchJob> try_next();

  // Blocking variant for worker threads: waits until a job is eligible or
  // stop() is called (then returns nullopt once the queues are empty).
  std::optional<DispatchJob> next();

  // Worker callback when a dispatched job finishes; frees the in-flight
  // slot, which may make the tenant's queued work eligible again.
  void complete(const std::string& tenant);

  // Worker callback with the job's EXECUTION outcome, feeding the circuit
  // breaker: `success` is any answered query (ok or degraded); failures are
  // execution errors and shard-unavailable sheds. Call after complete();
  // no-op for unknown tenants or when the breaker is disabled.
  void record_outcome(const std::string& tenant, bool success);
  [[nodiscard]] bool breaker_open(const std::string& tenant) const;

  // Stop admitting; next() drains remaining queued jobs then returns
  // nullopt. (Drain keeps the CI smoke deterministic: every accepted query
  // is answered even when shutdown races the last submissions.)
  void stop();

  [[nodiscard]] bool stopped() const;
  [[nodiscard]] std::size_t queued() const;       // across all tenants
  [[nodiscard]] std::size_t inflight() const;     // across all tenants
  [[nodiscard]] TenantStats tenant_stats(const std::string& tenant) const;
  [[nodiscard]] std::vector<std::string> tenants() const;

 private:
  struct Tenant {
    TenantLimits limits;
    std::deque<DispatchJob> queue;
    std::size_t inflight = 0;
    std::uint64_t deficit = 0;  // DRR credit, in units of kJobCost
    TenantStats stats;
    // Circuit-breaker state (see BreakerPolicy).
    std::uint32_t consecutive_failures = 0;
    bool breaker_open = false;
    std::uint64_t blocked_since_open = 0;  // counts toward the next probe
  };

  // Uniform job cost: DRR with per-visit quantum weight*kJobCost gives a
  // weight-w tenant w consecutive dispatches per rotation.
  static constexpr std::uint64_t kJobCost = 1;

  Tenant& tenant_locked(const std::string& name);
  [[nodiscard]] std::optional<DispatchJob> pick_locked();
  [[nodiscard]] bool eligible_locked(const Tenant& t) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  TenantLimits default_limits_;
  BreakerPolicy breaker_;
  std::map<std::string, Tenant> tenants_;
  // DRR rotation order = registration order; rr_ points at the tenant the
  // next pick starts from.
  std::vector<std::string> order_;
  std::size_t rr_ = 0;
  std::uint64_t next_ticket_ = 1;
  std::size_t queued_total_ = 0;
  std::size_t inflight_total_ = 0;
  bool stopped_ = false;
};

}  // namespace datanet::server
