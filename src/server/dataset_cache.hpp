#pragma once
// Process-wide cache of built DataNet metadata (ElasticMap array + MetaStore
// content) keyed by dataset path, with epoch-based invalidation against the
// live MiniDfs. Building an ElasticMap is a full scan of the file — the one
// cost the paper amortizes across queries (Section III-B; Table II) — so
// datanetd builds it once per dataset and every query on every connection
// shares the same immutable snapshot via shared_ptr.
//
// Invalidation uses MiniDfs::mutation_epoch(), the monotone counter bumped
// by every namespace mutation:
//   * epoch unchanged            -> pure hit, no locks beyond the cache map.
//   * epoch moved, same per-path block count -> replica churn (healing,
//     balancing, decommission re-replication). Block BYTES and membership
//     are unchanged, so the ElasticMap is still exact: revalidate the entry
//     at the new epoch instead of rebuilding. This is what keeps a serving
//     daemon's cache warm while a ReplicationMonitor heals underneath it.
//   * epoch moved, block count changed -> the file grew or was recreated:
//     drop and rebuild.
// Byte-flips from corrupt_block are deliberately treated as transient
// (repair restores the committed bytes); the estimates a momentarily-corrupt
// block contributes were built from the committed content, which is also
// what selection verifies against.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "datanet/datanet.hpp"
#include "dfs/meta_plane.hpp"
#include "dfs/mini_dfs.hpp"

namespace datanet::server {

class DatasetCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t revalidations = 0;  // replica churn only: entry kept
    std::uint64_t rebuilds = 0;       // misses + invalidations
  };

  // Shared immutable snapshot for `path` on `dfs`, building it on miss.
  // Callers keep the shared_ptr for the duration of their query, so an
  // invalidation never pulls metadata out from under a running selection.
  // Thread-safe against concurrent get() calls and against replica-churn
  // mutators; file GROWTH must be quiesced by the owner (datanetd never
  // appends to a dataset it is serving — growth happens between batches,
  // as in the invalidation test). The build runs under the cache lock:
  // builds are rare and this makes a thundering herd of duplicate
  // concurrent builds impossible.
  [[nodiscard]] std::shared_ptr<const core::DataNet> get(
      const dfs::MiniDfs& dfs, const std::string& path);

  // Sharded-plane variant: the entry is validated against the OWNING
  // shard's epoch only (the plane generalizes mutation_epoch per shard), so
  // replica churn on one shard never invalidates or revalidates cached
  // DataNets whose blocks live on another. Throws ShardUnavailableError
  // while the owning shard is crashed.
  [[nodiscard]] std::shared_ptr<const core::DataNet> get(
      const dfs::MetaPlane& plane, const std::string& path);

  void invalidate(const std::string& path);
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const core::DataNet> net;
    std::uint64_t epoch = 0;
    std::size_t num_blocks = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace datanet::server
