#pragma once
// Process-wide cache of built DataNet metadata (ElasticMap array + MetaStore
// content) keyed by dataset path, with epoch-based invalidation against the
// live MiniDfs. Building an ElasticMap is a full scan of the file — the one
// cost the paper amortizes across queries (Section III-B; Table II) — so
// datanetd builds it once per dataset and every query on every connection
// shares the same immutable snapshot via shared_ptr.
//
// Invalidation uses MiniDfs::mutation_epoch(), the monotone counter bumped
// by every namespace mutation:
//   * epoch unchanged            -> pure hit, no locks beyond the cache map.
//   * epoch moved, same per-path block count -> replica churn (healing,
//     balancing, decommission re-replication). Block BYTES and membership
//     are unchanged, so the ElasticMap is still exact: revalidate the entry
//     at the new epoch instead of rebuilding. This is what keeps a serving
//     daemon's cache warm while a ReplicationMonitor heals underneath it.
//   * epoch moved, block count GREW on the same instance -> the file was
//     appended to (streaming ingestion): DELTA-APPLY — copy the cached
//     entry's ElasticMap and incrementally scan only the new blocks
//     (ElasticMapArray::extend) instead of rebuilding from scratch. Falls
//     back to a full rebuild if the covered prefix changed underneath.
//   * anything else (shrank, recreated, different instance) -> rebuild.
// Byte-flips from corrupt_block are deliberately treated as transient
// (repair restores the committed bytes); the estimates a momentarily-corrupt
// block contributes were built from the committed content, which is also
// what selection verifies against.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "datanet/datanet.hpp"
#include "dfs/meta_plane.hpp"
#include "dfs/mini_dfs.hpp"

namespace datanet::server {

class DatasetCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t revalidations = 0;  // replica churn only: entry kept
    std::uint64_t rebuilds = 0;       // misses + invalidations
    std::uint64_t delta_applies = 0;  // growth absorbed incrementally
  };

  // Shared immutable snapshot for `path` on `dfs`, building it on miss.
  // Callers keep the shared_ptr for the duration of their query, so an
  // invalidation never pulls metadata out from under a running selection.
  // Thread-safe against concurrent get() calls and against replica-churn
  // mutators; file GROWTH must be quiesced by the owner (datanetd never
  // appends to a dataset it is serving — growth happens between batches,
  // as in the invalidation test). The build runs under the cache lock:
  // builds are rare and this makes a thundering herd of duplicate
  // concurrent builds impossible.
  [[nodiscard]] std::shared_ptr<const core::DataNet> get(
      const dfs::MiniDfs& dfs, const std::string& path);

  // Sharded-plane variant: the entry is validated against the OWNING
  // shard's epoch only (the plane generalizes mutation_epoch per shard), so
  // replica churn on one shard never invalidates or revalidates cached
  // DataNets whose blocks live on another. Throws ShardUnavailableError
  // while the owning shard is crashed. The entry pins the shard's MiniDfs
  // instance, so a bundle handed out here (including later via get_stale)
  // stays valid across a recover_shard swap; the first get() after the
  // swap sees a new instance and rebuilds.
  [[nodiscard]] std::shared_ptr<const core::DataNet> get(
      const dfs::MetaPlane& plane, const std::string& path);

  // Degraded-mode read (PR 9/10): the last successfully built bundle for
  // `path`, WITHOUT epoch validation — the owning shard may be down, so
  // there is nothing to validate against. net == nullptr when no bundle was
  // ever built (a cold cache cannot serve degraded). age_micros says how
  // long ago the entry was last known fresh (built, revalidated, delta-
  // applied, or hit with an unchanged epoch), so degraded replies can carry
  // their staleness instead of silently trusting the bundle.
  struct StaleBundle {
    std::shared_ptr<const core::DataNet> net;
    std::uint64_t age_micros = 0;
  };
  [[nodiscard]] StaleBundle get_stale(const std::string& path) const;

  void invalidate(const std::string& path);
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const core::DataNet> net;
    // The instance identity the entry was built against. Epoch comparison
    // is only meaningful within one MiniDfs instance, so a different
    // address at the same path (recover_shard swapped in a rebuilt shard)
    // means rebuild, never revalidate. Plane-built entries use DataNet's
    // shared-ownership constructor, so `net` itself keeps that instance
    // alive for every holder — including degraded queries still in flight
    // after the entry has been replaced.
    const dfs::MiniDfs* src = nullptr;
    std::uint64_t epoch = 0;
    std::size_t num_blocks = 0;
    // steady-clock stamp of the last moment the entry was known to match
    // the live namespace; get_stale reports now - this as the bundle's age.
    std::uint64_t validated_micros = 0;
  };

  [[nodiscard]] static std::uint64_t now_micros();

  [[nodiscard]] std::shared_ptr<const core::DataNet> get_impl(
      const dfs::MiniDfs& dfs, const std::string& path,
      std::shared_ptr<const dfs::MiniDfs> pin);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace datanet::server
