#include "server/dispatcher.hpp"

#include <chrono>
#include <utility>

namespace datanet::server {

namespace {

std::uint64_t now_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void FairDispatcher::register_tenant(const std::string& tenant,
                                     TenantLimits limits) {
  std::lock_guard lock(mu_);
  if (tenants_.contains(tenant)) return;
  tenants_.emplace(tenant, Tenant{.limits = limits});
  order_.push_back(tenant);
}

FairDispatcher::Tenant& FairDispatcher::tenant_locked(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    it = tenants_.emplace(name, Tenant{.limits = default_limits_}).first;
    order_.push_back(name);
  }
  return it->second;
}

SubmitStatus FairDispatcher::submit(const std::string& tenant,
                                    QueryRequest request,
                                    std::uint64_t* ticket_out) {
  std::lock_guard lock(mu_);
  if (stopped_) return SubmitStatus::kStopped;
  Tenant& t = tenant_locked(tenant);
  ++t.stats.submitted;
  if (t.breaker_open) {
    // Half-open discipline, count-based: every probe_interval-th blocked
    // submission is admitted to test whether the tenant's queries succeed
    // again (its success closes the breaker via record_outcome); the rest
    // are shed with the typed kCircuitOpen status.
    ++t.blocked_since_open;
    const bool probe = breaker_.probe_interval != 0 &&
                       t.blocked_since_open % breaker_.probe_interval == 0;
    if (!probe) {
      ++t.stats.rejected_circuit;
      return SubmitStatus::kCircuitOpen;
    }
  }
  if (t.limits.max_queue == 0) {
    // Queueless tenant: admission IS dispatch eligibility. The job still
    // passes through the queue (workers pull, they are not pushed to), but
    // only when a slot is free this instant, so the queue depth stays <=
    // max_inflight and rejections are typed as an in-flight overload.
    if (t.queue.size() + t.inflight >= t.limits.max_inflight) {
      ++t.stats.rejected_inflight;
      return SubmitStatus::kTooManyInflight;
    }
  } else if (t.queue.size() >= t.limits.max_queue) {
    ++t.stats.rejected_queue_full;
    return SubmitStatus::kQueueFull;
  }
  DispatchJob job{.ticket = next_ticket_++,
                  .tenant = tenant,
                  .request = std::move(request),
                  .submitted_micros = now_micros()};
  if (ticket_out != nullptr) *ticket_out = job.ticket;
  t.queue.push_back(std::move(job));
  ++t.stats.accepted;
  ++queued_total_;
  cv_.notify_one();
  return SubmitStatus::kAccepted;
}

bool FairDispatcher::eligible_locked(const Tenant& t) const {
  return !t.queue.empty() && t.inflight < t.limits.max_inflight;
}

std::optional<DispatchJob> FairDispatcher::pick_locked() {
  if (order_.empty()) return std::nullopt;
  // One DRR rotation: visit each tenant at most once starting at rr_. An
  // eligible tenant earns its quantum (weight * kJobCost) on the visit and
  // spends kJobCost per dispatch; rr_ stays on a tenant while it has credit
  // and eligible work (so weight-w tenants get w back-to-back dispatches),
  // otherwise credit resets and the rotation moves on. Ineligible tenants
  // forfeit their credit — DRR's classic rule, which is what stops a
  // deep-backlog tenant from banking credit while its in-flight cap is hit.
  for (std::size_t scanned = 0; scanned < order_.size(); ++scanned) {
    Tenant& t = tenants_.at(order_[rr_]);
    if (!eligible_locked(t)) {
      t.deficit = 0;
      rr_ = (rr_ + 1) % order_.size();
      continue;
    }
    if (t.deficit < kJobCost) t.deficit += t.limits.weight * kJobCost;
    t.deficit -= kJobCost;
    DispatchJob job = std::move(t.queue.front());
    t.queue.pop_front();
    ++t.inflight;
    ++t.stats.dispatched;
    const std::uint64_t now = now_micros();
    if (now > job.submitted_micros) {
      t.stats.queue_wait_micros += now - job.submitted_micros;
    }
    --queued_total_;
    ++inflight_total_;
    if (t.deficit < kJobCost || !eligible_locked(t)) {
      t.deficit = eligible_locked(t) ? t.deficit : 0;
      rr_ = (rr_ + 1) % order_.size();
    }
    return job;
  }
  return std::nullopt;
}

std::optional<DispatchJob> FairDispatcher::try_next() {
  std::lock_guard lock(mu_);
  return pick_locked();
}

std::optional<DispatchJob> FairDispatcher::next() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (auto job = pick_locked()) return job;
    if (stopped_ && queued_total_ == 0) return std::nullopt;
    cv_.wait(lock);
  }
}

void FairDispatcher::complete(const std::string& tenant) {
  std::lock_guard lock(mu_);
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.inflight == 0) return;
  --it->second.inflight;
  ++it->second.stats.completed;
  --inflight_total_;
  // A freed slot can unblock both queued work of this tenant and a worker
  // parked in next(); stop() drains also wake on it.
  cv_.notify_all();
}

void FairDispatcher::record_outcome(const std::string& tenant, bool success) {
  std::lock_guard lock(mu_);
  if (breaker_.failure_threshold == 0) return;  // breaker disabled
  const auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  Tenant& t = it->second;
  if (success) {
    t.consecutive_failures = 0;
    t.breaker_open = false;
    t.blocked_since_open = 0;
    return;
  }
  if (++t.consecutive_failures >= breaker_.failure_threshold &&
      !t.breaker_open) {
    t.breaker_open = true;
    t.blocked_since_open = 0;
  }
}

bool FairDispatcher::breaker_open(const std::string& tenant) const {
  std::lock_guard lock(mu_);
  const auto it = tenants_.find(tenant);
  return it != tenants_.end() && it->second.breaker_open;
}

void FairDispatcher::stop() {
  std::lock_guard lock(mu_);
  stopped_ = true;
  cv_.notify_all();
}

bool FairDispatcher::stopped() const {
  std::lock_guard lock(mu_);
  return stopped_;
}

std::size_t FairDispatcher::queued() const {
  std::lock_guard lock(mu_);
  return queued_total_;
}

std::size_t FairDispatcher::inflight() const {
  std::lock_guard lock(mu_);
  return inflight_total_;
}

TenantStats FairDispatcher::tenant_stats(const std::string& tenant) const {
  std::lock_guard lock(mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantStats{} : it->second.stats;
}

std::vector<std::string> FairDispatcher::tenants() const {
  std::lock_guard lock(mu_);
  return order_;
}

}  // namespace datanet::server
