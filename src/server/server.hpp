#pragma once
// datanetd: an always-on, multi-tenant sub-dataset selection service over
// one hosted dataset. The paper's pipeline runs DataNet as a batch job —
// build the ElasticMap, schedule, select, exit. This daemon turns that into
// the deployment the paper argues for (Section VI): metadata built once and
// served to every analysis, with the selection runtime shared by all
// tenants. Architecture (DESIGN.md §6):
//
//   accept thread -> connection handler pool (one thread per live
//   connection, bounded) -> parse/validate -> FairDispatcher admission
//   (typed rejection at the door) -> selection worker pool pulling in
//   deficit-round-robin order -> shared SelectionRuntime seams
//   (DirectReadPolicy + NoFaults + CostOnlyBackend) over the process-wide
//   DatasetCache -> framed reply.
//
// The dataset's namespace lives on a dfs::MetaPlane (ServerOptions::
// meta_shards); queries route to the shard owning the hosted path and run
// as READERS of that shard's MiniDfs (pinned zero-copy block reads,
// snapshot replica sets), so one external mutator — a healing
// ReplicationMonitor, a balancer, a fault hook in tests — may run
// concurrently under the MiniDfs single-mutator contract, and the owning
// shard's epoch check in DatasetCache keeps the served metadata honest
// across that churn without caring about churn on other shards.
//
// Shutdown contract: a kShutdown frame (or any thread calling stop())
// stops admission, DRAINS every already-accepted query — each gets its
// framed reply before its connection is torn down — then joins all
// threads. stop() is idempotent and safe to race from several threads.
//
// The reply digest is a deterministic hash chain over the selection's
// node-local filtered data, so a client (or the CI smoke test) can verify a
// served result against an in-process run of the same query (local_query).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "datanet/selection_runtime.hpp"
#include "server/dataset_cache.hpp"
#include "server/dispatcher.hpp"
#include "server/protocol.hpp"
#include "server/socket_io.hpp"

namespace datanet::server {

struct ServerOptions {
  std::uint16_t port = 0;        // 0 = ephemeral; see Server::port()
  std::uint32_t workers = 2;     // selection worker threads
  std::uint32_t max_connections = 64;  // concurrent connection handlers
  TenantLimits default_limits;   // admission bounds for unregistered tenants
  // Hosted dataset shape. The dataset is rebuilt deterministically from
  // (cfg, dataset_blocks) at startup, so any client building the same
  // config locally gets byte-identical data — the digest contract.
  core::ExperimentConfig cfg;
  std::uint64_t dataset_blocks = 64;
  // Metadata plane shard count. Every shard shares cfg's placement seed, so
  // the hosted dataset's placement — and therefore every served digest — is
  // byte-identical at ANY shard count (dfs/meta_plane.hpp's determinism
  // note); sharding changes which shard's epoch invalidates the cache, not
  // what is served.
  std::uint32_t meta_shards = 1;
  // Wire idle timeout (PR 9): the longest a handler waits for the REST of a
  // frame once its first byte arrived, and for reply writes to drain. A
  // peer that stalls mid-frame (slowloris) is dropped after this instead of
  // wedging the handler thread forever. Waiting for a new request on an
  // idle keep-alive connection is still unbounded — idling between messages
  // is legal. 0 disables (legacy block-forever behaviour).
  std::uint32_t io_timeout_ms = 10'000;
  // Per-tenant consecutive-failure circuit breaker; default-disabled
  // (failure_threshold 0) so the clean path is untouched.
  BreakerPolicy breaker;
};

// What the server knows about its hosted dataset beyond the metadata plane
// itself (the plane owns the namespace; this is the serving-side residue).
struct HostedDataset {
  std::string path;
  std::vector<std::string> hot_keys;  // hottest sub-dataset keys first
};

// Outcome of executing one query (shared by the daemon path and the
// in-process local_query golden path). Exactly one of three shapes: ok
// (reply valid, possibly degraded), rejected (typed worker-side shed —
// deadline exceeded / shard unavailable), or error (!ok && !rejected).
struct QueryOutcome {
  bool ok = false;
  QueryReply reply;
  bool rejected = false;
  Rejection rejection;  // valid when rejected
  std::string error;    // set when !ok && !rejected
};

// Deterministic digest over a selection's node-local output: a hash chain
// over the per-node filtered buffers (node order is part of the digest).
[[nodiscard]] std::uint64_t selection_digest(const core::SelectionResult& r);

// Build `name`'s scheduler; nullptr for unknown names.
// Names: datanet | locality | lpt | maxflow.
[[nodiscard]] std::unique_ptr<scheduler::TaskScheduler> make_scheduler(
    const std::string& name, std::uint64_t seed);

// Execute one query against a hosted dataset: DirectReadPolicy + NoFaults +
// CostOnlyBackend (the serving path skips the analytic cost model; the
// selection output is backend-independent). `net` may be null (baseline
// scan-everything graph). service_micros is filled from the host clock;
// queue_micros is left 0 (the daemon fills it).
[[nodiscard]] QueryOutcome execute_query(const dfs::MiniDfs& dfs,
                                         const std::string& path,
                                         const core::DataNet* net,
                                         const QueryRequest& request,
                                         const core::ExperimentConfig& cfg);

// Golden-path helper: build the same deterministic dataset a server with
// `opts` hosts, run `request` in-process, return the outcome. Used by
// `datanet query --local`, the end-to-end test, and the CI smoke script to
// verify served digests.
[[nodiscard]] QueryOutcome local_query(const ServerOptions& opts,
                                       const QueryRequest& request);

class Server {
 public:
  // Builds the hosted dataset (deterministic from opts.cfg/dataset_blocks)
  // and binds the listener; serving threads start in start().
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void start();
  // Drain and tear down (see the shutdown contract above). Idempotent;
  // concurrent callers serialize and all return after teardown completes.
  void stop();
  // Blocks until shutdown is requested (kShutdown frame or stop()).
  void wait();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const HostedDataset& dataset() const noexcept {
    return dataset_;
  }
  // The sharded metadata plane hosting the dataset's namespace.
  [[nodiscard]] dfs::MetaPlane& plane() noexcept { return plane_; }
  [[nodiscard]] const dfs::MetaPlane& plane() const noexcept { return plane_; }
  // Mutator-side access to the shard owning the hosted dataset, for the
  // single external mutator the MiniDfs contract allows (healing monitor,
  // fault hooks in tests). Throws ShardUnavailableError while that shard is
  // crashed.
  [[nodiscard]] dfs::MiniDfs& dfs() { return plane_.dfs_for(dataset_.path); }

  [[nodiscard]] FairDispatcher& dispatcher() noexcept { return dispatcher_; }
  [[nodiscard]] const DatasetCache& cache() const noexcept { return cache_; }
  [[nodiscard]] std::uint64_t queries_served() const noexcept {
    return queries_served_.load(std::memory_order_relaxed);
  }
  // Resilience counters (PR 9).
  [[nodiscard]] std::uint64_t degraded_served() const noexcept {
    return degraded_served_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t deadline_shed() const noexcept {
    return deadline_shed_.load(std::memory_order_relaxed);
  }

 private:
  struct Handler {
    std::thread thread;
    std::shared_ptr<Fd> socket;  // shared so stop() can shutdown() it
    std::shared_ptr<std::atomic<bool>> finished;
  };

  // Assemble the kStatsOk snapshot (counters + per-tenant meters).
  [[nodiscard]] ServerStats snapshot_stats() const;

  void accept_loop();
  void handle_connection(const std::shared_ptr<Fd>& socket);
  void worker_loop();
  // Execute one dispatched job: deadline shed -> typed rejection; owning
  // shard down -> degraded serving from the epoch-cached bundle (or a typed
  // shard-unavailable rejection on a cold cache); otherwise the normal path.
  [[nodiscard]] QueryOutcome run_job(const DispatchJob& job);
  void reap_finished_handlers();
  // Mark shutdown requested (wakes wait()); does not tear down.
  void request_stop();

  ServerOptions opts_;
  dfs::MetaPlane plane_;
  HostedDataset dataset_;
  FairDispatcher dispatcher_;
  DatasetCache cache_;

  Fd listener_;
  std::uint16_t port_ = 0;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex handlers_mu_;
  std::vector<Handler> handlers_;
  std::atomic<std::size_t> live_handlers_{0};

  // Rendezvous between connection handlers (awaiting a reply for a ticket)
  // and workers (publishing outcomes). awaiting_replies_ counts accepted
  // queries whose framed reply has not been written yet; stop() waits for
  // it to reach zero before shutting client sockets, which is what makes
  // the drain guarantee hold.
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::map<std::uint64_t, QueryOutcome> finished_;
  std::size_t awaiting_replies_ = 0;

  std::atomic<bool> started_{false};
  std::atomic<std::uint64_t> queries_served_{0};
  std::atomic<std::uint64_t> degraded_served_{0};
  std::atomic<std::uint64_t> deadline_shed_{0};

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  // Serializes teardown: the first stop() does the work, latecomers block
  // on the mutex until it is done, then see torn_down_ and return.
  std::mutex teardown_mu_;
  bool torn_down_ = false;
};

}  // namespace datanet::server
