#pragma once
// Blocking datanetd client: one loopback TCP connection, strict
// request-response framing. Used by `datanet query`, the end-to-end tests
// and bench_server; thread-compatible (one Client per thread), not
// thread-safe.

#include <cstdint>
#include <string>

#include "server/protocol.hpp"
#include "server/socket_io.hpp"

namespace datanet::server {

// A decoded server response of any kind.
struct ClientResult {
  enum class Status : std::uint8_t { kOk, kRejected, kError };
  Status status = Status::kError;
  QueryReply reply;      // valid when kOk
  Rejection rejection;   // valid when kRejected
  std::string error;     // valid when kError
  [[nodiscard]] bool ok() const noexcept { return status == Status::kOk; }
};

class Client {
 public:
  // Connects immediately; throws SocketError when nothing listens.
  // io_timeout_ms bounds every socket wait of a round-trip (request write,
  // reply header, reply payload) as an IDLE timeout — a stalled server trips
  // SocketTimeoutError instead of hanging the caller forever. Unlike the
  // server handler, the wait for the FIRST reply byte is also bounded: the
  // client just sent a request, so silence IS the failure. 0 = block forever
  // (legacy behaviour).
  explicit Client(std::uint16_t port, std::uint32_t io_timeout_ms = 0);

  // Round-trip one query. Throws SocketError / ProtocolError on transport
  // failures; admission rejections and execution errors come back as a
  // ClientResult, not an exception — they are protocol results.
  [[nodiscard]] ClientResult query(const QueryRequest& request);

  // Fetch the server's metering snapshot (queries served, cache counters,
  // plane shard count, per-tenant meters). Throws on transport failures.
  [[nodiscard]] ServerStats stats();

  // Ask the server to drain and exit; returns once the ack arrives.
  void shutdown_server();

 private:
  [[nodiscard]] std::string round_trip(const std::string& payload);

  Fd fd_;
  std::uint32_t io_timeout_ms_ = 0;
};

}  // namespace datanet::server
