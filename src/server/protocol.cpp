#include "server/protocol.hpp"

#include "common/hash.hpp"
#include "dfs/wire.hpp"

namespace datanet::server {

namespace wire = dfs::wire;

std::string_view reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kBadRequest: return "bad_request";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kTooManyInflight: return "too_many_inflight";
    case RejectReason::kShuttingDown: return "shutting_down";
    case RejectReason::kDeadlineExceeded: return "deadline_exceeded";
    case RejectReason::kCircuitOpen: return "circuit_open";
    case RejectReason::kShardUnavailable: return "shard_unavailable";
  }
  return "unknown";
}

std::string frame(std::string_view payload) {
  if (payload.size() > kMaxPayloadBytes) {
    throw ProtocolError("datanetd protocol: oversized payload");
  }
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  wire::put_u32(out, kFrameMagic);
  wire::put_u32(out, static_cast<std::uint32_t>(payload.size()));
  wire::put_u32(out, common::crc32(payload));
  out.append(payload);
  return out;
}

FrameHeader decode_frame_header(std::string_view header) {
  if (header.size() != kFrameHeaderBytes) {
    throw ProtocolError("datanetd protocol: short frame header");
  }
  wire::Cursor c(header);
  if (c.u32() != kFrameMagic) {
    throw ProtocolError("datanetd protocol: bad frame magic");
  }
  FrameHeader h;
  h.payload_len = c.u32();
  h.crc = c.u32();
  if (h.payload_len > kMaxPayloadBytes) {
    throw ProtocolError("datanetd protocol: frame length out of bounds");
  }
  return h;
}

void check_frame_payload(const FrameHeader& header, std::string_view payload) {
  if (payload.size() != header.payload_len) {
    throw ProtocolError("datanetd protocol: truncated frame payload");
  }
  if (common::crc32(payload) != header.crc) {
    throw ProtocolError("datanetd protocol: frame checksum mismatch");
  }
}

namespace {

std::string tagged(MsgType type) {
  std::string out;
  out.push_back(static_cast<char>(type));
  return out;
}

// Tag check + cursor for one decoder; the caller must drain the cursor.
wire::Cursor open(std::string_view payload, MsgType expect) {
  if (peek_type(payload) != expect) {
    throw ProtocolError("datanetd protocol: unexpected message type");
  }
  wire::Cursor c(payload);
  (void)c.u8();  // tag
  return c;
}

void expect_drained(const wire::Cursor& c) {
  if (!c.exhausted()) {
    throw ProtocolError("datanetd protocol: trailing bytes in message");
  }
}

}  // namespace

std::string encode_query(const QueryRequest& q) {
  std::string out = tagged(MsgType::kQuery);
  wire::put_bytes(out, q.tenant);
  wire::put_bytes(out, q.key);
  wire::put_bytes(out, q.scheduler);
  out.push_back(q.use_datanet_meta ? 1 : 0);
  wire::put_u32(out, q.deadline_ms);  // v2 suffix
  return out;
}

std::string encode_query_ok(const QueryReply& r) {
  std::string out = tagged(MsgType::kQueryOk);
  wire::put_u64(out, r.digest);
  wire::put_u64(out, r.matched_bytes);
  wire::put_u64(out, r.blocks_scanned);
  wire::put_u64(out, r.service_micros);
  wire::put_u64(out, r.queue_micros);
  out.push_back(r.degraded ? 1 : 0);    // v2 suffix
  wire::put_u64(out, r.staleness_micros);  // v3 suffix
  return out;
}

std::string encode_rejected(const Rejection& r) {
  std::string out = tagged(MsgType::kRejected);
  out.push_back(static_cast<char>(r.reason));
  wire::put_bytes(out, r.detail);
  return out;
}

std::string encode_error(std::string_view what) {
  std::string out = tagged(MsgType::kError);
  wire::put_bytes(out, what);
  return out;
}

std::string encode_shutdown() { return tagged(MsgType::kShutdown); }

std::string encode_shutdown_ok() { return tagged(MsgType::kShutdownOk); }

std::string encode_stats() { return tagged(MsgType::kStats); }

std::string encode_stats_ok(const ServerStats& s) {
  std::string out = tagged(MsgType::kStatsOk);
  wire::put_u64(out, s.queries_served);
  wire::put_u64(out, s.cache_hits);
  wire::put_u64(out, s.cache_revalidations);
  wire::put_u64(out, s.cache_rebuilds);
  wire::put_u64(out, s.degraded_served);
  wire::put_u64(out, s.deadline_shed);
  wire::put_u64(out, s.circuit_rejected);
  wire::put_u32(out, s.meta_shards);
  wire::put_u32(out, static_cast<std::uint32_t>(s.tenants.size()));
  for (const TenantMeter& t : s.tenants) {
    wire::put_bytes(out, t.tenant);
    wire::put_u64(out, t.submitted);
    wire::put_u64(out, t.accepted);
    wire::put_u64(out, t.rejected_queue_full);
    wire::put_u64(out, t.rejected_inflight);
    wire::put_u64(out, t.dispatched);
    wire::put_u64(out, t.completed);
    wire::put_u64(out, t.queue_wait_micros);
  }
  wire::put_u64(out, s.cache_delta_applies);  // v3 suffix
  return out;
}

MsgType peek_type(std::string_view payload) {
  if (payload.empty()) {
    throw ProtocolError("datanetd protocol: empty payload");
  }
  const auto tag = static_cast<std::uint8_t>(payload[0]);
  if (tag < static_cast<std::uint8_t>(MsgType::kQuery) ||
      tag > static_cast<std::uint8_t>(MsgType::kStatsOk)) {
    throw ProtocolError("datanetd protocol: unknown message tag");
  }
  return static_cast<MsgType>(tag);
}

QueryRequest decode_query(std::string_view payload) {
  try {
    wire::Cursor c = open(payload, MsgType::kQuery);
    QueryRequest q;
    q.tenant = c.bytes();
    q.key = c.bytes();
    q.scheduler = c.bytes();
    q.use_datanet_meta = c.u8() != 0;
    // v1 payloads end here; v2 appends the deadline budget (back-compat
    // decode — the wire version bump without a flag day).
    if (!c.exhausted()) q.deadline_ms = c.u32();
    expect_drained(c);
    return q;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::runtime_error& e) {
    // Cursor bounds failures surface as the generic truncation error; rewrap
    // so callers get one typed error for any malformed message.
    throw ProtocolError(std::string("datanetd protocol: ") + e.what());
  }
}

QueryReply decode_query_ok(std::string_view payload) {
  try {
    wire::Cursor c = open(payload, MsgType::kQueryOk);
    QueryReply r;
    r.digest = c.u64();
    r.matched_bytes = c.u64();
    r.blocks_scanned = c.u64();
    r.service_micros = c.u64();
    r.queue_micros = c.u64();
    // v1 payloads end here; v2 appends the degraded flag, v3 the staleness
    // age of a degraded reply's bundle.
    if (!c.exhausted()) r.degraded = c.u8() != 0;
    if (!c.exhausted()) r.staleness_micros = c.u64();
    expect_drained(c);
    return r;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw ProtocolError(std::string("datanetd protocol: ") + e.what());
  }
}

Rejection decode_rejected(std::string_view payload) {
  try {
    wire::Cursor c = open(payload, MsgType::kRejected);
    Rejection r;
    const std::uint8_t reason = c.u8();
    if (reason < static_cast<std::uint8_t>(RejectReason::kBadRequest) ||
        reason > static_cast<std::uint8_t>(RejectReason::kShardUnavailable)) {
      throw ProtocolError("datanetd protocol: unknown reject reason");
    }
    r.reason = static_cast<RejectReason>(reason);
    r.detail = c.bytes();
    expect_drained(c);
    return r;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw ProtocolError(std::string("datanetd protocol: ") + e.what());
  }
}

ServerStats decode_stats_ok(std::string_view payload) {
  try {
    wire::Cursor c = open(payload, MsgType::kStatsOk);
    ServerStats s;
    s.queries_served = c.u64();
    s.cache_hits = c.u64();
    s.cache_revalidations = c.u64();
    s.cache_rebuilds = c.u64();
    s.degraded_served = c.u64();
    s.deadline_shed = c.u64();
    s.circuit_rejected = c.u64();
    s.meta_shards = c.u32();
    const std::uint32_t n = c.u32();
    // Each row is at least 2 bytes of name length + 7 counters; an n that
    // cannot fit in the remaining payload is a corrupt count, not a row list.
    if (n > c.remaining()) {
      throw ProtocolError("datanetd protocol: corrupt tenant count");
    }
    s.tenants.resize(n);
    for (TenantMeter& t : s.tenants) {
      t.tenant = c.bytes();
      t.submitted = c.u64();
      t.accepted = c.u64();
      t.rejected_queue_full = c.u64();
      t.rejected_inflight = c.u64();
      t.dispatched = c.u64();
      t.completed = c.u64();
      t.queue_wait_micros = c.u64();
    }
    // v2 payloads end here; v3 appends the delta-apply counter.
    if (!c.exhausted()) s.cache_delta_applies = c.u64();
    expect_drained(c);
    return s;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw ProtocolError(std::string("datanetd protocol: ") + e.what());
  }
}

std::string decode_error(std::string_view payload) {
  try {
    wire::Cursor c = open(payload, MsgType::kError);
    std::string what = c.bytes();
    expect_drained(c);
    return what;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw ProtocolError(std::string("datanetd protocol: ") + e.what());
  }
}

}  // namespace datanet::server
