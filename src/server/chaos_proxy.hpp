#pragma once
// ChaosProxy — a deterministic in-process TCP relay for torturing the
// datanetd wire. It listens on its own loopback port, dials the real server
// for each accepted connection, and injects one seeded fault per connection:
//
//   kReset     close the client socket before reading a byte (ECONNRESET /
//              EOF-before-reply at the client)
//   kTruncate  relay the request, then forward only HALF the reply frame and
//              close (mid-message EOF — the client must not accept a partial
//              frame; CRC framing + read_exact make this a typed error)
//   kStall     relay the request, swallow the reply, go silent for stall_ms,
//              then close (the client's idle timeout — not a human — must
//              notice)
//   kSplit     relay faithfully but dribble the reply in split_bytes chunks
//              with delay_ms pauses (MUST still succeed end-to-end with the
//              golden digest: slow is not wrong)
//   kCorrupt   flip one seeded bit inside the first relayed request frame's
//              payload (mid-connection byte corruption — the frame header
//              stays intact so the stream stays framed). The server's CRC
//              check must surface this as a typed bad_request and drop the
//              connection; a wrong answer is the one forbidden outcome
//   kClean     relay faithfully
//
// Determinism: connection k's fault is drawn from mt19937_64(seed ^ k) over
// the plan's mode weights, so a drill run is replayable from its seed alone
// — mode_of(k) is a pure function the drill and tests can precompute. The
// proxy never parses payloads (only frame headers), so it exercises exactly
// the failure surface a flaky network would.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "server/socket_io.hpp"

namespace datanet::server {

enum class FaultMode : std::uint8_t {
  kClean = 0,
  kReset = 1,
  kTruncate = 2,
  kStall = 3,
  kSplit = 4,
  kCorrupt = 5,
};

[[nodiscard]] const char* fault_mode_name(FaultMode m) noexcept;

struct ChaosPlan {
  std::uint64_t seed = 0;
  // Per-connection mode weights (relative; all-zero degenerates to kClean).
  std::uint32_t weight_clean = 1;
  std::uint32_t weight_reset = 1;
  std::uint32_t weight_truncate = 1;
  std::uint32_t weight_stall = 1;
  std::uint32_t weight_split = 1;
  // Default 0 so pre-existing drill schedules (pure functions of the seed
  // over the five original weights) replay unchanged; opt in explicitly.
  std::uint32_t weight_corrupt = 0;
  std::uint32_t stall_ms = 400;   // silence injected by kStall
  std::uint32_t delay_ms = 1;     // pause between kSplit chunks
  std::uint32_t split_bytes = 7;  // kSplit chunk size (deliberately odd)
};

class ChaosProxy {
 public:
  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t clean = 0;
    std::uint64_t resets = 0;
    std::uint64_t truncations = 0;
    std::uint64_t stalls = 0;
    std::uint64_t splits = 0;
    std::uint64_t corruptions = 0;
  };

  // Binds an ephemeral loopback listener; relaying starts in start().
  ChaosProxy(std::uint16_t upstream_port, ChaosPlan plan);
  ~ChaosProxy();
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  void start();
  void stop();  // idempotent; joins every relay thread

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  // The fault connection `index` (0-based accept order) will suffer — pure
  // function of (plan.seed, weights, index).
  [[nodiscard]] FaultMode mode_of(std::uint64_t index) const;
  [[nodiscard]] Stats stats() const;

 private:
  void accept_loop();
  void relay(const std::shared_ptr<Fd>& client,
             const std::shared_ptr<Fd>& upstream, FaultMode mode,
             std::uint64_t index);

  ChaosPlan plan_;
  std::uint16_t upstream_port_;
  Fd listener_;
  std::uint16_t port_ = 0;

  std::thread accept_thread_;
  std::mutex relays_mu_;
  struct Relay {
    std::thread thread;
    std::shared_ptr<Fd> client;
    std::shared_ptr<Fd> upstream;
  };
  std::vector<Relay> relays_;

  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;
  std::mutex stop_mu_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace datanet::server
