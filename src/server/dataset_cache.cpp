#include "server/dataset_cache.hpp"

#include <chrono>
#include <stdexcept>

namespace datanet::server {

std::uint64_t DatasetCache::now_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::shared_ptr<const core::DataNet> DatasetCache::get(
    const dfs::MiniDfs& dfs, const std::string& path) {
  // Unpinned variant: the caller owns `dfs` and keeps it alive for the
  // cache's lifetime (the in-process contract documented on get()).
  return get_impl(dfs, path, nullptr);
}

std::shared_ptr<const core::DataNet> DatasetCache::get_impl(
    const dfs::MiniDfs& dfs, const std::string& path,
    std::shared_ptr<const dfs::MiniDfs> pin) {
  std::lock_guard lock(mu_);
  const std::uint64_t epoch = dfs.mutation_epoch();
  auto it = entries_.find(path);
  if (it != entries_.end()) {
    Entry& e = it->second;
    // Epochs only order mutations within ONE MiniDfs instance. A different
    // address here means the shard was rebuilt (recover_shard swap): the
    // cached bundle still points into the pinned pre-swap instance, so it
    // must never be revalidated against the new one — rebuild.
    if (e.src != &dfs) {
      entries_.erase(it);
    } else if (e.epoch == epoch) {
      ++stats_.hits;
      e.validated_micros = now_micros();
      return e.net;
    } else if (dfs.blocks_of(path).size() == e.num_blocks) {
      // Epoch moved on the same instance: distinguish replica churn
      // (healing / balancing — block bytes and membership unchanged,
      // ElasticMap still exact) from growth or recreation of the file.
      e.epoch = epoch;
      ++stats_.revalidations;
      e.validated_micros = now_micros();
      return e.net;
    } else if (dfs.blocks_of(path).size() > e.num_blocks) {
      // Growth on the same instance (streaming ingestion sealed new blocks):
      // delta-apply. The new bundle copies the cached ElasticMap and scans
      // only the appended blocks; extend() validates that the covered block
      // prefix is unchanged and throws when the file was actually recreated
      // with more blocks, in which case we fall through to a full rebuild.
      try {
        // Copy (not move) the pin: if extend() throws we still need it for
        // the full-rebuild fallback. The unpinned variant gets a non-owning
        // alias — same lifetime contract as the ref-ctor path.
        auto pinned = pin != nullptr
                          ? pin
                          : std::shared_ptr<const dfs::MiniDfs>(
                                std::shared_ptr<const dfs::MiniDfs>{}, &dfs);
        auto net = std::make_shared<const core::DataNet>(std::move(pinned),
                                                         path, e.net->meta());
        e.net = net;
        e.epoch = epoch;
        e.num_blocks = static_cast<std::size_t>(net->meta().num_blocks());
        e.validated_micros = now_micros();
        ++stats_.delta_applies;
        return net;
      } catch (const std::invalid_argument&) {
        entries_.erase(it);  // prefix changed: rebuild from scratch below
      }
    } else {
      entries_.erase(it);
    }
  }
  // Plane entries use the shared-ownership constructor: the bundle itself
  // keeps the shard instance alive, so a degraded query holding it across
  // a recover_shard swap (and even across this entry's later replacement)
  // never dereferences a freed MiniDfs.
  auto net = pin != nullptr
                 ? std::make_shared<const core::DataNet>(std::move(pin), path)
                 : std::make_shared<const core::DataNet>(dfs, path);
  // Cache under the PRE-build epoch (read before the scan): if a mutator
  // ran while we scanned, the next get() sees a moved epoch and re-checks
  // instead of trusting a build that may have raced it.
  // num_blocks is the count the build actually covered (not a fresh
  // namespace lookup), so a growth racing the build cannot produce an
  // entry whose count matches the new namespace by accident.
  entries_.emplace(path, Entry{.net = net,
                               .src = &dfs,
                               .epoch = epoch,
                               .num_blocks = static_cast<std::size_t>(
                                   net->meta().num_blocks()),
                               .validated_micros = now_micros()});
  ++stats_.rebuilds;
  return net;
}

std::shared_ptr<const core::DataNet> DatasetCache::get(
    const dfs::MetaPlane& plane, const std::string& path) {
  // Routing IS the re-key: the entry's epoch is read from (and compared
  // against) the owning shard alone. dfs_for throws ShardUnavailableError
  // while the shard is crashed; the snapshot of the SAME instance is what
  // the entry pins so the bundle survives a later recover_shard swap.
  const dfs::MiniDfs& dfs = plane.dfs_for(path);
  return get_impl(dfs, path, plane.dfs_snapshot(plane.shard_of(path)));
}

DatasetCache::StaleBundle DatasetCache::get_stale(
    const std::string& path) const {
  std::lock_guard lock(mu_);
  const auto it = entries_.find(path);
  if (it == entries_.end()) return {};
  const std::uint64_t now = now_micros();
  const std::uint64_t then = it->second.validated_micros;
  return {it->second.net, now > then ? now - then : 0};
}

void DatasetCache::invalidate(const std::string& path) {
  std::lock_guard lock(mu_);
  entries_.erase(path);
}

DatasetCache::Stats DatasetCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace datanet::server
