#include "server/dataset_cache.hpp"

namespace datanet::server {

std::shared_ptr<const core::DataNet> DatasetCache::get(
    const dfs::MiniDfs& dfs, const std::string& path) {
  std::lock_guard lock(mu_);
  const std::uint64_t epoch = dfs.mutation_epoch();
  auto it = entries_.find(path);
  if (it != entries_.end()) {
    Entry& e = it->second;
    if (e.epoch == epoch) {
      ++stats_.hits;
      return e.net;
    }
    // Epoch moved: distinguish replica churn (healing / balancing — block
    // bytes and membership unchanged, ElasticMap still exact) from growth
    // or recreation of the file.
    if (dfs.blocks_of(path).size() == e.num_blocks) {
      e.epoch = epoch;
      ++stats_.revalidations;
      return e.net;
    }
    entries_.erase(it);
  }
  auto net = std::make_shared<const core::DataNet>(dfs, path);
  // Cache under the PRE-build epoch (read before the scan): if a mutator
  // ran while we scanned, the next get() sees a moved epoch and re-checks
  // instead of trusting a build that may have raced it.
  // num_blocks is the count the build actually covered (not a fresh
  // namespace lookup), so a growth racing the build cannot produce an
  // entry whose count matches the new namespace by accident.
  entries_.emplace(path, Entry{.net = net,
                               .epoch = epoch,
                               .num_blocks = static_cast<std::size_t>(
                                   net->meta().num_blocks())});
  ++stats_.rebuilds;
  return net;
}

std::shared_ptr<const core::DataNet> DatasetCache::get(
    const dfs::MetaPlane& plane, const std::string& path) {
  // Routing IS the re-key: the entry's epoch is read from (and compared
  // against) the owning shard alone.
  return get(plane.dfs_for(path), path);
}

void DatasetCache::invalidate(const std::string& path) {
  std::lock_guard lock(mu_);
  entries_.erase(path);
}

DatasetCache::Stats DatasetCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace datanet::server
