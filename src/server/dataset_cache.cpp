#include "server/dataset_cache.hpp"

namespace datanet::server {

std::shared_ptr<const core::DataNet> DatasetCache::get(
    const dfs::MiniDfs& dfs, const std::string& path) {
  // Unpinned variant: the caller owns `dfs` and keeps it alive for the
  // cache's lifetime (the in-process contract documented on get()).
  return get_impl(dfs, path, nullptr);
}

std::shared_ptr<const core::DataNet> DatasetCache::get_impl(
    const dfs::MiniDfs& dfs, const std::string& path,
    std::shared_ptr<const dfs::MiniDfs> pin) {
  std::lock_guard lock(mu_);
  const std::uint64_t epoch = dfs.mutation_epoch();
  auto it = entries_.find(path);
  if (it != entries_.end()) {
    Entry& e = it->second;
    // Epochs only order mutations within ONE MiniDfs instance. A different
    // address here means the shard was rebuilt (recover_shard swap): the
    // cached bundle still points into the pinned pre-swap instance, so it
    // must never be revalidated against the new one — rebuild.
    if (e.src != &dfs) {
      entries_.erase(it);
    } else if (e.epoch == epoch) {
      ++stats_.hits;
      return e.net;
    } else if (dfs.blocks_of(path).size() == e.num_blocks) {
      // Epoch moved on the same instance: distinguish replica churn
      // (healing / balancing — block bytes and membership unchanged,
      // ElasticMap still exact) from growth or recreation of the file.
      e.epoch = epoch;
      ++stats_.revalidations;
      return e.net;
    } else {
      entries_.erase(it);
    }
  }
  // Plane entries use the shared-ownership constructor: the bundle itself
  // keeps the shard instance alive, so a degraded query holding it across
  // a recover_shard swap (and even across this entry's later replacement)
  // never dereferences a freed MiniDfs.
  auto net = pin != nullptr
                 ? std::make_shared<const core::DataNet>(std::move(pin), path)
                 : std::make_shared<const core::DataNet>(dfs, path);
  // Cache under the PRE-build epoch (read before the scan): if a mutator
  // ran while we scanned, the next get() sees a moved epoch and re-checks
  // instead of trusting a build that may have raced it.
  // num_blocks is the count the build actually covered (not a fresh
  // namespace lookup), so a growth racing the build cannot produce an
  // entry whose count matches the new namespace by accident.
  entries_.emplace(path, Entry{.net = net,
                               .src = &dfs,
                               .epoch = epoch,
                               .num_blocks = static_cast<std::size_t>(
                                   net->meta().num_blocks())});
  ++stats_.rebuilds;
  return net;
}

std::shared_ptr<const core::DataNet> DatasetCache::get(
    const dfs::MetaPlane& plane, const std::string& path) {
  // Routing IS the re-key: the entry's epoch is read from (and compared
  // against) the owning shard alone. dfs_for throws ShardUnavailableError
  // while the shard is crashed; the snapshot of the SAME instance is what
  // the entry pins so the bundle survives a later recover_shard swap.
  const dfs::MiniDfs& dfs = plane.dfs_for(path);
  return get_impl(dfs, path, plane.dfs_snapshot(plane.shard_of(path)));
}

std::shared_ptr<const core::DataNet> DatasetCache::get_stale(
    const std::string& path) const {
  std::lock_guard lock(mu_);
  const auto it = entries_.find(path);
  return it == entries_.end() ? nullptr : it->second.net;
}

void DatasetCache::invalidate(const std::string& path) {
  std::lock_guard lock(mu_);
  entries_.erase(path);
}

DatasetCache::Stats DatasetCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace datanet::server
