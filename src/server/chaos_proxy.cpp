#include "server/chaos_proxy.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <random>
#include <string>
#include <thread>

#include "server/protocol.hpp"

namespace datanet::server {

namespace {

// Read one complete frame (header + payload) and return its raw bytes
// verbatim — the proxy relays, it does not re-encode. nullopt on clean EOF
// at a frame boundary; SocketError on mid-frame EOF (the relay then just
// closes both sides, which is exactly what a flaky middlebox would do).
std::optional<std::string> read_frame(const Fd& fd) {
  auto header_bytes = read_exact(fd, kFrameHeaderBytes);
  if (!header_bytes.has_value()) return std::nullopt;
  const FrameHeader header = decode_frame_header(*header_bytes);
  auto payload = read_exact(fd, header.payload_len);
  if (!payload.has_value()) {
    throw SocketError("chaos proxy: peer closed mid-frame");
  }
  return *header_bytes + *payload;
}

}  // namespace

const char* fault_mode_name(FaultMode m) noexcept {
  switch (m) {
    case FaultMode::kClean:
      return "clean";
    case FaultMode::kReset:
      return "reset";
    case FaultMode::kTruncate:
      return "truncate";
    case FaultMode::kStall:
      return "stall";
    case FaultMode::kSplit:
      return "split";
    case FaultMode::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

ChaosProxy::ChaosProxy(std::uint16_t upstream_port, ChaosPlan plan)
    : plan_(plan), upstream_port_(upstream_port) {
  auto [fd, port] = listen_loopback(0);
  listener_ = std::move(fd);
  port_ = port;
}

ChaosProxy::~ChaosProxy() { stop(); }

void ChaosProxy::start() {
  if (started_.exchange(true)) return;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void ChaosProxy::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  std::lock_guard stop_lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  if (listener_.valid()) ::shutdown(listener_.get(), SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<Relay> relays;
  {
    std::lock_guard lock(relays_mu_);
    relays.swap(relays_);
  }
  for (Relay& r : relays) {
    if (r.client->valid()) ::shutdown(r.client->get(), SHUT_RDWR);
    if (r.upstream->valid()) ::shutdown(r.upstream->get(), SHUT_RDWR);
  }
  for (Relay& r : relays) {
    if (r.thread.joinable()) r.thread.join();
  }
  listener_.reset();
}

FaultMode ChaosProxy::mode_of(std::uint64_t index) const {
  const std::uint32_t weights[6] = {plan_.weight_clean,    plan_.weight_reset,
                                    plan_.weight_truncate, plan_.weight_stall,
                                    plan_.weight_split,    plan_.weight_corrupt};
  std::uint64_t total = 0;
  for (const std::uint32_t w : weights) total += w;
  if (total == 0) return FaultMode::kClean;
  // One generator per connection, seeded from (plan seed, index): the whole
  // fault schedule is a pure function of the seed, independent of timing.
  std::mt19937_64 rng(plan_.seed ^ (index * 0x9e3779b97f4a7c15ull + 1));
  std::uint64_t draw = rng() % total;
  for (std::uint8_t m = 0; m < 6; ++m) {
    if (draw < weights[m]) return static_cast<FaultMode>(m);
    draw -= weights[m];
  }
  return FaultMode::kClean;
}

void ChaosProxy::accept_loop() {
  std::uint64_t index = 0;
  for (;;) {
    auto client = accept_client(listener_);
    if (!client.has_value()) return;  // listener shut down
    const FaultMode mode = mode_of(index++);
    {
      std::lock_guard lock(stats_mu_);
      ++stats_.connections;
      switch (mode) {
        case FaultMode::kClean:
          ++stats_.clean;
          break;
        case FaultMode::kReset:
          ++stats_.resets;
          break;
        case FaultMode::kTruncate:
          ++stats_.truncations;
          break;
        case FaultMode::kStall:
          ++stats_.stalls;
          break;
        case FaultMode::kSplit:
          ++stats_.splits;
          break;
        case FaultMode::kCorrupt:
          ++stats_.corruptions;
          break;
      }
    }
    Relay r;
    r.client = std::make_shared<Fd>(std::move(*client));
    r.upstream = std::make_shared<Fd>();
    r.thread = std::thread([this, client_fd = r.client,
                            upstream_fd = r.upstream, mode,
                            conn = index - 1] {
      try {
        relay(client_fd, upstream_fd, mode, conn);
      } catch (const std::exception&) {
        // A torn connection is chaos working as intended, not a proxy bug.
      }
      if (client_fd->valid()) ::shutdown(client_fd->get(), SHUT_RDWR);
      if (upstream_fd->valid()) ::shutdown(upstream_fd->get(), SHUT_RDWR);
    });
    std::lock_guard lock(relays_mu_);
    relays_.push_back(std::move(r));
  }
}

void ChaosProxy::relay(const std::shared_ptr<Fd>& client,
                       const std::shared_ptr<Fd>& upstream, FaultMode mode,
                       std::uint64_t index) {
  if (mode == FaultMode::kReset) return;  // slam the door unread

  // The Relay entry shares this Fd, so stop() can shut it and unblock a
  // relay wedged in a read.
  *upstream = connect_loopback(upstream_port_);
  const Fd& up = *upstream;

  bool corrupted = false;
  for (;;) {
    auto request = read_frame(*client);
    if (!request.has_value()) return;  // client done
    if (mode == FaultMode::kCorrupt && !corrupted &&
        request->size() > kFrameHeaderBytes) {
      // Flip one seeded bit inside the request PAYLOAD (header untouched so
      // the upstream stream stays framed and the damage is the payload CRC's
      // problem, exactly the surface a flaky NIC would hit). Seeded from
      // (plan seed, connection index) like mode_of, so the drill replays.
      std::mt19937_64 rng(plan_.seed ^ (index * 0x9e3779b97f4a7c15ull + 2));
      const std::size_t payload_bits =
          (request->size() - kFrameHeaderBytes) * 8;
      const std::size_t bit = rng() % payload_bits;
      (*request)[kFrameHeaderBytes + bit / 8] ^=
          static_cast<char>(1u << (bit % 8));
      corrupted = true;
    }
    write_all(up, *request);
    auto reply = read_frame(up);
    if (!reply.has_value()) return;  // server went away

    switch (mode) {
      case FaultMode::kTruncate:
        // Half the frame, then EOF: the client's CRC framing must refuse
        // to treat this as a reply.
        write_all(*client, std::string_view(*reply).substr(0, reply->size() / 2));
        return;
      case FaultMode::kStall: {
        // Swallow the reply and go silent; the client's idle deadline has
        // to be the thing that ends this. Sleep in slices so stop() isn't
        // held hostage by the stall.
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(plan_.stall_ms);
        while (std::chrono::steady_clock::now() < deadline &&
               !stopping_.load(std::memory_order_relaxed)) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        return;
      }
      case FaultMode::kSplit: {
        // Dribble the reply: correct bytes, pathological pacing. This MUST
        // still succeed end-to-end — slow is not wrong, and the client's
        // IDLE (not total) timeout is what makes that true.
        const std::size_t chunk = std::max<std::uint32_t>(1, plan_.split_bytes);
        std::string_view rest(*reply);
        while (!rest.empty()) {
          write_all(*client, rest.substr(0, std::min(chunk, rest.size())));
          rest.remove_prefix(std::min(chunk, rest.size()));
          if (!rest.empty() && plan_.delay_ms != 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(plan_.delay_ms));
          }
        }
        break;  // keep relaying further exchanges
      }
      case FaultMode::kClean:
      case FaultMode::kCorrupt:
        // Corruption happened on the way UP; the server's typed rejection
        // (and its connection drop) comes back verbatim.
        write_all(*client, *reply);
        break;
      case FaultMode::kReset:
        return;  // unreachable (handled above)
    }
  }
}

ChaosProxy::Stats ChaosProxy::stats() const {
  std::lock_guard lock(stats_mu_);
  return stats_;
}

}  // namespace datanet::server
