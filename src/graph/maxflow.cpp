#include "graph/maxflow.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace datanet::graph {

MaxFlow::MaxFlow(std::uint32_t num_vertices) : adj_(num_vertices) {
  if (num_vertices < 2) throw std::invalid_argument("MaxFlow: need >= 2 vertices");
}

std::size_t MaxFlow::add_edge(std::uint32_t u, std::uint32_t v,
                              std::uint64_t capacity) {
  if (u >= adj_.size() || v >= adj_.size()) {
    throw std::out_of_range("MaxFlow::add_edge");
  }
  adj_[u].push_back(Edge{v, capacity, capacity, adj_[v].size()});
  adj_[v].push_back(Edge{u, 0, 0, adj_[u].size() - 1});
  edge_refs_.emplace_back(u, adj_[u].size() - 1);
  return edge_refs_.size() - 1;
}

bool MaxFlow::bfs(std::uint32_t s, std::uint32_t t) {
  level_.assign(adj_.size(), -1);
  std::deque<std::uint32_t> q{s};
  level_[s] = 0;
  while (!q.empty()) {
    const std::uint32_t v = q.front();
    q.pop_front();
    for (const Edge& e : adj_[v]) {
      if (e.cap > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        q.push_back(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

std::uint64_t MaxFlow::dfs(std::uint32_t v, std::uint32_t t, std::uint64_t pushed) {
  if (v == t) return pushed;
  for (std::size_t& i = iter_[v]; i < adj_[v].size(); ++i) {
    Edge& e = adj_[v][i];
    if (e.cap == 0 || level_[e.to] != level_[v] + 1) continue;
    const std::uint64_t d = dfs(e.to, t, std::min(pushed, e.cap));
    if (d > 0) {
      e.cap -= d;
      adj_[e.to][e.rev].cap += d;
      return d;
    }
  }
  return 0;
}

std::uint64_t MaxFlow::solve(std::uint32_t s, std::uint32_t t) {
  if (s == t) throw std::invalid_argument("MaxFlow::solve: s == t");
  std::uint64_t flow = 0;
  while (bfs(s, t)) {
    iter_.assign(adj_.size(), 0);
    while (const std::uint64_t pushed =
               dfs(s, t, std::numeric_limits<std::uint64_t>::max())) {
      flow += pushed;
    }
  }
  return flow;
}

std::uint64_t MaxFlow::flow_on(std::size_t edge_index) const {
  if (edge_index >= edge_refs_.size()) throw std::out_of_range("flow_on");
  const auto [u, idx] = edge_refs_[edge_index];
  const Edge& e = adj_[u][idx];
  return e.original - e.cap;
}

}  // namespace datanet::graph
