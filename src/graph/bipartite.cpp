#include "graph/bipartite.hpp"

#include <stdexcept>

namespace datanet::graph {

BipartiteGraph::BipartiteGraph(std::uint32_t num_nodes,
                               std::vector<BlockVertex> blocks)
    : num_nodes_(num_nodes), blocks_(std::move(blocks)) {
  if (num_nodes_ == 0) throw std::invalid_argument("BipartiteGraph: no nodes");
  node_to_blocks_.resize(num_nodes_);
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    total_weight_ += blocks_[i].weight;
    for (const dfs::NodeId n : blocks_[i].hosts) {
      if (n >= num_nodes_) throw std::invalid_argument("BipartiteGraph: bad host");
      node_to_blocks_[n].push_back(i);
    }
  }
}

const BlockVertex& BipartiteGraph::block(std::size_t idx) const {
  if (idx >= blocks_.size()) throw std::out_of_range("BipartiteGraph::block");
  return blocks_[idx];
}

const std::vector<std::size_t>& BipartiteGraph::blocks_on(dfs::NodeId node) const {
  if (node >= node_to_blocks_.size()) {
    throw std::out_of_range("BipartiteGraph::blocks_on");
  }
  return node_to_blocks_[node];
}

}  // namespace datanet::graph
