#pragma once
// Dinic max-flow on an integer-capacity network. The paper (Section IV-B)
// notes that in a homogeneous cluster an optimal locality-preserving task
// assignment can be computed with the Ford–Fulkerson method; Dinic is the
// standard strongly polynomial refinement of that idea and is what we use
// for the FlowScheduler.

#include <cstdint>
#include <vector>

namespace datanet::graph {

class MaxFlow {
 public:
  explicit MaxFlow(std::uint32_t num_vertices);

  // Adds a directed edge u -> v with `capacity`; returns the edge index,
  // usable with flow_on() after solving.
  std::size_t add_edge(std::uint32_t u, std::uint32_t v, std::uint64_t capacity);

  // Computes max flow from s to t. May be called once per instance.
  std::uint64_t solve(std::uint32_t s, std::uint32_t t);

  // Flow routed through the edge returned by add_edge.
  [[nodiscard]] std::uint64_t flow_on(std::size_t edge_index) const;

  [[nodiscard]] std::uint32_t num_vertices() const noexcept {
    return static_cast<std::uint32_t>(adj_.size());
  }

 private:
  struct Edge {
    std::uint32_t to;
    std::uint64_t cap;       // residual capacity
    std::uint64_t original;  // initial capacity
    std::size_t rev;         // index of reverse edge in adj_[to]
  };

  bool bfs(std::uint32_t s, std::uint32_t t);
  std::uint64_t dfs(std::uint32_t v, std::uint32_t t, std::uint64_t pushed);

  std::vector<std::vector<Edge>> adj_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
  std::vector<std::pair<std::uint32_t, std::size_t>> edge_refs_;  // (u, idx in adj_[u])
};

}  // namespace datanet::graph
