#pragma once
// Flow-based balanced block->node assignment (the paper's Ford–Fulkerson
// remark, Section IV-B). We binary-search the per-node capacity C, build
//   source -> block_j (cap w_j),  block_j -> node_i (cap w_j, replicas only),
//   node_i -> sink (cap C),
// and accept the smallest C whose max flow saturates the total weight. The
// fractional optimum is rounded by assigning each block to the replica that
// carried the largest share of its flow — blocks are atomic tasks, so the
// rounded makespan can exceed C by at most one block weight.

#include <cstdint>
#include <vector>

#include "graph/bipartite.hpp"

namespace datanet::graph {

struct AssignmentResult {
  // assignment[k] = node chosen for graph.block(k).
  std::vector<dfs::NodeId> assignment;
  // Per-node total assigned weight.
  std::vector<std::uint64_t> node_load;
  // The capacity bound the flow certified (before rounding).
  std::uint64_t fractional_capacity = 0;
};

[[nodiscard]] AssignmentResult balanced_assignment(const BipartiteGraph& graph);

}  // namespace datanet::graph
