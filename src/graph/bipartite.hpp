#pragma once
// Bipartite graph G = (CN, B, E) of Section IV-A: cluster nodes × block
// files, an edge (cn_i, b_j) iff node cn_i hosts a replica of b_j, edge
// weight |b_j ∩ s| (the size of the target sub-dataset in that block).
// This is the structure both the greedy Algorithm 1 scheduler and the
// flow-based scheduler operate on.

#include <cstdint>
#include <vector>

#include "dfs/mini_dfs.hpp"

namespace datanet::graph {

struct BlockVertex {
  dfs::BlockId block_id = 0;
  std::uint64_t weight = 0;          // |b ∩ s| (estimated or exact bytes)
  std::vector<dfs::NodeId> hosts;    // replicas
};

class BipartiteGraph {
 public:
  BipartiteGraph(std::uint32_t num_nodes, std::vector<BlockVertex> blocks);

  [[nodiscard]] std::uint32_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::size_t num_blocks() const noexcept { return blocks_.size(); }
  [[nodiscard]] const BlockVertex& block(std::size_t idx) const;
  [[nodiscard]] const std::vector<BlockVertex>& blocks() const noexcept {
    return blocks_;
  }

  // Indices of blocks hosted on `node` (the d_i sets of Algorithm 1).
  [[nodiscard]] const std::vector<std::size_t>& blocks_on(dfs::NodeId node) const;

  [[nodiscard]] std::uint64_t total_weight() const noexcept { return total_weight_; }

  // Build the graph for one sub-dataset from the DFS replica map plus a
  // per-block weight lookup; blocks with zero weight can optionally be kept
  // (the locality baseline must still process them: it does not know they
  // are empty).
  template <typename WeightFn>
  static BipartiteGraph from_dfs(const dfs::MiniDfs& dfs, const std::string& path,
                                 WeightFn&& weight_of, bool keep_zero_weight) {
    std::vector<BlockVertex> blocks;
    const auto& ids = dfs.blocks_of(path);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const std::uint64_t w = weight_of(i, ids[i]);
      if (w == 0 && !keep_zero_weight) continue;
      // Snapshot, not reference: graph building may race background healing
      // (datanetd jobs vs ReplicationMonitor), and the replica vector
      // mutates under repair.
      blocks.push_back(BlockVertex{.block_id = ids[i],
                                   .weight = w,
                                   .hosts = dfs.replicas_snapshot(ids[i])});
    }
    return BipartiteGraph(dfs.topology().num_nodes(), std::move(blocks));
  }

 private:
  std::uint32_t num_nodes_;
  std::vector<BlockVertex> blocks_;
  std::vector<std::vector<std::size_t>> node_to_blocks_;
  std::uint64_t total_weight_ = 0;
};

}  // namespace datanet::graph
