#include "graph/assignment.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "graph/maxflow.hpp"

namespace datanet::graph {

namespace {

// Try capacity C; on success fill per-(block,replica) flows.
bool feasible(const BipartiteGraph& g, std::uint64_t capacity,
              std::vector<std::vector<std::uint64_t>>* replica_flow) {
  const auto nb = g.num_blocks();
  const std::uint32_t nn = g.num_nodes();
  // Vertex ids: 0 = source, 1..nb = blocks, nb+1..nb+nn = nodes, last = sink.
  const std::uint32_t source = 0;
  const auto sink = static_cast<std::uint32_t>(nb + nn + 1);
  MaxFlow mf(sink + 1);

  std::vector<std::vector<std::size_t>> edge_idx(nb);
  for (std::size_t j = 0; j < nb; ++j) {
    const auto& blk = g.block(j);
    mf.add_edge(source, static_cast<std::uint32_t>(1 + j), blk.weight);
    for (const dfs::NodeId n : blk.hosts) {
      edge_idx[j].push_back(mf.add_edge(static_cast<std::uint32_t>(1 + j),
                                        static_cast<std::uint32_t>(1 + nb + n),
                                        blk.weight));
    }
  }
  for (std::uint32_t n = 0; n < nn; ++n) {
    mf.add_edge(static_cast<std::uint32_t>(1 + nb + n), sink, capacity);
  }
  const std::uint64_t flow = mf.solve(source, sink);
  if (flow < g.total_weight()) return false;
  if (replica_flow) {
    replica_flow->assign(nb, {});
    for (std::size_t j = 0; j < nb; ++j) {
      for (const std::size_t e : edge_idx[j]) {
        (*replica_flow)[j].push_back(mf.flow_on(e));
      }
    }
  }
  return true;
}

}  // namespace

AssignmentResult balanced_assignment(const BipartiteGraph& g) {
  for (std::size_t j = 0; j < g.num_blocks(); ++j) {
    if (g.block(j).hosts.empty()) {
      throw std::invalid_argument("balanced_assignment: block without replicas");
    }
  }

  const std::uint64_t total = g.total_weight();
  const std::uint64_t nn = g.num_nodes();
  std::uint64_t lo = (total + nn - 1) / nn;  // perfect split lower bound
  std::uint64_t hi = std::max<std::uint64_t>(total, 1);
  if (lo == 0) lo = 1;

  std::vector<std::vector<std::uint64_t>> flows;
  // Find the smallest feasible capacity; `hi` (everything on one node's
  // replicas) is feasible only if replicas cover the load, but capacity =
  // total is always feasible because each block can route to any replica.
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (feasible(g, mid, nullptr)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  feasible(g, hi, &flows);

  AssignmentResult res;
  res.fractional_capacity = hi;
  res.assignment.resize(g.num_blocks());
  res.node_load.assign(nn, 0);
  for (std::size_t j = 0; j < g.num_blocks(); ++j) {
    const auto& hosts = g.block(j).hosts;
    // Pick the replica with the most routed flow; break ties toward the
    // currently least-loaded node so rounding stays balanced.
    std::size_t best = 0;
    for (std::size_t r = 1; r < hosts.size(); ++r) {
      if (flows[j][r] > flows[j][best] ||
          (flows[j][r] == flows[j][best] &&
           res.node_load[hosts[r]] < res.node_load[hosts[best]])) {
        best = r;
      }
    }
    res.assignment[j] = hosts[best];
    res.node_load[hosts[best]] += g.block(j).weight;
  }
  return res;
}

}  // namespace datanet::graph
