#include "apps/distinct_users.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "apps/sessionize.hpp"  // extract_field
#include "bloom/hyperloglog.hpp"
#include "common/hash.hpp"

namespace datanet::apps {

namespace {

class DistinctMapper final : public mapred::Mapper {
 public:
  DistinctMapper(std::string field_prefix, std::uint32_t precision)
      : field_prefix_(std::move(field_prefix)), precision_(precision) {}

  void map(const workload::RecordView& record, mapred::Emitter& out) override {
    (void)out;
    const auto entity = extract_field(record.payload, field_prefix_);
    if (entity.empty()) return;
    auto [it, inserted] =
        sketches_.try_emplace(std::string(record.key), precision_);
    it->second.insert(common::hash_bytes(entity));
  }

  void finish(mapred::Emitter& out) override {
    for (const auto& [key, sketch] : sketches_) {
      out.emit(key, sketch.serialize());
    }
    sketches_.clear();
  }

 private:
  std::string field_prefix_;
  std::uint32_t precision_;
  std::unordered_map<std::string, bloom::HyperLogLog> sketches_;
};

class MergeReducer final : public mapred::Reducer {
 public:
  explicit MergeReducer(std::uint32_t precision) : precision_(precision) {}

  void reduce(const mapred::Key& key, std::span<const mapred::Value> values,
              mapred::Emitter& out) override {
    bloom::HyperLogLog merged(precision_);
    for (const auto& v : values) {
      merged.merge(bloom::HyperLogLog::deserialize(v));
    }
    out.emit(key, std::to_string(
                      static_cast<std::uint64_t>(std::llround(merged.estimate()))));
  }

 private:
  std::uint32_t precision_;
};

// Combiner: merge sketches within a task's output, re-emitting sketches.
class MergeCombiner final : public mapred::Reducer {
 public:
  explicit MergeCombiner(std::uint32_t precision) : precision_(precision) {}

  void reduce(const mapred::Key& key, std::span<const mapred::Value> values,
              mapred::Emitter& out) override {
    bloom::HyperLogLog merged(precision_);
    for (const auto& v : values) {
      merged.merge(bloom::HyperLogLog::deserialize(v));
    }
    out.emit(key, merged.serialize());
  }

 private:
  std::uint32_t precision_;
};

}  // namespace

mapred::Job make_distinct_users_job(std::string field_prefix,
                                    std::uint32_t precision) {
  if (field_prefix.empty()) throw std::invalid_argument("empty field prefix");
  mapred::Job job;
  job.config.name = "DistinctUsers";
  job.config.num_reducers = 8;
  job.config.cost.io_s_per_mib = 0.02;
  job.config.cost.cpu_s_per_mib = 0.25;  // hash + sketch update per record
  job.config.cost.cpu_us_per_record = 1.2;
  job.config.cost.task_overhead_s = 1.0;
  job.mapper_factory = [field_prefix, precision] {
    return std::make_unique<DistinctMapper>(field_prefix, precision);
  };
  job.reducer_factory = [precision] {
    return std::make_unique<MergeReducer>(precision);
  };
  job.combiner_factory = [precision] {
    return std::make_unique<MergeCombiner>(precision);
  };
  return job;
}

}  // namespace datanet::apps
