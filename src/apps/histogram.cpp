#include "apps/histogram.hpp"

#include <charconv>
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/string_util.hpp"

namespace datanet::apps {

namespace {

class HistogramMapper final : public mapred::Mapper {
 public:
  void map(const workload::RecordView& record, mapred::Emitter& out) override {
    (void)out;
    words_.clear();
    common::tokenize_words(record.payload, words_);
    for (const auto& w : words_) {
      ++length_counts_[w.size()];
      ++total_;
    }
  }

  void finish(mapred::Emitter& out) override {
    for (const auto& [len, count] : length_counts_) {
      char key[24];
      std::snprintf(key, sizeof(key), "len_%03zu", len);
      out.emit(key, std::to_string(count));
    }
    out.emit("total_words", std::to_string(total_));
    length_counts_.clear();
    total_ = 0;
  }

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::size_t, std::uint64_t> length_counts_;
  std::uint64_t total_ = 0;
};

class SumReducer final : public mapred::Reducer {
 public:
  void reduce(const mapred::Key& key, std::span<const mapred::Value> values,
              mapred::Emitter& out) override {
    std::uint64_t sum = 0;
    for (const auto& v : values) {
      std::uint64_t x = 0;
      std::from_chars(v.data(), v.data() + v.size(), x);
      sum += x;
    }
    out.emit(key, std::to_string(sum));
  }
};

}  // namespace

mapred::Job make_word_histogram_job() {
  mapred::Job job;
  job.config.name = "AggregateWordHistogram";
  job.config.cost.io_s_per_mib = 0.02;
  job.config.cost.cpu_s_per_mib = 0.33;  // tokenize + aggregate
  job.config.cost.cpu_us_per_record = 1.2;
  job.config.cost.task_overhead_s = 1.0;
  job.mapper_factory = [] { return std::make_unique<HistogramMapper>(); };
  job.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  job.combiner_factory = [] { return std::make_unique<SumReducer>(); };
  return job;
}

}  // namespace datanet::apps
