#pragma once
// Sub-dataset selection (the first phase of every experiment in Section V-A:
// "launch map tasks to filter out our target sub-dataset and store them
// locally on the cluster nodes"). Provided both as a MapReduce statistics
// job (per-key byte totals) and as the record predicate used by the DataNet
// facade when materializing node-local filtered data.

#include <string>

#include "mapred/job.hpp"

namespace datanet::apps {

// True iff the record belongs to sub-dataset `key`.
[[nodiscard]] inline bool matches_subdataset(const workload::RecordView& record,
                                             std::string_view key) {
  return record.key == key;
}

// MapReduce job: emits (key, encoded_size) for records of `target_key`
// (empty target = all keys); reducer sums to per-sub-dataset byte totals.
// Pure scan — the cheapest cost profile (I/O dominated).
[[nodiscard]] mapred::Job make_filter_stats_job(std::string target_key);

}  // namespace datanet::apps
