#include "apps/topk_search.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <memory>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/string_util.hpp"

namespace datanet::apps {

namespace {

using Profile = std::unordered_map<std::uint32_t, double>;

Profile bigram_profile(std::string_view s) {
  Profile p;
  for (std::size_t i = 0; i + 1 < s.size(); ++i) {
    const std::uint32_t gram = (static_cast<unsigned char>(s[i]) << 8) |
                               static_cast<unsigned char>(s[i + 1]);
    p[gram] += 1.0;
  }
  return p;
}

double norm(const Profile& p) {
  double s = 0.0;
  for (const auto& [_, v] : p) s += v * v;
  return std::sqrt(s);
}

struct Scored {
  double score;
  std::string payload;
  // Min-heap ordering: the worst of the kept K sits on top. Deterministic
  // tie-break on payload keeps parallel runs stable.
  bool operator<(const Scored& other) const {
    if (score != other.score) return score > other.score;
    return payload < other.payload;
  }
};

class TopKMapper final : public mapred::Mapper {
 public:
  TopKMapper(std::shared_ptr<const Profile> query, double query_norm,
             std::uint32_t k)
      : query_(std::move(query)), query_norm_(query_norm), k_(k) {}

  void map(const workload::RecordView& record, mapred::Emitter& out) override {
    (void)out;
    const Profile p = bigram_profile(record.payload);
    const double n = norm(p);
    if (n == 0.0 || query_norm_ == 0.0) return;
    // Iterate the smaller profile for the dot product.
    const Profile& small = p.size() <= query_->size() ? p : *query_;
    const Profile& large = p.size() <= query_->size() ? *query_ : p;
    double dot = 0.0;
    for (const auto& [gram, v] : small) {
      const auto it = large.find(gram);
      if (it != large.end()) dot += v * it->second;
    }
    const double score = dot / (n * query_norm_);
    heap_.push(Scored{score, std::string(record.payload)});
    if (heap_.size() > k_) heap_.pop();
  }

  void finish(mapred::Emitter& out) override {
    while (!heap_.empty()) {
      char value[32];
      std::snprintf(value, sizeof(value), "%.6f", heap_.top().score);
      out.emit("topk", std::string(value) + "\t" + heap_.top().payload);
      heap_.pop();
    }
  }

 private:
  std::shared_ptr<const Profile> query_;
  double query_norm_;
  std::uint32_t k_;
  std::priority_queue<Scored> heap_;
};

class TopKReducer final : public mapred::Reducer {
 public:
  explicit TopKReducer(std::uint32_t k) : k_(k) {}

  void reduce(const mapred::Key& key, std::span<const mapred::Value> values,
              mapred::Emitter& out) override {
    if (key != "topk") return;
    std::vector<std::pair<double, std::string_view>> all;
    all.reserve(values.size());
    for (const auto& v : values) {
      const auto tab = v.find('\t');
      if (tab == std::string::npos) continue;
      const auto score = common::parse_double(v.substr(0, tab));
      if (!score) continue;
      all.emplace_back(*score, std::string_view(v).substr(tab + 1));
    }
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    const std::size_t n = std::min<std::size_t>(k_, all.size());
    for (std::size_t i = 0; i < n; ++i) {
      char rank[24];
      std::snprintf(rank, sizeof(rank), "topk_%02zu", i);
      char score[32];
      std::snprintf(score, sizeof(score), "%.6f", all[i].first);
      out.emit(rank, std::string(score) + "\t" + std::string(all[i].second));
    }
  }

 private:
  std::uint32_t k_;
};

}  // namespace

double bigram_cosine(std::string_view a, std::string_view b) {
  const Profile pa = bigram_profile(a);
  const Profile pb = bigram_profile(b);
  const double na = norm(pa), nb = norm(pb);
  if (na == 0.0 || nb == 0.0) return 0.0;
  double dot = 0.0;
  for (const auto& [gram, v] : pa) {
    const auto it = pb.find(gram);
    if (it != pb.end()) dot += v * it->second;
  }
  return dot / (na * nb);
}

mapred::Job make_topk_search_job(std::string query, std::uint32_t k) {
  if (k == 0) throw std::invalid_argument("k == 0");
  if (query.empty()) throw std::invalid_argument("empty query");
  auto profile = std::make_shared<const Profile>(bigram_profile(query));
  const double query_norm = norm(*profile);

  mapred::Job job;
  job.config.name = "TopKSearch";
  job.config.num_reducers = 1;  // single global merge, tiny data
  job.config.cost.io_s_per_mib = 0.02;
  job.config.cost.cpu_s_per_mib = 0.90;  // similarity is the dominant cost
  job.config.cost.cpu_us_per_record = 8.0;
  job.config.cost.task_overhead_s = 1.0;
  job.mapper_factory = [profile, query_norm, k] {
    return std::make_unique<TopKMapper>(profile, query_norm, k);
  };
  job.reducer_factory = [k] { return std::make_unique<TopKReducer>(k); };
  // No combiner: each task already emits at most K pairs.
  return job;
}

}  // namespace datanet::apps
