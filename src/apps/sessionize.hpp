#pragma once
// User sessionization (the paper's introductory motivating analysis: "the
// analysis on the webpage click streams needs to perform user sessionization
// analysis"). Records are grouped by an entity field extracted from the
// payload (e.g. "client=" for web logs, "actor=" for GitHub events); each
// entity's timestamps are split into sessions wherever the gap between
// consecutive events exceeds `session_gap_seconds`.

#include <cstdint>
#include <string>

#include "mapred/job.hpp"

namespace datanet::apps {

// Extract the value of `field_prefix` (e.g. "client=") from a payload of
// space-separated fields; empty view if absent. Exposed for tests.
[[nodiscard]] std::string_view extract_field(std::string_view payload,
                                             std::string_view field_prefix);

// Output per entity: "sessions=<n> events=<m> span=<total in-session secs>".
// Keys are the entity values; records without the field are skipped.
[[nodiscard]] mapred::Job make_sessionize_job(std::string field_prefix,
                                              std::uint64_t session_gap_seconds);

}  // namespace datanet::apps
