#pragma once
// Top-K Search (Section V-A): find the K records most similar to a query
// sequence. Similarity is cosine over character-bigram frequency vectors —
// the heavy per-record computation that makes this the most CPU-intensive of
// the four jobs (largest DataNet gain in Fig. 5a).

#include <cstdint>
#include <string>

#include "mapred/job.hpp"

namespace datanet::apps {

// Cosine similarity of the character-bigram profiles of two strings; in
// [0, 1], 1 for identical non-empty profiles. Exposed for tests.
[[nodiscard]] double bigram_cosine(std::string_view a, std::string_view b);

// Each map task keeps a local top-K heap (by similarity to `query`) and
// emits it at finish; a single-key reduce merges to the global top K.
// Output: keys "topk_00" .. ordered best-first, values "score<TAB>payload".
[[nodiscard]] mapred::Job make_topk_search_job(std::string query, std::uint32_t k);

}  // namespace datanet::apps
