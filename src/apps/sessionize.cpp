#include "apps/sessionize.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/string_util.hpp"

namespace datanet::apps {

std::string_view extract_field(std::string_view payload,
                               std::string_view field_prefix) {
  std::size_t pos = 0;
  while (pos < payload.size()) {
    // Field must start at the beginning or after a space.
    const std::size_t hit = payload.find(field_prefix, pos);
    if (hit == std::string_view::npos) return {};
    if (hit == 0 || payload[hit - 1] == ' ') {
      const std::size_t start = hit + field_prefix.size();
      std::size_t end = payload.find(' ', start);
      if (end == std::string_view::npos) end = payload.size();
      return payload.substr(start, end - start);
    }
    pos = hit + 1;
  }
  return {};
}

namespace {

class SessionizeMapper final : public mapred::Mapper {
 public:
  explicit SessionizeMapper(std::string field_prefix)
      : field_prefix_(std::move(field_prefix)) {}

  void map(const workload::RecordView& record, mapred::Emitter& out) override {
    const auto entity = extract_field(record.payload, field_prefix_);
    if (entity.empty()) return;
    out.emit(std::string(entity), std::to_string(record.timestamp));
  }

 private:
  std::string field_prefix_;
};

class SessionizeReducer final : public mapred::Reducer {
 public:
  explicit SessionizeReducer(std::uint64_t gap) : gap_(gap) {}

  void reduce(const mapred::Key& key, std::span<const mapred::Value> values,
              mapred::Emitter& out) override {
    timestamps_.clear();
    timestamps_.reserve(values.size());
    for (const auto& v : values) {
      if (const auto ts = common::parse_u64(v)) timestamps_.push_back(*ts);
    }
    if (timestamps_.empty()) return;
    std::sort(timestamps_.begin(), timestamps_.end());

    std::uint64_t sessions = 1;
    std::uint64_t span = 0;
    std::uint64_t session_start = timestamps_.front();
    for (std::size_t i = 1; i < timestamps_.size(); ++i) {
      if (timestamps_[i] - timestamps_[i - 1] > gap_) {
        span += timestamps_[i - 1] - session_start;
        session_start = timestamps_[i];
        ++sessions;
      }
    }
    span += timestamps_.back() - session_start;
    out.emit(key, "sessions=" + std::to_string(sessions) +
                      " events=" + std::to_string(timestamps_.size()) +
                      " span=" + std::to_string(span));
  }

 private:
  std::uint64_t gap_;
  std::vector<std::uint64_t> timestamps_;
};

}  // namespace

mapred::Job make_sessionize_job(std::string field_prefix,
                                std::uint64_t session_gap_seconds) {
  if (field_prefix.empty()) throw std::invalid_argument("empty field prefix");
  if (session_gap_seconds == 0) throw std::invalid_argument("zero session gap");
  mapred::Job job;
  job.config.name = "Sessionize";
  job.config.num_reducers = 16;  // many entities, small values
  job.config.cost.io_s_per_mib = 0.02;
  job.config.cost.cpu_s_per_mib = 0.20;  // parse + per-entity sort
  job.config.cost.cpu_us_per_record = 1.5;
  job.config.cost.task_overhead_s = 1.0;
  job.mapper_factory = [field_prefix] {
    return std::make_unique<SessionizeMapper>(field_prefix);
  };
  job.reducer_factory = [session_gap_seconds] {
    return std::make_unique<SessionizeReducer>(session_gap_seconds);
  };
  // No combiner: session splitting needs the complete, sorted timestamp set.
  return job;
}

}  // namespace datanet::apps
