#pragma once
// Aggregate Word Histogram (Section V-A): the MapReduce aggregate plug-in
// that histograms the words of the input — here both the distribution of
// word lengths and the occurrence-frequency deciles of distinct words.

#include "mapred/job.hpp"

namespace datanet::apps {

// Output keys: "len_<n>" -> number of word occurrences of length n, and
// "total_words" / "distinct_hint" summary counters.
[[nodiscard]] mapred::Job make_word_histogram_job();

}  // namespace datanet::apps
