#include "apps/moving_average.hpp"

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "common/string_util.hpp"

namespace datanet::apps {

namespace {

// Extract the numeric rating from a payload of the form "rating=N ...".
// Returns -1 when absent.
int parse_rating(std::string_view payload) {
  constexpr std::string_view kPrefix = "rating=";
  if (payload.substr(0, kPrefix.size()) != kPrefix) return -1;
  int value = 0;
  std::size_t i = kPrefix.size();
  bool any = false;
  while (i < payload.size() && payload[i] >= '0' && payload[i] <= '9') {
    value = value * 10 + (payload[i] - '0');
    ++i;
    any = true;
  }
  return any ? value : -1;
}

class MovingAverageMapper final : public mapred::Mapper {
 public:
  explicit MovingAverageMapper(std::uint64_t window_seconds)
      : window_(window_seconds) {}

  void map(const workload::RecordView& record, mapred::Emitter& out) override {
    const int rating = parse_rating(record.payload);
    if (rating < 0) return;
    const std::uint64_t w = record.timestamp / window_;
    auto& agg = partial_[w];
    agg.first += static_cast<std::uint64_t>(rating);
    agg.second += 1;
    (void)out;
  }

  void finish(mapred::Emitter& out) override {
    for (const auto& [w, agg] : partial_) {
      char key[24];
      std::snprintf(key, sizeof(key), "%012llu",
                    static_cast<unsigned long long>(w));
      out.emit(key, std::to_string(agg.first) + "," + std::to_string(agg.second));
    }
    partial_.clear();
  }

 private:
  std::uint64_t window_;
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
      partial_;
};

class AverageReducer final : public mapred::Reducer {
 public:
  void reduce(const mapred::Key& key, std::span<const mapred::Value> values,
              mapred::Emitter& out) override {
    std::uint64_t sum = 0, count = 0;
    for (const auto& v : values) {
      const auto comma = v.find(',');
      if (comma == std::string::npos) continue;
      sum += common::parse_u64(v.substr(0, comma)).value_or(0);
      count += common::parse_u64(v.substr(comma + 1)).value_or(0);
    }
    if (count == 0) return;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4f",
                  static_cast<double>(sum) / static_cast<double>(count));
    out.emit(key, buf);
  }
};

// Combiner keeps partials as "sum,count" without averaging.
class PartialSumCombiner final : public mapred::Reducer {
 public:
  void reduce(const mapred::Key& key, std::span<const mapred::Value> values,
              mapred::Emitter& out) override {
    std::uint64_t sum = 0, count = 0;
    for (const auto& v : values) {
      const auto comma = v.find(',');
      if (comma == std::string::npos) continue;
      sum += common::parse_u64(v.substr(0, comma)).value_or(0);
      count += common::parse_u64(v.substr(comma + 1)).value_or(0);
    }
    out.emit(key, std::to_string(sum) + "," + std::to_string(count));
  }
};

}  // namespace

mapred::Job make_moving_average_job(std::uint64_t window_seconds) {
  if (window_seconds == 0) throw std::invalid_argument("window_seconds == 0");
  mapred::Job job;
  job.config.name = "MovingAverage";
  job.config.cost.io_s_per_mib = 0.02;
  job.config.cost.cpu_s_per_mib = 0.01;  // iterate-only workload
  job.config.cost.cpu_us_per_record = 0.1;
  job.config.cost.task_overhead_s = 4.0;  // fixed startup dominates (Fig. 6b)
  job.mapper_factory = [window_seconds] {
    return std::make_unique<MovingAverageMapper>(window_seconds);
  };
  job.reducer_factory = [] { return std::make_unique<AverageReducer>(); };
  job.combiner_factory = [] { return std::make_unique<PartialSumCombiner>(); };
  return job;
}

}  // namespace datanet::apps
