#pragma once
// Word Count (Section V-A): counts word occurrences in the payloads of the
// input sub-dataset. The canonical MapReduce benchmark; moderate per-byte
// CPU (tokenize + combine).

#include "mapred/job.hpp"

namespace datanet::apps {

// Mapper emits (word, "1") per token; combiner/reducer sum counts.
[[nodiscard]] mapred::Job make_word_count_job();

}  // namespace datanet::apps
