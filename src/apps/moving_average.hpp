#pragma once
// Moving Average (Section V-A): a series of rating averages over fixed time
// windows of the sub-dataset — trend smoothing. Computationally the lightest
// of the four jobs: one parse per record, tiny intermediate state.

#include <cstdint>

#include "mapred/job.hpp"

namespace datanet::apps {

// Mapper emits (window_index, "sum,count") partials; reducer averages. The
// output key is the zero-padded window index, value the mean rating.
[[nodiscard]] mapred::Job make_moving_average_job(std::uint64_t window_seconds);

}  // namespace datanet::apps
