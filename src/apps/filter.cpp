#include "apps/filter.hpp"

#include <charconv>
#include <cstdint>
#include <memory>

namespace datanet::apps {

namespace {

class FilterStatsMapper final : public mapred::Mapper {
 public:
  explicit FilterStatsMapper(std::string target) : target_(std::move(target)) {}

  void map(const workload::RecordView& record, mapred::Emitter& out) override {
    if (!target_.empty() && record.key != target_) {
      ++filtered_out_;
      return;
    }
    ++matched_;
    out.emit(std::string(record.key), std::to_string(record.encoded_size()));
  }

  // Counter totals are flushed once per task, not bumped per record — this
  // mapper runs over the whole raw input on the selection hot path.
  void finish(mapred::Emitter& out) override {
    if (filtered_out_ > 0) out.count("records_filtered_out", filtered_out_);
    if (matched_ > 0) out.count("records_matched", matched_);
  }

 private:
  std::string target_;
  std::uint64_t filtered_out_ = 0;
  std::uint64_t matched_ = 0;
};

class SumReducer final : public mapred::Reducer {
 public:
  void reduce(const mapred::Key& key, std::span<const mapred::Value> values,
              mapred::Emitter& out) override {
    std::uint64_t sum = 0;
    for (const auto& v : values) {
      std::uint64_t x = 0;
      std::from_chars(v.data(), v.data() + v.size(), x);
      sum += x;
    }
    out.emit(key, std::to_string(sum));
  }
};

}  // namespace

mapred::Job make_filter_stats_job(std::string target_key) {
  mapred::Job job;
  job.config.name = "FilterStats";
  job.config.cost.io_s_per_mib = 0.02;
  job.config.cost.cpu_s_per_mib = 0.005;  // pure scan
  job.config.cost.cpu_us_per_record = 0.2;
  job.config.cost.task_overhead_s = 0.5;
  job.mapper_factory = [target_key] {
    return std::make_unique<FilterStatsMapper>(target_key);
  };
  job.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  job.combiner_factory = [] { return std::make_unique<SumReducer>(); };
  return job;
}

}  // namespace datanet::apps
