#include "apps/word_count.hpp"

#include <charconv>
#include <memory>
#include <vector>

#include "common/string_util.hpp"

namespace datanet::apps {

namespace {

class WordCountMapper final : public mapred::Mapper {
 public:
  void map(const workload::RecordView& record, mapred::Emitter& out) override {
    words_.clear();
    common::tokenize_words(record.payload, words_);
    for (auto& w : words_) out.emit(std::move(w), "1");
  }

 private:
  std::vector<std::string> words_;
};

class SumReducer final : public mapred::Reducer {
 public:
  void reduce(const mapred::Key& key, std::span<const mapred::Value> values,
              mapred::Emitter& out) override {
    std::uint64_t sum = 0;
    for (const auto& v : values) {
      std::uint64_t x = 0;
      std::from_chars(v.data(), v.data() + v.size(), x);
      sum += x;
    }
    out.emit(key, std::to_string(sum));
  }
};

}  // namespace

mapred::Job make_word_count_job() {
  mapred::Job job;
  job.config.name = "WordCount";
  job.config.cost.io_s_per_mib = 0.02;
  job.config.cost.cpu_s_per_mib = 0.30;  // tokenization + combining
  job.config.cost.cpu_us_per_record = 1.0;
  job.config.cost.task_overhead_s = 1.0;
  job.mapper_factory = [] { return std::make_unique<WordCountMapper>(); };
  job.reducer_factory = [] { return std::make_unique<SumReducer>(); };
  job.combiner_factory = [] { return std::make_unique<SumReducer>(); };
  return job;
}

}  // namespace datanet::apps
