#pragma once
// Distinct-entity counting per sub-dataset key: "how many unique users
// reviewed this movie / clients hit this page?" — the classic companion to
// sessionization in log analytics. Each map task keeps one HyperLogLog per
// key seen in its split and emits the serialized sketch; the reducer merges
// sketches, so the job shuffles O(keys x sketch) bytes instead of O(events).

#include <cstdint>
#include <string>

#include "mapred/job.hpp"

namespace datanet::apps {

// Output per record key: the estimated number of distinct values of
// `field_prefix` (e.g. "client=", "actor=") among its records, as a decimal
// integer string. Precision controls sketch size/accuracy (see HyperLogLog).
[[nodiscard]] mapred::Job make_distinct_users_job(std::string field_prefix,
                                                  std::uint32_t precision = 12);

}  // namespace datanet::apps
