#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

namespace datanet::common {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

TextTable& TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == '%' || c == 'e' || c == 'E' || c == 'x'))
      return false;
  }
  return true;
}
}  // namespace

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row, bool align_numeric) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::size_t pad = widths[c] - row[c].size();
      const bool right = align_numeric && looks_numeric(row[c]);
      if (c) out += "  ";
      if (right) out.append(pad, ' ');
      out += row[c];
      if (!right) out.append(pad, ' ');
    }
    // Strip trailing spaces for clean diffs.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  };

  emit_row(headers_, /*align_numeric=*/false);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c) rule += "  ";
    rule.append(widths[c], '-');
  }
  out += rule + '\n';
  for (const auto& row : rows_) emit_row(row, /*align_numeric=*/true);
  return out;
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace datanet::common
