#include "common/simd_scan.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#if (defined(__x86_64__) || defined(_M_X64)) && !defined(DATANET_FORCE_SCALAR)
#define DATANET_SCAN_X86 1
#include <immintrin.h>
#endif

namespace datanet::common {

namespace {

constexpr std::size_t kNoTab = static_cast<std::size_t>(-1);

// One mask refill covers 64 words x 64 bytes = 4 KiB of data; the walker
// below consumes the masks with pure bit arithmetic.
constexpr std::size_t kWordsPerChunk = 64;

// ---- portable reference kernels (memchr-driven, the pre-SIMD loops) ----

void scan_key_lines_scalar(std::string_view data, std::string_view key,
                           void* ctx, LineSink sink) {
  std::size_t start = 0;
  while (start < data.size()) {
    std::size_t end = data.find('\n', start);
    if (end == std::string_view::npos) end = data.size();
    std::string_view line = data.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const std::size_t tab = line.find('\t');
    if (tab != std::string_view::npos) {
      const std::string_view rest = line.substr(tab + 1);
      if (rest.size() > key.size() && rest[key.size()] == '\t' &&
          rest.compare(0, key.size(), key) == 0) {
        sink(ctx, line);
      }
    }
    start = end + 1;
  }
}

void scan_lines_scalar(std::string_view data, void* ctx, LineSink sink) {
  std::size_t start = 0;
  while (start < data.size()) {
    std::size_t end = data.find('\n', start);
    if (end == std::string_view::npos) end = data.size();
    std::string_view line = data.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) sink(ctx, line);
    start = end + 1;
  }
}

// ---- mask producers (one per ISA) ----

// Fill nl[w]/tab[w] with '\n' / '\t' occurrence bitmasks for `words` full
// 64-byte words starting at p (bit i of word w = byte p[64*w + i]).
using MaskFillFn = void (*)(const char* p, std::size_t words, std::uint64_t* nl,
                            std::uint64_t* tab);

#if defined(DATANET_SCAN_X86)

void fill_masks_sse2(const char* p, std::size_t words, std::uint64_t* nl,
                     std::uint64_t* tab) {
  const __m128i vnl = _mm_set1_epi8('\n');
  const __m128i vtab = _mm_set1_epi8('\t');
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t mn = 0, mt = 0;
    for (int i = 0; i < 4; ++i) {
      const __m128i v = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(p + 64 * w + 16 * i));
      mn |= static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, vnl))))
            << (16 * i);
      mt |= static_cast<std::uint64_t>(
                static_cast<std::uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, vtab))))
            << (16 * i);
    }
    nl[w] = mn;
    tab[w] = mt;
  }
}

__attribute__((target("avx2"))) void fill_masks_avx2(const char* p,
                                                     std::size_t words,
                                                     std::uint64_t* nl,
                                                     std::uint64_t* tab) {
  const __m256i vnl = _mm256_set1_epi8('\n');
  const __m256i vtab = _mm256_set1_epi8('\t');
  for (std::size_t w = 0; w < words; ++w) {
    const __m256i lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(p + 64 * w));
    const __m256i hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(p + 64 * w + 32));
    nl[w] = static_cast<std::uint32_t>(
                _mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, vnl))) |
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                 _mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, vnl))))
             << 32);
    tab[w] = static_cast<std::uint32_t>(
                 _mm256_movemask_epi8(_mm256_cmpeq_epi8(lo, vtab))) |
             (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                  _mm256_movemask_epi8(_mm256_cmpeq_epi8(hi, vtab))))
              << 32);
  }
}

#endif  // DATANET_SCAN_X86

// Scalar mask build for the final partial word (< 64 bytes).
void fill_tail_word(const char* p, std::size_t len, std::uint64_t* nl,
                    std::uint64_t* tab) {
  std::uint64_t mn = 0, mt = 0;
  for (std::size_t i = 0; i < len; ++i) {
    mn |= static_cast<std::uint64_t>(p[i] == '\n') << i;
    mt |= static_cast<std::uint64_t>(p[i] == '\t') << i;
  }
  *nl = mn;
  *tab = mt;
}

// Clear bits 0..k (inclusive) of m; k <= 63.
inline std::uint64_t clear_through(std::uint64_t m, std::size_t k) {
  return k >= 63 ? 0 : m & ~((std::uint64_t{1} << (k + 1)) - 1);
}

// CRLF contract shared by every kernel: one trailing '\r' per line is not
// part of the line. `end` is the newline offset (or n at end-of-data).
inline std::size_t strip_cr(const char* base, std::size_t cur,
                            std::size_t end) {
  return (end > cur && base[end - 1] == '\r') ? end - 1 : end;
}

// The shared candidate test, byte-identical to the scalar reference: the
// line's key field (first tab exclusive to second tab exclusive) == key.
// `tab` is the absolute offset of the line's first tab, kNoTab when none.
inline void emit_if_candidate(const char* base, std::size_t cur,
                              std::size_t end, std::size_t tab,
                              std::string_view key, void* ctx, LineSink sink) {
  if (tab == kNoTab) return;
  const std::size_t rest = tab + 1;
  const std::size_t rest_len = end - rest;
  if (rest_len <= key.size()) return;
  if (base[rest + key.size()] != '\t') return;
  if (std::memcmp(base + rest, key.data(), key.size()) != 0) return;
  sink(ctx, std::string_view(base + cur, end - cur));
}

// Mask-driven line walk. Invariant at word entry: every newline in earlier
// words has been consumed, so the current line start `cur` is <= the word
// base and leftover tabs of the open line are already folded into `tab`.
template <bool kWantKey>
void walk_masked(std::string_view data, std::string_view key, void* ctx,
                 LineSink sink, MaskFillFn fill) {
  const char* base = data.data();
  const std::size_t n = data.size();
  std::uint64_t nl_masks[kWordsPerChunk];
  std::uint64_t tab_masks[kWordsPerChunk];

  std::size_t cur = 0;
  std::size_t tab = kNoTab;
  std::size_t chunk = 0;
  while (chunk < n) {
    std::size_t words = std::min((n - chunk) / 64, kWordsPerChunk);
    if (words > 0) fill(base + chunk, words, nl_masks, tab_masks);
    std::size_t covered = words * 64;
    if (words < kWordsPerChunk && chunk + covered < n) {
      fill_tail_word(base + chunk + covered, n - chunk - covered,
                     &nl_masks[words], &tab_masks[words]);
      covered = n - chunk;
      ++words;
    }
    for (std::size_t w = 0; w < words; ++w) {
      const std::size_t wbase = chunk + w * 64;
      std::uint64_t nl = nl_masks[w];
      std::uint64_t tb = tab_masks[w];
      while (nl) {
        const std::size_t bit = static_cast<std::size_t>(std::countr_zero(nl));
        const std::size_t end = wbase + bit;
        const std::size_t stripped = strip_cr(base, cur, end);
        if (kWantKey) {
          if (tab == kNoTab) {
            const std::uint64_t before =
                tb & ((bit == 0) ? 0 : ((std::uint64_t{1} << bit) - 1));
            if (before) {
              tab = wbase + static_cast<std::size_t>(std::countr_zero(before));
            }
          }
          emit_if_candidate(base, cur, stripped, tab, key, ctx, sink);
          tb = clear_through(tb, bit);
          tab = kNoTab;
        } else if (stripped > cur) {
          sink(ctx, std::string_view(base + cur, stripped - cur));
        }
        nl &= nl - 1;
        cur = end + 1;
      }
      if (kWantKey && tab == kNoTab && tb != 0) {
        tab = wbase + static_cast<std::size_t>(std::countr_zero(tb));
      }
    }
    chunk += covered;
  }
  if (cur < n) {
    const std::size_t stripped = strip_cr(base, cur, n);
    if (kWantKey) {
      emit_if_candidate(base, cur, stripped, tab, key, ctx, sink);
    } else if (stripped > cur) {
      sink(ctx, std::string_view(base + cur, stripped - cur));
    }
  }
}

ScanKernel detect_kernel() noexcept {
#if defined(DATANET_SCAN_X86)
  return __builtin_cpu_supports("avx2") ? ScanKernel::kAvx2 : ScanKernel::kSse2;
#else
  return ScanKernel::kScalar;
#endif
}

#if defined(DATANET_SCAN_X86)
MaskFillFn fill_fn_for(ScanKernel kernel) noexcept {
  return kernel == ScanKernel::kAvx2 ? fill_masks_avx2 : fill_masks_sse2;
}
#endif

void require_available(ScanKernel kernel) {
  if (!scan_kernel_available(kernel)) {
    throw std::invalid_argument(std::string("scan kernel unavailable here: ") +
                                scan_kernel_name(kernel));
  }
}

}  // namespace

ScanKernel active_scan_kernel() noexcept {
  static const ScanKernel kernel = detect_kernel();
  return kernel;
}

bool scan_kernel_available(ScanKernel kernel) noexcept {
  switch (kernel) {
    case ScanKernel::kScalar:
      return true;
    case ScanKernel::kSse2:
#if defined(DATANET_SCAN_X86)
      return true;
#else
      return false;
#endif
    case ScanKernel::kAvx2:
#if defined(DATANET_SCAN_X86)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
  }
  return false;
}

const char* scan_kernel_name(ScanKernel kernel) noexcept {
  switch (kernel) {
    case ScanKernel::kScalar:
      return "scalar";
    case ScanKernel::kSse2:
      return "sse2";
    case ScanKernel::kAvx2:
      return "avx2";
  }
  return "?";
}

void scan_key_lines(std::string_view data, std::string_view key, void* ctx,
                    LineSink sink) {
  scan_key_lines(data, key, ctx, sink, active_scan_kernel());
}

void scan_key_lines(std::string_view data, std::string_view key, void* ctx,
                    LineSink sink, ScanKernel kernel) {
  require_available(kernel);
#if defined(DATANET_SCAN_X86)
  if (kernel != ScanKernel::kScalar) {
    walk_masked<true>(data, key, ctx, sink, fill_fn_for(kernel));
    return;
  }
#endif
  scan_key_lines_scalar(data, key, ctx, sink);
}

void scan_lines(std::string_view data, void* ctx, LineSink sink) {
  scan_lines(data, ctx, sink, active_scan_kernel());
}

void scan_lines(std::string_view data, void* ctx, LineSink sink,
                ScanKernel kernel) {
  require_available(kernel);
#if defined(DATANET_SCAN_X86)
  if (kernel != ScanKernel::kScalar) {
    walk_masked<false>(data, {}, ctx, sink, fill_fn_for(kernel));
    return;
  }
#endif
  scan_lines_scalar(data, ctx, sink);
}

}  // namespace datanet::common
