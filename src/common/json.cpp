#include "common/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace datanet::common {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (top.is_object && !top.expecting_value) {
    throw std::logic_error("JsonWriter: value in object without key()");
  }
  if (!top.is_object) {
    if (!top.first) out_.push_back(',');
    top.first = false;
  }
  top.expecting_value = false;
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_.push_back('{');
  stack_.push_back(Frame{true});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || !stack_.back().is_object) {
    throw std::logic_error("JsonWriter: end_object without object");
  }
  if (stack_.back().expecting_value) {
    throw std::logic_error("JsonWriter: dangling key");
  }
  out_.push_back('}');
  stack_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_.push_back('[');
  stack_.push_back(Frame{false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back().is_object) {
    throw std::logic_error("JsonWriter: end_array without array");
  }
  out_.push_back(']');
  stack_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || !stack_.back().is_object) {
    throw std::logic_error("JsonWriter: key outside object");
  }
  Frame& top = stack_.back();
  if (top.expecting_value) throw std::logic_error("JsonWriter: double key");
  if (!top.first) out_.push_back(',');
  top.first = false;
  out_.push_back('"');
  out_ += json_escape(name);
  out_ += "\":";
  top.expecting_value = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  out_.push_back('"');
  out_ += json_escape(s);
  out_.push_back('"');
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";  // JSON has no NaN/Inf
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    out_ += buf;
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

std::string JsonWriter::str() const {
  if (!done_ || !stack_.empty()) {
    throw std::logic_error("JsonWriter: document incomplete");
  }
  return out_;
}

}  // namespace datanet::common
