#pragma once
// Minimal JSON writer for machine-readable reports (no parsing, no external
// dependency). Values are written depth-first through a small builder that
// guarantees syntactic validity: balanced containers, comma placement, and
// string escaping are handled by the builder, not the caller.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace datanet::common {

// Escape a string for embedding in a JSON document (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Inside an object: write the key for the next value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  // Convenience: key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  // The finished document; throws if containers are unbalanced.
  [[nodiscard]] std::string str() const;

 private:
  void comma();

  std::string out_;
  // Stack of container states: true = object expecting key, false = array.
  struct Frame {
    bool is_object;
    bool first = true;
    bool expecting_value = false;  // object: key() was just written
  };
  std::vector<Frame> stack_;
  bool done_ = false;
};

}  // namespace datanet::common
