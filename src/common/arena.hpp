#pragma once
// Bump allocator for phase-scoped scratch: allocation is pointer arithmetic
// into geometrically-growing chunks, and the whole arena is released (or
// rewound with reset()) at once — no per-object frees. The mapred engine
// gives each map task its own Arena for emitted pairs and the per-reducer
// partition split, so the shuffle's (hash, key) vectors stop hitting the
// global heap per pair. Oversized requests fall back to dedicated blocks so
// one huge vector never poisons the chunk chain. Not thread-safe: one arena
// per task/thread by construction.

#include <cstddef>
#include <memory>
#include <vector>

namespace datanet::common {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;
  static constexpr std::size_t kMaxChunkBytes = 8 * 1024 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // `align` must be a power of two. Never returns nullptr (zero-byte
  // requests are rounded up to one byte so pointers stay distinct).
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align);

  // Rewind to empty. Normal chunks are retained for reuse; dedicated
  // large-object blocks are freed. Outstanding pointers become invalid.
  void reset();

  [[nodiscard]] std::size_t bytes_used() const { return used_; }
  [[nodiscard]] std::size_t bytes_reserved() const;

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::vector<Chunk> chunks_;
  std::vector<Chunk> large_;  // oversized one-off blocks (freed on reset)
  std::size_t cur_ = 0;       // active chunk index
  std::size_t off_ = 0;       // bump offset within the active chunk
  std::size_t next_chunk_bytes_;
  std::size_t used_ = 0;
};

// Minimal std-compatible allocator over an Arena; deallocate is a no-op
// (memory comes back via Arena::reset or destruction). Containers using it
// must not outlive their arena.
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& arena) noexcept : arena_(&arena) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  [[nodiscard]] Arena* arena() const noexcept { return arena_; }

  template <class U>
  bool operator==(const ArenaAllocator<U>& other) const noexcept {
    return arena_ == other.arena();
  }

 private:
  Arena* arena_;
};

template <class T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace datanet::common
