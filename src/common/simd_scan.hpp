#pragma once
// Vectorized record-line scanning for the selection hot loop. The scanner
// walks newline-separated data in 64-byte stripes, building '\n' and '\t'
// bitmasks with SIMD compares (AVX2 when the CPU has it, SSE2 as the x86-64
// baseline) and iterating set bits — so per-line work is bit arithmetic, not
// two memchr calls per ~80-byte line. A portable scalar kernel is the
// reference implementation: every kernel must produce byte-identical
// callback sequences on any input (tests/hotpath_test.cpp fuzzes every
// alignment offset and degenerate shape).
//
// The kernel is chosen once per process (runtime CPU dispatch). Building
// with -DDATANET_FORCE_SCALAR=ON pins the scalar kernel so CI can cover the
// portable path on any machine.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace datanet::common {

enum class ScanKernel : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

// The kernel the dispatcher selected for this process (cached after the
// first call). kScalar everywhere off x86-64 or under DATANET_FORCE_SCALAR.
[[nodiscard]] ScanKernel active_scan_kernel() noexcept;

// True when `kernel` can run on this build + CPU (kScalar always can).
[[nodiscard]] bool scan_kernel_available(ScanKernel kernel) noexcept;

[[nodiscard]] const char* scan_kernel_name(ScanKernel kernel) noexcept;

// Plain-function sinks keep the kernels out of the header; candidate lines
// are rare (sub-dataset selectivity), so the indirect call is off the
// per-byte path.
using LineSink = void (*)(void* ctx, std::string_view line);

// Invoke `sink` for every line of `data` whose key field — the bytes between
// the first and second '\t' — equals `key` exactly. Lines are split on '\n'
// (the final line needs no trailing newline); a line carrying a CRLF
// terminator has exactly one trailing '\r' stripped before matching and
// emission, so Windows-style records never leak '\r' into their last field.
// Lines without two tabs around a key-sized field never match.
// Byte-compatible with the scalar loop
//   if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
//   tab = line.find('\t'); rest = line.substr(tab + 1);
//   rest.size() > key.size() && rest[key.size()] == '\t' &&
//   rest.compare(0, key.size(), key) == 0
// for every input, including empty lines and embedded partial prefixes.
void scan_key_lines(std::string_view data, std::string_view key, void* ctx,
                    LineSink sink);

// Same, on an explicit kernel (equivalence tests and the kernel bench).
// Throws std::invalid_argument when the kernel is unavailable here.
void scan_key_lines(std::string_view data, std::string_view key, void* ctx,
                    LineSink sink, ScanKernel kernel);

// Invoke `sink` for every non-empty line of `data` (split on '\n', final
// line included without one). One trailing '\r' per line is stripped before
// the empty test, so "\r\n" blank lines are skipped like "\n" ones. The
// vectorized sibling of the scalar find('\n') loop; used by the decode-all
// reference filter.
void scan_lines(std::string_view data, void* ctx, LineSink sink);
void scan_lines(std::string_view data, void* ctx, LineSink sink,
                ScanKernel kernel);

}  // namespace datanet::common
