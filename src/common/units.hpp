#pragma once
// Byte-size helpers. Sizes flow through the whole system (block sizes,
// sub-dataset sizes, meta-data budgets), so keep them readable at call sites.

#include <cstdint>
#include <string>

namespace datanet::common {

inline namespace literals {
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v << 30; }
}  // namespace literals

// Human-readable rendering, e.g. "64.0 MiB". Used in reports and benches.
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

}  // namespace datanet::common
