#include "common/arena.hpp"

#include <cstdint>
#include <limits>
#include <new>

namespace datanet::common {

namespace {

std::uintptr_t align_up(std::uintptr_t v, std::size_t align) {
  return (v + align - 1) & ~static_cast<std::uintptr_t>(align - 1);
}

}  // namespace

Arena::Arena(std::size_t chunk_bytes)
    : next_chunk_bytes_(chunk_bytes ? chunk_bytes : kDefaultChunkBytes) {}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  // Over-aligned requests are legal for any power-of-two `align`: both paths
  // align_up the *absolute* address, so the alignof(max_align_t) guarantee of
  // new[] is irrelevant — the padding comes out of the block itself
  // (tests/hotpath_test.cpp sweeps align 1..128 on both paths).
  if (bytes > std::numeric_limits<std::size_t>::max() - align) {
    throw std::bad_alloc{};  // bytes + align would wrap below
  }
  if (bytes + align > next_chunk_bytes_ / 2) {
    // Dedicated block: chunk growth stays geometric and a rare huge request
    // never strands the tail of the active chunk.
    Chunk c{std::make_unique<std::byte[]>(bytes + align), bytes + align};
    void* out = reinterpret_cast<void*>(
        align_up(reinterpret_cast<std::uintptr_t>(c.data.get()), align));
    large_.push_back(std::move(c));
    used_ += bytes;
    return out;
  }
  for (;;) {
    if (cur_ < chunks_.size()) {
      Chunk& c = chunks_[cur_];
      const auto base = reinterpret_cast<std::uintptr_t>(c.data.get());
      const std::size_t aligned =
          static_cast<std::size_t>(align_up(base + off_, align) - base);
      if (aligned + bytes <= c.size) {
        off_ = aligned + bytes;
        used_ += bytes;
        return c.data.get() + aligned;
      }
      // Chunk full (or a reused chunk smaller than this request): move on.
      ++cur_;
      off_ = 0;
      continue;
    }
    if (!chunks_.empty() && next_chunk_bytes_ < kMaxChunkBytes) {
      next_chunk_bytes_ *= 2;
    }
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(next_chunk_bytes_),
                            next_chunk_bytes_});
  }
}

void Arena::reset() {
  cur_ = 0;
  off_ = 0;
  used_ = 0;
  large_.clear();
}

std::size_t Arena::bytes_reserved() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  for (const Chunk& c : large_) total += c.size;
  return total;
}

}  // namespace datanet::common
