#pragma once
// Fixed-size thread pool. The MapReduce engine parallelizes real task
// execution on it; all *simulated* timing stays deterministic because task
// assignment and cost accounting are computed before execution (see
// mapred::Engine).

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace datanet::common {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task. Tasks must not throw; exceptions terminate (by design —
  // worker tasks in this codebase report errors through their results).
  void submit(std::function<void()> task);

  // Block until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

// Run fn(i) for i in [0, n) across the pool and wait for completion.
// Indices are submitted in contiguous chunks of `grain` (one closure per
// chunk, not per index), so fine-grained loops don't pay one queue round
// trip per element. grain == 0 picks a chunk size that yields a few chunks
// per worker for load balancing; grain == 1 recovers per-index submission.
// When the whole range fits in one chunk — or the pool has a single worker,
// so no two chunks could ever overlap — there is nothing to balance, and the
// loop runs inline on the caller: no queue round trips, no wakeups, no wait.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn,
                  std::size_t grain = 0) {
  if (n == 0) return;
  if (grain == 0) {
    const std::size_t target_chunks = 4 * pool.size();
    grain = std::max<std::size_t>(1, (n + target_chunks - 1) / target_chunks);
  }
  if (n <= grain || pool.size() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  for (std::size_t begin = 0; begin < n; begin += grain) {
    const std::size_t end = std::min(n, begin + grain);
    pool.submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool.wait_idle();
}

}  // namespace datanet::common
