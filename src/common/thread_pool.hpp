#pragma once
// Fixed-size thread pool. The MapReduce engine parallelizes real task
// execution on it; all *simulated* timing stays deterministic because task
// assignment and cost accounting are computed before execution (see
// mapred::Engine).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace datanet::common {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueue a task. Tasks must not throw; exceptions terminate (by design —
  // worker tasks in this codebase report errors through their results).
  void submit(std::function<void()> task);

  // Block until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

// Run fn(i) for i in [0, n) across the pool and wait for completion.
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([&fn, i] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace datanet::common
