#pragma once
// 64-bit hashing primitives used across DataNet: sub-dataset ids, Bloom filter
// probes, and shuffle partitioning. All hashes are deterministic across runs
// and platforms (no libstdc++ std::hash, whose value is unspecified).

#include <cstdint>
#include <string_view>

namespace datanet::common {

// Finalizer from MurmurHash3 / splitmix64: bijective 64-bit avalanche mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// FNV-1a over bytes, then avalanche-mixed. Good enough distribution for hash
// tables, Bloom filters and partitioners without external dependencies.
[[nodiscard]] constexpr std::uint64_t hash_bytes(std::string_view bytes,
                                                 std::uint64_t seed = 0) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ mix64(seed);
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

// Combine two hashes (boost::hash_combine style, 64-bit constant).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// Kirsch–Mitzenmacher double hashing: derive the i-th probe from two base
// hashes. Used by the Bloom filter so each key is hashed only once.
[[nodiscard]] constexpr std::uint64_t double_hash(std::uint64_t h1, std::uint64_t h2,
                                                  std::uint64_t i) noexcept {
  return h1 + i * h2 + (i * i * i - i) / 6;  // enhanced double hashing
}

}  // namespace datanet::common
