#pragma once
// 64-bit hashing primitives used across DataNet: sub-dataset ids, Bloom filter
// probes, and shuffle partitioning. All hashes are deterministic across runs
// and platforms (no libstdc++ std::hash, whose value is unspecified).

#include <cstdint>
#include <string_view>

namespace datanet::common {

// Finalizer from MurmurHash3 / splitmix64: bijective 64-bit avalanche mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// FNV-1a over bytes, then avalanche-mixed. Good enough distribution for hash
// tables, Bloom filters and partitioners without external dependencies.
[[nodiscard]] constexpr std::uint64_t hash_bytes(std::string_view bytes,
                                                 std::uint64_t seed = 0) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ mix64(seed);
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

// Combine two hashes (boost::hash_combine style, 64-bit constant).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

// Kirsch–Mitzenmacher double hashing: derive the i-th probe from two base
// hashes. Used by the Bloom filter so each key is hashed only once.
[[nodiscard]] constexpr std::uint64_t double_hash(std::uint64_t h1, std::uint64_t h2,
                                                  std::uint64_t i) noexcept {
  return h1 + i * h2 + (i * i * i - i) / 6;  // enhanced double hashing
}

namespace detail {
struct Crc32Table {
  std::uint32_t entries[256];
};

constexpr Crc32Table make_crc32_table() noexcept {
  Crc32Table table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c >> 1) ^ (0xedb88320u & (0u - (c & 1u)));
    }
    table.entries[i] = c;
  }
  return table;
}

inline constexpr Crc32Table kCrc32Table = make_crc32_table();
}  // namespace detail

// CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven. Used for block
// checksums in MiniDfs; matches zlib's crc32 so stored sums stay comparable
// to external tooling. Chainable: pass the previous crc to continue.
[[nodiscard]] constexpr std::uint32_t crc32(std::string_view bytes,
                                            std::uint32_t crc = 0) noexcept {
  crc = ~crc;
  for (unsigned char c : bytes) {
    crc = (crc >> 8) ^ detail::kCrc32Table.entries[(crc ^ c) & 0xffu];
  }
  return ~crc;
}

}  // namespace datanet::common
