#pragma once
// Deterministic, seedable random number generation. Every experiment in this
// repository threads an explicit seed so figures regenerate bit-for-bit.

#include <cstdint>
#include <limits>

#include "common/hash.hpp"

namespace datanet::common {

// splitmix64: tiny, fast, passes BigCrush when used to seed; we use it both
// as a stream generator and to expand seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: the workhorse generator. UniformRandomBitGenerator-compatible
// so it plugs into <random> distributions when needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

  // Unbiased uniform integer in [0, bound) via Lemire's method.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    // Rejection-free multiply-shift with low-bits rejection for exactness.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  // Derive an independent child generator; stable regardless of how many
  // draws the parent made (keyed on the parent seed path via mixing).
  Rng fork(std::uint64_t key) noexcept {
    return Rng(hash_combine((*this)(), mix64(key)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace datanet::common
