#include "common/string_util.hpp"

#include <cctype>

namespace datanet::common {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  for_each_split(s, sep, [&](std::string_view f) { out.push_back(f); });
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::int64_t> parse_i64(std::string_view s) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view s) {
  double v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

void tokenize_words(std::string_view text, std::vector<std::string>& out) {
  std::string cur;
  for (char ch : text) {
    const auto uc = static_cast<unsigned char>(ch);
    if (std::isalnum(uc) || ch == '\'') {
      cur.push_back(static_cast<char>(std::tolower(uc)));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
}

}  // namespace datanet::common
