#pragma once
// Allocation-light string helpers for the record codecs and tokenizers.

#include <charconv>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace datanet::common {

// Split `s` on `sep`; empty fields are preserved ("a,,b" -> {"a","","b"}).
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

// Invoke `fn(field)` for each `sep`-separated field without materializing a
// vector. `fn` may return void, or bool where false stops iteration early.
template <typename Fn>
void for_each_split(std::string_view s, char sep, Fn&& fn) {
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    std::string_view field = (pos == std::string_view::npos)
                                 ? s.substr(start)
                                 : s.substr(start, pos - start);
    if constexpr (std::is_same_v<decltype(fn(field)), bool>) {
      if (!fn(field)) return;
    } else {
      fn(field);
    }
    if (pos == std::string_view::npos) return;
    start = pos + 1;
  }
}

[[nodiscard]] std::string_view trim(std::string_view s);

// Locale-independent numeric parses; nullopt on any trailing garbage.
[[nodiscard]] std::optional<std::uint64_t> parse_u64(std::string_view s);
[[nodiscard]] std::optional<std::int64_t> parse_i64(std::string_view s);
[[nodiscard]] std::optional<double> parse_double(std::string_view s);

// Tokenize into lowercase words (runs of [A-Za-z0-9']); used by WordCount and
// the histogram/TopK jobs. Appends to `out` to allow buffer reuse.
void tokenize_words(std::string_view text, std::vector<std::string>& out);

}  // namespace datanet::common
