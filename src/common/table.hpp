#pragma once
// Minimal fixed-column text table used by the bench harnesses to print the
// paper's tables/figure series in aligned, diff-friendly form.

#include <cstdint>
#include <string>
#include <vector>

namespace datanet::common {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  TextTable& add_row(std::vector<std::string> cells);

  // Render with column alignment; numeric-looking cells are right-aligned.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers for table cells.
[[nodiscard]] std::string fmt_double(double v, int precision = 2);
[[nodiscard]] std::string fmt_percent(double fraction, int precision = 1);

}  // namespace datanet::common
