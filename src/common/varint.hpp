#pragma once
// LEB128 variable-length integers for compact meta-data serialization.
// Sub-dataset byte sizes are small (KB-scale), so varints cut the hash-map
// part of a serialized BlockMeta roughly in half versus fixed u64s.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace datanet::common {

// Append the LEB128 encoding of v to out (1..10 bytes).
void put_varint(std::string& out, std::uint64_t v);

// Number of bytes put_varint would append.
[[nodiscard]] constexpr std::size_t varint_length(std::uint64_t v) noexcept {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Decode a varint at `offset` in `bytes`; advances offset past it. Returns
// nullopt on truncation or overlong (> 10 byte) encodings.
[[nodiscard]] std::optional<std::uint64_t> get_varint(std::string_view bytes,
                                                      std::size_t& offset);

}  // namespace datanet::common
