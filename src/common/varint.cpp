#include "common/varint.hpp"

namespace datanet::common {

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

std::optional<std::uint64_t> get_varint(std::string_view bytes,
                                        std::size_t& offset) {
  std::uint64_t v = 0;
  int shift = 0;
  std::size_t pos = offset;
  while (pos < bytes.size() && shift < 64) {
    const auto byte = static_cast<unsigned char>(bytes[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) {
      offset = pos;
      return v;
    }
    shift += 7;
  }
  return std::nullopt;  // truncated or overlong
}

}  // namespace datanet::common
