#pragma once
// The datanet CLI subcommands, implemented as library functions writing to a
// caller-supplied stream (testable without spawning processes).
//
//   generate  — synthesize a movie/github/worldcup log file
//   inspect   — per-sub-dataset statistics, concentration metrics, and a
//               Gamma model fit of a log file
//   analyze   — ingest a log file into the simulated cluster and run one of
//               the analysis jobs over a sub-dataset, DataNet vs baseline
//   simulate  — event-driven selection timing on configurable hardware
//   faults    — selection under an injected fault plan (kills, stalls,
//               transient read errors) with the attempt/timeout report
//   fsck      — NameNode durability walkthrough: checkpoint + journal status,
//               a fault plan, the under-replication table and healing queue
//               before/after a ReplicationMonitor drain, and a crash/recover
//               round-trip verified by namespace digest (including an open
//               block left in flight, audited against the journal)
//   ingest    — streaming-ingestion drill: group-committed appends through
//               dfs::Ingestor with live ElasticMap maintenance, a seeded
//               mid-stream crash, recovery from checkpoint + journal, and a
//               continued run whose content and estimates must match a
//               never-crashed reference (exits non-zero otherwise)
//   forecast  — Section II-B imbalance forecast fitted from a log file
//   serve     — run datanetd: the always-on multi-tenant selection service
//               over a deterministic hosted dataset (loopback TCP)
//   query     — datanetd client: submit selection queries, verify digests
//               in-process with --local, or stop a daemon with --shutdown

#include <ostream>
#include <string>
#include <vector>

#include "cli/args.hpp"

namespace datanet::cli {

// Each returns a process exit code (0 = success) and writes human-readable
// output (or an error explanation) to `out`.
int cmd_generate(const Args& args, std::ostream& out);
int cmd_inspect(const Args& args, std::ostream& out);
int cmd_analyze(const Args& args, std::ostream& out);
int cmd_simulate(const Args& args, std::ostream& out);
int cmd_faults(const Args& args, std::ostream& out);
int cmd_fsck(const Args& args, std::ostream& out);
int cmd_ingest(const Args& args, std::ostream& out);
int cmd_forecast(const Args& args, std::ostream& out);
int cmd_serve(const Args& args, std::ostream& out);
int cmd_query(const Args& args, std::ostream& out);

// Dispatch "generate|inspect|analyze --flags..." and handle help/unknown
// commands. `argv` excludes the program name.
int run_cli(const std::vector<std::string>& argv, std::ostream& out);

// Usage text for --help and error paths.
[[nodiscard]] std::string usage();

}  // namespace datanet::cli
