#include "cli/args.hpp"

#include "common/string_util.hpp"

namespace datanet::cli {

std::optional<Args> Args::parse(const std::vector<std::string>& tokens,
                                std::string* error) {
  Args args;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (tok.rfind("--", 0) != 0) {
      args.positional_.push_back(tok);
      continue;
    }
    const std::string body = tok.substr(2);
    if (body.empty()) {
      if (error) *error = "bare '--' is not a valid flag";
      return std::nullopt;
    }
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      args.flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // --flag value, or boolean --flag if the next token is another flag.
    if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      args.flags_[body] = tokens[++i];
    } else {
      args.flags_[body] = "true";
    }
  }
  return args;
}

bool Args::has(const std::string& flag) const {
  touched_[flag] = true;
  return flags_.contains(flag);
}

std::optional<std::string> Args::get(const std::string& flag) const {
  touched_[flag] = true;
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string Args::get_or(const std::string& flag, std::string fallback) const {
  return get(flag).value_or(std::move(fallback));
}

std::optional<std::uint64_t> Args::get_u64(const std::string& flag) const {
  const auto s = get(flag);
  if (!s) return std::nullopt;
  return common::parse_u64(*s);
}

std::uint64_t Args::get_u64_or(const std::string& flag,
                               std::uint64_t fallback) const {
  return get_u64(flag).value_or(fallback);
}

std::optional<double> Args::get_double(const std::string& flag) const {
  const auto s = get(flag);
  if (!s) return std::nullopt;
  return common::parse_double(*s);
}

double Args::get_double_or(const std::string& flag, double fallback) const {
  return get_double(flag).value_or(fallback);
}

std::vector<std::string> Args::unused_flags() const {
  std::vector<std::string> unused;
  for (const auto& [name, _] : flags_) {
    if (!touched_.contains(name)) unused.push_back(name);
  }
  return unused;
}

}  // namespace datanet::cli
