#include "cli/commands.hpp"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <memory>
#include <random>
#include <span>

#include "apps/distinct_users.hpp"
#include "apps/histogram.hpp"
#include "apps/moving_average.hpp"
#include "apps/sessionize.hpp"
#include "apps/topk_search.hpp"
#include "apps/word_count.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "datanet/datanet.hpp"
#include "datanet/experiment.hpp"
#include "datanet/selection_runtime.hpp"
#include "dfs/edit_log.hpp"
#include "dfs/fault_injector.hpp"
#include "dfs/fs_image.hpp"
#include "dfs/fsck.hpp"
#include "dfs/ingest.hpp"
#include "dfs/meta_plane.hpp"
#include "dfs/replication_monitor.hpp"
#include "elasticmap/live_map.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"
#include "mapred/report_json.hpp"
#include "sim/job_sim.hpp"
#include "sim/selection_sim.hpp"
#include "stats/concentration.hpp"
#include "stats/fit.hpp"
#include "stats/gamma.hpp"
#include "stats/goodness_of_fit.hpp"
#include "workload/dataset.hpp"
#include "workload/github_gen.hpp"
#include "workload/io.hpp"
#include "workload/movie_gen.hpp"
#include "workload/worldcup_gen.hpp"

namespace datanet::cli {

namespace {

int fail(std::ostream& out, const std::string& message) {
  out << "error: " << message << "\n";
  return 1;
}

int warn_unused(const Args& args, std::ostream& out) {
  for (const auto& flag : args.unused_flags()) {
    out << "warning: unknown flag --" << flag << " ignored\n";
  }
  return 0;
}

std::vector<workload::Record> generate_records(const std::string& type,
                                               std::uint64_t records,
                                               std::uint64_t seed) {
  if (type == "movie") {
    workload::MovieGenOptions o;
    o.num_records = records;
    o.seed = seed;
    return workload::MovieLogGenerator(o).generate();
  }
  if (type == "github") {
    workload::GithubGenOptions o;
    o.num_records = records;
    o.seed = seed;
    return workload::GithubLogGenerator(o).generate();
  }
  if (type == "worldcup") {
    workload::WorldCupGenOptions o;
    o.num_records = records;
    o.seed = seed;
    return workload::WorldCupLogGenerator(o).generate();
  }
  throw std::invalid_argument("unknown --type '" + type +
                              "' (movie|github|worldcup)");
}

// Concatenated committed bytes of `path` in block order: sealed blocks in
// file order, then the open (unsealed) block if ingestion left one.
std::string file_content(const dfs::MiniDfs& fs, const std::string& path) {
  std::string content;
  for (const dfs::BlockId b : fs.blocks_of(path)) {
    content.append(fs.read_block(b));
  }
  for (const auto& open : fs.open_blocks()) {
    if (open.file == path) content.append(fs.read_block(open.id));
  }
  return content;
}

mapred::Job make_job(const std::string& name, const Args& args) {
  if (name == "wordcount") return apps::make_word_count_job();
  if (name == "histogram") return apps::make_word_histogram_job();
  if (name == "movingavg") {
    return apps::make_moving_average_job(args.get_u64_or("window", 86400));
  }
  if (name == "topk") {
    return apps::make_topk_search_job(args.get_or("query", "search text"),
                                      static_cast<std::uint32_t>(
                                          args.get_u64_or("k", 10)));
  }
  if (name == "sessionize") {
    return apps::make_sessionize_job(args.get_or("field", "client="),
                                     args.get_u64_or("gap", 1800));
  }
  if (name == "distinct") {
    return apps::make_distinct_users_job(args.get_or("field", "client="));
  }
  throw std::invalid_argument(
      "unknown --job '" + name +
      "' (wordcount|histogram|movingavg|topk|sessionize|distinct)");
}

}  // namespace

int cmd_generate(const Args& args, std::ostream& out) {
  const auto file = args.get("out");
  if (!file) return fail(out, "generate requires --out FILE");
  const auto type = args.get_or("type", "movie");
  const auto records = args.get_u64_or("records", 100000);
  const auto seed = args.get_u64_or("seed", 42);
  try {
    const auto recs = generate_records(type, records, seed);
    const auto bytes = workload::save_records(*file, recs);
    out << "wrote " << recs.size() << " " << type << " records ("
        << common::format_bytes(bytes) << ") to " << *file << "\n";
  } catch (const std::exception& e) {
    return fail(out, e.what());
  }
  warn_unused(args, out);
  return 0;
}

int cmd_inspect(const Args& args, std::ostream& out) {
  const auto file = args.get("in");
  if (!file) return fail(out, "inspect requires --in FILE");
  const auto top = args.get_u64_or("top", 10);
  try {
    workload::LoadStats stats;
    const auto records = workload::load_records(*file, &stats);
    if (records.empty()) return fail(out, "no valid records in " + *file);

    std::map<std::string, std::uint64_t> key_bytes;
    std::uint64_t total = 0;
    for (const auto& r : records) {
      const auto sz = workload::encode_record(r).size() + 1;
      key_bytes[r.key] += sz;
      total += sz;
    }
    out << *file << ": " << records.size() << " records ("
        << stats.skipped << " malformed skipped), "
        << common::format_bytes(total) << ", " << key_bytes.size()
        << " sub-datasets\n\n";

    std::vector<std::pair<std::uint64_t, std::string>> ranked;
    for (const auto& [key, bytes] : key_bytes) ranked.emplace_back(bytes, key);
    std::sort(ranked.rbegin(), ranked.rend());

    common::TextTable table({"rank", "sub-dataset", "bytes", "share"});
    for (std::size_t i = 0; i < std::min<std::size_t>(top, ranked.size()); ++i) {
      table.add_row({std::to_string(i + 1), ranked[i].second,
                     common::format_bytes(ranked[i].first),
                     common::fmt_percent(static_cast<double>(ranked[i].first) /
                                         static_cast<double>(total))});
    }
    out << table.to_string() << "\n";

    // Fit the Section II-B Gamma model to per-sub-dataset sizes (KiB) and
    // quantify the concentration of the collection.
    std::vector<double> sizes;
    sizes.reserve(ranked.size());
    for (const auto& [bytes, _] : ranked) {
      sizes.push_back(static_cast<double>(bytes) / 1024.0);
    }
    if (sizes.size() >= 2) {
      const auto mom = stats::fit_gamma_moments(sizes);
      const auto mle = stats::fit_gamma_mle(sizes);
      out << "Gamma fit of sub-dataset sizes (KiB): moments k=" << mom.shape
          << " theta=" << mom.scale << "; MLE k=" << mle.shape
          << " theta=" << mle.scale << " (" << mle.iterations
          << " Newton steps)\n";
      out << "concentration: gini=" << common::fmt_double(stats::gini(sizes), 3)
          << ", normalized entropy="
          << common::fmt_double(stats::normalized_entropy(sizes), 3) << "\n";
    }
  } catch (const std::exception& e) {
    return fail(out, e.what());
  }
  warn_unused(args, out);
  return 0;
}

int cmd_analyze(const Args& args, std::ostream& out) {
  const auto file = args.get("in");
  if (!file) return fail(out, "analyze requires --in FILE");
  const auto key = args.get("key");
  if (!key) return fail(out, "analyze requires --key SUBDATASET");
  try {
    core::ExperimentConfig cfg;
    cfg.num_nodes = static_cast<std::uint32_t>(args.get_u64_or("nodes", 16));
    cfg.block_size = args.get_u64_or("block-size", 128 * 1024);
    cfg.seed = args.get_u64_or("seed", 42);

    dfs::DfsOptions dopt;
    dopt.block_size = cfg.block_size;
    dopt.replication = cfg.replication;
    dopt.seed = cfg.seed;
    dfs::MiniDfs fs(dfs::ClusterTopology::flat(cfg.num_nodes), dopt);
    workload::LoadStats stats;
    const auto blocks = workload::ingest_file(fs, "/data", *file, &stats);
    out << "ingested " << stats.loaded << " records into " << blocks
        << " blocks (" << stats.skipped << " malformed skipped)\n";

    const double alpha = args.get_double_or("alpha", 0.3);
    const core::DataNet net(fs, "/data", {.alpha = alpha});
    out << "ElasticMap: " << common::format_bytes(net.meta().memory_bytes())
        << " for " << common::format_bytes(net.meta().raw_bytes())
        << " of raw data; '" << *key << "' estimated at "
        << common::format_bytes(net.estimate_total_size(*key)) << " across "
        << net.distribution(*key).size() << " candidate blocks\n";

    const auto job = make_job(args.get_or("job", "wordcount"), args);
    scheduler::LocalityScheduler base(7);
    const auto without =
        core::run_end_to_end(fs, "/data", *key, base, nullptr, job, cfg);
    scheduler::DataNetScheduler dn;
    const auto with = core::run_end_to_end(fs, "/data", *key, dn, &net, job, cfg);

    common::TextTable table({"scheduler", "selection (s)", "analysis (s)",
                             "total (s)", "output keys"});
    table.add_row({"locality",
                   common::fmt_double(without.selection.report.total_seconds, 1),
                   common::fmt_double(without.analysis.total_seconds, 1),
                   common::fmt_double(without.total_seconds(), 1),
                   std::to_string(without.analysis.output.size())});
    table.add_row({"datanet",
                   common::fmt_double(with.selection.report.total_seconds, 1),
                   common::fmt_double(with.analysis.total_seconds, 1),
                   common::fmt_double(with.total_seconds(), 1),
                   std::to_string(with.analysis.output.size())});
    out << "\n" << table.to_string();
    out << "\nimprovement: "
        << common::fmt_percent(1.0 - with.total_seconds() / without.total_seconds())
        << "\n";
    if (args.has("show-output")) {
      std::size_t shown = 0;
      for (const auto& [k, v] : with.analysis.output) {
        out << "  " << k << " -> " << v << "\n";
        if (++shown >= 20) break;
      }
    }
    if (args.has("json")) {
      out << "\n"
          << mapred::report_to_json(with.analysis, args.has("show-output"))
          << "\n";
    }
  } catch (const std::exception& e) {
    return fail(out, e.what());
  }
  warn_unused(args, out);
  return 0;
}

int cmd_simulate(const Args& args, std::ostream& out) {
  const auto file = args.get("in");
  if (!file) return fail(out, "simulate requires --in FILE");
  const auto key = args.get("key");
  if (!key) return fail(out, "simulate requires --key SUBDATASET");
  try {
    const auto nodes = static_cast<std::uint32_t>(args.get_u64_or("nodes", 16));
    dfs::DfsOptions dopt;
    dopt.block_size = args.get_u64_or("block-size", 128 * 1024);
    dopt.seed = args.get_u64_or("seed", 42);
    dfs::MiniDfs fs(dfs::ClusterTopology::flat(nodes), dopt);
    workload::LoadStats stats;
    workload::ingest_file(fs, "/data", *file, &stats);
    out << "ingested " << stats.loaded << " records into " << fs.num_blocks()
        << " blocks\n";

    const core::DataNet net(fs, "/data", {.alpha = args.get_double_or("alpha", 0.3)});
    const auto graph = net.scheduling_graph(*key);
    if (graph.num_blocks() == 0) {
      return fail(out, "sub-dataset '" + *key + "' not found in any block");
    }

    sim::SelectionSimOptions opt;
    opt.cluster.num_nodes = nodes;
    opt.cluster.node.slots =
        static_cast<std::uint32_t>(args.get_u64_or("slots", 2));
    opt.cluster.node.disk_mbps = args.get_double_or("disk-mbps", 80.0);
    opt.cluster.node.nic_mbps = args.get_double_or("nic-mbps", 100.0);

    // One SelectionRuntime, timing-only, with the event-driven backend; the
    // scheduler is the only thing that changes between the two rows.
    core::ExperimentConfig sim_cfg;
    sim_cfg.num_nodes = nodes;
    core::DirectReadPolicy read(fs, sim_cfg.remote_read_penalty);
    core::NoFaults faults;
    sim::EventSimBackend backend(fs, opt);
    const core::SelectionRuntime runtime(read, faults, backend);

    scheduler::LocalityScheduler base(7);
    const auto r_loc = runtime.run_graph(fs, graph, *key, base, sim_cfg,
                                         /*materialize=*/false);
    const auto sim_loc = backend.last_sim();
    scheduler::DataNetScheduler dn;
    const auto r_dn = runtime.run_graph(fs, graph, *key, dn, sim_cfg,
                                        /*materialize=*/false);
    const auto sim_dn = backend.last_sim();

    common::TextTable table({"scheduler", "makespan (s)", "remote reads",
                             "max node bytes"});
    const auto max_bytes = [](const std::vector<std::uint64_t>& v) {
      return *std::max_element(v.begin(), v.end());
    };
    table.add_row({"locality", common::fmt_double(sim_loc.makespan, 2),
                   std::to_string(sim_loc.remote_reads),
                   common::format_bytes(max_bytes(r_loc.assignment.node_load))});
    table.add_row({"datanet", common::fmt_double(sim_dn.makespan, 2),
                   std::to_string(sim_dn.remote_reads),
                   common::format_bytes(max_bytes(r_dn.assignment.node_load))});
    out << "\nevent-driven selection over " << graph.num_blocks()
        << " candidate blocks (" << nodes << " nodes, "
        << opt.cluster.node.slots << " slots, "
        << opt.cluster.node.disk_mbps << " MiB/s disk, "
        << opt.cluster.node.nic_mbps << " MiB/s nic):\n"
        << table.to_string();
  } catch (const std::exception& e) {
    return fail(out, e.what());
  }
  warn_unused(args, out);
  return 0;
}

int cmd_faults(const Args& args, std::ostream& out) {
  const auto file = args.get("in");
  if (!file) return fail(out, "faults requires --in FILE");
  const auto key = args.get("key");
  if (!key) return fail(out, "faults requires --key SUBDATASET");
  try {
    core::ExperimentConfig cfg;
    cfg.num_nodes = static_cast<std::uint32_t>(args.get_u64_or("nodes", 16));
    cfg.block_size = args.get_u64_or("block-size", 128 * 1024);
    cfg.seed = args.get_u64_or("seed", 42);

    dfs::DfsOptions dopt;
    dopt.block_size = cfg.block_size;
    dopt.replication = cfg.replication;
    dopt.seed = cfg.seed;
    dfs::MiniDfs fs(dfs::ClusterTopology::flat(cfg.num_nodes), dopt);
    workload::LoadStats stats;
    workload::ingest_file(fs, "/data", *file, &stats);
    out << "ingested " << stats.loaded << " records into " << fs.num_blocks()
        << " blocks\n";

    const core::DataNet net(fs, "/data",
                            {.alpha = args.get_double_or("alpha", 0.3)});
    auto injector = dfs::FaultInjector::random_plan(
        fs, args.get_u64_or("fault-seed", 7), fs.num_blocks(),
        static_cast<std::uint32_t>(args.get_u64_or("kill-nodes", 0)),
        static_cast<std::uint32_t>(args.get_u64_or("corrupt-replicas", 0)),
        /*slow_nodes=*/0,
        static_cast<std::uint32_t>(args.get_u64_or("stall-nodes", 1)),
        static_cast<std::uint32_t>(args.get_u64_or("transient-reads", 2)));

    core::AttemptOptions aopt;
    aopt.timeout_ticks = args.get_u64_or("timeout-ticks", aopt.timeout_ticks);
    aopt.max_attempts = static_cast<std::uint32_t>(
        args.get_u64_or("max-attempts", aopt.max_attempts));
    aopt.speculative = !args.has("no-speculation");

    core::ChecksumRetryReadPolicy read(fs, cfg.remote_read_penalty);
    core::InjectedFaults faults(injector);
    core::AnalyticBackend timing;
    scheduler::DataNetScheduler dn;
    const auto sel = core::SelectionRuntime(read, faults, timing, aopt)
                         .run(fs, "/data", *key, dn, &net, cfg);

    const auto& fstats = injector.stats();
    out << "\nfault plan fired: " << fstats.nodes_killed << " kill(s), "
        << fstats.nodes_stalled << " stall(s), "
        << fstats.replicas_corrupted << " corrupt replica(s), "
        << fstats.transient_failures_consumed
        << " transient read failure(s) consumed\n";
    const auto& a = sel.report.attempts;
    common::TextTable table({"metric", "value"});
    table.add_row({"selection seconds",
                   common::fmt_double(sel.report.total_seconds, 1)});
    table.add_row({"attempts dispatched", std::to_string(a.attempts)});
    table.add_row({"timeouts", std::to_string(a.timeouts)});
    table.add_row({"transient retries", std::to_string(a.transient_retries)});
    table.add_row({"re-dispatches", std::to_string(a.redispatches)});
    table.add_row({"speculative launched",
                   std::to_string(a.speculative_launched)});
    table.add_row({"speculative wins", std::to_string(a.speculative_wins)});
    table.add_row({"degraded tasks", std::to_string(a.degraded_tasks)});
    table.add_row({"retries (checksum/kill)",
                   std::to_string(sel.report.retries)});
    table.add_row({"lost blocks", std::to_string(sel.report.lost_blocks)});
    table.add_row({"under-replicated blocks",
                   std::to_string(sel.report.under_replicated)});
    out << table.to_string();

    const auto post = dfs::check_post_fault_invariants(fs);
    if (!post.ok) return fail(out, post.violation);
    out << "post-fault fsck: " << post.report.missing_blocks << " missing, "
        << post.report.under_replicated << " under-replicated — invariants "
        << "hold\n";
    if (args.has("json")) {
      out << "\n" << mapred::report_to_json(sel.report, false) << "\n";
    }
  } catch (const std::exception& e) {
    return fail(out, e.what());
  }
  warn_unused(args, out);
  return 0;
}

namespace {

// fsck --meta-shards M (M > 1): exercise the sharded metadata plane end to
// end — spread the input across part files so every shard owns namespace,
// journal per shard, kill one shard, show the others keep serving, recover
// the victim from its own checkpoint + journal suffix, then plane-wide fsck.
int fsck_plane(const Args& args, std::ostream& out) {
  const auto file = args.get("in");
  int rc = 0;
  try {
    const auto nodes = static_cast<std::uint32_t>(args.get_u64_or("nodes", 16));
    dfs::MetaPlaneOptions popt;
    popt.num_shards =
        static_cast<std::uint32_t>(args.get_u64_or("meta-shards", 1));
    popt.dfs.block_size = args.get_u64_or("block-size", 128 * 1024);
    popt.dfs.replication =
        static_cast<std::uint32_t>(args.get_u64_or("replication", 3));
    popt.dfs.seed = args.get_u64_or("seed", 42);
    dfs::MetaPlane plane(dfs::ClusterTopology::flat(nodes), popt);

    const std::string workdir = args.get_or(
        "workdir",
        (std::filesystem::temp_directory_path() / "datanet_fsck_plane")
            .string());
    std::filesystem::create_directories(workdir);

    workload::LoadStats stats;
    const auto records = workload::load_records(*file, &stats);
    if (records.empty()) return fail(out, "no valid records in " + *file);

    // A file lives wholly on its owning shard, so split the input into
    // several part files to populate namespace across shards.
    const std::uint64_t parts = std::clamp<std::uint64_t>(
        args.get_u64_or("files", 2ull * popt.num_shards), 1, records.size());
    const std::span<const workload::Record> all(records);
    const std::uint64_t base = records.size() / parts;
    const std::uint64_t extra = records.size() % parts;
    std::uint64_t off = 0;
    for (std::uint64_t p = 0; p < parts; ++p) {
      const std::uint64_t len = base + (p < extra ? 1 : 0);
      const std::string path = "/data/part-" + std::to_string(p);
      workload::ingest(plane.dfs_for(path), path, all.subspan(off, len));
      off += len;
    }
    out << "ingested " << records.size() << " records as " << parts
        << " part file(s) across " << plane.num_shards()
        << " metadata shards (" << stats.skipped << " malformed skipped)\n";

    // Checkpoint everything, then land one late file on the victim shard so
    // its recovery has a journal suffix to replay past the checkpoint.
    plane.attach_journals(workdir);
    const auto victim = static_cast<std::uint32_t>(
        args.get_u64_or("crash-shard", 0) % plane.num_shards());
    std::string late_path;
    for (std::uint32_t n = 0; late_path.empty(); ++n) {
      std::string cand = "/data/late-" + std::to_string(n);
      if (plane.shard_of(cand) == victim) late_path = std::move(cand);
    }
    const auto tail =
        all.subspan(records.size() - std::min<std::size_t>(records.size(), 64));
    workload::ingest(plane.dfs_for(late_path), late_path, tail);

    // Also leave an open (unsealed) block with a committed extent in flight
    // on the victim — a crash mid-ingestion — so recovery replays the
    // streaming journal ops, not just whole-file writes.
    const auto open_id = plane.dfs_for(late_path).open_block(late_path);
    plane.dfs_for(late_path).append_extent(open_id, "in-flight extent\n", 1);

    common::TextTable table({"shard", "files", "blocks", "epoch", "journal"});
    for (std::uint32_t s = 0; s < plane.num_shards(); ++s) {
      table.add_row({std::to_string(s),
                     std::to_string(plane.dfs(s).list_files().size()),
                     std::to_string(plane.dfs(s).num_blocks()),
                     std::to_string(plane.shard_epoch(s)),
                     plane.journal_path(s)});
    }
    out << table.to_string();

    // Kill the victim; every other shard must keep serving while it is down,
    // and touching the victim must fail with the typed shard error.
    const auto want = plane.dfs(victim).namespace_digest();
    plane.crash_shard(victim);
    for (std::uint32_t s = 0; s < plane.num_shards(); ++s) {
      if (s == victim) continue;
      (void)plane.dfs(s).namespace_digest();  // throws if not serving
    }
    bool typed_unavailable = false;
    try {
      (void)plane.dfs(victim);
    } catch (const dfs::ShardUnavailableError&) {
      typed_unavailable = true;
    }
    out << "\ncrashed shard " << victim << " (an open block in flight); "
        << (plane.num_shards() - 1) << " other shard(s) still serving\n";
    if (!typed_unavailable) {
      out << "error: crashed shard did not raise ShardUnavailableError\n";
      rc = 1;
    }

    const auto info = plane.recover_shard(victim);
    out << "recovered shard " << victim << ": replayed "
        << info.replayed_frames << " journal frame(s) past its checkpoint ("
        << info.skipped_frames << " covered by it)";
    if (info.torn) out << ", torn tail of " << info.dropped_bytes << " B dropped";
    out << "\n";
    if (plane.dfs(victim).namespace_digest() != want) {
      return fail(out, "recovered shard digest mismatch");
    }
    out << "recovered shard digest matches its pre-crash namespace\n";

    const auto report = dfs::fsck(plane);
    out << "plane fsck: " << report.combined.total_blocks << " blocks, "
        << report.combined.missing_blocks << " missing, "
        << report.combined.under_replicated << " under-replicated, "
        << report.combined.open_blocks << " open across "
        << plane.num_shards() << " shard(s)\n";
    if (!report.healthy()) {
      return fail(out, "plane fsck reports an unhealthy namespace");
    }
  } catch (const std::exception& e) {
    return fail(out, e.what());
  }
  warn_unused(args, out);
  return rc;
}

}  // namespace

int cmd_fsck(const Args& args, std::ostream& out) {
  const auto file = args.get("in");
  if (!file) return fail(out, "fsck requires --in FILE");
  if (args.get_u64_or("meta-shards", 1) > 1) return fsck_plane(args, out);
  int rc = 0;
  try {
    const auto nodes = static_cast<std::uint32_t>(args.get_u64_or("nodes", 16));
    dfs::DfsOptions dopt;
    dopt.block_size = args.get_u64_or("block-size", 128 * 1024);
    dopt.replication =
        static_cast<std::uint32_t>(args.get_u64_or("replication", 3));
    dopt.seed = args.get_u64_or("seed", 42);
    dopt.inline_repair = false;  // healing flows through the monitor below

    const std::string workdir = args.get_or(
        "workdir",
        (std::filesystem::temp_directory_path() / "datanet_fsck").string());
    std::filesystem::create_directories(workdir);
    const std::string journal_path = workdir + "/namenode.edits";
    const std::string image_path = workdir + "/namenode.fsimage";

    dfs::MiniDfs fs(dfs::ClusterTopology::flat(nodes), dopt);
    dfs::EditLog journal(journal_path);
    fs.attach_edit_log(&journal);
    workload::LoadStats stats;
    workload::ingest_file(fs, "/data", *file, &stats);
    out << "ingested " << stats.loaded << " records into " << fs.num_blocks()
        << " blocks (replication " << dopt.replication << ", " << nodes
        << " nodes)\n\n";

    // Checkpoint the clean namespace, then report what is on disk.
    dfs::FsImage::save(fs, image_path);
    const auto img = dfs::FsImage::inspect(image_path);
    out << "checkpoint " << image_path << ": "
        << common::format_bytes(img.file_bytes) << ", " << img.num_files
        << " file(s), " << img.num_blocks << " blocks, " << img.active_nodes
        << "/" << img.num_nodes << " nodes active, covers journal to offset "
        << img.journal_covered << "\n";
    const auto jr0 = dfs::EditLog::replay(journal_path);
    out << "journal " << journal_path << ": " << jr0.records.size()
        << " frames, " << common::format_bytes(jr0.valid_bytes) << " valid"
        << (jr0.torn ? " (torn tail dropped)" : "") << "\n\n";
    if (jr0.torn) {
      out << "error: journal has a torn tail before any fault was injected\n";
      rc = 1;
    }

    // Damage the cluster, journaling every mutation but repairing nothing.
    auto injector = dfs::FaultInjector::random_plan(
        fs, args.get_u64_or("fault-seed", 7), /*horizon_tasks=*/1,
        static_cast<std::uint32_t>(args.get_u64_or("kill-nodes", 2)),
        static_cast<std::uint32_t>(args.get_u64_or("corrupt-replicas", 4)));
    injector.advance(~0ull);
    const auto& fstats = injector.stats();
    out << "fault plan fired: " << fstats.nodes_killed << " kill(s), "
        << fstats.replicas_corrupted << " corrupt replica(s), "
        << fstats.lost_blocks.size() << " block(s) lost outright\n";

    dfs::ReplicationMonitor monitor(
        fs, {.max_repairs_per_tick = static_cast<std::uint32_t>(
                 args.get_u64_or("repair-rate", 4))});
    monitor.scan();
    const auto before = dfs::fsck(fs);
    out << "fsck before healing: " << before.missing_blocks << " missing, "
        << before.under_replicated << " under-replicated\n";
    const auto queue = monitor.queue();
    if (!queue.empty()) {
      common::TextTable table({"block", "surviving", "target"});
      const std::uint64_t top = args.get_u64_or("top", 10);
      for (std::size_t i = 0; i < std::min<std::size_t>(top, queue.size());
           ++i) {
        table.add_row({std::to_string(queue[i].block),
                       std::to_string(queue[i].surviving),
                       std::to_string(queue[i].target)});
      }
      out << "healing queue (" << queue.size() << " pending, worst first):\n"
          << table.to_string();
    }

    const auto ticks = monitor.drain();
    const auto& m = monitor.stats();
    const auto after = dfs::fsck(fs);
    out << "\ndrained in " << ticks << " tick(s) at rate "
        << args.get_u64_or("repair-rate", 4) << ": " << m.healed_blocks
        << " healed, " << m.repairs << " replicas created, "
        << m.scrubbed_replicas << " corrupt copies scrubbed, "
        << m.unrepairable << " unrepairable, mttr " << m.mttr_ticks
        << " tick(s), queue now " << monitor.queue().size() << "\n";
    out << "fsck after healing: " << after.missing_blocks << " missing, "
        << after.under_replicated << " under-replicated\n";
    // `unrepairable` alone is transient (a later scan may re-queue and heal
    // the block); the exit gate is the post-drain namespace state.
    if (after.missing_blocks > 0 || after.under_replicated > 0) {
      out << "error: namespace is not healthy after healing";
      if (m.unrepairable > 0) {
        out << " (" << m.unrepairable << " repair(s) dropped as unrepairable)";
      }
      out << "\n";
      rc = 1;
    }

    // Leave one block open (unsealed) with a committed extent in flight —
    // the state a crashed ingestor leaves behind — so the crash/recover
    // round-trip below also covers the streaming-ingestion journal ops.
    const auto open_id = fs.open_block("/data");
    fs.append_extent(open_id, "in-flight extent\n", 1);
    out << "left block " << open_id
        << " open with one group-committed extent in flight\n";

    // Crash the NameNode and prove recover() rebuilds the same namespace
    // from checkpoint + journal suffix.
    const auto live_digest = fs.namespace_digest();
    fs.crash_namenode();
    dfs::RecoveryInfo info;
    const auto recovered = dfs::MiniDfs::recover(image_path, journal_path, &info);
    out << "\ncrash + recover: replayed " << info.replayed_frames
        << " journal frame(s) past the checkpoint (" << info.skipped_frames
        << " covered by it)";
    if (info.torn) out << ", torn tail of " << info.dropped_bytes << " B dropped";
    out << "\n";
    if (recovered.namespace_digest() != live_digest) {
      return fail(out, "recovered namespace digest mismatch");
    }
    out << "recovered namespace digest matches the pre-crash NameNode\n";

    // Open-block audit: the recovered instance's open blocks (count, extent
    // sequence, journaled length, content CRC) must agree with the live
    // NameNode's committed state.
    const auto audit = dfs::audit_open_blocks(fs, recovered);
    out << "open-block audit: " << audit.open_blocks << " open block(s), "
        << common::format_bytes(audit.open_bytes) << " in flight";
    if (audit.ok()) {
      out << " — journaled extents match stored bytes\n";
    } else {
      out << "\n";
      for (const auto& v : audit.violations) out << "error: " << v << "\n";
      rc = 1;
    }
  } catch (const std::exception& e) {
    return fail(out, e.what());
  }
  warn_unused(args, out);
  return rc;
}

int cmd_ingest(const Args& args, std::ostream& out) {
  int rc = 0;
  try {
    // Input records: --in FILE, or a generated log (--type/--records/--seed).
    std::vector<workload::Record> records;
    if (const auto file = args.get("in")) {
      workload::LoadStats ls;
      records = workload::load_records(*file, &ls);
    } else {
      records = generate_records(args.get_or("type", "movie"),
                                 args.get_u64_or("records", 20000),
                                 args.get_u64_or("seed", 42));
    }
    if (records.size() < 2) {
      return fail(out, "need at least 2 records to ingest");
    }

    const auto nodes = static_cast<std::uint32_t>(args.get_u64_or("nodes", 16));
    dfs::DfsOptions dopt;
    dopt.block_size = args.get_u64_or("block-size", 64 * 1024);
    dopt.replication =
        static_cast<std::uint32_t>(args.get_u64_or("replication", 3));
    dopt.seed = args.get_u64_or("seed", 42);
    dfs::IngestOptions iopt;
    iopt.group_records = args.get_u64_or("group", 64);
    elasticmap::LiveMapOptions lopt;
    lopt.max_blocks_per_tick =
        static_cast<std::uint32_t>(args.get_u64_or("map-blocks-per-tick", 4));
    lopt.rebuild_watermark = args.get_double_or("rebuild-watermark", 0.25);
    const std::string path = "/data/stream.log";

    // The byte stream a never-crashed run stores, and per-key ground truth.
    std::vector<std::string> lines;
    lines.reserve(records.size());
    std::string stream;
    std::map<std::string, std::uint64_t> truth_bytes;
    for (const auto& r : records) {
      lines.push_back(workload::encode_record(r));
      truth_bytes[r.key] += lines.back().size() + 1;
      stream += lines.back();
      stream.push_back('\n');
    }

    // Reference run: same records, same shape, never crashes, no journal.
    dfs::MiniDfs ref(dfs::ClusterTopology::flat(nodes), dopt);
    {
      dfs::Ingestor ing(ref, path, iopt);
      for (const auto& line : lines) ing.append(line);
    }
    if (file_content(ref, path) != stream) {
      return fail(out, "reference ingestion did not store the input stream");
    }

    // Durable run: journal + checkpoint in --workdir, killed at a seeded
    // record index (mid-group, mid-block — wherever the draw lands).
    const std::string workdir = args.get_or(
        "workdir",
        (std::filesystem::temp_directory_path() / "datanet_ingest").string());
    std::filesystem::create_directories(workdir);
    const std::string journal_path = workdir + "/ingest.edits";
    const std::string crash_journal = workdir + "/ingest.edits.crash";
    const std::string image_path = workdir + "/ingest.fsimage";

    std::uint64_t kill_at = args.get_u64_or("kill-at", 0);
    if (kill_at == 0 || kill_at >= lines.size()) {
      // Seeded draw from the middle half of the stream.
      std::mt19937_64 rng(args.get_u64_or("kill-seed", 7));
      kill_at = lines.size() / 4 +
                rng() % std::max<std::uint64_t>(1, lines.size() / 2);
      kill_at = std::max<std::uint64_t>(1, kill_at);
    }
    const std::uint64_t checkpoint_at =
        args.get_u64_or("checkpoint-at", kill_at / 2);

    dfs::MiniDfs live(dfs::ClusterTopology::flat(nodes), dopt);
    dfs::EditLog journal(journal_path);
    live.attach_edit_log(&journal);
    dfs::FsImage::save(live, image_path);  // consistent (image, empty journal)
    elasticmap::LiveMapMaintainer maint(live, path, lopt);
    double peak_drift = 0.0;
    auto ing = std::make_unique<dfs::Ingestor>(live, path, iopt);
    ing->on_seal = [&](dfs::BlockId) {
      maint.scan();
      peak_drift = std::max(peak_drift, maint.ledger().estimated_chi_drift);
      if (maint.ledger().rebuild_recommended) {
        maint.full_rebuild();
      } else {
        maint.tick();
      }
    };
    for (std::uint64_t i = 0; i < kill_at; ++i) {
      ing->append(lines[i]);
      if (i + 1 == checkpoint_at) {
        dfs::FsImage::save(live, image_path);  // checkpoint with a block open
      }
    }
    maint.scan();
    const auto st = ing->stats();
    out << "streamed " << st.records_appended << "/" << lines.size()
        << " records before the crash: " << st.group_commits
        << " group commit(s) of up to " << iopt.group_records << ", "
        << st.blocks_sealed << " block(s) sealed, "
        << (st.blocks_opened - st.blocks_sealed) << " open, "
        << common::format_bytes(st.bytes_committed) << " durable\n";
    const auto lg = maint.ledger();
    out << "live map at crash: " << lg.covered_blocks << " blocks covered, "
        << lg.stale_blocks << " stale, chi drift bound "
        << common::fmt_double(lg.estimated_chi_drift, 4) << " (peak "
        << common::fmt_double(peak_drift, 4) << "), " << lg.deltas_applied
        << " delta(s), " << lg.full_rebuilds << " full rebuild(s)\n";

    // CRASH: the journal file as it exists this instant is what survives;
    // the ingestor's buffered tail (< one group) dies with the process.
    std::filesystem::copy_file(
        journal_path, crash_journal,
        std::filesystem::copy_options::overwrite_existing);
    dfs::RecoveryInfo info;
    auto recovered = dfs::MiniDfs::recover(image_path, crash_journal, &info);
    out << "\ncrash + recover: replayed " << info.replayed_frames
        << " frame(s) past the checkpoint (" << info.skipped_frames
        << " covered by it)" << (info.torn ? ", torn tail dropped" : "")
        << "\n";

    // The recovered namespace must equal the live one at the crash instant
    // (MiniDfs holds only committed bytes, so live == durable here), and the
    // open block's stored bytes must match the journaled extents.
    if (recovered.namespace_digest() != live.namespace_digest()) {
      return fail(out, "recovered namespace digest mismatch at the crash point");
    }
    const auto audit = dfs::audit_open_blocks(live, recovered);
    out << "open-block audit: " << audit.open_blocks << " open, "
        << common::format_bytes(audit.open_bytes) << " in flight";
    if (audit.ok()) {
      out << " — journaled extents match stored bytes\n";
    } else {
      out << "\n";
      for (const auto& v : audit.violations) out << "error: " << v << "\n";
      rc = 1;
    }
    ing.reset();  // the dead writer's buffer never reaches the crash journal

    // Crash consistency: the recovered content is exactly a group-committed
    // prefix of the reference stream, short of the kill point by less than
    // one group.
    const std::string recovered_content = file_content(recovered, path);
    const auto committed = static_cast<std::uint64_t>(
        std::count(recovered_content.begin(), recovered_content.end(), '\n'));
    if (recovered_content != stream.substr(0, recovered_content.size())) {
      return fail(out,
                  "recovered content is not a prefix of the reference stream");
    }
    if (committed > kill_at || kill_at - committed >= iopt.group_records) {
      return fail(out, "a group-committed batch was lost in the crash");
    }
    out << "recovered " << committed << " committed record(s); "
        << (kill_at - committed)
        << " buffered record(s) died with the process\n";

    // Continue on the recovered NameNode: fresh (checkpoint, empty journal)
    // pair as in MetaPlane::recover_shard, adopt the open block, stream the
    // uncommitted remainder, then drain the map maintainer.
    dfs::EditLog journal2(journal_path);
    recovered.attach_edit_log(&journal2);
    dfs::FsImage::save(recovered, image_path);
    elasticmap::LiveMapMaintainer maint2(recovered, path, lopt);
    {
      dfs::Ingestor ing2(recovered, path, iopt);
      ing2.on_seal = [&](dfs::BlockId) {
        maint2.scan();
        if (maint2.ledger().rebuild_recommended) {
          maint2.full_rebuild();
        } else {
          maint2.tick();
        }
      };
      for (std::uint64_t i = committed; i < lines.size(); ++i) {
        ing2.append(lines[i]);
      }
    }
    const std::uint64_t drain_ticks = maint2.drain();

    // The continued run must be indistinguishable from one that never
    // crashed: same bytes, same block boundaries, same estimates.
    if (file_content(recovered, path) != stream) {
      return fail(out, "continued ingestion diverged from the reference stream");
    }
    if (recovered.blocks_of(path).size() != ref.blocks_of(path).size()) {
      return fail(out,
                  "continued ingestion produced different block boundaries");
    }
    const auto ref_map =
        elasticmap::ElasticMapArray::build(ref, path, lopt.build);
    std::vector<std::pair<std::uint64_t, std::string>> ranked;
    for (const auto& [key, bytes] : truth_bytes) ranked.emplace_back(bytes, key);
    std::sort(ranked.rbegin(), ranked.rend());
    common::TextTable table({"sub-dataset", "truth", "estimate", "chi"});
    for (std::size_t i = 0; i < std::min<std::size_t>(5, ranked.size()); ++i) {
      const auto& key = ranked[i].second;
      const auto id = workload::subdataset_id(key);
      const std::uint64_t est = maint2.map().estimate_total_size(id);
      if (est != ref_map.estimate_total_size(id)) {
        out << "error: delta-built estimate for '" << key
            << "' diverges from the full rebuild\n";
        rc = 1;
      }
      table.add_row(
          {key, common::format_bytes(ranked[i].first),
           common::format_bytes(est),
           common::fmt_double(static_cast<double>(est) /
                                  static_cast<double>(ranked[i].first),
                              4)});
    }
    const auto lg2 = maint2.ledger();
    out << "\nchi ledger after recovery + drain (" << drain_ticks
        << " tick(s)): " << lg2.covered_blocks << " blocks covered, "
        << lg2.stale_blocks << " stale, chi drift bound "
        << common::fmt_double(lg2.estimated_chi_drift, 4) << ", "
        << lg2.deltas_applied << " delta(s), " << lg2.full_rebuilds
        << " full rebuild(s)\n"
        << table.to_string();

    const auto report = dfs::fsck(recovered);
    out << "\nfsck: " << report.total_blocks << " blocks, "
        << report.missing_blocks << " missing, " << report.under_replicated
        << " under-replicated, " << report.open_blocks << " open\n";
    if (!report.healthy() || report.open_blocks != 0) {
      out << "error: namespace unhealthy (or a block left open) after close\n";
      rc = 1;
    }
    out << (rc == 0 ? "ingestion drill passed\n" : "ingestion drill FAILED\n");
  } catch (const std::exception& e) {
    return fail(out, e.what());
  }
  warn_unused(args, out);
  return rc;
}

int cmd_forecast(const Args& args, std::ostream& out) {
  const auto file = args.get("in");
  if (!file) return fail(out, "forecast requires --in FILE");
  const auto key = args.get("key");
  if (!key) return fail(out, "forecast requires --key SUBDATASET");
  try {
    // Ingest once to obtain the per-block distribution of the sub-dataset.
    dfs::DfsOptions dopt;
    dopt.block_size = args.get_u64_or("block-size", 128 * 1024);
    dopt.replication = 3;
    dfs::MiniDfs fs(dfs::ClusterTopology::flat(8), dopt);
    workload::LoadStats stats;
    workload::ingest_file(fs, "/data", *file, &stats);
    const workload::GroundTruth truth(fs, "/data");
    const auto dist = truth.distribution(workload::subdataset_id(*key));

    std::vector<double> nonzero;
    for (const auto v : dist) {
      if (v > 0) nonzero.push_back(static_cast<double>(v) / 1024.0);
    }
    if (nonzero.size() < 2) {
      return fail(out, "sub-dataset '" + *key + "' present in < 2 blocks");
    }

    const auto g = stats::gini(std::span<const std::uint64_t>(dist));
    const auto fit = stats::fit_gamma_mle(nonzero);
    out << "'" << *key << "': " << nonzero.size() << "/" << dist.size()
        << " blocks contain data; gini = " << common::fmt_double(g, 3)
        << "; per-block size ~ Gamma(k=" << common::fmt_double(fit.shape, 3)
        << ", theta=" << common::fmt_double(fit.scale, 1) << " KiB)\n";
    // Warn when the Gamma model does not describe the data well.
    if (nonzero.size() >= 20) {
      const stats::GammaDistribution fitted(fit.shape, fit.scale);
      const auto gof = stats::chi_squared_gof(nonzero, fitted);
      out << "goodness of fit: chi2 = " << common::fmt_double(gof.statistic, 1)
          << " (dof " << gof.dof << "), p = "
          << common::fmt_double(gof.p_value, 3);
      if (gof.p_value < 0.01) {
        out << " — the Gamma model fits poorly; treat the forecast as "
               "directional only";
      }
      out << "\n";
    }
    out << "\n";

    common::TextTable table({"cluster nodes", "P(node < E/2)", "P(node > 2E)",
                             "expected stragglers"});
    for (const std::uint64_t m : {8ull, 16ull, 32ull, 64ull, 128ull, 256ull}) {
      const auto z = stats::node_workload_distribution(fit.shape, fit.scale,
                                                       nonzero.size(), m);
      table.add_row({std::to_string(m), common::fmt_percent(z.cdf(z.mean() / 2)),
                     common::fmt_percent(z.sf(2 * z.mean())),
                     common::fmt_double(static_cast<double>(m) *
                                            z.sf(2 * z.mean()),
                                        2)});
    }
    out << "Section II-B forecast (locality scheduling, no DataNet):\n"
        << table.to_string();
    out << "\n(DataNet's distribution-aware scheduling removes this "
           "imbalance; see `analyze`)\n";
  } catch (const std::exception& e) {
    return fail(out, e.what());
  }
  warn_unused(args, out);
  return 0;
}

std::string usage() {
  return R"(datanet — sub-dataset distribution-aware analysis (IPDPS'16 reproduction)

usage: datanet <command> [--flags]

commands:
  generate  --out FILE [--type movie|github|worldcup] [--records N] [--seed S]
  inspect   --in FILE [--top K]
  analyze   --in FILE --key SUBDATASET [--job wordcount|histogram|movingavg|
            topk|sessionize|distinct] [--nodes N] [--block-size BYTES]
            [--alpha A] [--query TEXT] [--k K] [--window SECS]
            [--field PREFIX] [--gap SECS] [--show-output] [--json]
  simulate  --in FILE --key SUBDATASET [--nodes N] [--slots S]
            [--disk-mbps D] [--nic-mbps NW] [--block-size BYTES] [--alpha A]
  faults    --in FILE --key SUBDATASET [--nodes N] [--block-size BYTES]
            [--kill-nodes K] [--stall-nodes S] [--transient-reads T]
            [--corrupt-replicas C] [--fault-seed S] [--timeout-ticks T]
            [--max-attempts A] [--no-speculation] [--json]
  fsck      --in FILE [--nodes N] [--replication R] [--block-size BYTES]
            [--kill-nodes K] [--corrupt-replicas C] [--fault-seed S]
            [--repair-rate R] [--top K] [--workdir DIR]
            [--meta-shards M [--files F] [--crash-shard K]]
            (exits non-zero on unrepairable blocks, journal corruption,
             checkpoint errors, or digest mismatch; --meta-shards M > 1 runs
             the sharded-plane kill-one-shard drill instead)
  ingest    [--in FILE | --type movie|github|worldcup --records N] [--seed S]
            [--group RECORDS] [--kill-at R | --kill-seed S] [--checkpoint-at R]
            [--nodes N] [--block-size BYTES] [--replication R]
            [--map-blocks-per-tick B] [--rebuild-watermark F] [--workdir DIR]
            (streams records with group commit, crashes at a seeded point,
             recovers, continues, and exits non-zero unless content, block
             boundaries, and ElasticMap estimates match a never-crashed run)
  forecast  --in FILE --key SUBDATASET [--block-size BYTES]
  serve     [--port P] [--port-file FILE] [--workers W] [--max-queue Q]
            [--max-inflight I] [--max-connections C] [--meta-shards M]
            [--nodes N] [--block-size BYTES] [--replication R] [--seed S]
            [--blocks B]
  query     --port P --key SUBDATASET [--tenant T] [--scheduler
            datanet|locality|lpt|maxflow] [--baseline] [--count N] [--json]
            [--stats] [--shutdown]
            | --local --key SUBDATASET [dataset-shape flags]
)";
}

int run_cli(const std::vector<std::string>& argv, std::ostream& out) {
  if (argv.empty() || argv[0] == "--help" || argv[0] == "help") {
    out << usage();
    return argv.empty() ? 1 : 0;
  }
  const std::string command = argv[0];
  std::string error;
  const auto args =
      Args::parse({argv.begin() + 1, argv.end()}, &error);
  if (!args) {
    out << "error: " << error << "\n" << usage();
    return 1;
  }
  if (command == "generate") return cmd_generate(*args, out);
  if (command == "inspect") return cmd_inspect(*args, out);
  if (command == "analyze") return cmd_analyze(*args, out);
  if (command == "simulate") return cmd_simulate(*args, out);
  if (command == "faults") return cmd_faults(*args, out);
  if (command == "fsck") return cmd_fsck(*args, out);
  if (command == "ingest") return cmd_ingest(*args, out);
  if (command == "forecast") return cmd_forecast(*args, out);
  if (command == "serve") return cmd_serve(*args, out);
  if (command == "query") return cmd_query(*args, out);
  out << "error: unknown command '" << command << "'\n" << usage();
  return 1;
}

}  // namespace datanet::cli
