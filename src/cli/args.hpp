#pragma once
// Minimal argument parsing for the datanet CLI. Flags are --name value or
// --name=value; anything else is positional. Typed getters validate and
// report errors without exceptions crossing the CLI boundary.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace datanet::cli {

class Args {
 public:
  // Parse argv-style tokens (not including the program/command name).
  // Returns nullopt and sets `error` on malformed input (e.g. trailing
  // --flag without a value).
  static std::optional<Args> parse(const std::vector<std::string>& tokens,
                                   std::string* error);

  [[nodiscard]] bool has(const std::string& flag) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& flag) const;
  [[nodiscard]] std::string get_or(const std::string& flag,
                                   std::string fallback) const;
  [[nodiscard]] std::optional<std::uint64_t> get_u64(const std::string& flag) const;
  [[nodiscard]] std::uint64_t get_u64_or(const std::string& flag,
                                         std::uint64_t fallback) const;
  [[nodiscard]] std::optional<double> get_double(const std::string& flag) const;
  [[nodiscard]] double get_double_or(const std::string& flag,
                                     double fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  // Flags consumed by none of the getters so far — typo detection.
  [[nodiscard]] std::vector<std::string> unused_flags() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace datanet::cli
