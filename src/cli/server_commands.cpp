// The datanetd serving pair: `serve` runs the always-on multi-tenant
// selection daemon over a deterministic hosted dataset, `query` is the
// client (with an in-process --local mode that recomputes the golden digest
// for the same dataset shape — the CI smoke test compares the two).

#include <fstream>
#include <iostream>

#include "cli/commands.hpp"
#include "server/client.hpp"
#include "server/resilient_client.hpp"
#include "server/server.hpp"

namespace datanet::cli {

namespace {

int fail(std::ostream& out, const std::string& message) {
  out << "error: " << message << "\n";
  return 1;
}

int warn_unused(const Args& args, std::ostream& out) {
  for (const auto& flag : args.unused_flags()) {
    out << "warning: unknown flag --" << flag << " ignored\n";
  }
  return 0;
}

// Dataset-shape flags shared by serve and query --local; both sides must
// agree on these for the digest contract to hold.
server::ServerOptions shape_options(const Args& args) {
  server::ServerOptions opts;
  opts.cfg.num_nodes =
      static_cast<std::uint32_t>(args.get_u64_or("nodes", 16));
  opts.cfg.block_size = args.get_u64_or("block-size", 128 * 1024);
  opts.cfg.replication =
      static_cast<std::uint32_t>(args.get_u64_or("replication", 3));
  opts.cfg.seed = args.get_u64_or("seed", 42);
  opts.dataset_blocks = args.get_u64_or("blocks", 64);
  return opts;
}

void print_reply(std::ostream& out, const server::QueryReply& r, bool json) {
  if (json) {
    out << "{\"digest\": " << r.digest
        << ", \"matched_bytes\": " << r.matched_bytes
        << ", \"blocks_scanned\": " << r.blocks_scanned
        << ", \"service_micros\": " << r.service_micros
        << ", \"queue_micros\": " << r.queue_micros
        << ", \"degraded\": " << (r.degraded ? "true" : "false")
        << ", \"staleness_micros\": " << r.staleness_micros << "}\n";
  } else {
    out << "digest=" << r.digest << " matched_bytes=" << r.matched_bytes
        << " blocks_scanned=" << r.blocks_scanned
        << " service_us=" << r.service_micros
        << " queue_us=" << r.queue_micros;
    if (r.degraded) {
      out << " degraded=1 staleness_us=" << r.staleness_micros;
    }
    out << "\n";
  }
}

void print_stats(std::ostream& out, const server::ServerStats& s, bool json) {
  if (json) {
    out << "{\"queries_served\": " << s.queries_served
        << ", \"meta_shards\": " << s.meta_shards
        << ", \"degraded_served\": " << s.degraded_served
        << ", \"deadline_shed\": " << s.deadline_shed
        << ", \"circuit_rejected\": " << s.circuit_rejected
        << ", \"cache\": {\"hits\": " << s.cache_hits
        << ", \"revalidations\": " << s.cache_revalidations
        << ", \"rebuilds\": " << s.cache_rebuilds
        << ", \"delta_applies\": " << s.cache_delta_applies
        << "}, \"tenants\": [";
    for (std::size_t i = 0; i < s.tenants.size(); ++i) {
      const server::TenantMeter& t = s.tenants[i];
      out << (i > 0 ? ", " : "") << "{\"tenant\": \"" << t.tenant << "\""
          << ", \"submitted\": " << t.submitted
          << ", \"accepted\": " << t.accepted
          << ", \"rejected_queue_full\": " << t.rejected_queue_full
          << ", \"rejected_inflight\": " << t.rejected_inflight
          << ", \"dispatched\": " << t.dispatched
          << ", \"completed\": " << t.completed
          << ", \"queue_wait_micros\": " << t.queue_wait_micros << "}";
    }
    out << "]}\n";
  } else {
    out << "queries_served=" << s.queries_served
        << " meta_shards=" << s.meta_shards
        << " degraded_served=" << s.degraded_served
        << " deadline_shed=" << s.deadline_shed
        << " circuit_rejected=" << s.circuit_rejected
        << " cache_hits=" << s.cache_hits
        << " cache_revalidations=" << s.cache_revalidations
        << " cache_rebuilds=" << s.cache_rebuilds
        << " cache_delta_applies=" << s.cache_delta_applies << "\n";
    for (const server::TenantMeter& t : s.tenants) {
      out << "tenant " << t.tenant << ": submitted=" << t.submitted
          << " accepted=" << t.accepted
          << " rejected_queue_full=" << t.rejected_queue_full
          << " rejected_inflight=" << t.rejected_inflight
          << " dispatched=" << t.dispatched << " completed=" << t.completed
          << " queue_wait_us=" << t.queue_wait_micros << "\n";
    }
  }
}

}  // namespace

int cmd_serve(const Args& args, std::ostream& out) {
  server::ServerOptions opts = shape_options(args);
  opts.port = static_cast<std::uint16_t>(args.get_u64_or("port", 0));
  opts.workers = static_cast<std::uint32_t>(args.get_u64_or("workers", 2));
  opts.max_connections =
      static_cast<std::uint32_t>(args.get_u64_or("max-connections", 64));
  opts.default_limits.max_queue = args.get_u64_or("max-queue", 64);
  opts.default_limits.max_inflight = args.get_u64_or("max-inflight", 4);
  // Shard count is serve-side only: it never changes placement (see
  // ServerOptions::meta_shards), so query --local needs no matching flag.
  opts.meta_shards =
      static_cast<std::uint32_t>(args.get_u64_or("meta-shards", 1));
  opts.io_timeout_ms =
      static_cast<std::uint32_t>(args.get_u64_or("io-timeout-ms", 10'000));
  opts.breaker.failure_threshold = static_cast<std::uint32_t>(
      args.get_u64_or("breaker-threshold", 0));  // 0 = breaker off
  opts.breaker.probe_interval =
      static_cast<std::uint32_t>(args.get_u64_or("breaker-probe", 4));
  const std::string port_file = args.get_or("port-file", "");
  warn_unused(args, out);

  try {
    server::Server srv(opts);
    srv.start();
    out << "datanetd listening on 127.0.0.1:" << srv.port() << " ("
        << srv.plane().num_shards() << " metadata shard(s))\n";
    out.flush();
    if (!port_file.empty()) {
      // Written after the listener is live, so a script polling the file
      // can connect as soon as it appears.
      std::ofstream f(port_file, std::ios::trunc);
      f << srv.port() << "\n";
    }
    srv.wait();
    srv.stop();
    const auto cache = srv.cache().stats();
    out << "datanetd: served " << srv.queries_served()
        << " queries; metadata cache hits=" << cache.hits
        << " revalidations=" << cache.revalidations
        << " rebuilds=" << cache.rebuilds
        << " delta_applies=" << cache.delta_applies << "\n";
    return 0;
  } catch (const std::exception& e) {
    return fail(out, e.what());
  }
}

int cmd_query(const Args& args, std::ostream& out) {
  const server::ServerOptions shape = shape_options(args);
  server::QueryRequest request;
  request.tenant = args.get_or("tenant", "default");
  request.key = args.get_or("key", "");
  request.scheduler = args.get_or("scheduler", "datanet");
  request.use_datanet_meta = !args.has("baseline");
  request.deadline_ms =
      static_cast<std::uint32_t>(args.get_u64_or("deadline-ms", 0));
  server::RetryPolicy retry;
  retry.max_attempts =
      static_cast<std::uint32_t>(args.get_u64_or("retries", 3));
  retry.timeout_ms =
      static_cast<std::uint32_t>(args.get_u64_or("timeout-ms", 2'000));
  retry.seed = args.get_u64_or("retry-seed", 0);
  const bool local = args.has("local");
  const bool do_shutdown = args.has("shutdown");
  const bool do_stats = args.has("stats");
  const bool json = args.has("json");
  const std::uint64_t count = args.get_u64_or("count", 1);
  const auto port = args.get_u64("port");
  warn_unused(args, out);

  if (local) {
    if (request.key.empty()) return fail(out, "--key is required");
    for (std::uint64_t i = 0; i < count; ++i) {
      const server::QueryOutcome outcome = server::local_query(shape, request);
      if (!outcome.ok) return fail(out, outcome.error);
      print_reply(out, outcome.reply, json);
    }
    return 0;
  }
  if (!port.has_value()) {
    return fail(out, "--port is required (or use --local)");
  }
  if (request.key.empty() && !do_shutdown && !do_stats) {
    return fail(out, "--key is required (or --stats/--shutdown)");
  }
  try {
    // ResilientClient: transport failures (reset, truncation, stall, corrupt
    // frame) retry on a fresh connection under --retries/--timeout-ms;
    // typed server answers come back as results.
    server::ResilientClient client(static_cast<std::uint16_t>(*port), retry);
    if (!request.key.empty()) {
      for (std::uint64_t i = 0; i < count; ++i) {
        const server::ClientResult result = client.query(request);
        switch (result.status) {
          case server::ClientResult::Status::kOk:
            print_reply(out, result.reply, json);
            break;
          case server::ClientResult::Status::kRejected:
            out << "rejected: "
                << server::reject_reason_name(result.rejection.reason) << " ("
                << result.rejection.detail << ")\n";
            return 2;
          case server::ClientResult::Status::kError:
            return fail(out, "server error: " + result.error);
        }
      }
    }
    if (do_stats) {
      print_stats(out, client.stats(), json);
    }
    if (do_shutdown) {
      client.shutdown_server();
      out << "server shutdown acknowledged\n";
    }
    return 0;
  } catch (const std::exception& e) {
    return fail(out, e.what());
  }
}

}  // namespace datanet::cli
