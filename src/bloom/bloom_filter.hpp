#pragma once
// Space-efficient membership filter used by ElasticMap for non-dominant
// sub-datasets (Section III-A). Bloom, CACM 1970. Optimal sizing:
//   bits/key = -ln(eps) / ln^2(2),   k = (m/n) ln 2.
// Probes use Kirsch–Mitzenmacher double hashing so each key is hashed once.

#include <cstdint>
#include <string>
#include <vector>

namespace datanet::bloom {

class BloomFilter {
 public:
  // Filter sized for `expected_keys` insertions at false-positive rate
  // `target_fpp` (clamped to [1e-9, 0.5]).
  BloomFilter(std::uint64_t expected_keys, double target_fpp);

  // Explicit geometry (bits rounded up to a word multiple).
  static BloomFilter with_geometry(std::uint64_t num_bits, std::uint32_t num_hashes);

  void insert(std::uint64_t key);
  [[nodiscard]] bool maybe_contains(std::uint64_t key) const;

  // In-place union; geometries must match exactly.
  void merge(const BloomFilter& other);

  [[nodiscard]] std::uint64_t num_bits() const noexcept {
    return static_cast<std::uint64_t>(words_.size()) * 64;
  }
  [[nodiscard]] std::uint32_t num_hashes() const noexcept { return num_hashes_; }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return words_.size() * sizeof(std::uint64_t);
  }
  [[nodiscard]] std::uint64_t insert_count() const noexcept { return inserts_; }

  // Fraction of set bits; feeds the estimated-fpp diagnostics.
  [[nodiscard]] double fill_ratio() const;

  // fpp estimate from the actual fill ratio: (set_fraction)^k.
  [[nodiscard]] double estimated_fpp() const;

  // Cardinality estimate from fill ratio: -m/k * ln(1 - X/m).
  [[nodiscard]] double estimated_cardinality() const;

  // Compact binary round-trip (little-endian, versioned header).
  [[nodiscard]] std::string serialize() const;
  static BloomFilter deserialize(std::string_view bytes);

  // Theoretical bits/key for a target fpp (Eq. 5's bloom term).
  [[nodiscard]] static double bits_per_key(double target_fpp);

 private:
  BloomFilter() = default;

  std::vector<std::uint64_t> words_;
  std::uint32_t num_hashes_ = 1;
  std::uint64_t inserts_ = 0;
};

}  // namespace datanet::bloom
