#pragma once
// HyperLogLog distinct-value estimator (Flajolet et al. 2007), the companion
// sketch to the Bloom filter in this library's probabilistic toolbox. Used
// by the DistinctUsers analysis job to count unique users/clients per
// sub-dataset in O(2^precision) space, and available to ElasticMap users who
// want per-block sub-dataset cardinalities instead of byte sizes.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace datanet::bloom {

class HyperLogLog {
 public:
  // precision p in [4, 16]: 2^p one-byte registers; relative error is about
  // 1.04 / sqrt(2^p) (p = 12 -> ~1.6%).
  explicit HyperLogLog(std::uint32_t precision = 12);

  void insert(std::uint64_t hashed_key);

  // Bias-corrected estimate with the small-range (linear counting) and
  // large-range corrections from the paper.
  [[nodiscard]] double estimate() const;

  // In-place union: the sketch of the union of both multisets.
  void merge(const HyperLogLog& other);

  [[nodiscard]] std::uint32_t precision() const noexcept { return precision_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return registers_.size();
  }

  // Compact binary round-trip (register dump + header).
  [[nodiscard]] std::string serialize() const;
  static HyperLogLog deserialize(std::string_view bytes);

 private:
  std::uint32_t precision_;
  std::vector<std::uint8_t> registers_;
};

}  // namespace datanet::bloom
