#include "bloom/bloom_filter.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "common/hash.hpp"

namespace datanet::bloom {

namespace {
constexpr double kLn2 = 0.6931471805599453;
constexpr std::uint32_t kSerialMagic = 0x424c4f4du;  // "BLOM"
constexpr std::uint32_t kSerialVersion = 1;
// Far above any useful hash count (the ctor clamps to 30); rejecting larger
// values bounds the per-query work a corrupt header can demand.
constexpr std::uint32_t kMaxHashes = 1024;

std::uint64_t round_up_words(std::uint64_t bits) { return (bits + 63) / 64; }
}  // namespace

double BloomFilter::bits_per_key(double target_fpp) {
  target_fpp = std::clamp(target_fpp, 1e-9, 0.5);
  return -std::log(target_fpp) / (kLn2 * kLn2);
}

BloomFilter::BloomFilter(std::uint64_t expected_keys, double target_fpp) {
  target_fpp = std::clamp(target_fpp, 1e-9, 0.5);
  expected_keys = std::max<std::uint64_t>(expected_keys, 1);
  const double bits =
      std::ceil(static_cast<double>(expected_keys) * bits_per_key(target_fpp));
  words_.assign(round_up_words(static_cast<std::uint64_t>(bits)), 0);
  const double k = (bits / static_cast<double>(expected_keys)) * kLn2;
  num_hashes_ = std::clamp<std::uint32_t>(static_cast<std::uint32_t>(std::lround(k)),
                                          1, 30);
}

BloomFilter BloomFilter::with_geometry(std::uint64_t num_bits,
                                       std::uint32_t num_hashes) {
  if (num_bits == 0 || num_hashes == 0 || num_hashes > kMaxHashes) {
    throw std::invalid_argument("BloomFilter geometry out of range");
  }
  BloomFilter f;
  f.words_.assign(round_up_words(num_bits), 0);
  f.num_hashes_ = num_hashes;
  return f;
}

void BloomFilter::insert(std::uint64_t key) {
  const std::uint64_t h1 = common::mix64(key);
  const std::uint64_t h2 = common::mix64(key ^ 0x5851f42d4c957f2dULL) | 1;
  const std::uint64_t m = num_bits();
  for (std::uint32_t i = 0; i < num_hashes_; ++i) {
    const std::uint64_t bit = common::double_hash(h1, h2, i) % m;
    words_[bit >> 6] |= (1ULL << (bit & 63));
  }
  ++inserts_;
}

bool BloomFilter::maybe_contains(std::uint64_t key) const {
  const std::uint64_t h1 = common::mix64(key);
  const std::uint64_t h2 = common::mix64(key ^ 0x5851f42d4c957f2dULL) | 1;
  const std::uint64_t m = num_bits();
  for (std::uint32_t i = 0; i < num_hashes_; ++i) {
    const std::uint64_t bit = common::double_hash(h1, h2, i) % m;
    if (!(words_[bit >> 6] & (1ULL << (bit & 63)))) return false;
  }
  return true;
}

void BloomFilter::merge(const BloomFilter& other) {
  if (other.words_.size() != words_.size() || other.num_hashes_ != num_hashes_) {
    throw std::invalid_argument("BloomFilter::merge: geometry mismatch");
  }
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  inserts_ += other.inserts_;
}

double BloomFilter::fill_ratio() const {
  std::uint64_t set = 0;
  for (std::uint64_t w : words_) set += static_cast<std::uint64_t>(std::popcount(w));
  return static_cast<double>(set) / static_cast<double>(num_bits());
}

double BloomFilter::estimated_fpp() const {
  return std::pow(fill_ratio(), static_cast<double>(num_hashes_));
}

double BloomFilter::estimated_cardinality() const {
  const double x = fill_ratio();
  if (x >= 1.0) return static_cast<double>(num_bits());  // saturated
  const double m = static_cast<double>(num_bits());
  return -m / static_cast<double>(num_hashes_) * std::log(1.0 - x);
}

std::string BloomFilter::serialize() const {
  std::string out;
  out.reserve(24 + words_.size() * 8);
  auto put_u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };
  auto put_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  };
  put_u32(kSerialMagic);
  put_u32(kSerialVersion);
  put_u32(num_hashes_);
  put_u32(0);  // reserved
  put_u64(inserts_);
  put_u64(static_cast<std::uint64_t>(words_.size()));
  for (std::uint64_t w : words_) put_u64(w);
  return out;
}

BloomFilter BloomFilter::deserialize(std::string_view bytes) {
  auto get_u32 = [&](std::size_t off) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[off + i]))
           << (8 * i);
    return v;
  };
  auto get_u64 = [&](std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[off + i]))
           << (8 * i);
    return v;
  };
  if (bytes.size() < 32) throw std::invalid_argument("BloomFilter: truncated");
  if (get_u32(0) != kSerialMagic || get_u32(4) != kSerialVersion) {
    throw std::invalid_argument("BloomFilter: bad header");
  }
  BloomFilter f;
  f.num_hashes_ = get_u32(8);
  f.inserts_ = get_u64(16);
  // Compare against the buffer instead of computing 32 + nwords * 8, which
  // overflows for hostile nwords and could pass the check before a huge
  // resize.
  const std::uint64_t nwords = get_u64(24);
  if ((bytes.size() - 32) % 8 != 0 || nwords != (bytes.size() - 32) / 8) {
    throw std::invalid_argument("BloomFilter: size mismatch");
  }
  f.words_.resize(nwords);
  for (std::uint64_t i = 0; i < nwords; ++i) f.words_[i] = get_u64(32 + i * 8);
  if (f.num_hashes_ == 0 || f.num_hashes_ > kMaxHashes || f.words_.empty()) {
    throw std::invalid_argument("BloomFilter: bad geometry");
  }
  return f;
}

}  // namespace datanet::bloom
