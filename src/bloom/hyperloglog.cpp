#include "bloom/hyperloglog.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "common/hash.hpp"

namespace datanet::bloom {

HyperLogLog::HyperLogLog(std::uint32_t precision) : precision_(precision) {
  if (precision < 4 || precision > 16) {
    throw std::invalid_argument("HyperLogLog: precision in [4, 16]");
  }
  registers_.assign(std::size_t{1} << precision, 0);
}

void HyperLogLog::insert(std::uint64_t hashed_key) {
  // Re-mix so raw (possibly sequential) keys behave; the top p bits pick the
  // register, the remaining bits feed the rank.
  const std::uint64_t h = common::mix64(hashed_key ^ 0x9e3779b97f4a7c15ULL);
  const std::uint64_t idx = h >> (64 - precision_);
  const std::uint64_t rest = h << precision_;
  // Rank: position of the leftmost 1 in the remaining 64-p bits, 1-based;
  // all-zero remainder gets the maximum rank.
  const int zeros = rest == 0 ? static_cast<int>(64 - precision_)
                              : std::countl_zero(rest);
  const auto rank = static_cast<std::uint8_t>(
      std::min<int>(zeros + 1, 64 - static_cast<int>(precision_) + 1));
  registers_[idx] = std::max(registers_[idx], rank);
}

double HyperLogLog::estimate() const {
  const double m = static_cast<double>(registers_.size());
  const double alpha =
      registers_.size() == 16 ? 0.673
      : registers_.size() == 32 ? 0.697
      : registers_.size() == 64 ? 0.709
                                : 0.7213 / (1.0 + 1.079 / m);
  double sum = 0.0;
  std::size_t zero_registers = 0;
  for (const auto r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    zero_registers += (r == 0);
  }
  double e = alpha * m * m / sum;

  if (e <= 2.5 * m && zero_registers > 0) {
    // Small-range correction: linear counting.
    e = m * std::log(m / static_cast<double>(zero_registers));
  } else if (e > (1.0 / 30.0) * 4294967296.0) {
    // Large-range correction (32-bit hash-space variant kept for parity with
    // the published algorithm; rarely triggered with 64-bit hashing).
    e = -4294967296.0 * std::log(1.0 - e / 4294967296.0);
  }
  return e;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) {
    throw std::invalid_argument("HyperLogLog::merge: precision mismatch");
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

std::string HyperLogLog::serialize() const {
  std::string out;
  out.reserve(4 + registers_.size());
  out.push_back('H');
  out.push_back('L');
  out.push_back('L');
  out.push_back(static_cast<char>(precision_));
  out.append(reinterpret_cast<const char*>(registers_.data()),
             registers_.size());
  return out;
}

HyperLogLog HyperLogLog::deserialize(std::string_view bytes) {
  if (bytes.size() < 5 || bytes.substr(0, 3) != "HLL") {
    throw std::invalid_argument("HyperLogLog: bad header");
  }
  const auto precision = static_cast<std::uint32_t>(
      static_cast<unsigned char>(bytes[3]));
  HyperLogLog hll(precision);  // validates precision
  if (bytes.size() != 4 + hll.registers_.size()) {
    throw std::invalid_argument("HyperLogLog: size mismatch");
  }
  for (std::size_t i = 0; i < hll.registers_.size(); ++i) {
    hll.registers_[i] = static_cast<std::uint8_t>(bytes[4 + i]);
  }
  return hll;
}

}  // namespace datanet::bloom
