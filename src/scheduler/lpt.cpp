#include "scheduler/lpt.hpp"

#include <algorithm>
#include <numeric>

namespace datanet::scheduler {

void LptScheduler::reset(const graph::BipartiteGraph& graph) {
  graph_ = &graph;
  queues_.assign(graph.num_nodes(), {});
  pending_weight_.assign(graph.num_nodes(), 0);
  planned_.assign(graph.num_nodes(), 0);
  remaining_ = graph.num_blocks();

  std::vector<std::size_t> order(graph.num_blocks());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return graph.block(a).weight > graph.block(b).weight;
  });

  const double average = static_cast<double>(graph.total_weight()) /
                         static_cast<double>(graph.num_nodes());
  for (const std::size_t j : order) {
    const auto& hosts = graph.block(j).hosts;
    // Least-loaded replica holder.
    dfs::NodeId target = hosts.empty() ? 0 : hosts[0];
    for (const dfs::NodeId n : hosts) {
      if (planned_[n] < planned_[target]) target = n;
    }
    // Optional relocation when every holder is already past the bar.
    if (!hosts.empty() && options_.relocation_threshold >= 0.0) {
      const double bar = average * (1.0 + options_.relocation_threshold);
      if (static_cast<double>(planned_[target]) > bar) {
        for (dfs::NodeId n = 0; n < graph.num_nodes(); ++n) {
          if (planned_[n] < planned_[target]) target = n;
        }
      }
    }
    planned_[target] += graph.block(j).weight;
    queues_[target].push_back(j);
    pending_weight_[target] += graph.block(j).weight;
  }
}

std::optional<std::size_t> LptScheduler::next_task(dfs::NodeId node) {
  if (graph_ == nullptr || remaining_ == 0) return std::nullopt;
  auto pop = [&](dfs::NodeId owner) {
    const std::size_t j = queues_[owner].front();
    queues_[owner].pop_front();
    pending_weight_[owner] -= graph_->block(j).weight;
    --remaining_;
    return j;
  };
  if (!queues_[node].empty()) return pop(node);
  // Work-conserving steal from the most-loaded remaining queue.
  dfs::NodeId victim = node;
  std::uint64_t most = 0;
  for (dfs::NodeId n = 0; n < static_cast<dfs::NodeId>(queues_.size()); ++n) {
    if (!queues_[n].empty() && pending_weight_[n] >= most) {
      most = pending_weight_[n];
      victim = n;
    }
  }
  if (queues_[victim].empty()) return std::nullopt;
  const std::size_t j = queues_[victim].back();
  queues_[victim].pop_back();
  pending_weight_[victim] -= graph_->block(j).weight;
  --remaining_;
  return j;
}

}  // namespace datanet::scheduler
