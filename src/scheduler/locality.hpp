#pragma once
// Hadoop's default block-locality scheduling (the paper's "without DataNet"
// baseline): a requesting node receives a random unassigned block hosted
// locally; if it has none left, a random remaining block (rack/any fallback).
// It balances block *counts*, but is blind to sub-dataset content — the
// source of the imbalance analyzed in Section II.

#include "common/rng.hpp"
#include "scheduler/scheduler.hpp"

namespace datanet::scheduler {

class LocalityScheduler final : public TaskScheduler {
 public:
  explicit LocalityScheduler(std::uint64_t seed = 7);

  void reset(const graph::BipartiteGraph& graph) override;
  std::optional<std::size_t> next_task(dfs::NodeId node) override;
  [[nodiscard]] std::string_view name() const override { return "locality"; }

 private:
  common::Rng rng_;
  std::uint64_t seed_;
  const graph::BipartiteGraph* graph_ = nullptr;
  std::vector<bool> assigned_;
  std::size_t remaining_ = 0;
  // Per-node cursor into its local block list to avoid rescanning.
  std::vector<std::vector<std::size_t>> local_;
};

}  // namespace datanet::scheduler
