#include "scheduler/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace datanet::scheduler {

AssignmentRecord drain_timed(TaskScheduler& sched,
                             const graph::BipartiteGraph& graph,
                             const std::vector<std::uint64_t>& block_bytes,
                             const std::vector<double>& node_speed) {
  if (block_bytes.size() != graph.num_blocks()) {
    throw std::invalid_argument("drain_timed: block_bytes size mismatch");
  }
  if (!node_speed.empty()) {
    if (node_speed.size() != graph.num_nodes()) {
      throw std::invalid_argument("drain_timed: node_speed size mismatch");
    }
    for (const double s : node_speed) {
      if (!(s > 0.0)) throw std::invalid_argument("drain_timed: speed <= 0");
    }
  }
  sched.reset(graph);
  AssignmentRecord rec;
  rec.block_to_node.assign(graph.num_blocks(), 0);
  rec.node_load.assign(graph.num_nodes(), 0);
  rec.node_input_bytes.assign(graph.num_nodes(), 0);

  std::vector<double> clock(graph.num_nodes(), 0.0);
  std::vector<bool> exhausted(graph.num_nodes(), false);
  std::size_t remaining = graph.num_blocks();
  std::uint32_t live_nodes = graph.num_nodes();

  while (remaining > 0 && live_nodes > 0) {
    // Earliest-clock non-exhausted node requests next; ties to lowest id.
    dfs::NodeId next = 0;
    double best = std::numeric_limits<double>::infinity();
    for (dfs::NodeId n = 0; n < graph.num_nodes(); ++n) {
      if (!exhausted[n] && clock[n] < best) {
        best = clock[n];
        next = n;
      }
    }
    const auto task = sched.next_task(next);
    if (!task) {
      exhausted[next] = true;
      --live_nodes;
      continue;
    }
    if (*task >= graph.num_blocks()) {
      throw std::logic_error("drain_timed: scheduler returned bad task");
    }
    rec.block_to_node[*task] = next;
    rec.node_load[next] += graph.block(*task).weight;
    rec.node_input_bytes[next] += block_bytes[*task];
    const double speed = node_speed.empty() ? 1.0 : node_speed[next];
    clock[next] += static_cast<double>(block_bytes[*task]) / speed;
    --remaining;
    const auto& hosts = graph.block(*task).hosts;
    if (std::find(hosts.begin(), hosts.end(), next) != hosts.end()) {
      ++rec.local_tasks;
    } else {
      ++rec.remote_tasks;
    }
  }
  if (remaining > 0) {
    throw std::logic_error("drain_timed: scheduler stalled with tasks remaining");
  }
  return rec;
}

std::uint64_t reassign_stranded(AssignmentRecord& rec,
                                const graph::BipartiteGraph& graph,
                                const std::vector<std::uint64_t>& block_bytes,
                                const std::vector<bool>& alive) {
  if (rec.block_to_node.size() != graph.num_blocks() ||
      block_bytes.size() != graph.num_blocks()) {
    throw std::invalid_argument("reassign_stranded: record/graph size mismatch");
  }
  if (alive.size() != graph.num_nodes()) {
    throw std::invalid_argument("reassign_stranded: alive size mismatch");
  }
  if (std::find(alive.begin(), alive.end(), true) == alive.end()) {
    throw std::runtime_error("reassign_stranded: no surviving node");
  }

  std::uint64_t moved = 0;
  for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
    const dfs::NodeId old_node = rec.block_to_node[j];
    if (alive[old_node]) continue;

    const auto& hosts = graph.block(j).hosts;
    const auto was_local =
        std::find(hosts.begin(), hosts.end(), old_node) != hosts.end();

    // Least-loaded alive replica holder first; any least-loaded alive node
    // as the remote fallback.
    const auto pick_min = [&](auto&& eligible) {
      dfs::NodeId best = graph.num_nodes();
      for (dfs::NodeId n = 0; n < graph.num_nodes(); ++n) {
        if (!alive[n] || !eligible(n)) continue;
        if (best == graph.num_nodes() ||
            rec.node_input_bytes[n] < rec.node_input_bytes[best]) {
          best = n;
        }
      }
      return best;
    };
    dfs::NodeId target = pick_min([&](dfs::NodeId n) {
      return std::find(hosts.begin(), hosts.end(), n) != hosts.end();
    });
    const bool now_local = target != graph.num_nodes();
    if (!now_local) target = pick_min([](dfs::NodeId) { return true; });

    rec.block_to_node[j] = target;
    rec.node_load[old_node] -= graph.block(j).weight;
    rec.node_load[target] += graph.block(j).weight;
    rec.node_input_bytes[old_node] -= block_bytes[j];
    rec.node_input_bytes[target] += block_bytes[j];
    if (was_local && !now_local) {
      --rec.local_tasks;
      ++rec.remote_tasks;
    } else if (!was_local && now_local) {
      ++rec.local_tasks;
      --rec.remote_tasks;
    }
    ++moved;
  }
  return moved;
}

AssignmentRecord drain(TaskScheduler& sched, const graph::BipartiteGraph& graph,
                       const std::vector<std::uint64_t>& block_bytes) {
  if (block_bytes.size() != graph.num_blocks()) {
    throw std::invalid_argument("drain: block_bytes size mismatch");
  }
  sched.reset(graph);
  AssignmentRecord rec;
  rec.block_to_node.assign(graph.num_blocks(), 0);
  rec.node_load.assign(graph.num_nodes(), 0);
  rec.node_input_bytes.assign(graph.num_nodes(), 0);

  std::vector<bool> assigned(graph.num_blocks(), false);
  std::size_t remaining = graph.num_blocks();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (dfs::NodeId n = 0; n < graph.num_nodes() && remaining > 0; ++n) {
      const auto task = sched.next_task(n);
      if (!task) continue;
      if (*task >= graph.num_blocks() || assigned[*task]) {
        throw std::logic_error("drain: scheduler returned bad/duplicate task");
      }
      assigned[*task] = true;
      --remaining;
      progress = true;
      rec.block_to_node[*task] = n;
      rec.node_load[n] += graph.block(*task).weight;
      rec.node_input_bytes[n] += block_bytes[*task];
      const auto& hosts = graph.block(*task).hosts;
      if (std::find(hosts.begin(), hosts.end(), n) != hosts.end()) {
        ++rec.local_tasks;
      } else {
        ++rec.remote_tasks;
      }
    }
  }
  if (remaining > 0) {
    throw std::logic_error("drain: scheduler stalled with tasks remaining");
  }
  return rec;
}

}  // namespace datanet::scheduler
