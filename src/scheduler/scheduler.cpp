#include "scheduler/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace datanet::scheduler {

AssignmentRecord pull_assign(TaskScheduler& sched,
                             const graph::BipartiteGraph& graph,
                             const std::vector<std::uint64_t>& block_bytes,
                             const PullOptions& options) {
  if (block_bytes.size() != graph.num_blocks()) {
    throw std::invalid_argument("pull_assign: block_bytes size mismatch");
  }
  const bool timed = options.order == PullOptions::Order::kTimed;
  if (!options.node_speed.empty()) {
    if (options.node_speed.size() != graph.num_nodes()) {
      throw std::invalid_argument("pull_assign: node_speed size mismatch");
    }
    for (const double s : options.node_speed) {
      if (!(s > 0.0)) throw std::invalid_argument("pull_assign: speed <= 0");
    }
  }
  sched.reset(graph);
  AssignmentRecord rec;
  rec.block_to_node.assign(graph.num_blocks(), 0);
  rec.node_load.assign(graph.num_nodes(), 0);
  rec.node_input_bytes.assign(graph.num_nodes(), 0);

  std::vector<std::uint8_t> assigned(graph.num_blocks(), 0);
  std::vector<double> clock(graph.num_nodes(), 0.0);
  std::vector<bool> exhausted(graph.num_nodes(), false);
  std::size_t remaining = graph.num_blocks();
  std::uint32_t live_nodes = graph.num_nodes();
  // Round-robin stall detection: a full round of unanswered requests with
  // tasks remaining means the scheduler will never drain.
  std::uint32_t barren_requests = 0;

  while (remaining > 0 && live_nodes > 0) {
    // Earliest-clock non-exhausted node requests next; ties to lowest id.
    dfs::NodeId next = 0;
    double best = std::numeric_limits<double>::infinity();
    for (dfs::NodeId n = 0; n < graph.num_nodes(); ++n) {
      if (!exhausted[n] && clock[n] < best) {
        best = clock[n];
        next = n;
      }
    }
    const auto task = sched.next_task(next);
    if (!task) {
      if (timed) {
        // A freed slot with no answer retires: this worker is done.
        exhausted[next] = true;
        --live_nodes;
      } else {
        // Skip this round; ask again next round (like drain's retry rounds).
        clock[next] += 1.0;
        if (++barren_requests >= graph.num_nodes()) break;
      }
      continue;
    }
    if (*task >= graph.num_blocks() || assigned[*task]) {
      throw std::logic_error("pull_assign: scheduler returned bad/duplicate task");
    }
    assigned[*task] = 1;
    barren_requests = 0;
    rec.block_to_node[*task] = next;
    rec.node_load[next] += graph.block(*task).weight;
    rec.node_input_bytes[next] += block_bytes[*task];
    if (timed) {
      const double speed =
          options.node_speed.empty() ? 1.0 : options.node_speed[next];
      clock[next] += static_cast<double>(block_bytes[*task]) / speed;
    } else {
      clock[next] += 1.0;
    }
    --remaining;
    const auto& hosts = graph.block(*task).hosts;
    if (std::find(hosts.begin(), hosts.end(), next) != hosts.end()) {
      ++rec.local_tasks;
    } else {
      ++rec.remote_tasks;
    }
    if (options.on_assign) options.on_assign(*task, next);
  }
  if (remaining > 0) {
    throw std::logic_error("pull_assign: scheduler stalled with tasks remaining");
  }
  return rec;
}

AssignmentRecord drain(TaskScheduler& sched, const graph::BipartiteGraph& graph,
                       const std::vector<std::uint64_t>& block_bytes) {
  return pull_assign(sched, graph, block_bytes,
                     {.order = PullOptions::Order::kRoundRobin});
}

AssignmentRecord drain_timed(TaskScheduler& sched,
                             const graph::BipartiteGraph& graph,
                             const std::vector<std::uint64_t>& block_bytes,
                             const std::vector<double>& node_speed) {
  return pull_assign(sched, graph, block_bytes,
                     {.order = PullOptions::Order::kTimed,
                      .node_speed = node_speed});
}

dfs::NodeId pick_failover_node(const AssignmentRecord& rec,
                               const graph::BipartiteGraph& graph,
                               std::size_t task,
                               const std::vector<bool>& eligible) {
  if (eligible.size() != graph.num_nodes()) {
    throw std::invalid_argument("pick_failover_node: eligible size mismatch");
  }
  const auto& hosts = graph.block(task).hosts;
  // Least-loaded eligible replica holder first; any least-loaded eligible
  // node as the remote fallback.
  const auto pick_min = [&](auto&& ok) {
    dfs::NodeId best = graph.num_nodes();
    for (dfs::NodeId n = 0; n < graph.num_nodes(); ++n) {
      if (!eligible[n] || !ok(n)) continue;
      if (best == graph.num_nodes() ||
          rec.node_input_bytes[n] < rec.node_input_bytes[best]) {
        best = n;
      }
    }
    return best;
  };
  const dfs::NodeId holder = pick_min([&](dfs::NodeId n) {
    return std::find(hosts.begin(), hosts.end(), n) != hosts.end();
  });
  if (holder != graph.num_nodes()) return holder;
  return pick_min([](dfs::NodeId) { return true; });
}

void move_task(AssignmentRecord& rec, const graph::BipartiteGraph& graph,
               const std::vector<std::uint64_t>& block_bytes, std::size_t task,
               dfs::NodeId target) {
  const dfs::NodeId old_node = rec.block_to_node[task];
  if (old_node == target) return;
  const auto& hosts = graph.block(task).hosts;
  const bool was_local =
      std::find(hosts.begin(), hosts.end(), old_node) != hosts.end();
  const bool now_local =
      std::find(hosts.begin(), hosts.end(), target) != hosts.end();

  rec.block_to_node[task] = target;
  rec.node_load[old_node] -= graph.block(task).weight;
  rec.node_load[target] += graph.block(task).weight;
  rec.node_input_bytes[old_node] -= block_bytes[task];
  rec.node_input_bytes[target] += block_bytes[task];
  if (was_local && !now_local) {
    --rec.local_tasks;
    ++rec.remote_tasks;
  } else if (!was_local && now_local) {
    ++rec.local_tasks;
    --rec.remote_tasks;
  }
}

std::uint64_t reassign_stranded(AssignmentRecord& rec,
                                const graph::BipartiteGraph& graph,
                                const std::vector<std::uint64_t>& block_bytes,
                                const std::vector<bool>& alive) {
  if (rec.block_to_node.size() != graph.num_blocks() ||
      block_bytes.size() != graph.num_blocks()) {
    throw std::invalid_argument("reassign_stranded: record/graph size mismatch");
  }
  if (alive.size() != graph.num_nodes()) {
    throw std::invalid_argument("reassign_stranded: alive size mismatch");
  }
  if (std::find(alive.begin(), alive.end(), true) == alive.end()) {
    throw std::runtime_error("reassign_stranded: no surviving node");
  }

  std::uint64_t moved = 0;
  for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
    if (alive[rec.block_to_node[j]]) continue;
    move_task(rec, graph, block_bytes, j,
              pick_failover_node(rec, graph, j, alive));
    ++moved;
  }
  return moved;
}

}  // namespace datanet::scheduler
