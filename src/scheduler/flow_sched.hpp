#pragma once
// Flow-based scheduler: precomputes the max-flow balanced assignment
// (graph::balanced_assignment — the paper's Ford–Fulkerson remark) at
// reset() and serves each node its precomputed queue. If a node is asked for
// work after its queue drains (e.g. heterogeneous progress), it steals from
// the most-loaded remaining queue so the schedule stays work-conserving.

#include <deque>

#include "scheduler/scheduler.hpp"

namespace datanet::scheduler {

class FlowScheduler final : public TaskScheduler {
 public:
  FlowScheduler() = default;

  void reset(const graph::BipartiteGraph& graph) override;
  std::optional<std::size_t> next_task(dfs::NodeId node) override;
  [[nodiscard]] std::string_view name() const override { return "maxflow"; }

  // The fractional capacity bound certified by the flow (before rounding).
  [[nodiscard]] std::uint64_t fractional_capacity() const noexcept {
    return fractional_capacity_;
  }

 private:
  const graph::BipartiteGraph* graph_ = nullptr;
  std::vector<std::deque<std::size_t>> queues_;
  std::vector<std::uint64_t> pending_weight_;
  std::size_t remaining_ = 0;
  std::uint64_t fractional_capacity_ = 0;
};

}  // namespace datanet::scheduler
