#pragma once
// Pull-model task schedulers (Section IV-B). Workers request tasks one at a
// time, exactly like Hadoop task trackers heartbeating the JobTracker; a
// scheduler answers each request with a block index from the job's bipartite
// graph, or nothing when the task set T is exhausted.

#include <cstdint>
#include <functional>
#include <optional>
#include <string_view>
#include <vector>

#include "graph/bipartite.hpp"

namespace datanet::scheduler {

class TaskScheduler {
 public:
  virtual ~TaskScheduler() = default;

  // Bind to a job. `graph` must outlive the scheduler use.
  virtual void reset(const graph::BipartiteGraph& graph) = 0;

  // A worker on `node` requests its next task. Returns the chosen block
  // index (into graph.blocks()), or nullopt when no tasks remain.
  virtual std::optional<std::size_t> next_task(dfs::NodeId node) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

// Summary of a completed assignment: which node ran each block, and the
// per-node byte loads (weights of assigned blocks) — the workload series
// plotted in Fig. 1b / 5c / 8b.
struct AssignmentRecord {
  std::vector<dfs::NodeId> block_to_node;  // index-aligned with graph.blocks()
  std::vector<std::uint64_t> node_load;    // bytes of sub-dataset per node
  std::vector<std::uint64_t> node_input_bytes;  // raw block bytes per node
  std::uint64_t local_tasks = 0;   // tasks served from a hosting node
  std::uint64_t remote_tasks = 0;  // tasks that required a remote read
};

// ---- the pull loop ----
// One implementation drives every analytic selection path (drain and
// drain_timed are thin spellings of it; core::SelectionRuntime calls it
// directly). Each node carries a virtual clock; the node with the earliest
// clock requests next (ties to the lowest id). The request-order policy is
// what the clock measures:
//   * kRoundRobin — every request (answered or not) costs one tick, which
//     reproduces Hadoop's fair heartbeat rounds: node 0..N-1 ask in id order
//     until the task set is exhausted. A node whose request goes unanswered
//     is asked again next round (a later request may succeed).
//   * kTimed — an assigned task costs block_bytes / node_speed, so a slow
//     node naturally asks for fewer blocks, like a real task tracker that
//     heartbeats only when a slot frees up; an unanswered request retires
//     the node.
struct PullOptions {
  enum class Order { kRoundRobin, kTimed };
  Order order = Order::kRoundRobin;
  // Relative processing speed per node; kTimed only. Empty = homogeneous.
  std::vector<double> node_speed;
  // Invoked as each task is handed out (tracing / progress hooks).
  std::function<void(std::size_t task, dfs::NodeId node)> on_assign;
};

// Drive `sched` to a full assignment over `graph`. `block_bytes[j]` is the
// raw size of block j (node_input_bytes accounting + kTimed clock costs).
// Throws std::logic_error if the scheduler returns an out-of-range or
// duplicate task, or stalls with tasks remaining.
AssignmentRecord pull_assign(TaskScheduler& sched,
                             const graph::BipartiteGraph& graph,
                             const std::vector<std::uint64_t>& block_bytes,
                             const PullOptions& options = {});

// Fair round-robin request order (PullOptions::Order::kRoundRobin).
AssignmentRecord drain(TaskScheduler& sched, const graph::BipartiteGraph& graph,
                       const std::vector<std::uint64_t>& block_bytes);

// Speed-aware pull order (PullOptions::Order::kTimed). Empty `node_speed` =
// homogeneous unit speeds (clocks advance by raw block bytes).
AssignmentRecord drain_timed(TaskScheduler& sched,
                             const graph::BipartiteGraph& graph,
                             const std::vector<std::uint64_t>& block_bytes,
                             const std::vector<double>& node_speed);

// Deterministic failover choice for one task: the eligible replica holder
// with the least assigned input bytes (ties to the lowest node id), else the
// least-loaded eligible node. Returns graph.num_nodes() when nothing is
// eligible. Shared by reassign_stranded and the SelectionRuntime's attempt
// re-dispatch / speculation targeting, so every failure path picks the same
// node for the same state.
[[nodiscard]] dfs::NodeId pick_failover_node(const AssignmentRecord& rec,
                                             const graph::BipartiteGraph& graph,
                                             std::size_t task,
                                             const std::vector<bool>& eligible);

// Move one task's assignment to `target`, updating loads and locality
// counters in place (the bookkeeping half of a re-dispatch or a speculative
// win). No-op when the task already runs on `target`.
void move_task(AssignmentRecord& rec, const graph::BipartiteGraph& graph,
               const std::vector<std::uint64_t>& block_bytes, std::size_t task,
               dfs::NodeId target);

// Failure reaction (the JobTracker's lost-TaskTracker path): every block in
// `rec` assigned to a node with alive[n] == false is re-enqueued onto a
// surviving node — preferably an alive replica holder with the least
// assigned input bytes (ties to the lowest node id), else the least-loaded
// alive node. Loads and locality counters in `rec` are updated in place.
// Deterministic; returns the number of reassigned tasks. Throws
// std::runtime_error when no node is alive.
std::uint64_t reassign_stranded(AssignmentRecord& rec,
                                const graph::BipartiteGraph& graph,
                                const std::vector<std::uint64_t>& block_bytes,
                                const std::vector<bool>& alive);

}  // namespace datanet::scheduler
