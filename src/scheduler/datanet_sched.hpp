#pragma once
// Algorithm 1: Distribution-aware Algorithm for Balanced Computing over a
// sub-dataset s (Section IV-B).
//
//   W  = (sum_{b in tau1} |s ∩ b| + delta * |tau2|) / m      (average target)
//   on request from node i:
//     if d_i != {} : x = argmin_{x in d_i}  |W_i + |b_x ∩ s| - W|
//     else         : x = argmin_{x in T}    |W_i + |b_x ∩ s| - W|
//     assign t_x, remove b_x's edges from G
//
// Two modes:
//  * strict_locality = true — the paper's Algorithm 1 verbatim. A node
//    always takes a local block while any remains. With fewer heavy blocks
//    than replica spread allows, the end game can force heavy blocks onto
//    already-loaded replica holders while under-loaded nodes sit on local
//    scraps.
//  * strict_locality = false (default) — soft locality: every remaining
//    block competes on |W_i + w - W| and remote blocks pay an additive
//    penalty locality_bias * W. This keeps assignments overwhelmingly local
//    (the penalty dominates for comparable scores) but lets an under-loaded
//    node fetch a remote heavy block instead of hoarding local scraps — the
//    behaviour the paper's balanced Fig. 5c/10 results imply.
//
// Block weights come from the ElasticMap (Eq. 6 estimates); ground-truth
// weights can be injected for oracle experiments.

#include "scheduler/scheduler.hpp"

namespace datanet::scheduler {

struct DataNetSchedulerOptions {
  bool strict_locality = false;
  // Remote-assignment penalty as a fraction of the average workload W.
  double locality_bias = 0.25;
  // Relative computing capability per node (Section IV-B: "According to the
  // computing capability of computational nodes, we can calculate the
  // amount of sub-datasets to be assigned to each node"). Empty =
  // homogeneous. Node i's workload target becomes
  // total * capabilities[i] / sum(capabilities).
  std::vector<double> capabilities;
};

class DataNetScheduler final : public TaskScheduler {
 public:
  DataNetScheduler() = default;
  explicit DataNetScheduler(DataNetSchedulerOptions options)
      : options_(options) {}

  void reset(const graph::BipartiteGraph& graph) override;
  std::optional<std::size_t> next_task(dfs::NodeId node) override;
  [[nodiscard]] std::string_view name() const override {
    return options_.strict_locality ? "datanet-strict" : "datanet";
  }

  // Current simulated workload per node (the W_i values).
  [[nodiscard]] const std::vector<std::uint64_t>& node_workloads() const noexcept {
    return workload_;
  }
  [[nodiscard]] double average_target() const noexcept { return average_; }
  // Node i's individual target (== average_target() when homogeneous).
  [[nodiscard]] double target_of(dfs::NodeId node) const {
    return targets_.empty() ? average_ : targets_[node];
  }

 private:
  [[nodiscard]] double score(dfs::NodeId node, std::size_t block) const;
  [[nodiscard]] std::optional<std::size_t> next_task_strict(dfs::NodeId node);
  [[nodiscard]] std::optional<std::size_t> next_task_biased(dfs::NodeId node);
  void commit(dfs::NodeId node, std::size_t block);

  DataNetSchedulerOptions options_;
  const graph::BipartiteGraph* graph_ = nullptr;
  std::vector<bool> assigned_;
  std::vector<bool> local_to_;  // scratch: blocks local to the requester
  std::size_t remaining_ = 0;
  std::vector<std::uint64_t> workload_;  // W_i
  double average_ = 0.0;                 // W
  std::vector<double> targets_;          // per-node W (heterogeneous mode)
  std::vector<std::vector<std::size_t>> local_;  // d_i (lazily compacted)
};

}  // namespace datanet::scheduler
