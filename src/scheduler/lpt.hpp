#pragma once
// Locality-constrained LPT (longest processing time first): a classic static
// makespan heuristic used as a second distribution-aware comparison point
// next to Algorithm 1 (request-driven greedy) and the max-flow optimum. At
// reset, blocks are sorted by weight descending and each is assigned to its
// least-loaded replica holder; with a relocation allowance, a block may go
// to the globally least-loaded node when every replica holder is already
// past the average (the same soft-locality idea as DataNetScheduler).

#include <deque>

#include "scheduler/scheduler.hpp"

namespace datanet::scheduler {

struct LptSchedulerOptions {
  // Allow off-replica placement when every holder exceeds the average by
  // this fraction; negative disables relocation entirely (strict locality).
  double relocation_threshold = 0.0;
};

class LptScheduler final : public TaskScheduler {
 public:
  LptScheduler() = default;
  explicit LptScheduler(LptSchedulerOptions options) : options_(options) {}

  void reset(const graph::BipartiteGraph& graph) override;
  std::optional<std::size_t> next_task(dfs::NodeId node) override;
  [[nodiscard]] std::string_view name() const override { return "lpt"; }

  // Static per-node loads chosen at reset (before any requests).
  [[nodiscard]] const std::vector<std::uint64_t>& planned_loads() const noexcept {
    return planned_;
  }

 private:
  LptSchedulerOptions options_;
  const graph::BipartiteGraph* graph_ = nullptr;
  std::vector<std::deque<std::size_t>> queues_;
  std::vector<std::uint64_t> pending_weight_;
  std::vector<std::uint64_t> planned_;
  std::size_t remaining_ = 0;
};

}  // namespace datanet::scheduler
