#include "scheduler/flow_sched.hpp"

#include <algorithm>

#include "graph/assignment.hpp"

namespace datanet::scheduler {

void FlowScheduler::reset(const graph::BipartiteGraph& graph) {
  graph_ = &graph;
  const auto result = graph::balanced_assignment(graph);
  fractional_capacity_ = result.fractional_capacity;
  queues_.assign(graph.num_nodes(), {});
  pending_weight_.assign(graph.num_nodes(), 0);
  remaining_ = graph.num_blocks();
  // Serve each node its heaviest blocks first: long tasks start early, which
  // minimizes end-of-phase straggling.
  std::vector<std::vector<std::size_t>> per_node(graph.num_nodes());
  for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
    per_node[result.assignment[j]].push_back(j);
    pending_weight_[result.assignment[j]] += graph.block(j).weight;
  }
  for (dfs::NodeId n = 0; n < graph.num_nodes(); ++n) {
    std::sort(per_node[n].begin(), per_node[n].end(),
              [&](std::size_t a, std::size_t b) {
                return graph.block(a).weight > graph.block(b).weight;
              });
    queues_[n].assign(per_node[n].begin(), per_node[n].end());
  }
}

std::optional<std::size_t> FlowScheduler::next_task(dfs::NodeId node) {
  if (graph_ == nullptr || remaining_ == 0) return std::nullopt;

  auto pop_from = [&](dfs::NodeId owner) {
    const std::size_t j = queues_[owner].front();
    queues_[owner].pop_front();
    pending_weight_[owner] -= graph_->block(j).weight;
    --remaining_;
    return j;
  };

  if (!queues_[node].empty()) return pop_from(node);

  // Steal from the node with the most pending weight.
  dfs::NodeId victim = node;
  std::uint64_t most = 0;
  for (dfs::NodeId n = 0; n < static_cast<dfs::NodeId>(queues_.size()); ++n) {
    if (!queues_[n].empty() && pending_weight_[n] >= most) {
      most = pending_weight_[n];
      victim = n;
    }
  }
  if (queues_[victim].empty()) return std::nullopt;
  // Steal from the back (lightest task) to disturb the owner least.
  const std::size_t j = queues_[victim].back();
  queues_[victim].pop_back();
  pending_weight_[victim] -= graph_->block(j).weight;
  --remaining_;
  return j;
}

}  // namespace datanet::scheduler
