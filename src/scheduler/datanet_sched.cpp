#include "scheduler/datanet_sched.hpp"

#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace datanet::scheduler {

void DataNetScheduler::reset(const graph::BipartiteGraph& graph) {
  graph_ = &graph;
  assigned_.assign(graph.num_blocks(), false);
  local_to_.assign(graph.num_blocks(), false);
  remaining_ = graph.num_blocks();
  workload_.assign(graph.num_nodes(), 0);
  average_ = static_cast<double>(graph.total_weight()) /
             static_cast<double>(graph.num_nodes());
  targets_.clear();
  if (!options_.capabilities.empty()) {
    if (options_.capabilities.size() != graph.num_nodes()) {
      throw std::invalid_argument(
          "DataNetScheduler: capabilities size != node count");
    }
    const double cap_total = std::accumulate(options_.capabilities.begin(),
                                             options_.capabilities.end(), 0.0);
    if (!(cap_total > 0.0)) {
      throw std::invalid_argument("DataNetScheduler: capabilities must sum > 0");
    }
    targets_.resize(graph.num_nodes());
    for (dfs::NodeId n = 0; n < graph.num_nodes(); ++n) {
      if (!(options_.capabilities[n] >= 0.0)) {
        throw std::invalid_argument("DataNetScheduler: negative capability");
      }
      targets_[n] = static_cast<double>(graph.total_weight()) *
                    options_.capabilities[n] / cap_total;
    }
  }
  local_.assign(graph.num_nodes(), {});
  for (dfs::NodeId n = 0; n < graph.num_nodes(); ++n) local_[n] = graph.blocks_on(n);
}

double DataNetScheduler::score(dfs::NodeId node, std::size_t block) const {
  // |W_i + |b_x ∩ s| - W|  (Algorithm 1, lines 10/14); in heterogeneous
  // mode W is the node's capability-proportional target.
  const double w = static_cast<double>(workload_[node]) +
                   static_cast<double>(graph_->block(block).weight);
  return std::fabs(w - target_of(node));
}

void DataNetScheduler::commit(dfs::NodeId node, std::size_t block) {
  assigned_[block] = true;
  --remaining_;
  workload_[node] += graph_->block(block).weight;
}

std::optional<std::size_t> DataNetScheduler::next_task(dfs::NodeId node) {
  if (graph_ == nullptr || remaining_ == 0) return std::nullopt;
  return options_.strict_locality ? next_task_strict(node)
                                  : next_task_biased(node);
}

std::optional<std::size_t> DataNetScheduler::next_task_strict(dfs::NodeId node) {
  // d_i: local unassigned blocks (compact lazily while scanning).
  auto& mine = local_[node];
  std::size_t best = assigned_.size();
  double best_score = std::numeric_limits<double>::infinity();
  std::size_t write = 0;
  for (std::size_t r = 0; r < mine.size(); ++r) {
    const std::size_t j = mine[r];
    if (assigned_[j]) continue;  // drop: its edge was removed
    mine[write++] = j;
    const double s = score(node, j);
    if (s < best_score) {
      best_score = s;
      best = j;
    }
  }
  mine.resize(write);

  if (best == assigned_.size()) {
    // d_i empty: pick the global argmin over remaining tasks (line 14).
    for (std::size_t j = 0; j < assigned_.size(); ++j) {
      if (assigned_[j]) continue;
      const double s = score(node, j);
      if (s < best_score) {
        best_score = s;
        best = j;
      }
    }
  }
  if (best == assigned_.size()) return std::nullopt;
  commit(node, best);
  return best;
}

std::optional<std::size_t> DataNetScheduler::next_task_biased(dfs::NodeId node) {
  // Mark which remaining blocks are local to the requester (and compact d_i).
  auto& mine = local_[node];
  std::size_t write = 0;
  for (std::size_t r = 0; r < mine.size(); ++r) {
    const std::size_t j = mine[r];
    if (assigned_[j]) continue;
    mine[write++] = j;
    local_to_[j] = true;
  }
  mine.resize(write);

  const double remote_penalty = options_.locality_bias * average_;
  std::size_t best = assigned_.size();
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < assigned_.size(); ++j) {
    if (assigned_[j]) continue;
    const double s = score(node, j) + (local_to_[j] ? 0.0 : remote_penalty);
    if (s < best_score) {
      best_score = s;
      best = j;
    }
  }
  for (const std::size_t j : mine) local_to_[j] = false;  // reset scratch

  if (best == assigned_.size()) return std::nullopt;
  commit(node, best);
  return best;
}

}  // namespace datanet::scheduler
