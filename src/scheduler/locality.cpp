#include "scheduler/locality.hpp"

#include <algorithm>

namespace datanet::scheduler {

LocalityScheduler::LocalityScheduler(std::uint64_t seed)
    : rng_(seed), seed_(seed) {}

void LocalityScheduler::reset(const graph::BipartiteGraph& graph) {
  graph_ = &graph;
  rng_.reseed(seed_);
  assigned_.assign(graph.num_blocks(), false);
  remaining_ = graph.num_blocks();
  local_.assign(graph.num_nodes(), {});
  for (dfs::NodeId n = 0; n < graph.num_nodes(); ++n) {
    local_[n] = graph.blocks_on(n);
    // Shuffle so the "random local block" pick is O(1) off the back.
    for (std::size_t i = local_[n].size(); i > 1; --i) {
      std::swap(local_[n][i - 1], local_[n][rng_.bounded(i)]);
    }
  }
}

std::optional<std::size_t> LocalityScheduler::next_task(dfs::NodeId node) {
  if (graph_ == nullptr || remaining_ == 0) return std::nullopt;

  auto& mine = local_[node];
  while (!mine.empty()) {
    const std::size_t cand = mine.back();
    mine.pop_back();
    if (!assigned_[cand]) {
      assigned_[cand] = true;
      --remaining_;
      return cand;
    }
  }
  // No local block left: fall back to a random remaining block (the
  // rack-remote / off-rack path in Hadoop).
  std::vector<std::size_t> pool;
  pool.reserve(remaining_);
  for (std::size_t j = 0; j < assigned_.size(); ++j) {
    if (!assigned_[j]) pool.push_back(j);
  }
  if (pool.empty()) return std::nullopt;
  const std::size_t pick = pool[rng_.bounded(pool.size())];
  assigned_[pick] = true;
  --remaining_;
  return pick;
}

}  // namespace datanet::scheduler
