#pragma once
// Descriptive statistics over workload/time series. Used by scheduling
// reports (Fig. 5c, 6, 7, 10) and ElasticMap accuracy summaries.

#include <cstddef>
#include <span>
#include <vector>

namespace datanet::stats {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // population standard deviation
  double sum = 0.0;

  // Imbalance measures used throughout the evaluation.
  [[nodiscard]] double max_over_mean() const { return mean > 0 ? max / mean : 0.0; }
  [[nodiscard]] double min_over_mean() const { return mean > 0 ? min / mean : 0.0; }
  [[nodiscard]] double coeff_variation() const {
    return mean > 0 ? stddev / mean : 0.0;
  }
};

[[nodiscard]] Summary summarize(std::span<const double> xs);

// p in [0, 1]; linear interpolation between order statistics.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

}  // namespace datanet::stats
