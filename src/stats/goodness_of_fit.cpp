#include "stats/goodness_of_fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace datanet::stats {

double chi_squared_sf(double x, std::uint32_t dof) {
  if (dof == 0) throw std::invalid_argument("chi_squared_sf: dof == 0");
  if (x <= 0.0) return 1.0;
  return regularized_gamma_q(static_cast<double>(dof) / 2.0, x / 2.0);
}

GofResult chi_squared_gof(std::span<const double> xs,
                          const GammaDistribution& model,
                          std::uint32_t fitted_params) {
  const std::size_t n = xs.size();
  // Equal-probability bins with expected count >= 5.
  const auto max_bins = static_cast<std::uint32_t>(
      std::min<std::size_t>(n / 5, 50));
  if (max_bins < fitted_params + 2) {
    throw std::invalid_argument("chi_squared_gof: too few samples");
  }
  const std::uint32_t bins = max_bins;

  // Bin edges at model quantiles i/bins.
  std::vector<double> edges(bins - 1);
  for (std::uint32_t i = 1; i < bins; ++i) {
    edges[i - 1] = model.quantile(static_cast<double>(i) /
                                  static_cast<double>(bins));
  }

  std::vector<std::uint64_t> observed(bins, 0);
  for (const double x : xs) {
    const auto it = std::upper_bound(edges.begin(), edges.end(), x);
    ++observed[static_cast<std::size_t>(it - edges.begin())];
  }

  const double expected = static_cast<double>(n) / static_cast<double>(bins);
  GofResult result;
  result.bins = bins;
  for (const auto o : observed) {
    const double d = static_cast<double>(o) - expected;
    result.statistic += d * d / expected;
  }
  result.dof = bins - 1 - fitted_params;
  result.p_value = chi_squared_sf(result.statistic, result.dof);
  return result;
}

}  // namespace datanet::stats
