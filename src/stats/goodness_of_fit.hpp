#pragma once
// Chi-square goodness-of-fit for the Section II-B Gamma model: before
// trusting a Fig. 2-style forecast, check that Gamma(k, theta) actually
// describes the observed per-block sizes. Uses equal-probability bins (so
// expected counts are uniform) and the regularized incomplete gamma for the
// chi-square tail probability.

#include <cstdint>
#include <span>

#include "stats/gamma.hpp"

namespace datanet::stats {

struct GofResult {
  double statistic = 0.0;   // chi-square statistic
  std::uint32_t dof = 0;    // bins - 1 - fitted_params
  double p_value = 1.0;     // P(chi2_dof >= statistic)
  std::uint32_t bins = 0;
};

// Chi-square survival function via Q(dof/2, x/2).
[[nodiscard]] double chi_squared_sf(double x, std::uint32_t dof);

// Test H0: `xs` ~ `model`. `fitted_params` is how many of the model's
// parameters were estimated from these same samples (2 for a fitted Gamma),
// which reduces the degrees of freedom. Bins are chosen so the expected
// count per bin is >= 5 (capped at 50 bins). Requires enough samples for at
// least fitted_params + 2 bins.
[[nodiscard]] GofResult chi_squared_gof(std::span<const double> xs,
                                        const GammaDistribution& model,
                                        std::uint32_t fitted_params = 2);

}  // namespace datanet::stats
