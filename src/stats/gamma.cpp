#include "stats/gamma.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace datanet::stats {

namespace {

constexpr int kMaxIter = 500;
constexpr double kEps = 3.0e-15;
constexpr double kFpMin = std::numeric_limits<double>::min() / kEps;

// Series representation of P(a, x): converges fast for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIter; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Lentz continued fraction for Q(a, x): converges fast for x > a + 1.
double gamma_q_contfrac(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - std::lgamma(a)) * h;
}

}  // namespace

double regularized_gamma_p(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    throw std::invalid_argument("regularized_gamma_p: require a > 0, x >= 0");
  }
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_contfrac(a, x);
}

double regularized_gamma_q(double a, double x) {
  if (!(a > 0.0) || x < 0.0) {
    throw std::invalid_argument("regularized_gamma_q: require a > 0, x >= 0");
  }
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_contfrac(a, x);
}

GammaDistribution::GammaDistribution(double shape, double scale)
    : shape_(shape), scale_(scale) {
  if (!(shape > 0.0) || !(scale > 0.0)) {
    throw std::invalid_argument("GammaDistribution: shape and scale must be > 0");
  }
}

double GammaDistribution::pdf(double x) const {
  if (x < 0.0) return 0.0;
  if (x == 0.0) {
    if (shape_ < 1.0) return std::numeric_limits<double>::infinity();
    if (shape_ == 1.0) return 1.0 / scale_;
    return 0.0;
  }
  const double log_pdf = (shape_ - 1.0) * std::log(x) - x / scale_ -
                         std::lgamma(shape_) - shape_ * std::log(scale_);
  return std::exp(log_pdf);
}

double GammaDistribution::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return regularized_gamma_p(shape_, x / scale_);
}

double GammaDistribution::quantile(double p) const {
  if (!(p > 0.0) || !(p < 1.0)) {
    throw std::invalid_argument("GammaDistribution::quantile: p must be in (0,1)");
  }
  // Bracket: mean-scaled exponential expansion, then bisection to 1e-12 rel.
  double lo = 0.0;
  double hi = mean() + 1.0;
  while (cdf(hi) < p) hi *= 2.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

GammaDistribution node_workload_distribution(double k, double theta,
                                             std::uint64_t n_blocks,
                                             std::uint64_t m_nodes) {
  if (m_nodes == 0) throw std::invalid_argument("m_nodes must be > 0");
  const double shape = k * static_cast<double>(n_blocks) / static_cast<double>(m_nodes);
  return GammaDistribution(shape, theta);
}

}  // namespace datanet::stats
