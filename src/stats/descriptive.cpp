#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace datanet::stats {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  for (double x : xs) {
    s.sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = s.sum / static_cast<double>(s.count);
  double ss = 0.0;
  for (double x : xs) {
    const double d = x - s.mean;
    ss += d * d;
  }
  s.stddev = std::sqrt(ss / static_cast<double>(s.count));
  return s;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("percentile: p in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double idx = p * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace datanet::stats
