#include "stats/fit.hpp"

#include <cmath>
#include <stdexcept>

namespace datanet::stats {

double digamma(double x) {
  if (!(x > 0.0)) throw std::invalid_argument("digamma: x must be > 0");
  double result = 0.0;
  // Upward recurrence ψ(x) = ψ(x+1) - 1/x until x is large enough for the
  // asymptotic series (error ~ 1/(240 x^8) < 1e-12 at x >= 12).
  while (x < 12.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // ψ(x) ~ ln x - 1/(2x) - 1/(12x^2) + 1/(120x^4) - 1/(252x^6) + 1/(240x^8).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)));
  return result;
}

namespace {

struct Moments {
  double mean;
  double var;
  double mean_log;
  std::size_t n;
};

Moments compute_moments(std::span<const double> xs, bool need_log) {
  if (xs.size() < 2) throw std::invalid_argument("gamma fit: need >= 2 samples");
  double sum = 0.0, sum_log = 0.0;
  for (const double x : xs) {
    if (need_log && !(x > 0.0)) {
      throw std::invalid_argument("gamma fit: samples must be > 0");
    }
    sum += x;
    if (need_log) sum_log += std::log(x);
  }
  const double n = static_cast<double>(xs.size());
  const double mean = sum / n;
  double ss = 0.0;
  for (const double x : xs) {
    const double d = x - mean;
    ss += d * d;
  }
  return Moments{mean, ss / n, need_log ? sum_log / n : 0.0, xs.size()};
}

}  // namespace

GammaFit fit_gamma_moments(std::span<const double> xs) {
  const auto m = compute_moments(xs, /*need_log=*/false);
  if (!(m.mean > 0.0) || !(m.var > 0.0)) {
    throw std::invalid_argument("gamma fit: need positive mean and variance");
  }
  GammaFit fit;
  fit.shape = m.mean * m.mean / m.var;
  fit.scale = m.var / m.mean;
  fit.iterations = 0;
  return fit;
}

GammaFit fit_gamma_mle(std::span<const double> xs) {
  const auto m = compute_moments(xs, /*need_log=*/true);
  if (!(m.mean > 0.0)) throw std::invalid_argument("gamma fit: mean must be > 0");
  const double s = std::log(m.mean) - m.mean_log;  // always >= 0 (Jensen)
  if (!(s > 0.0)) {
    // Degenerate (all samples equal): variance 0; fall back to a huge shape.
    GammaFit fit;
    fit.shape = 1e12;
    fit.scale = m.mean / fit.shape;
    return fit;
  }
  // Minka's closed-form start.
  double k = (3.0 - s + std::sqrt((s - 3.0) * (s - 3.0) + 24.0 * s)) / (12.0 * s);
  GammaFit fit;
  for (int i = 0; i < 100; ++i) {
    const double f = std::log(k) - digamma(k) - s;
    // d/dk [ln k - psi(k)] = 1/k - psi'(k); approximate trigamma by the
    // asymptotic 1/k + 1/(2k^2) + 1/(6k^3).
    const double trigamma =
        1.0 / k + 1.0 / (2.0 * k * k) + 1.0 / (6.0 * k * k * k);
    const double fprime = 1.0 / k - trigamma;
    const double step = f / fprime;
    k -= step;
    if (!(k > 0.0)) {
      k = 1e-8;  // guard; next iterations recover
    }
    fit.iterations = i + 1;
    if (std::fabs(step) < 1e-12 * (1.0 + k)) break;
  }
  fit.shape = k;
  fit.scale = m.mean / k;
  return fit;
}

}  // namespace datanet::stats
