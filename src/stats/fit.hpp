#pragma once
// Fitting the Section II-B workload model to data. The paper *assumes*
// per-block sub-dataset sizes follow Gamma(k, theta); these routines let an
// operator estimate (k, theta) from an observed distribution (e.g. the
// ElasticMap's per-block sizes) so the Figure 2 imbalance forecasts can be
// made for a real dataset rather than assumed parameters.

#include <span>

namespace datanet::stats {

// Digamma ψ(x) (derivative of ln Γ): asymptotic series with upward
// recurrence, |error| < 1e-12 for x > 0.
[[nodiscard]] double digamma(double x);

struct GammaFit {
  double shape = 0.0;  // k
  double scale = 0.0;  // theta
  int iterations = 0;  // Newton steps used (0 => moments-only fallback)
};

// Method-of-moments estimate: k = mean^2 / var, theta = var / mean.
[[nodiscard]] GammaFit fit_gamma_moments(std::span<const double> xs);

// Maximum-likelihood estimate via Newton iteration on
//   ln(k) - psi(k) = ln(mean) - mean(ln x),
// started from the Minka closed-form approximation. Requires all xs > 0.
[[nodiscard]] GammaFit fit_gamma_mle(std::span<const double> xs);

}  // namespace datanet::stats
