#pragma once
// Gamma distribution and the special functions behind it. Section II-B of the
// paper models per-block sub-dataset sizes as X ~ Gamma(k, theta) and derives
// the node-workload distribution Z ~ Gamma(nk/m, theta); Figure 2 plots tail
// probabilities of Z against the cluster size. Everything here is implemented
// from scratch (series + continued-fraction regularized incomplete gamma), no
// external math libraries.

#include <cmath>
#include <cstdint>

namespace datanet::stats {

// Regularized lower incomplete gamma P(a, x) = γ(a, x) / Γ(a), for a > 0,
// x >= 0. Uses the power series for x < a + 1 and the Lentz continued
// fraction for the complement otherwise (Numerical Recipes-style, double
// precision, relative error ~1e-14).
[[nodiscard]] double regularized_gamma_p(double a, double x);

// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double regularized_gamma_q(double a, double x);

// Gamma(shape k, scale theta). Immutable value type.
class GammaDistribution {
 public:
  GammaDistribution(double shape, double scale);

  [[nodiscard]] double shape() const noexcept { return shape_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }
  [[nodiscard]] double mean() const noexcept { return shape_ * scale_; }
  [[nodiscard]] double variance() const noexcept { return shape_ * scale_ * scale_; }

  // Density f(x; k, θ) = x^{k-1} e^{-x/θ} / (Γ(k) θ^k); 0 for x < 0.
  [[nodiscard]] double pdf(double x) const;

  // CDF P(X <= x) = P(k, x/θ).
  [[nodiscard]] double cdf(double x) const;

  // Survival P(X > x).
  [[nodiscard]] double sf(double x) const { return 1.0 - cdf(x); }

  // Inverse CDF via bracketed bisection + Newton polish; p in (0, 1).
  [[nodiscard]] double quantile(double p) const;

  // Marsaglia–Tsang sampling (handles shape < 1 by boosting).
  template <typename Urbg>
  double sample(Urbg& rng) const {
    double k = shape_;
    double boost = 1.0;
    if (k < 1.0) {
      // X_k = X_{k+1} * U^{1/k}
      const double u = uniform01(rng);
      boost = std::pow(u, 1.0 / k);
      k += 1.0;
    }
    const double d = k - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x, v;
      do {
        x = normal01(rng);
        v = 1.0 + c * x;
      } while (v <= 0.0);
      v = v * v * v;
      const double u = uniform01(rng);
      const double x2 = x * x;
      if (u < 1.0 - 0.0331 * x2 * x2) return boost * d * v * scale_;
      if (std::log(u) < 0.5 * x2 + d * (1.0 - v + std::log(v))) {
        return boost * d * v * scale_;
      }
    }
  }

 private:
  template <typename Urbg>
  static double uniform01(Urbg& rng) {
    return (static_cast<double>(rng() >> 11) + 0.5) * 0x1.0p-53;
  }
  template <typename Urbg>
  static double normal01(Urbg& rng) {
    // Box–Muller; fresh pair each call keeps the object stateless.
    const double u1 = uniform01(rng);
    const double u2 = uniform01(rng);
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double shape_;
  double scale_;
};

// The paper's node-workload model: a node processing n/m independent
// Gamma(k, θ) blocks has workload Z ~ Gamma(nk/m, θ). (Section II-B, Eq. 2.)
[[nodiscard]] GammaDistribution node_workload_distribution(double k, double theta,
                                                           std::uint64_t n_blocks,
                                                           std::uint64_t m_nodes);

}  // namespace datanet::stats
