#pragma once
// Zipf(s, N) sampler for skewed popularity (movie popularity, event types).
// Uses precomputed CDF + binary search: O(N) setup, O(log N) per draw,
// exact distribution (no rejection approximation error).

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace datanet::stats {

class ZipfSampler {
 public:
  // Ranks are 0-based: rank 0 has probability proportional to 1/1^s.
  ZipfSampler(std::uint64_t num_items, double exponent);

  [[nodiscard]] std::uint64_t sample(common::Rng& rng) const;

  // P(rank) for diagnostics/tests.
  [[nodiscard]] double probability(std::uint64_t rank) const;

  [[nodiscard]] std::uint64_t num_items() const noexcept {
    return static_cast<std::uint64_t>(cdf_.size());
  }
  [[nodiscard]] double exponent() const noexcept { return exponent_; }

 private:
  std::vector<double> cdf_;
  double exponent_;
};

}  // namespace datanet::stats
