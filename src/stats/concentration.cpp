#include "stats/concentration.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace datanet::stats {

double gini(std::span<const double> xs) {
  if (xs.size() <= 1) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  for (const double x : sorted) {
    if (x < 0.0) throw std::invalid_argument("gini: negative value");
  }
  std::sort(sorted.begin(), sorted.end());
  const double total = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  if (total <= 0.0) return 0.0;
  // G = (2 * sum_i i*x_(i) / (n * total)) - (n + 1) / n, i starting at 1.
  double weighted = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    weighted += static_cast<double>(i + 1) * sorted[i];
  }
  const double n = static_cast<double>(sorted.size());
  return 2.0 * weighted / (n * total) - (n + 1.0) / n;
}

double gini(std::span<const std::uint64_t> xs) {
  std::vector<double> d(xs.begin(), xs.end());
  return gini(std::span<const double>(d));
}

double shannon_entropy_bits(std::span<const double> xs) {
  double total = 0.0;
  for (const double x : xs) {
    if (x < 0.0) throw std::invalid_argument("entropy: negative value");
    total += x;
  }
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (const double x : xs) {
    if (x <= 0.0) continue;
    const double p = x / total;
    h -= p * std::log2(p);
  }
  return h;
}

double normalized_entropy(std::span<const double> xs) {
  if (xs.size() <= 1) return 0.0;
  return shannon_entropy_bits(xs) / std::log2(static_cast<double>(xs.size()));
}

double concentration_ratio(std::span<const std::uint64_t> xs,
                           double top_fraction) {
  if (top_fraction <= 0.0 || top_fraction > 1.0) {
    throw std::invalid_argument("concentration_ratio: fraction in (0, 1]");
  }
  if (xs.empty()) return 0.0;
  std::vector<std::uint64_t> sorted(xs.begin(), xs.end());
  std::sort(sorted.rbegin(), sorted.rend());
  const auto total =
      std::accumulate(sorted.begin(), sorted.end(), std::uint64_t{0});
  if (total == 0) return 0.0;
  const auto k = static_cast<std::size_t>(
      std::ceil(top_fraction * static_cast<double>(sorted.size())));
  const auto top = std::accumulate(sorted.begin(),
                                   sorted.begin() + static_cast<long>(k),
                                   std::uint64_t{0});
  return static_cast<double>(top) / static_cast<double>(total);
}

}  // namespace datanet::stats
