#include "stats/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace datanet::stats {

ZipfSampler::ZipfSampler(std::uint64_t num_items, double exponent)
    : exponent_(exponent) {
  if (num_items == 0) throw std::invalid_argument("ZipfSampler: num_items == 0");
  if (exponent < 0.0) throw std::invalid_argument("ZipfSampler: exponent < 0");
  cdf_.resize(num_items);
  double acc = 0.0;
  for (std::uint64_t r = 0; r < num_items; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf_[r] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against fp rounding at the top
}

std::uint64_t ZipfSampler::sample(common::Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::uint64_t rank) const {
  if (rank >= cdf_.size()) throw std::out_of_range("ZipfSampler::probability");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace datanet::stats
