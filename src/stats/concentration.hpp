#pragma once
// Concentration / content-clustering metrics. The paper cites Viles &
// French's content-locality measures ([25]: "topic signatures and collection
// statistics") as the way to quantify how clustered a sub-dataset is; these
// are the standard instantiations: Gini coefficient, normalized Shannon
// entropy, and top-fraction concentration ratios over a per-block
// distribution. Used by bench_fig1, the CLI inspect command, and tests to
// characterize generated workloads.

#include <cstdint>
#include <span>

namespace datanet::stats {

// Gini coefficient of a non-negative distribution: 0 = perfectly even,
// -> 1 = fully concentrated in one element. Empty or all-zero input -> 0.
[[nodiscard]] double gini(std::span<const double> xs);
[[nodiscard]] double gini(std::span<const std::uint64_t> xs);

// Shannon entropy of the normalized distribution, in bits.
[[nodiscard]] double shannon_entropy_bits(std::span<const double> xs);

// Entropy divided by log2(n): 1 = uniform, -> 0 = concentrated. n <= 1 -> 0.
[[nodiscard]] double normalized_entropy(std::span<const double> xs);

// Fraction of the total mass held by the largest ceil(top_fraction * n)
// elements (e.g. 0.25 -> "share held by the top quarter of blocks").
[[nodiscard]] double concentration_ratio(std::span<const std::uint64_t> xs,
                                         double top_fraction);

}  // namespace datanet::stats
