#pragma once
// Variable-edge histogram. The ElasticMap bucket separator and several bench
// reports are built on this.

#include <cstdint>
#include <span>
#include <vector>

namespace datanet::stats {

class Histogram {
 public:
  // `edges` are the interior bucket boundaries, strictly increasing.
  // Buckets: (-inf, e0), [e0, e1), ..., [e_{k-1}, +inf) — k+1 buckets.
  explicit Histogram(std::vector<double> edges);

  void add(double x, std::uint64_t count = 1);

  [[nodiscard]] std::size_t bucket_index(double x) const;
  [[nodiscard]] std::size_t num_buckets() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::span<const double> edges() const noexcept { return edges_; }

 private:
  std::vector<double> edges_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Fibonacci-style edges used by the paper's bucket separation (Section
// III-B): 1, 2, 3, 5, 8, 13, 21, 34, ... scaled by `unit` until `max_edge`.
[[nodiscard]] std::vector<double> fibonacci_edges(double unit, double max_edge);

}  // namespace datanet::stats
