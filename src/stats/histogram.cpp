#include "stats/histogram.hpp"

#include <algorithm>
#include <stdexcept>

namespace datanet::stats {

Histogram::Histogram(std::vector<double> edges) : edges_(std::move(edges)) {
  if (!std::is_sorted(edges_.begin(), edges_.end()) ||
      std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end()) {
    throw std::invalid_argument("Histogram: edges must be strictly increasing");
  }
  counts_.assign(edges_.size() + 1, 0);
}

void Histogram::add(double x, std::uint64_t count) {
  counts_[bucket_index(x)] += count;
  total_ += count;
}

std::size_t Histogram::bucket_index(double x) const {
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), x);
  return static_cast<std::size_t>(it - edges_.begin());
}

std::uint64_t Histogram::count(std::size_t bucket) const {
  if (bucket >= counts_.size()) throw std::out_of_range("Histogram::count");
  return counts_[bucket];
}

std::vector<double> fibonacci_edges(double unit, double max_edge) {
  if (!(unit > 0.0) || !(max_edge >= unit)) {
    throw std::invalid_argument("fibonacci_edges: require unit > 0, max >= unit");
  }
  std::vector<double> edges;
  double a = 1.0, b = 2.0;
  while (a * unit <= max_edge) {
    edges.push_back(a * unit);
    const double next = a + b;
    a = b;
    b = next;
  }
  return edges;
}

}  // namespace datanet::stats
