#pragma once
// Shared experiment harness reproducing the paper's evaluation pipeline
// (Section V-A): (1) a selection phase that filters the target sub-dataset
// out of the stored blocks and materializes it node-locally, scheduled
// either by the Hadoop locality baseline or by DataNet's Algorithm 1;
// (2) analysis jobs (MovingAverage / WordCount / Histogram / TopK) over the
// node-local filtered data. Every bench binary builds on these entry points.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "datanet/datanet.hpp"
#include "dfs/fault_injector.hpp"
#include "mapred/engine.hpp"
#include "scheduler/scheduler.hpp"
#include "workload/dataset.hpp"

namespace datanet::core {

struct ExperimentConfig {
  std::uint32_t num_nodes = 32;
  std::uint64_t block_size = 256 * 1024;  // scaled stand-in for 64 MiB
  std::uint32_t replication = 3;
  std::uint32_t slots_per_node = 2;
  std::uint64_t seed = 42;
  // Simulated-time scale so one scaled block costs what a 64 MiB block
  // would; 0 = derive as 64 MiB / block_size.
  double time_scale = 0.0;
  // Extra simulated read cost multiplier for non-local map tasks.
  double remote_read_penalty = 0.5;
  // Worker threads for the engine's real execution (0 = hardware
  // concurrency). Reports are bit-identical for any value.
  std::uint32_t execution_threads = 0;
  // Forwarded to DfsOptions::inline_repair: false defers re-replication to a
  // background dfs::ReplicationMonitor instead of repairing inline at fault
  // time (see SelectionRuntime::with_replication_monitor).
  bool inline_repair = true;

  [[nodiscard]] double effective_time_scale() const {
    return time_scale > 0.0
               ? time_scale
               : static_cast<double>(64ull << 20) / static_cast<double>(block_size);
  }

  // Throws std::invalid_argument on a configuration no cluster can satisfy:
  // zero nodes/block size/slots/replication, or replication > nodes. Called
  // by the dataset builders and SelectionRuntime::run before any work.
  void validate() const;
};

// A generated-and-ingested dataset plus its oracle.
struct StoredDataset {
  std::unique_ptr<dfs::MiniDfs> dfs;
  std::string path;
  std::unique_ptr<workload::GroundTruth> truth;
  std::vector<std::string> hot_keys;  // interesting sub-dataset keys, hottest first
};

// The DfsOptions a dataset builder derives from an ExperimentConfig —
// exposed so callers hosting their own DFS (the sharded dfs::MetaPlane)
// build shards placement-identical to make_movie_dataset's MiniDfs.
[[nodiscard]] dfs::DfsOptions make_dfs_options(const ExperimentConfig& cfg);

// Generation + ingestion half of make_movie_dataset, against a DFS the
// caller owns. Byte-identical records and hot keys to make_movie_dataset
// with the same (cfg, num_blocks, num_movies): ingesting into a fresh
// MiniDfs built from make_dfs_options(cfg) reproduces its placement exactly.
struct IngestedDataset {
  std::unique_ptr<workload::GroundTruth> truth;
  std::vector<std::string> hot_keys;
};
IngestedDataset ingest_movie_dataset(dfs::MiniDfs& dfs, const std::string& path,
                                     const ExperimentConfig& cfg,
                                     std::uint64_t num_blocks = 256,
                                     std::uint64_t num_movies = 2000);

// Build the paper's movie dataset: ~`num_blocks` blocks of chronologically
// stored review logs (Section V-A's 256-block MovieLens-shaped data).
[[nodiscard]] StoredDataset make_movie_dataset(const ExperimentConfig& cfg,
                                               std::uint64_t num_blocks = 256,
                                               std::uint64_t num_movies = 2000);

// Build the GitHub event-log dataset of Section V-A-4 (keys = event types).
[[nodiscard]] StoredDataset make_github_dataset(const ExperimentConfig& cfg,
                                                std::uint64_t num_blocks = 128);

// ---- Phase 1: sub-dataset selection ----

struct SelectionResult {
  scheduler::AssignmentRecord assignment;   // who processed which block
  std::vector<std::string> node_local_data; // filtered records per node
  std::vector<std::uint64_t> node_filtered_bytes;  // actual |s| per node
  mapred::JobReport report;                 // simulated selection-phase timing
  std::uint64_t blocks_scanned = 0;         // candidate blocks actually read
  // Candidate blocks that could not be read from any replica (faulted runs
  // only; report.lost_blocks holds the count, report.retries the attempts).
  std::vector<dfs::BlockId> lost_block_ids;
};

// Selection is executed by core::SelectionRuntime
// (datanet/selection_runtime.hpp): compose a ReplicaReadPolicy
// (DirectReadPolicy for the clean path, ChecksumRetryReadPolicy for the
// Hadoop datanode path), a FaultPolicy (NoFaults, or InjectedFaults over a
// dfs::FaultInjector plan: kill / corrupt / slow / stall / transient-read)
// and a TimingBackend (AnalyticBackend, or sim::EventSimBackend), then call
// runtime.run(dfs, path, key, sched, net, cfg). The former run_selection /
// run_selection_faulted shims are gone; benches use benchutil::run_selection.

// ---- Phase 2: analysis over the filtered, node-local sub-dataset ----

// Runs `job` over the node-local data of `selection`, splitting each node's
// data into ~`splits_per_node_slot * slots` map tasks. Cost model time_scale
// is overridden from cfg.
[[nodiscard]] mapred::JobReport run_analysis(const mapred::Job& job,
                                             const SelectionResult& selection,
                                             const ExperimentConfig& cfg);

// Convenience: selection + analysis, returning (selection, analysis) reports.
struct EndToEndResult {
  SelectionResult selection;
  mapred::JobReport analysis;
  [[nodiscard]] double total_seconds() const {
    return selection.report.total_seconds + analysis.total_seconds;
  }
};

[[nodiscard]] EndToEndResult run_end_to_end(const dfs::MiniDfs& dfs,
                                            const std::string& path,
                                            const std::string& key,
                                            scheduler::TaskScheduler& sched,
                                            const DataNet* net,
                                            const mapred::Job& job,
                                            const ExperimentConfig& cfg);

}  // namespace datanet::core
