#pragma once
// Shared experiment harness reproducing the paper's evaluation pipeline
// (Section V-A): (1) a selection phase that filters the target sub-dataset
// out of the stored blocks and materializes it node-locally, scheduled
// either by the Hadoop locality baseline or by DataNet's Algorithm 1;
// (2) analysis jobs (MovingAverage / WordCount / Histogram / TopK) over the
// node-local filtered data. Every bench binary builds on these entry points.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "datanet/datanet.hpp"
#include "dfs/fault_injector.hpp"
#include "mapred/engine.hpp"
#include "scheduler/scheduler.hpp"
#include "workload/dataset.hpp"

namespace datanet::core {

struct ExperimentConfig {
  std::uint32_t num_nodes = 32;
  std::uint64_t block_size = 256 * 1024;  // scaled stand-in for 64 MiB
  std::uint32_t replication = 3;
  std::uint32_t slots_per_node = 2;
  std::uint64_t seed = 42;
  // Simulated-time scale so one scaled block costs what a 64 MiB block
  // would; 0 = derive as 64 MiB / block_size.
  double time_scale = 0.0;
  // Extra simulated read cost multiplier for non-local map tasks.
  double remote_read_penalty = 0.5;
  // Worker threads for the engine's real execution (0 = hardware
  // concurrency). Reports are bit-identical for any value.
  std::uint32_t execution_threads = 0;

  [[nodiscard]] double effective_time_scale() const {
    return time_scale > 0.0
               ? time_scale
               : static_cast<double>(64ull << 20) / static_cast<double>(block_size);
  }

  // Throws std::invalid_argument on a configuration no cluster can satisfy:
  // zero nodes/block size/slots/replication, or replication > nodes. Called
  // by the dataset builders and SelectionRuntime::run before any work.
  void validate() const;
};

// A generated-and-ingested dataset plus its oracle.
struct StoredDataset {
  std::unique_ptr<dfs::MiniDfs> dfs;
  std::string path;
  std::unique_ptr<workload::GroundTruth> truth;
  std::vector<std::string> hot_keys;  // interesting sub-dataset keys, hottest first
};

// Build the paper's movie dataset: ~`num_blocks` blocks of chronologically
// stored review logs (Section V-A's 256-block MovieLens-shaped data).
[[nodiscard]] StoredDataset make_movie_dataset(const ExperimentConfig& cfg,
                                               std::uint64_t num_blocks = 256,
                                               std::uint64_t num_movies = 2000);

// Build the GitHub event-log dataset of Section V-A-4 (keys = event types).
[[nodiscard]] StoredDataset make_github_dataset(const ExperimentConfig& cfg,
                                                std::uint64_t num_blocks = 128);

// ---- Phase 1: sub-dataset selection ----

struct SelectionResult {
  scheduler::AssignmentRecord assignment;   // who processed which block
  std::vector<std::string> node_local_data; // filtered records per node
  std::vector<std::uint64_t> node_filtered_bytes;  // actual |s| per node
  mapred::JobReport report;                 // simulated selection-phase timing
  std::uint64_t blocks_scanned = 0;         // candidate blocks actually read
  // Candidate blocks that could not be read from any replica (faulted runs
  // only; report.lost_blocks holds the count, report.retries the attempts).
  std::vector<dfs::BlockId> lost_block_ids;
};

// Filter sub-dataset `key` from `path`, scheduling block tasks with `sched`.
// When `net` is non-null its ElasticMap provides the weights AND prunes
// blocks that provably hold no target data; when null (baseline) every block
// is scanned with zero weights.
//
// Deprecated shim (kept working for one PR): equivalent to a
// SelectionRuntime composed of DirectReadPolicy + NoFaults +
// AnalyticBackend — see datanet/selection_runtime.hpp. Output is
// byte-identical to the runtime spelling.
[[nodiscard]] SelectionResult run_selection(const dfs::MiniDfs& dfs,
                                            const std::string& path,
                                            const std::string& key,
                                            scheduler::TaskScheduler& sched,
                                            const DataNet* net,
                                            const ExperimentConfig& cfg);

// Fault-tolerant selection: same contract as run_selection, but the run is
// driven task-by-task so `faults` can kill nodes, corrupt replicas/blocks
// and slow nodes mid-job (FaultInjector events fire on completed-task
// counts). Reactions mirror Hadoop's:
//  * a killed node strands its pending AND completed tasks — the scheduler
//    re-enqueues them onto surviving nodes (scheduler::reassign_stranded)
//    and re-executed work counts into report.retries;
//  * a checksum failure on one replica retries the read on the next healthy
//    replica (remote attempts charge cfg.remote_read_penalty to the
//    simulated clock) and the bad copy is dropped + re-replicated;
//  * a block with no healthy replica left is recorded in lost_block_ids,
//    counted in report.lost_blocks, and sets report.degraded — degradation
//    is observable, never silent.
// Orchestration is serial and seeded, so the JobReport is bit-identical for
// any engine thread count (the PR-1 invariance property holds under faults).
//
// Deprecated shim (kept working for one PR): equivalent to a
// SelectionRuntime composed of ChecksumRetryReadPolicy + InjectedFaults +
// AnalyticBackend — see datanet/selection_runtime.hpp.
[[nodiscard]] SelectionResult run_selection_faulted(
    dfs::MiniDfs& dfs, const std::string& path, const std::string& key,
    scheduler::TaskScheduler& sched, const DataNet* net,
    const ExperimentConfig& cfg, dfs::FaultInjector& faults);

// ---- Phase 2: analysis over the filtered, node-local sub-dataset ----

// Runs `job` over the node-local data of `selection`, splitting each node's
// data into ~`splits_per_node_slot * slots` map tasks. Cost model time_scale
// is overridden from cfg.
[[nodiscard]] mapred::JobReport run_analysis(const mapred::Job& job,
                                             const SelectionResult& selection,
                                             const ExperimentConfig& cfg);

// Convenience: selection + analysis, returning (selection, analysis) reports.
struct EndToEndResult {
  SelectionResult selection;
  mapred::JobReport analysis;
  [[nodiscard]] double total_seconds() const {
    return selection.report.total_seconds + analysis.total_seconds;
  }
};

[[nodiscard]] EndToEndResult run_end_to_end(const dfs::MiniDfs& dfs,
                                            const std::string& path,
                                            const std::string& key,
                                            scheduler::TaskScheduler& sched,
                                            const DataNet* net,
                                            const mapred::Job& job,
                                            const ExperimentConfig& cfg);

}  // namespace datanet::core
