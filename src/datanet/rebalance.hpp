#pragma once
// Runtime-rebalancing comparator (the SkewTune-style alternative the paper
// discusses in Section V-A-4): after a content-blind selection, migrate
// filtered data between nodes until byte loads are even, and account for the
// migrated volume and the network time it costs. The paper observes that
// "almost every cluster node will transfer or receive sub-datasets and the
// overall percentage of data migration is more than 30%" — this module
// measures exactly that against DataNet's zero-migration schedule.

#include <cstdint>
#include <vector>

namespace datanet::core {

struct MigrationMove {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint64_t bytes = 0;
};

struct RebalancePlan {
  std::vector<MigrationMove> moves;
  std::vector<std::uint64_t> loads_after;  // per-node bytes after migration
  std::uint64_t migrated_bytes = 0;
  std::uint64_t total_bytes = 0;
  std::uint32_t nodes_touched = 0;  // nodes that send or receive data

  [[nodiscard]] double migrated_fraction() const {
    return total_bytes ? static_cast<double>(migrated_bytes) /
                             static_cast<double>(total_bytes)
                       : 0.0;
  }

  // Simulated migration time: every node's sends are serialized on its NIC;
  // transfers of distinct node pairs overlap. seconds/MiB given by caller.
  [[nodiscard]] double migration_seconds(double net_s_per_mib) const;
};

// Greedy waterline rebalance: move bytes from nodes above the mean to nodes
// below it until every node is within `tolerance` (fraction of the mean) of
// the mean. Data is divisible at record granularity, so byte-exact moves
// are a fair model of what a runtime skew mitigator achieves.
[[nodiscard]] RebalancePlan plan_rebalance(
    const std::vector<std::uint64_t>& node_bytes, double tolerance = 0.05);

}  // namespace datanet::core
