#pragma once
// DataNet public API: bind an ElasticMap to a stored dataset, query
// sub-dataset distributions, and build the bipartite scheduling graphs used
// by the distribution-aware schedulers. This is the library facade a
// downstream application uses; the experiment harness in experiment.hpp sits
// on top of it.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "dfs/mini_dfs.hpp"
#include "elasticmap/elastic_map.hpp"
#include "graph/bipartite.hpp"
#include "workload/record.hpp"

namespace datanet::core {

class DataNet {
 public:
  // Builds the ElasticMap for `path` in a single scan (Section III-B).
  // The caller guarantees `dfs` outlives this DataNet: scheduling_graph
  // resolves replica placements through it at query time.
  DataNet(const dfs::MiniDfs& dfs, std::string path,
          elasticmap::BuildOptions options = {});

  // Shared-ownership variant for long-lived bundles (datanetd's dataset
  // cache): the DataNet itself keeps the source MiniDfs alive, so a bundle
  // handed to an in-flight query stays valid even after the owning shard is
  // swapped for a recovered instance and the cache entry is rebuilt.
  DataNet(std::shared_ptr<const dfs::MiniDfs> dfs, std::string path,
          elasticmap::BuildOptions options = {});

  // Delta construction (PR 10): copy `base`'s already-built ElasticMap and
  // incrementally scan ONLY the blocks appended to `path` since base was
  // built — the dataset cache's delta-apply path for growing datasets.
  // Throws std::invalid_argument when the covered block prefix changed
  // (file recreated/rewritten); callers fall back to a full build.
  DataNet(std::shared_ptr<const dfs::MiniDfs> dfs, std::string path,
          const elasticmap::ElasticMapArray& base);

  [[nodiscard]] const elasticmap::ElasticMapArray& meta() const noexcept {
    return meta_;
  }
  [[nodiscard]] const dfs::MiniDfs& dfs() const noexcept { return *dfs_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  // Estimated per-block distribution of the sub-dataset keyed `key`
  // (Fig. 1a / 5b series). Blocks proven irrelevant are omitted.
  [[nodiscard]] std::vector<elasticmap::BlockShare> distribution(
      std::string_view key) const;

  // Equation 6 total-size estimate for the sub-dataset.
  [[nodiscard]] std::uint64_t estimate_total_size(std::string_view key) const;

  // Bipartite graph (Section IV-A) for scheduling an analysis of `key`:
  // vertices are the candidate blocks (per ElasticMap), weights the Eq. 6
  // per-block estimates. Blocks with no hash-map entry and no bloom hit are
  // excluded — DataNet's I/O-skipping optimization.
  [[nodiscard]] graph::BipartiteGraph scheduling_graph(std::string_view key) const;

  // Same for a multi-sub-dataset analysis (e.g. a watchlist of movies):
  // per-block weights are the summed estimates of all keys, and a block is
  // a candidate if any key may appear in it.
  [[nodiscard]] graph::BipartiteGraph scheduling_graph(
      std::span<const std::string> keys) const;

  // The baseline's view: every block of the file, all weights zero (the
  // locality scheduler is content-blind). Exposed here so baseline and
  // DataNet runs share one code path.
  [[nodiscard]] graph::BipartiteGraph baseline_graph() const;

 private:
  std::shared_ptr<const dfs::MiniDfs> keep_alive_;  // null for the ref ctor
  const dfs::MiniDfs* dfs_;
  std::string path_;
  elasticmap::ElasticMapArray meta_;
};

}  // namespace datanet::core
