#include "datanet/rebalance.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <stdexcept>

namespace datanet::core {

double RebalancePlan::migration_seconds(double net_s_per_mib) const {
  // Per-node send and receive totals; the phase ends when the busiest NIC
  // finishes (full-duplex, pairwise transfers overlap).
  std::vector<double> tx, rx;
  for (const auto& m : moves) {
    const std::size_t need = std::max<std::size_t>(m.from, m.to) + 1;
    if (tx.size() < need) {
      tx.resize(need, 0.0);
      rx.resize(need, 0.0);
    }
    tx[m.from] += static_cast<double>(m.bytes);
    rx[m.to] += static_cast<double>(m.bytes);
  }
  double busiest = 0.0;
  for (std::size_t n = 0; n < tx.size(); ++n) {
    busiest = std::max({busiest, tx[n], rx[n]});
  }
  return net_s_per_mib * busiest / (1024.0 * 1024.0);
}

RebalancePlan plan_rebalance(const std::vector<std::uint64_t>& node_bytes,
                             double tolerance) {
  if (node_bytes.empty()) throw std::invalid_argument("plan_rebalance: no nodes");
  if (tolerance < 0.0) throw std::invalid_argument("plan_rebalance: tolerance < 0");

  RebalancePlan plan;
  plan.loads_after = node_bytes;
  plan.total_bytes =
      std::accumulate(node_bytes.begin(), node_bytes.end(), std::uint64_t{0});
  const double mean = static_cast<double>(plan.total_bytes) /
                      static_cast<double>(node_bytes.size());
  const auto hi_mark = static_cast<std::uint64_t>(mean * (1.0 + tolerance));
  const auto lo_mark = static_cast<std::uint64_t>(mean * (1.0 - tolerance));

  // Largest surplus pairs with largest deficit first — the natural greedy a
  // runtime mitigator implements (fewest, biggest moves).
  auto& loads = plan.loads_after;
  for (;;) {
    std::size_t donor = loads.size(), taker = loads.size();
    std::uint64_t best_surplus = 0, best_deficit = 0;
    for (std::size_t n = 0; n < loads.size(); ++n) {
      if (loads[n] > hi_mark && loads[n] - hi_mark > best_surplus) {
        best_surplus = loads[n] - hi_mark;
        donor = n;
      }
      if (loads[n] < lo_mark && lo_mark - loads[n] > best_deficit) {
        best_deficit = lo_mark - loads[n];
        taker = n;
      }
    }
    if (donor == loads.size() || taker == loads.size()) break;
    // Move enough to bring one of the two inside the band.
    const auto donor_excess =
        loads[donor] - static_cast<std::uint64_t>(mean);
    const auto taker_need =
        static_cast<std::uint64_t>(mean) - loads[taker];
    const std::uint64_t bytes = std::min(donor_excess, taker_need);
    if (bytes == 0) break;
    loads[donor] -= bytes;
    loads[taker] += bytes;
    plan.moves.push_back(MigrationMove{static_cast<std::uint32_t>(donor),
                                       static_cast<std::uint32_t>(taker), bytes});
    plan.migrated_bytes += bytes;
  }

  std::set<std::uint32_t> touched;
  for (const auto& m : plan.moves) {
    touched.insert(m.from);
    touched.insert(m.to);
  }
  plan.nodes_touched = static_cast<std::uint32_t>(touched.size());
  return plan;
}

}  // namespace datanet::core
