#include "datanet/experiment.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "apps/filter.hpp"
#include "workload/github_gen.hpp"
#include "workload/movie_gen.hpp"

namespace datanet::core {

namespace {

// Average encoded record size used to size generated datasets; measured from
// the generators' defaults (ts + key + rating + ~18 words).
constexpr double kAvgMovieRecordBytes = 150.0;
constexpr double kAvgGithubRecordBytes = 130.0;

mapred::EngineOptions engine_options(const ExperimentConfig& cfg) {
  mapred::EngineOptions opt;
  opt.num_nodes = cfg.num_nodes;
  opt.slots_per_node = cfg.slots_per_node;
  opt.execution_threads = cfg.execution_threads;
  return opt;
}

graph::BipartiteGraph selection_graph(const dfs::MiniDfs& dfs,
                                      const std::string& path,
                                      const std::string& key, const DataNet* net) {
  // DataNet prunes + weights candidate blocks; the baseline scans
  // everything, content-blind.
  return net ? net->scheduling_graph(key)
             : graph::BipartiteGraph::from_dfs(
                   dfs, path, [](std::size_t, dfs::BlockId) { return 0; },
                   /*keep_zero_weight=*/true);
}

// Copy the record lines of `data` whose key matches into `out`; returns the
// number of bytes appended (lines kept verbatim, '\n' restored).
std::uint64_t filter_lines(std::string_view data, const std::string& key,
                           std::string& out) {
  std::uint64_t appended = 0;
  std::size_t start = 0;
  while (start < data.size()) {
    std::size_t end = data.find('\n', start);
    if (end == std::string_view::npos) end = data.size();
    const std::string_view line = data.substr(start, end - start);
    if (const auto rv = workload::decode_record(line); rv && rv->key == key) {
      out.append(line);
      out.push_back('\n');
      appended += line.size() + 1;
    }
    start = end + 1;
  }
  return appended;
}

}  // namespace

StoredDataset make_movie_dataset(const ExperimentConfig& cfg,
                                 std::uint64_t num_blocks,
                                 std::uint64_t num_movies) {
  StoredDataset ds;
  dfs::DfsOptions dopt;
  dopt.block_size = cfg.block_size;
  dopt.replication = cfg.replication;
  dopt.seed = cfg.seed;
  ds.dfs = std::make_unique<dfs::MiniDfs>(
      dfs::ClusterTopology::flat(cfg.num_nodes), dopt);
  ds.path = "/data/movies.log";

  workload::MovieGenOptions gopt;
  gopt.num_movies = num_movies;
  gopt.num_records = static_cast<std::uint64_t>(
      static_cast<double>(num_blocks * cfg.block_size) / kAvgMovieRecordBytes);
  gopt.seed = cfg.seed * 7919 + 13;
  const workload::MovieLogGenerator gen(gopt);
  const auto records = gen.generate();
  workload::ingest(*ds.dfs, ds.path, records);

  ds.truth = std::make_unique<workload::GroundTruth>(*ds.dfs, ds.path);
  for (std::uint64_t r = 0; r < std::min<std::uint64_t>(num_movies, 16); ++r) {
    ds.hot_keys.push_back(gen.movie_key(r));
  }
  return ds;
}

StoredDataset make_github_dataset(const ExperimentConfig& cfg,
                                  std::uint64_t num_blocks) {
  StoredDataset ds;
  dfs::DfsOptions dopt;
  dopt.block_size = cfg.block_size;
  dopt.replication = cfg.replication;
  dopt.seed = cfg.seed;
  ds.dfs = std::make_unique<dfs::MiniDfs>(
      dfs::ClusterTopology::flat(cfg.num_nodes), dopt);
  ds.path = "/data/github_events.log";

  workload::GithubGenOptions gopt;
  gopt.num_records = static_cast<std::uint64_t>(
      static_cast<double>(num_blocks * cfg.block_size) / kAvgGithubRecordBytes);
  gopt.seed = cfg.seed * 6271 + 5;
  const workload::GithubLogGenerator gen(gopt);
  workload::ingest(*ds.dfs, ds.path, gen.generate());

  ds.truth = std::make_unique<workload::GroundTruth>(*ds.dfs, ds.path);
  // The paper analyzes "IssueEvent"; IssuesEvent and PushEvent give extra
  // contrast (rare vs dominant type).
  ds.hot_keys = {"IssueEvent", "IssuesEvent", "PushEvent"};
  return ds;
}

SelectionResult run_selection(const dfs::MiniDfs& dfs, const std::string& path,
                              const std::string& key,
                              scheduler::TaskScheduler& sched, const DataNet* net,
                              const ExperimentConfig& cfg) {
  if (cfg.num_nodes != dfs.topology().num_nodes()) {
    throw std::invalid_argument("run_selection: cfg/dfs node count mismatch");
  }

  const graph::BipartiteGraph graph = selection_graph(dfs, path, key, net);

  std::vector<std::uint64_t> block_bytes(graph.num_blocks());
  for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
    block_bytes[j] = dfs.block(graph.block(j).block_id).size_bytes;
  }

  SelectionResult result;
  result.assignment = scheduler::drain(sched, graph, block_bytes);
  result.blocks_scanned = graph.num_blocks();

  // Materialize the filtered sub-dataset node-locally (real execution) and
  // build the simulated selection-phase timing from the same assignment.
  result.node_local_data.assign(cfg.num_nodes, "");
  result.node_filtered_bytes.assign(cfg.num_nodes, 0);

  std::vector<mapred::InputSplit> splits;
  splits.reserve(graph.num_blocks());
  for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
    const dfs::BlockId bid = graph.block(j).block_id;
    const dfs::NodeId node = result.assignment.block_to_node[j];
    const std::string_view data = dfs.read_block(bid);
    splits.push_back(mapred::InputSplit{
        .node = node,
        .data = data,
        .charged_bytes = dfs.is_local(bid, node)
                             ? data.size()
                             : static_cast<std::uint64_t>(
                                   static_cast<double>(data.size()) *
                                   (1.0 + cfg.remote_read_penalty))});
  }

  // Real filtering pass: copy matching record lines verbatim into the
  // owning node's local buffer.
  for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
    const dfs::BlockId bid = graph.block(j).block_id;
    const dfs::NodeId node = result.assignment.block_to_node[j];
    result.node_filtered_bytes[node] +=
        filter_lines(dfs.read_block(bid), key, result.node_local_data[node]);
  }

  // Simulated timing of the selection phase (I/O-dominated scan job).
  mapred::Job filter_job = apps::make_filter_stats_job(key);
  filter_job.config.cost.time_scale = cfg.effective_time_scale();
  const mapred::Engine engine(engine_options(cfg));
  result.report = engine.run(filter_job, splits);
  return result;
}

SelectionResult run_selection_faulted(dfs::MiniDfs& dfs, const std::string& path,
                                      const std::string& key,
                                      scheduler::TaskScheduler& sched,
                                      const DataNet* net,
                                      const ExperimentConfig& cfg,
                                      dfs::FaultInjector& faults) {
  if (cfg.num_nodes != dfs.topology().num_nodes()) {
    throw std::invalid_argument("run_selection_faulted: node count mismatch");
  }

  const graph::BipartiteGraph graph = selection_graph(dfs, path, key, net);
  const std::size_t num_tasks = graph.num_blocks();
  std::vector<std::uint64_t> block_bytes(num_tasks);
  for (std::size_t j = 0; j < num_tasks; ++j) {
    block_bytes[j] = dfs.block(graph.block(j).block_id).size_bytes;
  }

  SelectionResult result;
  result.assignment = scheduler::drain(sched, graph, block_bytes);
  result.blocks_scanned = num_tasks;

  // Per-task state. Output is buffered per task (not per node) so a killed
  // node's contribution can be discarded and rebuilt deterministically.
  std::vector<std::string> task_output(num_tasks);
  std::vector<std::string_view> task_data(num_tasks);
  std::vector<std::uint64_t> task_charge(num_tasks, 0);
  std::vector<std::uint8_t> done(num_tasks, 0);
  std::vector<std::uint8_t> lost(num_tasks, 0);
  std::vector<std::vector<std::size_t>> completed_on(cfg.num_nodes);
  std::uint64_t retries = 0;

  std::deque<std::size_t> queue;
  for (std::size_t j = 0; j < num_tasks; ++j) queue.push_back(j);

  // React to fired events: when a node died, everything assigned to it is
  // stranded — the scheduler re-enqueues pending tasks onto survivors, and
  // tasks that already completed there lost their local output, so they run
  // again (each re-execution is a retry).
  const auto react = [&](const std::vector<dfs::FaultEvent>& fired) {
    const bool any_kill =
        std::any_of(fired.begin(), fired.end(), [](const dfs::FaultEvent& e) {
          return e.kind == dfs::FaultKind::kKillNode;
        });
    if (!any_kill) return;
    std::vector<bool> alive(cfg.num_nodes);
    for (dfs::NodeId n = 0; n < cfg.num_nodes; ++n) alive[n] = dfs.is_active(n);
    for (dfs::NodeId n = 0; n < cfg.num_nodes; ++n) {
      if (alive[n]) continue;
      for (const std::size_t j : completed_on[n]) {
        done[j] = 0;
        task_output[j].clear();
        task_charge[j] += block_bytes[j];  // the dead attempt's work, redone
        queue.push_back(j);
        ++retries;
      }
      completed_on[n].clear();
    }
    scheduler::reassign_stranded(result.assignment, graph, block_bytes, alive);
  };

  react(faults.advance(0));

  std::uint64_t executed = 0;
  while (!queue.empty()) {
    const std::size_t j = queue.front();
    queue.pop_front();
    if (done[j] || lost[j]) continue;
    const dfs::NodeId node = result.assignment.block_to_node[j];
    const dfs::BlockId bid = graph.block(j).block_id;

    // Read order: the task's own node if it holds a copy, then the other
    // current replica holders ascending — each failed checksum costs a full
    // (possibly remote) read before the failure is detected, and the bad
    // copy is reported so the NameNode drops and re-replicates it.
    std::vector<dfs::NodeId> sources;
    if (dfs.is_local(bid, node)) sources.push_back(node);
    {
      std::vector<dfs::NodeId> others = dfs.block(bid).replicas;
      std::sort(others.begin(), others.end());
      for (const dfs::NodeId s : others) {
        if (s != node) sources.push_back(s);
      }
    }
    bool got = false;
    for (const dfs::NodeId src : sources) {
      const bool remote = src != node;
      const auto charged = static_cast<std::uint64_t>(
          static_cast<double>(block_bytes[j]) *
          (remote ? 1.0 + cfg.remote_read_penalty : 1.0));
      task_charge[j] += charged;
      if (dfs.replica_healthy(bid, src)) {
        task_data[j] = dfs.read_replica(bid, src);
        got = true;
        break;
      }
      ++retries;  // checksum failure detected after the read
      (void)dfs.report_corrupt_replica(bid, src);
    }
    if (!got) {
      lost[j] = 1;
      result.lost_block_ids.push_back(bid);
    } else {
      filter_lines(task_data[j], key, task_output[j]);
      done[j] = 1;
      completed_on[node].push_back(j);
    }

    ++executed;
    react(faults.advance(executed));
  }

  // Rebuild the node-local view in task order, so the final buffers are
  // independent of the retry history.
  result.node_local_data.assign(cfg.num_nodes, "");
  result.node_filtered_bytes.assign(cfg.num_nodes, 0);
  std::vector<mapred::InputSplit> splits;
  splits.reserve(num_tasks);
  for (std::size_t j = 0; j < num_tasks; ++j) {
    if (!done[j]) continue;
    const dfs::NodeId node = result.assignment.block_to_node[j];
    result.node_local_data[node].append(task_output[j]);
    result.node_filtered_bytes[node] += task_output[j].size();
    splits.push_back(mapred::InputSplit{
        .node = node, .data = task_data[j], .charged_bytes = task_charge[j]});
  }

  mapred::Job filter_job = apps::make_filter_stats_job(key);
  filter_job.config.cost.time_scale = cfg.effective_time_scale();
  mapred::EngineOptions opt = engine_options(cfg);
  if (faults.any_slowdown()) opt.node_speed = faults.node_speeds();
  const mapred::Engine engine(opt);
  result.report = engine.run(filter_job, splits);
  result.report.retries = retries;
  result.report.lost_blocks = result.lost_block_ids.size();
  result.report.degraded = !result.lost_block_ids.empty();
  return result;
}

mapred::JobReport run_analysis(const mapred::Job& job,
                               const SelectionResult& selection,
                               const ExperimentConfig& cfg) {
  // Each node materialized its filtered share as `slots_per_node` local
  // spill files during selection; the analysis runs one map task per spill,
  // so a node's map time is task_overhead + data_cost(bytes / slots) — the
  // structure behind the paper's Fig. 6 per-node map times. Splits break at
  // record boundaries.
  std::vector<mapred::InputSplit> splits;
  for (std::uint32_t n = 0; n < cfg.num_nodes; ++n) {
    const std::string_view data = selection.node_local_data[n];
    if (data.empty()) continue;
    const std::uint64_t chunk =
        std::max<std::uint64_t>(data.size() / cfg.slots_per_node, 1);
    std::size_t start = 0;
    while (start < data.size()) {
      std::size_t end = std::min<std::size_t>(start + chunk, data.size());
      if (end < data.size()) {
        const std::size_t nl = data.find('\n', end);
        end = (nl == std::string_view::npos) ? data.size() : nl + 1;
      }
      splits.push_back(mapred::InputSplit{.node = n,
                                          .data = data.substr(start, end - start),
                                          .charged_bytes = 0});
      start = end;
    }
  }

  mapred::Job scaled = job;
  scaled.config.cost.time_scale = cfg.effective_time_scale();
  const mapred::Engine engine(engine_options(cfg));
  return engine.run(scaled, splits);
}

EndToEndResult run_end_to_end(const dfs::MiniDfs& dfs, const std::string& path,
                              const std::string& key,
                              scheduler::TaskScheduler& sched, const DataNet* net,
                              const mapred::Job& job,
                              const ExperimentConfig& cfg) {
  EndToEndResult r{.selection = run_selection(dfs, path, key, sched, net, cfg),
                   .analysis = {}};
  r.analysis = run_analysis(job, r.selection, cfg);
  return r;
}

}  // namespace datanet::core
