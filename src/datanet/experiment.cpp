#include "datanet/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "datanet/selection_runtime.hpp"
#include "workload/github_gen.hpp"
#include "workload/movie_gen.hpp"

namespace datanet::core {

namespace {

// Average encoded record size used to size generated datasets; measured from
// the generators' defaults (ts + key + rating + ~18 words).
constexpr double kAvgMovieRecordBytes = 150.0;
constexpr double kAvgGithubRecordBytes = 130.0;

mapred::EngineOptions engine_options(const ExperimentConfig& cfg) {
  mapred::EngineOptions opt;
  opt.num_nodes = cfg.num_nodes;
  opt.slots_per_node = cfg.slots_per_node;
  opt.execution_threads = cfg.execution_threads;
  return opt;
}

// Shared DFS-construction half of the dataset builders: validate the
// cluster shape once, then stand up the MiniDfs the generators ingest into.
StoredDataset make_dataset_shell(const ExperimentConfig& cfg,
                                 std::string path) {
  cfg.validate();
  StoredDataset ds;
  ds.dfs = std::make_unique<dfs::MiniDfs>(
      dfs::ClusterTopology::flat(cfg.num_nodes), make_dfs_options(cfg));
  ds.path = std::move(path);
  return ds;
}

// Records needed so ~`num_blocks` blocks fill at `avg_record_bytes` each.
std::uint64_t records_for_blocks(const ExperimentConfig& cfg,
                                 std::uint64_t num_blocks,
                                 double avg_record_bytes) {
  return static_cast<std::uint64_t>(
      static_cast<double>(num_blocks * cfg.block_size) / avg_record_bytes);
}

}  // namespace

void ExperimentConfig::validate() const {
  if (num_nodes == 0) {
    throw std::invalid_argument("ExperimentConfig: num_nodes must be nonzero");
  }
  if (block_size == 0) {
    throw std::invalid_argument("ExperimentConfig: block_size must be nonzero");
  }
  if (slots_per_node == 0) {
    throw std::invalid_argument(
        "ExperimentConfig: slots_per_node must be nonzero");
  }
  if (replication == 0) {
    throw std::invalid_argument(
        "ExperimentConfig: replication must be nonzero");
  }
  if (replication > num_nodes) {
    throw std::invalid_argument(
        "ExperimentConfig: replication exceeds num_nodes");
  }
}

dfs::DfsOptions make_dfs_options(const ExperimentConfig& cfg) {
  dfs::DfsOptions dopt;
  dopt.block_size = cfg.block_size;
  dopt.replication = cfg.replication;
  dopt.seed = cfg.seed;
  dopt.inline_repair = cfg.inline_repair;
  return dopt;
}

IngestedDataset ingest_movie_dataset(dfs::MiniDfs& dfs, const std::string& path,
                                     const ExperimentConfig& cfg,
                                     std::uint64_t num_blocks,
                                     std::uint64_t num_movies) {
  cfg.validate();
  workload::MovieGenOptions gopt;
  gopt.num_movies = num_movies;
  gopt.num_records = records_for_blocks(cfg, num_blocks, kAvgMovieRecordBytes);
  gopt.seed = cfg.seed * 7919 + 13;
  const workload::MovieLogGenerator gen(gopt);
  const auto records = gen.generate();
  workload::ingest(dfs, path, records);

  IngestedDataset out;
  out.truth = std::make_unique<workload::GroundTruth>(dfs, path);
  for (std::uint64_t r = 0; r < std::min<std::uint64_t>(num_movies, 16); ++r) {
    out.hot_keys.push_back(gen.movie_key(r));
  }
  return out;
}

StoredDataset make_movie_dataset(const ExperimentConfig& cfg,
                                 std::uint64_t num_blocks,
                                 std::uint64_t num_movies) {
  StoredDataset ds = make_dataset_shell(cfg, "/data/movies.log");
  IngestedDataset in =
      ingest_movie_dataset(*ds.dfs, ds.path, cfg, num_blocks, num_movies);
  ds.truth = std::move(in.truth);
  ds.hot_keys = std::move(in.hot_keys);
  return ds;
}

StoredDataset make_github_dataset(const ExperimentConfig& cfg,
                                  std::uint64_t num_blocks) {
  StoredDataset ds = make_dataset_shell(cfg, "/data/github_events.log");

  workload::GithubGenOptions gopt;
  gopt.num_records = records_for_blocks(cfg, num_blocks, kAvgGithubRecordBytes);
  gopt.seed = cfg.seed * 6271 + 5;
  const workload::GithubLogGenerator gen(gopt);
  workload::ingest(*ds.dfs, ds.path, gen.generate());

  ds.truth = std::make_unique<workload::GroundTruth>(*ds.dfs, ds.path);
  // The paper analyzes "IssueEvent"; IssuesEvent and PushEvent give extra
  // contrast (rare vs dominant type).
  ds.hot_keys = {"IssueEvent", "IssuesEvent", "PushEvent"};
  return ds;
}

mapred::JobReport run_analysis(const mapred::Job& job,
                               const SelectionResult& selection,
                               const ExperimentConfig& cfg) {
  // Each node materialized its filtered share as `slots_per_node` local
  // spill files during selection; the analysis runs one map task per spill,
  // so a node's map time is task_overhead + data_cost(bytes / slots) — the
  // structure behind the paper's Fig. 6 per-node map times. Splits break at
  // record boundaries.
  std::vector<mapred::InputSplit> splits;
  for (std::uint32_t n = 0; n < cfg.num_nodes; ++n) {
    for (const std::string_view chunk : mapred::split_at_record_boundaries(
             selection.node_local_data[n], cfg.slots_per_node)) {
      splits.push_back(
          mapred::InputSplit{.node = n, .data = chunk, .charged_bytes = 0});
    }
  }

  mapred::Job scaled = job;
  scaled.config.cost.time_scale = cfg.effective_time_scale();
  const mapred::Engine engine(engine_options(cfg));
  return engine.run(scaled, splits);
}

EndToEndResult run_end_to_end(const dfs::MiniDfs& dfs, const std::string& path,
                              const std::string& key,
                              scheduler::TaskScheduler& sched, const DataNet* net,
                              const mapred::Job& job,
                              const ExperimentConfig& cfg) {
  DirectReadPolicy read(dfs, cfg.remote_read_penalty);
  NoFaults faults;
  AnalyticBackend timing;
  EndToEndResult r{.selection = SelectionRuntime(read, faults, timing)
                                    .run(dfs, path, key, sched, net, cfg),
                   .analysis = {}};
  r.analysis = run_analysis(job, r.selection, cfg);
  return r;
}

}  // namespace datanet::core
