#include "datanet/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "apps/filter.hpp"
#include "workload/github_gen.hpp"
#include "workload/movie_gen.hpp"

namespace datanet::core {

namespace {

// Average encoded record size used to size generated datasets; measured from
// the generators' defaults (ts + key + rating + ~18 words).
constexpr double kAvgMovieRecordBytes = 150.0;
constexpr double kAvgGithubRecordBytes = 130.0;

mapred::EngineOptions engine_options(const ExperimentConfig& cfg) {
  mapred::EngineOptions opt;
  opt.num_nodes = cfg.num_nodes;
  opt.slots_per_node = cfg.slots_per_node;
  return opt;
}

}  // namespace

StoredDataset make_movie_dataset(const ExperimentConfig& cfg,
                                 std::uint64_t num_blocks,
                                 std::uint64_t num_movies) {
  StoredDataset ds;
  dfs::DfsOptions dopt;
  dopt.block_size = cfg.block_size;
  dopt.replication = cfg.replication;
  dopt.seed = cfg.seed;
  ds.dfs = std::make_unique<dfs::MiniDfs>(
      dfs::ClusterTopology::flat(cfg.num_nodes), dopt);
  ds.path = "/data/movies.log";

  workload::MovieGenOptions gopt;
  gopt.num_movies = num_movies;
  gopt.num_records = static_cast<std::uint64_t>(
      static_cast<double>(num_blocks * cfg.block_size) / kAvgMovieRecordBytes);
  gopt.seed = cfg.seed * 7919 + 13;
  const workload::MovieLogGenerator gen(gopt);
  const auto records = gen.generate();
  workload::ingest(*ds.dfs, ds.path, records);

  ds.truth = std::make_unique<workload::GroundTruth>(*ds.dfs, ds.path);
  for (std::uint64_t r = 0; r < std::min<std::uint64_t>(num_movies, 16); ++r) {
    ds.hot_keys.push_back(gen.movie_key(r));
  }
  return ds;
}

StoredDataset make_github_dataset(const ExperimentConfig& cfg,
                                  std::uint64_t num_blocks) {
  StoredDataset ds;
  dfs::DfsOptions dopt;
  dopt.block_size = cfg.block_size;
  dopt.replication = cfg.replication;
  dopt.seed = cfg.seed;
  ds.dfs = std::make_unique<dfs::MiniDfs>(
      dfs::ClusterTopology::flat(cfg.num_nodes), dopt);
  ds.path = "/data/github_events.log";

  workload::GithubGenOptions gopt;
  gopt.num_records = static_cast<std::uint64_t>(
      static_cast<double>(num_blocks * cfg.block_size) / kAvgGithubRecordBytes);
  gopt.seed = cfg.seed * 6271 + 5;
  const workload::GithubLogGenerator gen(gopt);
  workload::ingest(*ds.dfs, ds.path, gen.generate());

  ds.truth = std::make_unique<workload::GroundTruth>(*ds.dfs, ds.path);
  // The paper analyzes "IssueEvent"; IssuesEvent and PushEvent give extra
  // contrast (rare vs dominant type).
  ds.hot_keys = {"IssueEvent", "IssuesEvent", "PushEvent"};
  return ds;
}

SelectionResult run_selection(const dfs::MiniDfs& dfs, const std::string& path,
                              const std::string& key,
                              scheduler::TaskScheduler& sched, const DataNet* net,
                              const ExperimentConfig& cfg) {
  if (cfg.num_nodes != dfs.topology().num_nodes()) {
    throw std::invalid_argument("run_selection: cfg/dfs node count mismatch");
  }

  // Build the scheduling graph: DataNet prunes + weights candidate blocks;
  // the baseline scans everything, content-blind.
  const graph::BipartiteGraph graph =
      net ? net->scheduling_graph(key)
          : graph::BipartiteGraph::from_dfs(
                dfs, path, [](std::size_t, dfs::BlockId) { return 0; },
                /*keep_zero_weight=*/true);

  std::vector<std::uint64_t> block_bytes(graph.num_blocks());
  for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
    block_bytes[j] = dfs.block(graph.block(j).block_id).size_bytes;
  }

  SelectionResult result;
  result.assignment = scheduler::drain(sched, graph, block_bytes);
  result.blocks_scanned = graph.num_blocks();

  // Materialize the filtered sub-dataset node-locally (real execution) and
  // build the simulated selection-phase timing from the same assignment.
  result.node_local_data.assign(cfg.num_nodes, "");
  result.node_filtered_bytes.assign(cfg.num_nodes, 0);

  std::vector<mapred::InputSplit> splits;
  splits.reserve(graph.num_blocks());
  for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
    const dfs::BlockId bid = graph.block(j).block_id;
    const dfs::NodeId node = result.assignment.block_to_node[j];
    const std::string_view data = dfs.read_block(bid);
    splits.push_back(mapred::InputSplit{
        .node = node,
        .data = data,
        .charged_bytes = dfs.is_local(bid, node)
                             ? data.size()
                             : static_cast<std::uint64_t>(
                                   static_cast<double>(data.size()) *
                                   (1.0 + cfg.remote_read_penalty))});
  }

  // Real filtering pass: copy matching record lines verbatim into the
  // owning node's local buffer.
  for (std::size_t j = 0; j < graph.num_blocks(); ++j) {
    const dfs::BlockId bid = graph.block(j).block_id;
    const dfs::NodeId node = result.assignment.block_to_node[j];
    const std::string_view data = dfs.read_block(bid);
    std::size_t start = 0;
    while (start < data.size()) {
      std::size_t end = data.find('\n', start);
      if (end == std::string_view::npos) end = data.size();
      const std::string_view line = data.substr(start, end - start);
      if (const auto rv = workload::decode_record(line); rv && rv->key == key) {
        result.node_local_data[node].append(line);
        result.node_local_data[node].push_back('\n');
        result.node_filtered_bytes[node] += line.size() + 1;
      }
      start = end + 1;
    }
  }

  // Simulated timing of the selection phase (I/O-dominated scan job).
  mapred::Job filter_job = apps::make_filter_stats_job(key);
  filter_job.config.cost.time_scale = cfg.effective_time_scale();
  const mapred::Engine engine(engine_options(cfg));
  result.report = engine.run(filter_job, splits);
  return result;
}

mapred::JobReport run_analysis(const mapred::Job& job,
                               const SelectionResult& selection,
                               const ExperimentConfig& cfg) {
  // Each node materialized its filtered share as `slots_per_node` local
  // spill files during selection; the analysis runs one map task per spill,
  // so a node's map time is task_overhead + data_cost(bytes / slots) — the
  // structure behind the paper's Fig. 6 per-node map times. Splits break at
  // record boundaries.
  std::vector<mapred::InputSplit> splits;
  for (std::uint32_t n = 0; n < cfg.num_nodes; ++n) {
    const std::string_view data = selection.node_local_data[n];
    if (data.empty()) continue;
    const std::uint64_t chunk =
        std::max<std::uint64_t>(data.size() / cfg.slots_per_node, 1);
    std::size_t start = 0;
    while (start < data.size()) {
      std::size_t end = std::min<std::size_t>(start + chunk, data.size());
      if (end < data.size()) {
        const std::size_t nl = data.find('\n', end);
        end = (nl == std::string_view::npos) ? data.size() : nl + 1;
      }
      splits.push_back(mapred::InputSplit{.node = n,
                                          .data = data.substr(start, end - start),
                                          .charged_bytes = 0});
      start = end;
    }
  }

  mapred::Job scaled = job;
  scaled.config.cost.time_scale = cfg.effective_time_scale();
  const mapred::Engine engine(engine_options(cfg));
  return engine.run(scaled, splits);
}

EndToEndResult run_end_to_end(const dfs::MiniDfs& dfs, const std::string& path,
                              const std::string& key,
                              scheduler::TaskScheduler& sched, const DataNet* net,
                              const mapred::Job& job,
                              const ExperimentConfig& cfg) {
  EndToEndResult r{.selection = run_selection(dfs, path, key, sched, net, cfg),
                   .analysis = {}};
  r.analysis = run_analysis(job, r.selection, cfg);
  return r;
}

}  // namespace datanet::core
