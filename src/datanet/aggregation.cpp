#include "datanet/aggregation.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace datanet::core {

namespace {

AggregationPlan finish_plan(const std::vector<std::uint64_t>& node_output_bytes,
                            std::vector<std::uint32_t> hosts) {
  AggregationPlan plan;
  const auto r = static_cast<std::uint64_t>(hosts.size());
  plan.reducer_hosts = std::move(hosts);
  plan.total_bytes = std::accumulate(node_output_bytes.begin(),
                                     node_output_bytes.end(), std::uint64_t{0});
  // Node n retains hosted_reducers(n)/R of its own output.
  std::vector<std::uint32_t> hosted(node_output_bytes.size(), 0);
  for (const auto h : plan.reducer_hosts) ++hosted[h];
  std::uint64_t retained = 0;
  for (std::size_t n = 0; n < node_output_bytes.size(); ++n) {
    retained += node_output_bytes[n] * hosted[n] / r;
  }
  plan.transfer_bytes = plan.total_bytes - retained;
  return plan;
}

void validate(const std::vector<std::uint64_t>& node_output_bytes,
              std::uint32_t num_reducers) {
  if (node_output_bytes.empty()) {
    throw std::invalid_argument("plan_aggregation: no nodes");
  }
  if (num_reducers == 0) {
    throw std::invalid_argument("plan_aggregation: num_reducers == 0");
  }
}

}  // namespace

AggregationPlan plan_aggregation(
    const std::vector<std::uint64_t>& node_output_bytes,
    std::uint32_t num_reducers) {
  validate(node_output_bytes, num_reducers);
  // Rank nodes by predicted output, biggest first; assign reducers greedily.
  // With more reducers than nodes, wrap around the ranking (heavy nodes get
  // extra reducers first, maximizing retained bytes).
  std::vector<std::uint32_t> order(node_output_bytes.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return node_output_bytes[a] > node_output_bytes[b];
  });
  std::vector<std::uint32_t> hosts(num_reducers);
  for (std::uint32_t p = 0; p < num_reducers; ++p) {
    hosts[p] = order[p % order.size()];
  }
  return finish_plan(node_output_bytes, std::move(hosts));
}

AggregationPlan plan_aggregation_roundrobin(
    const std::vector<std::uint64_t>& node_output_bytes,
    std::uint32_t num_reducers) {
  validate(node_output_bytes, num_reducers);
  std::vector<std::uint32_t> hosts(num_reducers);
  for (std::uint32_t p = 0; p < num_reducers; ++p) {
    hosts[p] = static_cast<std::uint32_t>(p % node_output_bytes.size());
  }
  return finish_plan(node_output_bytes, std::move(hosts));
}

}  // namespace datanet::core
