#include "datanet/attempt_tracker.hpp"

#include <algorithm>
#include <stdexcept>

namespace datanet::core {

namespace {

// Min-heap comparator over (ready_at, id): std::push_heap builds a max-heap,
// so the comparison is inverted. Ties break to the lower attempt id — the
// deterministic FIFO that makes clean runs pop in dispatch order.
struct ReadyLater {
  bool operator()(const std::pair<std::uint64_t, std::size_t>& a,
                  const std::pair<std::uint64_t, std::size_t>& b) const {
    return a.first != b.first ? a.first > b.first : a.second > b.second;
  }
};

}  // namespace

void AttemptOptions::validate() const {
  if (timeout_ticks == 0) {
    throw std::invalid_argument("AttemptOptions: timeout_ticks must be > 0");
  }
  if (max_attempts == 0) {
    throw std::invalid_argument("AttemptOptions: max_attempts must be > 0");
  }
  if (backoff_base_ticks == 0) {
    throw std::invalid_argument("AttemptOptions: backoff_base must be > 0");
  }
  if (backoff_cap_ticks < backoff_base_ticks) {
    throw std::invalid_argument("AttemptOptions: backoff cap < base");
  }
}

AttemptTracker::AttemptTracker(std::size_t num_tasks, AttemptOptions options)
    : options_(options), open_(num_tasks) {
  options_.validate();
  task_attempts_.assign(num_tasks, 0);
  task_capped_.assign(num_tasks, 0);
  task_closed_.assign(num_tasks, 0);
  task_speculated_.assign(num_tasks, 0);
}

std::optional<std::uint64_t> AttemptTracker::next_event_tick() const {
  std::optional<std::uint64_t> best;
  for (const auto& a : attempts_) {
    if (!live(a)) continue;
    const std::uint64_t t =
        a.state == AttemptState::kQueued ? a.ready_at : a.deadline;
    if (!best || t < *best) best = t;
  }
  return best;
}

std::size_t AttemptTracker::dispatch(std::size_t task, dfs::NodeId node,
                                     std::uint64_t delay, bool speculative,
                                     bool counts_toward_cap) {
  if (task >= task_attempts_.size()) {
    throw std::invalid_argument("AttemptTracker: bad task id");
  }
  TaskAttempt a;
  a.task = task;
  a.index = task_attempts_[task]++;
  a.node = node;
  a.dispatched_at = now_;
  a.ready_at = now_ + delay;
  a.speculative = speculative;
  a.counts_toward_cap = counts_toward_cap;
  const std::size_t id = attempts_.size();
  attempts_.push_back(a);
  ready_.emplace_back(a.ready_at, id);
  std::push_heap(ready_.begin(), ready_.end(), ReadyLater{});
  ++stats_.dispatched;
  if (speculative) {
    task_speculated_[task] = 1;
    ++stats_.speculative_launched;
  }
  if (counts_toward_cap) {
    if (task_capped_[task]++ > 0) ++stats_.redispatches;
  }
  return id;
}

std::optional<std::size_t> AttemptTracker::pop_ready() {
  while (!ready_.empty() && ready_.front().first <= now_) {
    std::pop_heap(ready_.begin(), ready_.end(), ReadyLater{});
    const std::size_t id = ready_.back().second;
    ready_.pop_back();
    if (attempts_[id].state == AttemptState::kQueued &&
        task_open(attempts_[id].task)) {
      return id;
    }
    // Stale entry (superseded / cancelled / closed task): drop and continue.
  }
  return std::nullopt;
}

void AttemptTracker::mark_running(std::size_t attempt) {
  TaskAttempt& a = attempts_[attempt];
  a.state = AttemptState::kRunning;
  a.deadline = now_ + options_.timeout_ticks;
}

void AttemptTracker::complete(std::size_t attempt) {
  TaskAttempt& a = attempts_[attempt];
  a.state = AttemptState::kSucceeded;
  if (a.speculative) ++stats_.speculative_wins;
  close_task(a.task);
}

void AttemptTracker::fail_transient(std::size_t attempt) {
  attempts_[attempt].state = AttemptState::kFailed;
  ++stats_.transient_retries;
}

void AttemptTracker::cancel(std::size_t attempt) {
  attempts_[attempt].state = AttemptState::kFailed;
}

std::vector<std::size_t> AttemptTracker::expire_due() {
  std::vector<std::size_t> due;
  for (std::size_t id = 0; id < attempts_.size(); ++id) {
    const TaskAttempt& a = attempts_[id];
    if (a.state == AttemptState::kRunning && task_open(a.task) &&
        a.deadline <= now_) {
      due.push_back(id);
    }
  }
  std::sort(due.begin(), due.end(), [&](std::size_t x, std::size_t y) {
    if (attempts_[x].deadline != attempts_[y].deadline) {
      return attempts_[x].deadline < attempts_[y].deadline;
    }
    return x < y;
  });
  for (const std::size_t id : due) {
    attempts_[id].state = AttemptState::kTimedOut;
    ++stats_.timeouts;
  }
  return due;
}

void AttemptTracker::abandon(std::size_t task) {
  if (!task_open(task)) return;
  ++stats_.degraded_tasks;
  close_task(task);
}

void AttemptTracker::drop(std::size_t task) {
  if (!task_open(task)) return;
  close_task(task);
}

void AttemptTracker::reopen(std::size_t task) {
  if (task_open(task)) return;
  task_closed_[task] = 0;
  ++open_;
}

bool AttemptTracker::task_open(std::size_t task) const {
  return task_closed_[task] == 0;
}

std::uint32_t AttemptTracker::capped_attempts(std::size_t task) const {
  return task_capped_[task];
}

bool AttemptTracker::has_live_attempt(std::size_t task) const {
  return live_attempts_of(task) > 0;
}

std::uint32_t AttemptTracker::live_attempts_of(std::size_t task) const {
  std::uint32_t n = 0;
  for (const auto& a : attempts_) {
    if (a.task == task && live(a)) ++n;
  }
  return n;
}

bool AttemptTracker::speculated(std::size_t task) const {
  return task_speculated_[task] != 0;
}

std::vector<std::size_t> AttemptTracker::live_attempts() const {
  std::vector<std::size_t> out;
  for (std::size_t id = 0; id < attempts_.size(); ++id) {
    if (live(attempts_[id])) out.push_back(id);
  }
  return out;
}

std::vector<std::size_t> AttemptTracker::running_attempts() const {
  std::vector<std::size_t> out;
  for (std::size_t id = 0; id < attempts_.size(); ++id) {
    if (attempts_[id].state == AttemptState::kRunning &&
        task_open(attempts_[id].task)) {
      out.push_back(id);
    }
  }
  return out;
}

void AttemptTracker::set_node(std::size_t attempt, dfs::NodeId node) {
  attempts_[attempt].node = node;
}

std::uint64_t AttemptTracker::backoff_delay(std::uint32_t redispatch_no) const {
  if (redispatch_no == 0) return 0;
  const std::uint32_t shift =
      std::min<std::uint32_t>(redispatch_no - 1, 63);
  const std::uint64_t base = options_.backoff_base_ticks;
  // Saturate instead of shifting into overflow.
  if (shift >= 64 || base > (options_.backoff_cap_ticks >> shift)) {
    return options_.backoff_cap_ticks;
  }
  return std::min(base << shift, options_.backoff_cap_ticks);
}

void AttemptTracker::close_task(std::size_t task) {
  if (task_closed_[task]) return;
  task_closed_[task] = 1;
  --open_;
  // Rivals of the closed task are superseded — first result wins. Their
  // stale ready-queue entries fall out lazily in pop_ready().
  for (auto& a : attempts_) {
    if (a.task == task && (a.state == AttemptState::kQueued ||
                           a.state == AttemptState::kRunning)) {
      a.state = AttemptState::kSuperseded;
    }
  }
}

}  // namespace datanet::core
