#include "datanet/datanet.hpp"

#include <stdexcept>

namespace datanet::core {

DataNet::DataNet(const dfs::MiniDfs& dfs, std::string path,
                 elasticmap::BuildOptions options)
    : dfs_(&dfs),
      path_(std::move(path)),
      meta_(elasticmap::ElasticMapArray::build(dfs, path_, options)) {}

DataNet::DataNet(std::shared_ptr<const dfs::MiniDfs> dfs, std::string path,
                 elasticmap::BuildOptions options)
    : keep_alive_(std::move(dfs)),
      dfs_(keep_alive_.get()),
      path_(std::move(path)),
      meta_(elasticmap::ElasticMapArray::build(*dfs_, path_, options)) {}

DataNet::DataNet(std::shared_ptr<const dfs::MiniDfs> dfs, std::string path,
                 const elasticmap::ElasticMapArray& base)
    : keep_alive_(std::move(dfs)),
      dfs_(keep_alive_.get()),
      path_(std::move(path)),
      meta_(base) {
  if (base.path() != path_) {
    throw std::invalid_argument("DataNet: base map built for another path");
  }
  meta_.extend(*dfs_);  // throws if the covered prefix changed
}

std::vector<elasticmap::BlockShare> DataNet::distribution(
    std::string_view key) const {
  return meta_.distribution(workload::subdataset_id(key));
}

std::uint64_t DataNet::estimate_total_size(std::string_view key) const {
  return meta_.estimate_total_size(workload::subdataset_id(key));
}

graph::BipartiteGraph DataNet::scheduling_graph(std::string_view key) const {
  const auto shares = distribution(key);
  std::vector<graph::BlockVertex> blocks;
  blocks.reserve(shares.size());
  for (const auto& share : shares) {
    // Snapshot: scheduling-graph builds race background healing when the
    // server runs jobs against a live ReplicationMonitor.
    blocks.push_back(graph::BlockVertex{
        .block_id = share.block_id,
        .weight = share.estimated_bytes,
        .hosts = dfs_->replicas_snapshot(share.block_id)});
  }
  return graph::BipartiteGraph(dfs_->topology().num_nodes(), std::move(blocks));
}

graph::BipartiteGraph DataNet::scheduling_graph(
    std::span<const std::string> keys) const {
  // Accumulate per-block weights over all requested sub-datasets.
  std::vector<std::uint64_t> weight(meta_.num_blocks(), 0);
  for (const auto& key : keys) {
    for (const auto& share : distribution(key)) {
      weight[share.block_index] += share.estimated_bytes;
    }
  }
  std::vector<graph::BlockVertex> blocks;
  for (std::uint64_t b = 0; b < meta_.num_blocks(); ++b) {
    if (weight[b] == 0) continue;
    const dfs::BlockId bid = meta_.block_id(b);
    blocks.push_back(graph::BlockVertex{.block_id = bid,
                                        .weight = weight[b],
                                        .hosts = dfs_->replicas_snapshot(bid)});
  }
  return graph::BipartiteGraph(dfs_->topology().num_nodes(), std::move(blocks));
}

graph::BipartiteGraph DataNet::baseline_graph() const {
  return graph::BipartiteGraph::from_dfs(
      *dfs_, path_, [](std::size_t, dfs::BlockId) { return 0; },
      /*keep_zero_weight=*/true);
}

}  // namespace datanet::core
