#pragma once
// SelectionRuntime: the single pull-driven execution engine behind every
// selection-phase entry point (the paper's Algorithm 1 task-request loop).
// One runtime drives any scheduler::TaskScheduler and composes three policy
// seams:
//
//   * ReplicaReadPolicy — how a task obtains its block bytes and what the
//     attempt costs on the simulated clock. DirectReadPolicy is the clean
//     logical read; ChecksumRetryReadPolicy is the Hadoop datanode path
//     (local copy first, then remaining replica holders ascending, every
//     failed checksum charged as a full read and reported to the NameNode).
//   * FaultPolicy — which faults fire as tasks complete. NoFaults is the
//     empty plan: a zero-fault run is this policy, not a separate harness.
//     InjectedFaults adapts dfs::FaultInjector (kill / corrupt / slow /
//     stall / transient-read).
//   * TimingBackend — how the assignment is ordered and the phase is timed.
//     AnalyticBackend keeps the fair round-robin request order and the
//     closed-form mapred::Engine cost model (and runs the real filter job,
//     so report.output is live). sim::EventSimBackend (sim/selection_sim.hpp)
//     drives the same scheduler with discrete-event pull-on-slot-free
//     ordering instead.
//
// The materialize loop is straggler-resilient (core::AttemptTracker): every
// dispatched task is a TaskAttempt on a deterministic logical clock;
// attempts parked on a stalled node time out and are re-dispatched with
// exponential backoff onto scheduler::pick_failover_node's choice, nodes
// accumulating timeouts are blacklisted, near-drained runs launch
// Hadoop-style speculative duplicates with first-result-wins, and the retry
// cap degrades (never hangs) a task no node can finish. The clock jumps to
// the next deadline when nothing is ready, so stalled plans cost O(attempts)
// iterations. See DESIGN.md §5d for the lifecycle state machine.
//
// Invariance properties (tests/selection_runtime_test.cpp, faults_test.cpp):
//   * JobReports are bit-identical at any engine thread count;
//   * a FaultPolicy with an empty plan never changes any report field;
//   * every seeded plan (kill/stall/transient mixes included) completes.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/simd_scan.hpp"
#include "datanet/attempt_tracker.hpp"
#include "datanet/experiment.hpp"
#include "dfs/fault_injector.hpp"
#include "dfs/mini_dfs.hpp"

namespace datanet::dfs {
class ReplicationMonitor;
}

namespace datanet::core {

// ---- read policy ----

// Outcome of one task's read, including every failed attempt made.
// Move-only: `pin` keeps the DFS bytes behind `data` immovable/unmutated, so
// the zero-copy view stays valid while background healing mutates the
// namespace (the PR 6 lifetime hazard). run_graph holds every task's pin
// until after the timing report, which is the last consumer of the views.
struct ReplicaRead {
  std::string_view data;              // valid iff ok, for the pin's lifetime
  dfs::BlockPin pin;                  // guards `data` against the mutator
  std::uint64_t charged_bytes = 0;    // simulated cost of all attempts
  std::uint64_t failed_attempts = 0;  // checksum failures before success/loss
  bool ok = false;                    // false = no healthy copy remains
};

class ReplicaReadPolicy {
 public:
  virtual ~ReplicaReadPolicy() = default;
  // Obtain the bytes of `block` for a task running on `node`.
  [[nodiscard]] virtual ReplicaRead read(dfs::BlockId block,
                                         dfs::NodeId node) = 0;
};

// Clean-path read: the logical block via MiniDfs::read_block, charged
// remote_read_penalty extra when `node` holds no replica. Propagates
// dfs::BlockCorruptError — corruption is a fault-path concern.
class DirectReadPolicy final : public ReplicaReadPolicy {
 public:
  DirectReadPolicy(const dfs::MiniDfs& dfs, double remote_read_penalty)
      : dfs_(&dfs), penalty_(remote_read_penalty) {}
  [[nodiscard]] ReplicaRead read(dfs::BlockId block, dfs::NodeId node) override;

 private:
  const dfs::MiniDfs* dfs_;
  double penalty_;
};

// Local-first / checksum-retry / report-corrupt read path: try the task's
// own copy if it holds one, then the other current replica holders in
// ascending node order. Each failed checksum costs a full (possibly remote)
// read before the failure is detected, and the bad copy is reported so the
// NameNode drops and re-replicates it. ok == false when every copy is bad.
class ChecksumRetryReadPolicy final : public ReplicaReadPolicy {
 public:
  ChecksumRetryReadPolicy(dfs::MiniDfs& dfs, double remote_read_penalty)
      : dfs_(&dfs), penalty_(remote_read_penalty) {}
  [[nodiscard]] ReplicaRead read(dfs::BlockId block, dfs::NodeId node) override;

 private:
  dfs::MiniDfs* dfs_;
  double penalty_;
};

// ---- fault policy ----

class FaultPolicy {
 public:
  virtual ~FaultPolicy() = default;
  // Whether this policy can ever fire a fault. When false (and no
  // ReplicationMonitor is attached) the runtime takes the bookkeeping-free
  // fast path: no AttemptTracker state, no advance()/is_stalled()/
  // take_transient_read_failure() probes, no monitor ticks — chosen once per
  // run, with reports bit-identical to the tracked clean run. Defaults to
  // true: a custom policy must opt in to being skippable.
  [[nodiscard]] virtual bool armed() const { return true; }
  // Called with the number of executed task attempts so far (0 before the
  // first); applies due faults and returns true when a node kill fired —
  // the runtime then re-enqueues the dead node's pending AND completed work.
  virtual bool advance(std::uint64_t executed_tasks) = 0;
  // Whether `node` currently ignores task requests without being dead (the
  // straggler fault). Attempts dispatched there park until their deadline.
  [[nodiscard]] virtual bool is_stalled(dfs::NodeId) const { return false; }
  // Consume one armed transient failure for `block`: true = this read fails
  // and the attempt retries with backoff.
  [[nodiscard]] virtual bool take_transient_read_failure(dfs::BlockId) {
    return false;
  }
  // Per-node simulated speed multipliers in effect after the run (empty =
  // nominal); forwarded to the timing backend.
  [[nodiscard]] virtual std::vector<double> node_speeds() const { return {}; }
};

// The empty plan: no events, ever.
class NoFaults final : public FaultPolicy {
 public:
  [[nodiscard]] bool armed() const override { return false; }
  bool advance(std::uint64_t) override { return false; }
};

// Adapter over dfs::FaultInjector's deterministic plans.
class InjectedFaults final : public FaultPolicy {
 public:
  explicit InjectedFaults(dfs::FaultInjector& injector) : injector_(&injector) {}
  bool advance(std::uint64_t executed_tasks) override;
  [[nodiscard]] bool is_stalled(dfs::NodeId node) const override;
  [[nodiscard]] bool take_transient_read_failure(dfs::BlockId block) override;
  [[nodiscard]] std::vector<double> node_speeds() const override;

 private:
  dfs::FaultInjector* injector_;
};

// ---- timing backend ----

class TimingBackend {
 public:
  virtual ~TimingBackend() = default;
  // Drive `sched` to a full assignment over `graph` (the pull loop; the
  // backend owns the request order).
  [[nodiscard]] virtual scheduler::AssignmentRecord assign(
      scheduler::TaskScheduler& sched, const graph::BipartiteGraph& graph,
      const std::vector<std::uint64_t>& block_bytes) = 0;
  // Selection-phase JobReport over the materialized splits. `node_speeds`
  // is the FaultPolicy's post-run view (empty = homogeneous); `attempts`
  // the materialize loop's attempt counters (all-zero on clean runs) — the
  // backend prices wasted/duplicated work from them.
  [[nodiscard]] virtual mapred::JobReport report(
      const std::string& key, const std::vector<mapred::InputSplit>& splits,
      const ExperimentConfig& cfg, const std::vector<double>& node_speeds,
      const mapred::AttemptCounters& attempts) = 0;
};

// Fair round-robin request order + the closed-form engine cost model. Runs
// the real filter job over the splits, so the report carries live output.
// When the attempt layer launched speculative duplicates the engine's
// speculative backup pass (mapred::apply_speculative_backups — the one
// speculation-timing implementation) prices them; clean runs keep the exact
// non-speculative timings.
class AnalyticBackend final : public TimingBackend {
 public:
  [[nodiscard]] scheduler::AssignmentRecord assign(
      scheduler::TaskScheduler& sched, const graph::BipartiteGraph& graph,
      const std::vector<std::uint64_t>& block_bytes) override;
  [[nodiscard]] mapred::JobReport report(
      const std::string& key, const std::vector<mapred::InputSplit>& splits,
      const ExperimentConfig& cfg, const std::vector<double>& node_speeds,
      const mapred::AttemptCounters& attempts) override;
};

// Same fair round-robin assignment as AnalyticBackend, but report() prices
// nothing: it returns an empty JobReport instead of re-running the filter
// job through the engine. The selection OUTPUT is unaffected — node-local
// buffers and filtered-bytes come from the runtime's materialize loop, which
// is backend-independent — so callers that only need the selected bytes
// (the datanetd serving path) skip the whole engine cost-model pass and pay
// scan cost per query. Attempt/recovery counters still land in the report
// via run_graph's post-merge.
class CostOnlyBackend final : public TimingBackend {
 public:
  [[nodiscard]] scheduler::AssignmentRecord assign(
      scheduler::TaskScheduler& sched, const graph::BipartiteGraph& graph,
      const std::vector<std::uint64_t>& block_bytes) override;
  [[nodiscard]] mapred::JobReport report(
      const std::string& key, const std::vector<mapred::InputSplit>& splits,
      const ExperimentConfig& cfg, const std::vector<double>& node_speeds,
      const mapred::AttemptCounters& attempts) override;
};

// ---- the runtime ----

class SelectionRuntime {
 public:
  // Policies must outlive the runtime; each run drives read -> fault ->
  // timing through the shared pull/materialize/report pipeline. `attempts`
  // tunes the straggler layer (defaults keep clean runs byte-identical to
  // the pre-attempt loop).
  SelectionRuntime(ReplicaReadPolicy& read, FaultPolicy& faults,
                   TimingBackend& timing, AttemptOptions attempts = {})
      : read_(&read), faults_(&faults), timing_(&timing), attempts_(attempts) {
    attempts_.validate();
  }

  // Optional fourth seam: a background healing loop over the same DFS the
  // run reads from. When wired in, the monitor scans + ticks once per
  // executed task (its tick clock advances with the run), is drained after
  // the selection finishes, and its counters land in report.recovery — via
  // whichever TimingBackend produced the report. The monitor must outlive
  // the runtime; pair it with DfsOptions::inline_repair = false so healing
  // actually flows through the queue.
  SelectionRuntime& with_replication_monitor(dfs::ReplicationMonitor& monitor) {
    monitor_ = &monitor;
    return *this;
  }

  // Full pipeline: build the scheduling graph for `key` (DataNet prunes +
  // weights candidate blocks when `net` != nullptr; the content-blind
  // baseline scans everything with zero weights) and execute it.
  [[nodiscard]] SelectionResult run(const dfs::MiniDfs& dfs,
                                    const std::string& path,
                                    const std::string& key,
                                    scheduler::TaskScheduler& sched,
                                    const DataNet* net,
                                    const ExperimentConfig& cfg) const;

  // Prebuilt-graph entry. `materialize` false skips the read/filter/attempt
  // loop (timing-only runs: node_local_data stays empty) — cmd_simulate's
  // event-timing path.
  [[nodiscard]] SelectionResult run_graph(const dfs::MiniDfs& dfs,
                                          const graph::BipartiteGraph& graph,
                                          const std::string& key,
                                          scheduler::TaskScheduler& sched,
                                          const ExperimentConfig& cfg,
                                          bool materialize = true) const;

 private:
  ReplicaReadPolicy* read_;
  FaultPolicy* faults_;
  TimingBackend* timing_;
  AttemptOptions attempts_;
  dfs::ReplicationMonitor* monitor_ = nullptr;  // optional; non-owning
};

// ---- shared filtering kernel ----

// Copy the record lines of `data` whose key equals `key` into `out`; returns
// the bytes appended (lines kept verbatim, '\n' restored). Line splitting
// and the exact key-field test run in common::scan_key_lines — SIMD '\n'/'\t'
// bitmask scanning under runtime CPU dispatch — so only candidate lines pay
// the full workload::decode_record (which still validates the timestamp
// before the line is kept). See bench_hotpath for scalar-vs-SIMD deltas.
std::uint64_t filter_lines(std::string_view data, const std::string& key,
                           std::string& out);

// Same, pinned to one scan kernel (equivalence fuzz + the kernel bench).
std::uint64_t filter_lines(std::string_view data, const std::string& key,
                           std::string& out, common::ScanKernel kernel);

// Reference implementation (full decode of every line); kept for the
// equivalence test and the bench comparison.
std::uint64_t filter_lines_decode_all(std::string_view data,
                                      const std::string& key,
                                      std::string& out);

}  // namespace datanet::core
