#include "datanet/selection_runtime.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "apps/filter.hpp"

namespace datanet::core {

namespace {

mapred::EngineOptions engine_options(const ExperimentConfig& cfg) {
  mapred::EngineOptions opt;
  opt.num_nodes = cfg.num_nodes;
  opt.slots_per_node = cfg.slots_per_node;
  opt.execution_threads = cfg.execution_threads;
  return opt;
}

}  // namespace

// ---- read policies ----

ReplicaRead DirectReadPolicy::read(dfs::BlockId block, dfs::NodeId node) {
  ReplicaRead r;
  r.data = dfs_->read_block(block);
  r.charged_bytes = dfs_->is_local(block, node)
                        ? r.data.size()
                        : static_cast<std::uint64_t>(
                              static_cast<double>(r.data.size()) *
                              (1.0 + penalty_));
  r.ok = true;
  return r;
}

ReplicaRead ChecksumRetryReadPolicy::read(dfs::BlockId block,
                                          dfs::NodeId node) {
  ReplicaRead r;
  const auto bytes = dfs_->block(block).size_bytes;
  std::vector<dfs::NodeId> sources;
  if (dfs_->is_local(block, node)) sources.push_back(node);
  {
    std::vector<dfs::NodeId> others = dfs_->block(block).replicas;
    std::sort(others.begin(), others.end());
    for (const dfs::NodeId s : others) {
      if (s != node) sources.push_back(s);
    }
  }
  for (const dfs::NodeId src : sources) {
    const bool remote = src != node;
    r.charged_bytes += static_cast<std::uint64_t>(
        static_cast<double>(bytes) * (remote ? 1.0 + penalty_ : 1.0));
    if (dfs_->replica_healthy(block, src)) {
      r.data = dfs_->read_replica(block, src);
      r.ok = true;
      return r;
    }
    ++r.failed_attempts;  // checksum failure detected after the read
    (void)dfs_->report_corrupt_replica(block, src);
  }
  return r;
}

// ---- fault policies ----

bool InjectedFaults::advance(std::uint64_t executed_tasks) {
  const auto fired = injector_->advance(executed_tasks);
  return std::any_of(fired.begin(), fired.end(), [](const dfs::FaultEvent& e) {
    return e.kind == dfs::FaultKind::kKillNode;
  });
}

std::vector<double> InjectedFaults::node_speeds() const {
  if (!injector_->any_slowdown()) return {};
  return injector_->node_speeds();
}

// ---- analytic timing backend ----

scheduler::AssignmentRecord AnalyticBackend::assign(
    scheduler::TaskScheduler& sched, const graph::BipartiteGraph& graph,
    const std::vector<std::uint64_t>& block_bytes) {
  return scheduler::pull_assign(
      sched, graph, block_bytes,
      {.order = scheduler::PullOptions::Order::kRoundRobin});
}

mapred::JobReport AnalyticBackend::report(
    const std::string& key, const std::vector<mapred::InputSplit>& splits,
    const ExperimentConfig& cfg, const std::vector<double>& node_speeds) {
  mapred::Job filter_job = apps::make_filter_stats_job(key);
  filter_job.config.cost.time_scale = cfg.effective_time_scale();
  mapred::EngineOptions opt = engine_options(cfg);
  if (!node_speeds.empty()) opt.node_speed = node_speeds;
  const mapred::Engine engine(opt);
  return engine.run(filter_job, splits);
}

// ---- the runtime ----

SelectionResult SelectionRuntime::run(const dfs::MiniDfs& dfs,
                                      const std::string& path,
                                      const std::string& key,
                                      scheduler::TaskScheduler& sched,
                                      const DataNet* net,
                                      const ExperimentConfig& cfg) const {
  cfg.validate();
  if (cfg.num_nodes != dfs.topology().num_nodes()) {
    throw std::invalid_argument("SelectionRuntime: cfg/dfs node count mismatch");
  }
  // DataNet prunes + weights candidate blocks; the baseline scans
  // everything, content-blind.
  const graph::BipartiteGraph graph =
      net ? net->scheduling_graph(key)
          : graph::BipartiteGraph::from_dfs(
                dfs, path, [](std::size_t, dfs::BlockId) { return 0; },
                /*keep_zero_weight=*/true);
  return run_graph(dfs, graph, key, sched, cfg);
}

SelectionResult SelectionRuntime::run_graph(const dfs::MiniDfs& dfs,
                                            const graph::BipartiteGraph& graph,
                                            const std::string& key,
                                            scheduler::TaskScheduler& sched,
                                            const ExperimentConfig& cfg,
                                            bool materialize) const {
  if (cfg.num_nodes != graph.num_nodes()) {
    throw std::invalid_argument(
        "SelectionRuntime: cfg/graph node count mismatch");
  }
  const std::size_t num_tasks = graph.num_blocks();
  std::vector<std::uint64_t> block_bytes(num_tasks);
  for (std::size_t j = 0; j < num_tasks; ++j) {
    block_bytes[j] = dfs.block(graph.block(j).block_id).size_bytes;
  }

  SelectionResult result;
  result.assignment = timing_->assign(sched, graph, block_bytes);
  result.blocks_scanned = num_tasks;
  result.node_local_data.assign(cfg.num_nodes, "");
  result.node_filtered_bytes.assign(cfg.num_nodes, 0);

  std::vector<mapred::InputSplit> splits;
  std::uint64_t retries = 0;

  if (materialize) {
    // Per-task state. Output is buffered per task (not per node) so a killed
    // node's contribution can be discarded and rebuilt deterministically.
    std::vector<std::string> task_output(num_tasks);
    std::vector<std::string_view> task_data(num_tasks);
    std::vector<std::uint64_t> task_charge(num_tasks, 0);
    std::vector<std::uint8_t> done(num_tasks, 0);
    std::vector<std::uint8_t> lost(num_tasks, 0);
    std::vector<std::vector<std::size_t>> completed_on(cfg.num_nodes);

    std::deque<std::size_t> queue;
    for (std::size_t j = 0; j < num_tasks; ++j) queue.push_back(j);

    // React to a node kill: everything assigned to a dead node is stranded —
    // the scheduler re-enqueues pending tasks onto survivors, and tasks that
    // already completed there lost their local output, so they run again
    // (each re-execution is a retry).
    const auto react = [&](const bool any_kill) {
      if (!any_kill) return;
      std::vector<bool> alive(cfg.num_nodes);
      for (dfs::NodeId n = 0; n < cfg.num_nodes; ++n) {
        alive[n] = dfs.is_active(n);
      }
      for (dfs::NodeId n = 0; n < cfg.num_nodes; ++n) {
        if (alive[n]) continue;
        for (const std::size_t j : completed_on[n]) {
          done[j] = 0;
          task_output[j].clear();
          task_charge[j] += block_bytes[j];  // the dead attempt's work, redone
          queue.push_back(j);
          ++retries;
        }
        completed_on[n].clear();
      }
      scheduler::reassign_stranded(result.assignment, graph, block_bytes,
                                   alive);
    };

    react(faults_->advance(0));

    std::uint64_t executed = 0;
    while (!queue.empty()) {
      const std::size_t j = queue.front();
      queue.pop_front();
      if (done[j] || lost[j]) continue;
      const dfs::NodeId node = result.assignment.block_to_node[j];
      const dfs::BlockId bid = graph.block(j).block_id;

      const ReplicaRead read = read_->read(bid, node);
      task_charge[j] += read.charged_bytes;
      retries += read.failed_attempts;
      if (!read.ok) {
        lost[j] = 1;
        result.lost_block_ids.push_back(bid);
      } else {
        task_data[j] = read.data;
        filter_lines(task_data[j], key, task_output[j]);
        done[j] = 1;
        completed_on[node].push_back(j);
      }

      ++executed;
      react(faults_->advance(executed));
    }

    // Rebuild the node-local view in task order, so the final buffers are
    // independent of the retry history.
    splits.reserve(num_tasks);
    for (std::size_t j = 0; j < num_tasks; ++j) {
      if (!done[j]) continue;
      const dfs::NodeId node = result.assignment.block_to_node[j];
      result.node_local_data[node].append(task_output[j]);
      result.node_filtered_bytes[node] += task_output[j].size();
      splits.push_back(mapred::InputSplit{
          .node = node, .data = task_data[j], .charged_bytes = task_charge[j]});
    }
  }

  result.report = timing_->report(key, splits, cfg, faults_->node_speeds());
  result.report.retries = retries;
  result.report.lost_blocks = result.lost_block_ids.size();
  result.report.degraded = !result.lost_block_ids.empty();
  return result;
}

// ---- shared filtering kernel ----

std::uint64_t filter_lines(std::string_view data, const std::string& key,
                           std::string& out) {
  std::uint64_t appended = 0;
  std::size_t start = 0;
  while (start < data.size()) {
    std::size_t end = data.find('\n', start);
    if (end == std::string_view::npos) end = data.size();
    const std::string_view line = data.substr(start, end - start);
    // Cheap exact test on the key field (the bytes between the first and
    // second tab); only candidate lines pay the full decode, which still
    // validates the timestamp before the line is kept.
    const std::size_t tab = line.find('\t');
    if (tab != std::string_view::npos) {
      const std::string_view rest = line.substr(tab + 1);
      if (rest.size() > key.size() && rest[key.size()] == '\t' &&
          rest.compare(0, key.size(), key) == 0) {
        if (const auto rv = workload::decode_record(line);
            rv && rv->key == key) {
          out.append(line);
          out.push_back('\n');
          appended += line.size() + 1;
        }
      }
    }
    start = end + 1;
  }
  return appended;
}

std::uint64_t filter_lines_decode_all(std::string_view data,
                                      const std::string& key,
                                      std::string& out) {
  std::uint64_t appended = 0;
  std::size_t start = 0;
  while (start < data.size()) {
    std::size_t end = data.find('\n', start);
    if (end == std::string_view::npos) end = data.size();
    const std::string_view line = data.substr(start, end - start);
    if (const auto rv = workload::decode_record(line); rv && rv->key == key) {
      out.append(line);
      out.push_back('\n');
      appended += line.size() + 1;
    }
    start = end + 1;
  }
  return appended;
}

}  // namespace datanet::core
