#include "datanet/selection_runtime.hpp"

#include <algorithm>
#include <stdexcept>

#include "apps/filter.hpp"
#include "dfs/replication_monitor.hpp"
#include "workload/record.hpp"

namespace datanet::core {

namespace {

mapred::EngineOptions engine_options(const ExperimentConfig& cfg) {
  mapred::EngineOptions opt;
  opt.num_nodes = cfg.num_nodes;
  opt.slots_per_node = cfg.slots_per_node;
  opt.execution_threads = cfg.execution_threads;
  return opt;
}

}  // namespace

// ---- read policies ----

ReplicaRead DirectReadPolicy::read(dfs::BlockId block, dfs::NodeId node) {
  ReplicaRead r;
  // Pinned zero-copy read: the view survives concurrent healing for as long
  // as the caller holds r.pin (run_graph keeps it until after the report).
  dfs::PinnedRead pinned = dfs_->read_block_pinned(block);
  r.data = pinned.data;
  r.pin = std::move(pinned.pin);
  r.charged_bytes = dfs_->is_local(block, node)
                        ? r.data.size()
                        : static_cast<std::uint64_t>(
                              static_cast<double>(r.data.size()) *
                              (1.0 + penalty_));
  r.ok = true;
  return r;
}

ReplicaRead ChecksumRetryReadPolicy::read(dfs::BlockId block,
                                          dfs::NodeId node) {
  ReplicaRead r;
  const auto bytes = dfs_->block(block).size_bytes;
  std::vector<dfs::NodeId> sources;
  if (dfs_->is_local(block, node)) sources.push_back(node);
  {
    std::vector<dfs::NodeId> others = dfs_->replicas_snapshot(block);
    std::sort(others.begin(), others.end());
    for (const dfs::NodeId s : others) {
      if (s != node) sources.push_back(s);
    }
  }
  for (const dfs::NodeId src : sources) {
    const bool remote = src != node;
    r.charged_bytes += static_cast<std::uint64_t>(
        static_cast<double>(bytes) * (remote ? 1.0 + penalty_ : 1.0));
    if (dfs_->replica_healthy(block, src)) {
      dfs::PinnedRead pinned = dfs_->read_replica_pinned(block, src);
      r.data = pinned.data;
      r.pin = std::move(pinned.pin);
      r.ok = true;
      return r;
    }
    ++r.failed_attempts;  // checksum failure detected after the read
    (void)dfs_->report_corrupt_replica(block, src);
  }
  return r;
}

// ---- fault policies ----

bool InjectedFaults::advance(std::uint64_t executed_tasks) {
  const auto fired = injector_->advance(executed_tasks);
  return std::any_of(fired.begin(), fired.end(), [](const dfs::FaultEvent& e) {
    return e.kind == dfs::FaultKind::kKillNode;
  });
}

bool InjectedFaults::is_stalled(dfs::NodeId node) const {
  return injector_->is_stalled(node);
}

bool InjectedFaults::take_transient_read_failure(dfs::BlockId block) {
  return injector_->take_transient_read_failure(block);
}

std::vector<double> InjectedFaults::node_speeds() const {
  if (!injector_->any_slowdown()) return {};
  return injector_->node_speeds();
}

// ---- analytic timing backend ----

scheduler::AssignmentRecord AnalyticBackend::assign(
    scheduler::TaskScheduler& sched, const graph::BipartiteGraph& graph,
    const std::vector<std::uint64_t>& block_bytes) {
  return scheduler::pull_assign(
      sched, graph, block_bytes,
      {.order = scheduler::PullOptions::Order::kRoundRobin});
}

mapred::JobReport AnalyticBackend::report(
    const std::string& key, const std::vector<mapred::InputSplit>& splits,
    const ExperimentConfig& cfg, const std::vector<double>& node_speeds,
    const mapred::AttemptCounters& attempts) {
  mapred::Job filter_job = apps::make_filter_stats_job(key);
  filter_job.config.cost.time_scale = cfg.effective_time_scale();
  mapred::EngineOptions opt = engine_options(cfg);
  if (!node_speeds.empty()) opt.node_speed = node_speeds;
  // Price duplicated work with the engine's (single) speculative backup
  // pass exactly when the attempt layer actually launched duplicates, so
  // clean runs keep their non-speculative timings bit-for-bit.
  opt.speculative = attempts.speculative_launched > 0;
  const mapred::Engine engine(opt);
  return engine.run(filter_job, splits);
}

// ---- cost-only timing backend ----

scheduler::AssignmentRecord CostOnlyBackend::assign(
    scheduler::TaskScheduler& sched, const graph::BipartiteGraph& graph,
    const std::vector<std::uint64_t>& block_bytes) {
  // Identical pull order to AnalyticBackend: the assignment (and therefore
  // the materialized selection) matches the analytic run bit-for-bit.
  return scheduler::pull_assign(
      sched, graph, block_bytes,
      {.order = scheduler::PullOptions::Order::kRoundRobin});
}

mapred::JobReport CostOnlyBackend::report(
    const std::string&, const std::vector<mapred::InputSplit>&,
    const ExperimentConfig&, const std::vector<double>&,
    const mapred::AttemptCounters&) {
  return {};  // no engine pass; run_graph merges loop counters afterwards
}

// ---- the runtime ----

SelectionResult SelectionRuntime::run(const dfs::MiniDfs& dfs,
                                      const std::string& path,
                                      const std::string& key,
                                      scheduler::TaskScheduler& sched,
                                      const DataNet* net,
                                      const ExperimentConfig& cfg) const {
  cfg.validate();
  if (cfg.num_nodes != dfs.topology().num_nodes()) {
    throw std::invalid_argument("SelectionRuntime: cfg/dfs node count mismatch");
  }
  // DataNet prunes + weights candidate blocks; the baseline scans
  // everything, content-blind.
  const graph::BipartiteGraph graph =
      net ? net->scheduling_graph(key)
          : graph::BipartiteGraph::from_dfs(
                dfs, path, [](std::size_t, dfs::BlockId) { return 0; },
                /*keep_zero_weight=*/true);
  return run_graph(dfs, graph, key, sched, cfg);
}

SelectionResult SelectionRuntime::run_graph(const dfs::MiniDfs& dfs,
                                            const graph::BipartiteGraph& graph,
                                            const std::string& key,
                                            scheduler::TaskScheduler& sched,
                                            const ExperimentConfig& cfg,
                                            bool materialize) const {
  if (cfg.num_nodes != graph.num_nodes()) {
    throw std::invalid_argument(
        "SelectionRuntime: cfg/graph node count mismatch");
  }
  const std::size_t num_tasks = graph.num_blocks();
  std::vector<std::uint64_t> block_bytes(num_tasks);
  for (std::size_t j = 0; j < num_tasks; ++j) {
    block_bytes[j] = dfs.block(graph.block(j).block_id).size_bytes;
  }

  SelectionResult result;
  result.assignment = timing_->assign(sched, graph, block_bytes);
  result.blocks_scanned = num_tasks;
  result.node_local_data.assign(cfg.num_nodes, "");
  result.node_filtered_bytes.assign(cfg.num_nodes, 0);

  std::vector<mapred::InputSplit> splits;
  std::uint64_t retries = 0;
  mapred::AttemptCounters counters;
  // One pin slot per task, held at function scope: splits (and task_data in
  // the tracked loop) are string_views into pinned DFS bytes, and the timing
  // backend's report() below is their last consumer — so the pins must
  // outlive it. Re-executions overwrite a task's slot, releasing the old pin.
  std::vector<dfs::BlockPin> task_pins(num_tasks);

  // Pay-as-you-go bookkeeping: with no fault policy armed and no monitor
  // attached, nothing in the tracked loop below can ever fire — every task
  // executes exactly once on its assigned node in task order. The fast path
  // replays that schedule with zero per-task tracker/heap state and filters
  // straight into the node-local buffers (the tracked loop's per-task output
  // staging exists only so retries can discard partial work). Reports stay
  // bit-identical: dispatch order, split order, charge accounting, and the
  // lost-block path match the tracked loop's clean execution exactly. The
  // one precondition checked up front is that every assigned node is active
  // (a pre-damaged cluster re-routes via the tracked loop's failover logic).
  bool fast_clean = materialize && !faults_->armed() && monitor_ == nullptr;
  if (fast_clean) {
    for (std::size_t j = 0; j < num_tasks && fast_clean; ++j) {
      fast_clean = dfs.is_active(result.assignment.block_to_node[j]);
    }
  }

  if (fast_clean) {
    splits.reserve(num_tasks);
    for (std::size_t j = 0; j < num_tasks; ++j) {
      const dfs::NodeId node = result.assignment.block_to_node[j];
      const dfs::BlockId bid = graph.block(j).block_id;
      ReplicaRead read = read_->read(bid, node);
      task_pins[j] = std::move(read.pin);
      retries += read.failed_attempts;
      if (!read.ok) {
        result.lost_block_ids.push_back(bid);
        continue;
      }
      result.node_filtered_bytes[node] +=
          filter_lines(read.data, key, result.node_local_data[node]);
      splits.push_back(mapred::InputSplit{
          .node = node, .data = read.data, .charged_bytes = read.charged_bytes});
    }
    counters.attempts = num_tasks;  // one dispatch per task, nothing else
  } else if (materialize) {
    // Per-task state. Output is buffered per task (not per node) so a killed
    // node's contribution can be discarded and rebuilt deterministically.
    std::vector<std::string> task_output(num_tasks);
    std::vector<std::string_view> task_data(num_tasks);
    std::vector<std::uint64_t> task_charge(num_tasks, 0);
    std::vector<std::uint8_t> done(num_tasks, 0);
    std::vector<std::uint8_t> lost(num_tasks, 0);
    std::vector<std::vector<std::size_t>> completed_on(cfg.num_nodes);

    AttemptTracker tracker(num_tasks, attempts_);
    std::vector<std::uint32_t> node_timeouts(cfg.num_nodes, 0);
    const auto blacklisted = [&](dfs::NodeId n) {
      return node_timeouts[n] >= attempts_.blacklist_after_timeouts;
    };

    // Failover target for one task: prefer alive, non-blacklisted nodes;
    // when every alive node is blacklisted keep trying somewhere (the retry
    // cap bounds the run either way).
    const auto pick_target = [&](std::size_t j) {
      std::vector<bool> eligible(cfg.num_nodes);
      bool any = false;
      for (dfs::NodeId n = 0; n < cfg.num_nodes; ++n) {
        eligible[n] = dfs.is_active(n) && !blacklisted(n);
        any = any || eligible[n];
      }
      if (!any) {
        for (dfs::NodeId n = 0; n < cfg.num_nodes; ++n) {
          eligible[n] = dfs.is_active(n);
        }
      }
      return scheduler::pick_failover_node(result.assignment, graph, j,
                                           eligible);
    };

    // Cap-counted re-dispatch (timeout/transient successor): exponential
    // backoff, deterministic failover target, degrade at the cap.
    const auto redispatch = [&](std::size_t j, dfs::NodeId node,
                                bool same_node) {
      if (tracker.capped_attempts(j) >= attempts_.max_attempts) {
        tracker.abandon(j);
        return;
      }
      dfs::NodeId target = node;
      if (!same_node || !dfs.is_active(node)) {
        target = pick_target(j);
        scheduler::move_task(result.assignment, graph, block_bytes, j, target);
      }
      tracker.dispatch(j, target,
                       tracker.backoff_delay(tracker.capped_attempts(j)),
                       /*speculative=*/false, /*counts_toward_cap=*/true);
    };

    const auto handle_timeouts = [&] {
      for (const std::size_t a : tracker.expire_due()) {
        const TaskAttempt& at = tracker.attempt(a);
        ++node_timeouts[at.node];
        // The parked attempt's read was started and wasted: charge it like
        // any other redone work.
        task_charge[at.task] += block_bytes[at.task];
        redispatch(at.task, at.node, /*same_node=*/false);
      }
    };

    // Hadoop-style speculation: when the run is near-drained and attempts
    // are parked on unresponsive nodes, duplicate each parked task once on
    // an idle healthy node (ascending task order; pick_failover_node keeps
    // target choice deterministic). First result wins — the tracker
    // supersedes the rival. Returns whether anything launched.
    const auto maybe_speculate = [&]() -> bool {
      if (!attempts_.speculative) return false;
      const std::uint64_t threshold = attempts_.speculation_drain_threshold
                                          ? attempts_.speculation_drain_threshold
                                          : cfg.num_nodes;
      if (tracker.open_tasks() > threshold) return false;
      const auto running = tracker.running_attempts();
      if (running.empty()) return false;
      // Nodes currently holding a parked attempt are busy, not idle.
      std::vector<std::uint8_t> busy(cfg.num_nodes, 0);
      for (const std::size_t a : running) busy[tracker.attempt(a).node] = 1;
      bool launched = false;
      for (const std::size_t a : running) {
        const TaskAttempt& at = tracker.attempt(a);
        const std::size_t j = at.task;
        if (tracker.speculated(j) || tracker.live_attempts_of(j) > 1) continue;
        std::vector<bool> eligible(cfg.num_nodes);
        bool any = false;
        for (dfs::NodeId n = 0; n < cfg.num_nodes; ++n) {
          eligible[n] =
              dfs.is_active(n) && !blacklisted(n) && !busy[n] && n != at.node;
          any = any || eligible[n];
        }
        if (!any) continue;
        const dfs::NodeId target =
            scheduler::pick_failover_node(result.assignment, graph, j, eligible);
        tracker.dispatch(j, target, /*delay=*/0, /*speculative=*/true,
                         /*counts_toward_cap=*/false);
        launched = true;
      }
      return launched;
    };

    // React to a node kill: everything assigned to a dead node is stranded —
    // the scheduler re-enqueues pending tasks onto survivors, and tasks that
    // already completed there lost their local output, so they run again
    // (each re-execution is a retry; kill re-dispatches never burn the cap).
    const auto react = [&](const bool any_kill) {
      if (!any_kill) return;
      std::vector<bool> alive(cfg.num_nodes);
      for (dfs::NodeId n = 0; n < cfg.num_nodes; ++n) {
        alive[n] = dfs.is_active(n);
      }
      for (dfs::NodeId n = 0; n < cfg.num_nodes; ++n) {
        if (alive[n]) continue;
        for (const std::size_t j : completed_on[n]) {
          done[j] = 0;
          task_output[j].clear();
          task_charge[j] += block_bytes[j];  // the dead attempt's work, redone
          tracker.reopen(j);
          ++retries;
        }
        completed_on[n].clear();
      }
      scheduler::reassign_stranded(result.assignment, graph, block_bytes,
                                   alive);
      // Attempts stranded on the dead node are cancelled; every open task
      // left without a live attempt re-dispatches on its (now alive) owner.
      for (const std::size_t a : tracker.live_attempts()) {
        if (!alive[tracker.attempt(a).node]) tracker.cancel(a);
      }
      for (std::size_t j = 0; j < num_tasks; ++j) {
        if (!tracker.task_open(j) || tracker.has_live_attempt(j)) continue;
        tracker.dispatch(j, result.assignment.block_to_node[j], /*delay=*/0,
                         /*speculative=*/false, /*counts_toward_cap=*/false);
      }
    };

    for (std::size_t j = 0; j < num_tasks; ++j) {
      tracker.dispatch(j, result.assignment.block_to_node[j]);
    }
    react(faults_->advance(0));

    std::uint64_t executed = 0;
    while (tracker.open_tasks() > 0) {
      const auto popped = tracker.pop_ready();
      if (!popped) {
        // Nothing ready now: speculate on parked work, else jump the clock
        // to the next deadline/backoff expiry (event-driven, never spins).
        if (maybe_speculate()) continue;
        const auto next = tracker.next_event_tick();
        if (!next) break;  // no live attempts remain for any open task
        tracker.advance_to(*next);
        handle_timeouts();
        continue;
      }
      const std::size_t a = *popped;
      const std::size_t j = tracker.attempt(a).task;
      const dfs::NodeId node = tracker.attempt(a).node;
      const dfs::BlockId bid = graph.block(j).block_id;

      if (!dfs.is_active(node)) {
        // The node died between dispatch and execution (defensive: react()
        // retargets on kills). Cancel and re-dispatch cap-free.
        tracker.cancel(a);
        const dfs::NodeId target = pick_target(j);
        scheduler::move_task(result.assignment, graph, block_bytes, j, target);
        tracker.dispatch(j, target, /*delay=*/0, /*speculative=*/false,
                         /*counts_toward_cap=*/false);
        continue;
      }
      if (faults_->is_stalled(node)) {
        // The node accepted the task but will never answer: park the attempt
        // until its deadline expires (that is how a stall is detected).
        tracker.mark_running(a);
        continue;
      }

      if (faults_->take_transient_read_failure(bid)) {
        // The read failed transiently; retry the same node after backoff.
        task_charge[j] += block_bytes[j];
        tracker.fail_transient(a);
        redispatch(j, node, /*same_node=*/true);
        tracker.tick();
        ++executed;
        react(faults_->advance(executed));
        handle_timeouts();
        if (monitor_ != nullptr) {
          monitor_->scan();
          monitor_->tick();
        }
        continue;
      }

      ReplicaRead read = read_->read(bid, node);
      task_pins[j] = std::move(read.pin);
      task_charge[j] += read.charged_bytes;
      retries += read.failed_attempts;
      if (!read.ok) {
        lost[j] = 1;
        result.lost_block_ids.push_back(bid);
        tracker.drop(j);
      } else {
        task_data[j] = read.data;
        task_output[j].clear();  // may be a re-execution
        filter_lines(task_data[j], key, task_output[j]);
        done[j] = 1;
        // First result wins: if a re-dispatch or speculative duplicate beat
        // the recorded owner, the assignment follows the winner.
        if (result.assignment.block_to_node[j] != node) {
          scheduler::move_task(result.assignment, graph, block_bytes, j, node);
        }
        completed_on[node].push_back(j);
        tracker.complete(a);
      }

      tracker.tick();
      ++executed;
      react(faults_->advance(executed));
      handle_timeouts();
      if (monitor_ != nullptr) {
        // Background healing rides the run's logical clock: one monitor tick
        // per executed task, rate-limited inside tick(). The loop is
        // single-threaded regardless of cfg.execution_threads, so healing is
        // bit-identical across engine thread counts.
        monitor_->scan();
        monitor_->tick();
      }
    }

    // Anything still open ran out of live attempts: degrade loudly rather
    // than hang (belt-and-braces; redispatch() normally abandons at the cap).
    for (std::size_t j = 0; j < num_tasks; ++j) {
      if (tracker.task_open(j) && !done[j] && !lost[j]) tracker.abandon(j);
    }

    // Rebuild the node-local view in task order, so the final buffers are
    // independent of the retry history.
    splits.reserve(num_tasks);
    for (std::size_t j = 0; j < num_tasks; ++j) {
      if (!done[j]) continue;
      const dfs::NodeId node = result.assignment.block_to_node[j];
      result.node_local_data[node].append(task_output[j]);
      result.node_filtered_bytes[node] += task_output[j].size();
      splits.push_back(mapred::InputSplit{
          .node = node, .data = task_data[j], .charged_bytes = task_charge[j]});
    }

    const AttemptStats& s = tracker.stats();
    counters.attempts = s.dispatched;
    counters.timeouts = s.timeouts;
    counters.transient_retries = s.transient_retries;
    counters.redispatches = s.redispatches;
    counters.speculative_launched = s.speculative_launched;
    counters.speculative_wins = s.speculative_wins;
    counters.degraded_tasks = s.degraded_tasks;
  }

  // Let the healing queue converge once the selection stops generating new
  // damage (also covers timing-only runs, where the loop above never ran).
  if (monitor_ != nullptr) monitor_->drain();

  result.report = timing_->report(key, splits, cfg, faults_->node_speeds(),
                                  counters);
  result.report.retries = retries;
  result.report.lost_blocks = result.lost_block_ids.size();
  // Merge the loop's attempt counters over whatever the backend priced
  // (AnalyticBackend contributes timing_backups; EventSimBackend its
  // event-level duplicates).
  result.report.attempts.attempts += counters.attempts;
  result.report.attempts.timeouts += counters.timeouts;
  result.report.attempts.transient_retries += counters.transient_retries;
  result.report.attempts.redispatches += counters.redispatches;
  result.report.attempts.speculative_launched += counters.speculative_launched;
  result.report.attempts.speculative_wins += counters.speculative_wins;
  result.report.attempts.degraded_tasks += counters.degraded_tasks;
  // Post-run DFS health, on clean and timing-only runs too: an
  // under-replicated seed layout is visible without injecting a fault, and
  // kills strand replicas until healing (inline or monitor) catches up.
  // MiniDfs maintains the fsck count incrementally, so this is O(1) — no
  // post-run namespace scan (tests assert equality with dfs::fsck).
  result.report.under_replicated = dfs.under_replicated_count();
  if (monitor_ != nullptr) {
    const dfs::ReplicationMonitorStats& ms = monitor_->stats();
    result.report.recovery.healed_blocks = ms.healed_blocks;
    result.report.recovery.pending_repairs = ms.pending_repairs;
    result.report.recovery.mttr_ticks = ms.mttr_ticks;
    result.report.recovery.monitor_ticks = ms.ticks;
    result.report.recovery.scrubbed_replicas = ms.scrubbed_replicas;
    result.report.recovery.unrepairable = ms.unrepairable;
  }
  result.report.degraded = !result.lost_block_ids.empty() ||
                           result.report.attempts.degraded_tasks > 0;
  return result;
}

// ---- shared filtering kernel ----

namespace {

// Sink state for the scan kernels: candidate lines (key field already
// matched byte-exact by the scanner) still pay the full decode, which
// validates the timestamp before the line is kept.
struct FilterSink {
  const std::string* key;
  std::string* out;
  std::uint64_t appended = 0;

  static void keep_candidate(void* ctx, std::string_view line) {
    auto& s = *static_cast<FilterSink*>(ctx);
    if (const auto rv = workload::decode_record(line); rv && rv->key == *s.key) {
      s.out->append(line);
      s.out->push_back('\n');
      s.appended += line.size() + 1;
    }
  }
};

}  // namespace

std::uint64_t filter_lines(std::string_view data, const std::string& key,
                           std::string& out) {
  return filter_lines(data, key, out, common::active_scan_kernel());
}

std::uint64_t filter_lines(std::string_view data, const std::string& key,
                           std::string& out, common::ScanKernel kernel) {
  FilterSink sink{&key, &out};
  common::scan_key_lines(data, key, &sink, &FilterSink::keep_candidate, kernel);
  return sink.appended;
}

std::uint64_t filter_lines_decode_all(std::string_view data,
                                      const std::string& key,
                                      std::string& out) {
  // Every (non-empty) line pays the decode; empty lines never decode to a
  // record, so skipping them in the scanner changes nothing.
  FilterSink sink{&key, &out};
  common::scan_lines(data, &sink, &FilterSink::keep_candidate);
  return sink.appended;
}

}  // namespace datanet::core
