#pragma once
// Attempt tracking for the SelectionRuntime (the JobTracker's task-attempt
// table). Every dispatched task becomes a TaskAttempt on a deterministic
// logical clock — one executed read attempt advances the clock by one tick,
// and when nothing is ready the clock jumps straight to the next deadline or
// backoff expiry (event-driven, so stalled plans finish in O(attempts) loop
// iterations, not O(timeout)). The tracker owns the attempt lifecycle:
//
//   kQueued --pop--> executes immediately (healthy node)  --> kSucceeded
//      |                 |                                      |
//      |                 +--> transient read failure --> kFailed, re-queued
//      |                 |       on the same node with exponential backoff
//      |                 +--> node stalled --> kRunning (parked) --deadline-->
//      |                         kTimedOut, re-dispatched elsewhere
//      +--> rival finished first --------------------------> kSuperseded
//
// Re-dispatches are capped at AttemptOptions::max_attempts per task; an
// exhausted task is abandoned (degraded, loudly) instead of hanging the run.
// Kill re-executions and speculative duplicates do not burn the cap. All
// choices are index-ordered and the clock is simulation-only, so runs are
// bit-identical at any engine thread count.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "dfs/topology.hpp"

namespace datanet::core {

struct AttemptOptions {
  // Ticks (executed read attempts) a Running attempt may sit on an
  // unresponsive node before it is declared timed out.
  std::uint64_t timeout_ticks = 8;
  // Cap-counted attempts per task (timeout + transient re-dispatches); the
  // task degrades when exhausted. Kill re-executions and speculative
  // duplicates are exempt.
  std::uint32_t max_attempts = 5;
  // Re-dispatch n waits min(backoff_base_ticks << (n-1), backoff_cap_ticks)
  // ticks before it becomes ready.
  std::uint64_t backoff_base_ticks = 1;
  std::uint64_t backoff_cap_ticks = 8;
  // A node is blacklisted for re-dispatch/speculation targeting after this
  // many of its attempts timed out.
  std::uint32_t blacklist_after_timeouts = 2;
  // Launch speculative duplicates of Running attempts when the run is
  // near-drained (open tasks <= threshold; 0 = one per cluster node).
  bool speculative = true;
  std::uint64_t speculation_drain_threshold = 0;

  // Throws std::invalid_argument on zero timeout/max_attempts/backoff base.
  void validate() const;
};

enum class AttemptState : std::uint8_t {
  kQueued,      // waiting for its ready tick
  kRunning,     // parked on an unresponsive node, deadline armed
  kSucceeded,   // produced the task's result (first result wins)
  kTimedOut,    // deadline passed; a successor attempt was considered
  kFailed,      // transient read failure or cancelled (node died)
  kSuperseded,  // a rival attempt of the same task finished first
};

struct TaskAttempt {
  std::size_t task = 0;
  std::uint32_t index = 0;  // per-task ordinal, 0 = original
  dfs::NodeId node = 0;
  std::uint64_t ready_at = 0;      // tick the attempt may execute
  std::uint64_t dispatched_at = 0;
  std::uint64_t deadline = 0;      // armed by mark_running
  bool speculative = false;
  bool counts_toward_cap = true;
  AttemptState state = AttemptState::kQueued;
};

struct AttemptStats {
  std::uint64_t dispatched = 0;           // attempts created, duplicates incl.
  std::uint64_t timeouts = 0;
  std::uint64_t transient_retries = 0;
  std::uint64_t redispatches = 0;         // cap-counted follow-up dispatches
  std::uint64_t speculative_launched = 0;
  std::uint64_t speculative_wins = 0;
  std::uint64_t degraded_tasks = 0;       // abandoned at the retry cap
};

class AttemptTracker {
 public:
  AttemptTracker(std::size_t num_tasks, AttemptOptions options);

  // ---- clock ----
  [[nodiscard]] std::uint64_t now() const noexcept { return now_; }
  void tick() noexcept { ++now_; }
  void advance_to(std::uint64_t t) noexcept { now_ = std::max(now_, t); }

  // Earliest tick at which a queued attempt becomes ready or a running
  // attempt times out; nullopt when no live attempt exists.
  [[nodiscard]] std::optional<std::uint64_t> next_event_tick() const;

  // ---- dispatch / execution ----
  // Create an attempt of `task` on `node`, ready `delay` ticks from now.
  // Returns the attempt id. `counts_toward_cap` = false for kill
  // re-executions and speculative duplicates.
  std::size_t dispatch(std::size_t task, dfs::NodeId node,
                       std::uint64_t delay = 0, bool speculative = false,
                       bool counts_toward_cap = true);

  // Next queued attempt with ready_at <= now, FIFO by (ready_at, id) — on a
  // clean run this degenerates to dispatch order. Skips attempts of closed
  // tasks. nullopt when nothing is ready.
  [[nodiscard]] std::optional<std::size_t> pop_ready();

  // Park `attempt` on its (unresponsive) node and arm the timeout deadline.
  void mark_running(std::size_t attempt);
  // First result wins: succeed `attempt`, close its task, supersede rivals.
  void complete(std::size_t attempt);
  // Transient read failure: the attempt is dead, the caller re-dispatches.
  void fail_transient(std::size_t attempt);
  // Cancel without stats (the attempt's node died; not the task's fault).
  void cancel(std::size_t attempt);
  // Running attempts whose deadline expired, in (deadline, id) order; each
  // is marked kTimedOut and counted. The caller re-dispatches or abandons.
  std::vector<std::size_t> expire_due();

  // ---- task bookkeeping ----
  // Retry cap exhausted: close the task as degraded (counted loudly).
  void abandon(std::size_t task);
  // Block unreadable from any replica: close the task (lost, not degraded).
  void drop(std::size_t task);
  // A kill discarded the task's completed output: reopen it for a fresh
  // cap-exempt dispatch.
  void reopen(std::size_t task);

  [[nodiscard]] bool task_open(std::size_t task) const;
  [[nodiscard]] std::uint64_t open_tasks() const noexcept { return open_; }
  [[nodiscard]] std::uint32_t capped_attempts(std::size_t task) const;
  [[nodiscard]] bool has_live_attempt(std::size_t task) const;
  [[nodiscard]] std::uint32_t live_attempts_of(std::size_t task) const;
  [[nodiscard]] bool speculated(std::size_t task) const;

  // ---- introspection ----
  [[nodiscard]] const TaskAttempt& attempt(std::size_t id) const {
    return attempts_[id];
  }
  [[nodiscard]] std::size_t num_attempts() const noexcept {
    return attempts_.size();
  }
  // Live (queued or running) attempt ids, ascending.
  [[nodiscard]] std::vector<std::size_t> live_attempts() const;
  // Running attempt ids of open tasks, ascending (speculation candidates).
  [[nodiscard]] std::vector<std::size_t> running_attempts() const;
  // Retarget a live attempt whose node is gone (assignment already moved).
  void set_node(std::size_t attempt, dfs::NodeId node);

  [[nodiscard]] std::uint64_t backoff_delay(std::uint32_t redispatch_no) const;
  [[nodiscard]] const AttemptStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const AttemptOptions& options() const noexcept {
    return options_;
  }

 private:
  [[nodiscard]] bool live(const TaskAttempt& a) const {
    return (a.state == AttemptState::kQueued ||
            a.state == AttemptState::kRunning) &&
           task_open(a.task);
  }
  void close_task(std::size_t task);

  AttemptOptions options_;
  std::uint64_t now_ = 0;
  std::uint64_t open_ = 0;
  std::vector<TaskAttempt> attempts_;
  std::vector<std::uint32_t> task_attempts_;     // total per task
  std::vector<std::uint32_t> task_capped_;       // cap-counted per task
  std::vector<std::uint8_t> task_closed_;        // done/abandoned/dropped
  std::vector<std::uint8_t> task_speculated_;
  // Ready queue: (ready_at, attempt id) min-heap with lazy deletion.
  std::vector<std::pair<std::uint64_t, std::size_t>> ready_;
  AttemptStats stats_;
};

}  // namespace datanet::core
