#pragma once
// Aggregation-transfer planning — the optimization the paper leaves as
// future work at the end of Section IV-B: "For applications with
// aggregation requirements ... ElasticMap can also be used to minimize the
// data transferred with the knowledge of sub-dataset distributions."
//
// Model: a job's map output is hash-partitioned across R reducers, so each
// node ships (R-1)/R of its output remotely unless a reducer runs locally;
// a node hosting k reducers retains k/R of its own output. Total transfer
// is therefore minimized by placing reducers on the nodes that will produce
// the most map output — which DataNet can predict from the ElasticMap
// before the job starts.

#include <cstdint>
#include <vector>

namespace datanet::core {

struct AggregationPlan {
  std::vector<std::uint32_t> reducer_hosts;  // R entries, node per reducer
  std::uint64_t transfer_bytes = 0;          // shuffled remotely under this plan
  std::uint64_t total_bytes = 0;             // total map output

  [[nodiscard]] double transfer_fraction() const {
    return total_bytes ? static_cast<double>(transfer_bytes) /
                             static_cast<double>(total_bytes)
                       : 0.0;
  }
};

// Place `num_reducers` on the nodes with the largest predicted map output
// (ties to lower node ids). `node_output_bytes` is the per-node predicted
// map-output volume — e.g. the ElasticMap-estimated filtered bytes.
[[nodiscard]] AggregationPlan plan_aggregation(
    const std::vector<std::uint64_t>& node_output_bytes,
    std::uint32_t num_reducers);

// Baseline: reducers spread round-robin over all nodes, content-blind.
[[nodiscard]] AggregationPlan plan_aggregation_roundrobin(
    const std::vector<std::uint64_t>& node_output_bytes,
    std::uint32_t num_reducers);

}  // namespace datanet::core
