#include "elasticmap/index.hpp"

#include <algorithm>

namespace datanet::elasticmap {

SubDatasetIndex::SubDatasetIndex(const ElasticMapArray& array) {
  for (std::uint64_t b = 0; b < array.num_blocks(); ++b) {
    for (const auto& [id, bytes] : array.block_meta(b).dominant()) {
      postings_[id].push_back(
          Posting{static_cast<std::uint32_t>(b), bytes});
      totals_[id] += bytes;
    }
  }
  // Block order is already ascending (outer loop), so postings are sorted.
}

std::span<const SubDatasetIndex::Posting> SubDatasetIndex::dominant_blocks(
    workload::SubDatasetId id) const {
  const auto it = postings_.find(id);
  if (it == postings_.end()) return {};
  return it->second;
}

std::uint64_t SubDatasetIndex::exact_total(workload::SubDatasetId id) const {
  const auto it = totals_.find(id);
  return it == totals_.end() ? 0 : it->second;
}

std::vector<std::pair<workload::SubDatasetId, std::uint64_t>>
SubDatasetIndex::top_subdatasets(std::size_t k) const {
  std::vector<std::pair<workload::SubDatasetId, std::uint64_t>> all(
      totals_.begin(), totals_.end());
  const std::size_t n = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<long>(n), all.end(),
                    [](const auto& a, const auto& b) {
                      return a.second != b.second ? a.second > b.second
                                                  : a.first < b.first;
                    });
  all.resize(n);
  return all;
}

std::uint64_t SubDatasetIndex::memory_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& [id, posts] : postings_) {
    bytes += 8 + posts.size() * sizeof(Posting);
  }
  bytes += totals_.size() * 16;
  return bytes;
}

}  // namespace datanet::elasticmap
