#include "elasticmap/live_map.hpp"

#include <stdexcept>
#include <utility>

namespace datanet::elasticmap {

namespace {

ElasticMapArray initial_map(const dfs::MiniDfs& dfs, const std::string& path,
                            const BuildOptions& build) {
  // The dataset may not exist yet (maintainer attached before the first
  // ingest): start from an empty array; extend covers it once blocks seal.
  if (!dfs.exists(path)) {
    return ElasticMapArray::from_parts(path, build, {}, {}, 0);
  }
  return ElasticMapArray::build(dfs, path, build);
}

}  // namespace

LiveMapMaintainer::LiveMapMaintainer(const dfs::MiniDfs& dfs, std::string path,
                                     LiveMapOptions options)
    : dfs_(dfs),
      path_(std::move(path)),
      options_(options),
      map_(initial_map(dfs, path_, options.build)) {
  if (options_.max_blocks_per_tick == 0) {
    throw std::invalid_argument("LiveMapMaintainer: zero blocks per tick");
  }
  if (options_.rebuild_watermark <= 0.0 || options_.rebuild_watermark > 1.0) {
    throw std::invalid_argument("LiveMapMaintainer: watermark in (0,1]");
  }
  refresh_ledger();
}

void LiveMapMaintainer::refresh_ledger() {
  ledger_.covered_blocks = map_.num_blocks();
  ledger_.covered_bytes = 0;
  ledger_.stale_blocks = 0;
  ledger_.stale_bytes = 0;
  if (dfs_.exists(path_)) {
    const auto& blocks = dfs_.blocks_of(path_);
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      const std::uint64_t bytes = dfs_.block(blocks[i]).size_bytes;
      if (i < map_.num_blocks()) {
        ledger_.covered_bytes += bytes;
      } else {
        ++ledger_.stale_blocks;
        ledger_.stale_bytes += bytes;
      }
    }
  }
  const std::uint64_t total = ledger_.covered_bytes + ledger_.stale_bytes;
  ledger_.estimated_chi_drift =
      total == 0 ? 0.0
                 : static_cast<double>(ledger_.stale_bytes) /
                       static_cast<double>(total);
  ledger_.rebuild_recommended =
      ledger_.estimated_chi_drift > options_.rebuild_watermark;
}

std::uint64_t LiveMapMaintainer::scan() {
  const std::uint64_t epoch = dfs_.mutation_epoch();
  if (scanned_ && epoch == scanned_epoch_) return ledger_.stale_blocks;
  refresh_ledger();
  scanned_epoch_ = epoch;
  scanned_ = true;
  ++ledger_.scans;
  return ledger_.stale_blocks;
}

std::uint64_t LiveMapMaintainer::tick() {
  scan();
  ++ledger_.ticks;
  if (ledger_.stale_blocks == 0) return 0;
  const std::uint64_t applied = map_.extend(dfs_, options_.max_blocks_per_tick);
  ledger_.deltas_applied += applied;
  refresh_ledger();
  scanned_epoch_ = dfs_.mutation_epoch();
  return applied;
}

std::uint64_t LiveMapMaintainer::drain() {
  std::uint64_t ticks = 0;
  while (ticks < options_.max_drain_ticks) {
    if (scan() == 0) break;
    ++ticks;
    if (tick() == 0) break;  // no progress (nothing extendable)
  }
  return ticks;
}

std::uint64_t LiveMapMaintainer::full_rebuild() {
  map_ = initial_map(dfs_, path_, options_.build);
  ++ledger_.full_rebuilds;
  refresh_ledger();
  scanned_epoch_ = dfs_.mutation_epoch();
  scanned_ = true;
  return map_.num_blocks();
}

}  // namespace datanet::elasticmap
