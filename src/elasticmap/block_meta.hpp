#pragma once
// Per-block ElasticMap entry (Section III-A, Figure 3): exact ⟨id, size⟩
// records for the block's dominant sub-datasets in a hash map, plus a Bloom
// filter marking the presence of every non-dominant sub-dataset. `delta` is
// the block's approximate per-sub-dataset size for bloom-resident entries —
// the paper uses the smallest hash-map size value (Eq. 6).

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "bloom/bloom_filter.hpp"
#include "workload/record.hpp"

namespace datanet::elasticmap {

class BlockMeta {
 public:
  // `dominant`: exact sizes kept in the hash map. `tail_ids` go into a Bloom
  // filter sized for their count at `bloom_fpp`. `delta` is the size estimate
  // returned for bloom hits.
  BlockMeta(std::unordered_map<workload::SubDatasetId, std::uint64_t> dominant,
            const std::vector<workload::SubDatasetId>& tail_ids, double bloom_fpp,
            std::uint64_t delta);

  // Exact size if the id is dominant in this block.
  [[nodiscard]] std::optional<std::uint64_t> exact_size(
      workload::SubDatasetId id) const;

  // True if the id *may* be present as a non-dominant sub-dataset.
  [[nodiscard]] bool maybe_in_tail(workload::SubDatasetId id) const;

  // Combined estimate: exact size, or delta on a bloom hit, or 0.
  // `was_exact` (optional out) reports which path was taken.
  [[nodiscard]] std::uint64_t estimate_size(workload::SubDatasetId id,
                                            bool* was_exact = nullptr) const;

  [[nodiscard]] std::uint64_t delta() const noexcept { return delta_; }
  [[nodiscard]] std::uint64_t num_dominant() const noexcept {
    return dominant_.size();
  }
  [[nodiscard]] std::uint64_t num_tail() const noexcept {
    return bloom_.insert_count();
  }

  // Measured meta-data footprint: serialized size in bytes.
  [[nodiscard]] std::uint64_t memory_bytes() const;

  [[nodiscard]] const std::unordered_map<workload::SubDatasetId, std::uint64_t>&
  dominant() const noexcept {
    return dominant_;
  }
  [[nodiscard]] const bloom::BloomFilter& tail_filter() const noexcept {
    return bloom_;
  }

  // Binary round-trip (the structure the master node would persist).
  [[nodiscard]] std::string serialize() const;
  static BlockMeta deserialize(std::string_view bytes);

 private:
  BlockMeta(std::unordered_map<workload::SubDatasetId, std::uint64_t> dominant,
            bloom::BloomFilter bloom, std::uint64_t delta);

  std::unordered_map<workload::SubDatasetId, std::uint64_t> dominant_;
  bloom::BloomFilter bloom_;
  std::uint64_t delta_;
};

}  // namespace datanet::elasticmap
