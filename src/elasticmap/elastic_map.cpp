#include "elasticmap/elastic_map.hpp"

#include <algorithm>
#include <limits>
#include <optional>
#include <stdexcept>
#include <thread>

#include "common/thread_pool.hpp"

namespace datanet::elasticmap {

ElasticMapArray::ElasticMapArray(std::string path, BuildOptions options)
    : path_(std::move(path)), options_(options) {}

namespace {

SeparatorOptions resolve_separator(const BuildOptions& options,
                                   const dfs::MiniDfs& dfs) {
  SeparatorOptions sep = options.separator;
  if (sep.bucket_unit == 0) {
    sep = SeparatorOptions::for_block_size(dfs.options().block_size);
  }
  return sep;
}

// Single scan of one block: accumulate S_j and bucket counts, separate
// dominant from tail, and build the BlockMeta. `scanned_bytes` (out)
// receives the block's total record bytes.
BlockMeta scan_block(const dfs::MiniDfs& dfs, dfs::BlockId bid,
                     const SeparatorOptions& sep, const BuildOptions& options,
                     std::uint64_t* scanned_bytes) {
  DominantSeparator separator(sep);
  workload::for_each_record(dfs.read_block(bid),
                            [&](const workload::RecordView& rv) {
                              separator.add(rv.id(), rv.encoded_size());
                            });
  *scanned_bytes = separator.total_bytes();

  const std::uint64_t threshold = separator.threshold_for_fraction(options.alpha);

  std::unordered_map<workload::SubDatasetId, std::uint64_t> dominant;
  std::vector<workload::SubDatasetId> tail;
  std::uint64_t min_dominant = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t tail_bytes = 0;
  for (const auto& [id, size] : separator.sizes()) {
    if (threshold == 0 || size >= threshold) {
      dominant.emplace(id, size);
      min_dominant = std::min(min_dominant, size);
    } else {
      tail.push_back(id);
      tail_bytes += size;
    }
  }
  // Delta (Eq. 6): the paper uses the smallest size value recorded in the
  // hash map. That is a per-entry upper bound, but with scaled-down blocks
  // it overestimates the tail mass badly, so we cap it at twice the
  // block's average tail size — still an overestimate for the typical
  // tail entry (accuracy falls as alpha shrinks, as in Table II) while
  // keeping the aggregate within a factor of the true tail mass.
  std::uint64_t delta = dominant.empty() ? threshold : min_dominant;
  if (!tail.empty()) {
    const std::uint64_t avg_tail = tail_bytes / tail.size();
    delta = std::min<std::uint64_t>(delta, std::max<std::uint64_t>(2 * avg_tail, 1));
  }
  return BlockMeta(std::move(dominant), tail, options.bloom_fpp, delta);
}

}  // namespace

ElasticMapArray ElasticMapArray::build(const dfs::MiniDfs& dfs,
                                       const std::string& path,
                                       const BuildOptions& options) {
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    throw std::invalid_argument("ElasticMapArray: alpha in [0,1]");
  }
  ElasticMapArray out(path, options);
  const SeparatorOptions sep = resolve_separator(options, dfs);
  const auto& blocks = dfs.blocks_of(path);
  out.block_ids_ = blocks;

  const std::uint32_t threads =
      options.build_threads != 0
          ? options.build_threads
          : std::max(1u, std::thread::hardware_concurrency());
  if (threads <= 1 || blocks.size() <= 1) {
    out.metas_.reserve(blocks.size());
    for (const dfs::BlockId bid : blocks) {
      std::uint64_t scanned = 0;
      out.metas_.push_back(scan_block(dfs, bid, sep, options, &scanned));
      out.raw_bytes_ += scanned;
    }
    return out;
  }

  // Parallel scan: blocks are independent, so results land in preallocated
  // slots and the outcome is identical to the serial path.
  std::vector<std::optional<BlockMeta>> slots(blocks.size());
  std::vector<std::uint64_t> scanned(blocks.size(), 0);
  {
    common::ThreadPool pool(threads);
    common::parallel_for(pool, blocks.size(), [&](std::size_t i) {
      slots[i] = scan_block(dfs, blocks[i], sep, options, &scanned[i]);
    });
  }
  out.metas_.reserve(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    out.metas_.push_back(std::move(*slots[i]));
    out.raw_bytes_ += scanned[i];
  }
  return out;
}

ElasticMapArray ElasticMapArray::from_parts(std::string path, BuildOptions options,
                                            std::vector<BlockMeta> metas,
                                            std::vector<dfs::BlockId> block_ids,
                                            std::uint64_t raw_bytes) {
  if (metas.size() != block_ids.size()) {
    throw std::invalid_argument("from_parts: metas/block_ids size mismatch");
  }
  ElasticMapArray out(std::move(path), options);
  out.metas_ = std::move(metas);
  out.block_ids_ = std::move(block_ids);
  out.raw_bytes_ = raw_bytes;
  return out;
}

std::uint64_t ElasticMapArray::extend(const dfs::MiniDfs& dfs) {
  return extend(dfs, ~0ull);
}

std::uint64_t ElasticMapArray::extend(const dfs::MiniDfs& dfs,
                                      std::uint64_t max_blocks) {
  const auto& blocks = dfs.blocks_of(path_);
  if (blocks.size() < metas_.size()) {
    throw std::invalid_argument("extend: file shrank since the array was built");
  }
  for (std::size_t i = 0; i < metas_.size(); ++i) {
    if (blocks[i] != block_ids_[i]) {
      throw std::invalid_argument("extend: covered block prefix changed");
    }
  }
  const SeparatorOptions sep = resolve_separator(options_, dfs);
  std::uint64_t added = 0;
  for (std::size_t i = metas_.size(); i < blocks.size() && added < max_blocks;
       ++i) {
    std::uint64_t scanned = 0;
    metas_.push_back(scan_block(dfs, blocks[i], sep, options_, &scanned));
    block_ids_.push_back(blocks[i]);
    raw_bytes_ += scanned;
    ++added;
  }
  return added;
}

const BlockMeta& ElasticMapArray::block_meta(std::uint64_t block_index) const {
  if (block_index >= metas_.size()) throw std::out_of_range("block_meta");
  return metas_[block_index];
}

dfs::BlockId ElasticMapArray::block_id(std::uint64_t block_index) const {
  if (block_index >= block_ids_.size()) throw std::out_of_range("block_id");
  return block_ids_[block_index];
}

std::vector<BlockShare> ElasticMapArray::distribution(
    workload::SubDatasetId id) const {
  std::vector<BlockShare> out;
  out.reserve(metas_.size());
  for (std::uint64_t i = 0; i < metas_.size(); ++i) {
    bool exact = false;
    const std::uint64_t est = metas_[i].estimate_size(id, &exact);
    if (est == 0 && !exact) continue;  // block demonstrably irrelevant
    out.push_back(BlockShare{.block_index = i,
                             .block_id = block_ids_[i],
                             .estimated_bytes = est,
                             .exact = exact});
  }
  return out;
}

std::uint64_t ElasticMapArray::estimate_total_size(
    workload::SubDatasetId id) const {
  // Sum of the per-block shares: each block is probed exactly once (hash map
  // lookup or Bloom probe) and the total is consistent with distribution()
  // by construction — blocks the distribution omits contribute zero.
  std::uint64_t total = 0;
  for (const BlockShare& share : distribution(id)) total += share.estimated_bytes;
  return total;
}

std::uint64_t ElasticMapArray::memory_bytes() const {
  std::uint64_t total = 0;
  for (const auto& meta : metas_) total += meta.memory_bytes();
  return total;
}

double ElasticMapArray::representation_ratio() const {
  const std::uint64_t mem = memory_bytes();
  return mem == 0 ? 0.0
                  : static_cast<double>(raw_bytes_) / static_cast<double>(mem);
}

double ElasticMapArray::accuracy_chi(
    const std::vector<std::pair<workload::SubDatasetId, std::uint64_t>>&
        actual_totals) const {
  double estimated = 0.0;
  double actual = 0.0;
  for (const auto& [id, actual_size] : actual_totals) {
    estimated += static_cast<double>(estimate_total_size(id));
    actual += static_cast<double>(actual_size);
  }
  if (actual == 0.0) return 1.0;
  return 1.0 - (estimated - actual) / actual;
}

}  // namespace datanet::elasticmap
