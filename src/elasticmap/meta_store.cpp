#include "elasticmap/meta_store.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "common/hash.hpp"

namespace datanet::elasticmap {

namespace {

constexpr std::uint64_t kMagic = 0x44417441534e4554ULL;  // "DAtASNET"
// v1: no blob checksums. v2 appends a CRC32 to each index entry and is what
// save() writes; both versions load.
constexpr std::uint64_t kVersion = 2;

std::uint64_t checked_version(std::uint64_t v) {
  if (v != 1 && v != kVersion) {
    throw MetaStoreCorruptError("MetaStore: bad version");
  }
  return v;
}

void put_u64(std::ofstream& f, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  f.write(buf, 8);
}

void put_f64(std::ofstream& f, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  put_u64(f, bits);
}

std::uint64_t get_u64(std::istream& f) {
  char buf[8];
  f.read(buf, 8);
  if (!f) throw MetaStoreCorruptError("MetaStore: truncated file");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[i])) << (8 * i);
  }
  return v;
}

double get_f64(std::istream& f) {
  const std::uint64_t bits = get_u64(f);
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

// Bytes between the stream's current position and end-of-file. Counts and
// lengths read from the file are untrusted: every one is checked against
// this before it sizes an allocation, so a corrupt or truncated store fails
// with a typed error instead of a multi-gigabyte resize / bad_alloc.
std::uint64_t bytes_remaining(std::istream& f) {
  const auto pos = f.tellg();
  f.seekg(0, std::ios::end);
  const auto end = f.tellg();
  f.seekg(pos);
  if (pos < 0 || end < pos) throw MetaStoreCorruptError("MetaStore: truncated file");
  return static_cast<std::uint64_t>(end - pos);
}

// Per-entry index footprint: global_index + block_id + offset + length,
// plus a CRC32 (stored widened to u64) in v2.
constexpr std::uint64_t index_entry_bytes(std::uint64_t version) {
  return version >= 2 ? 40 : 32;
}

struct StoredEntry {
  std::uint64_t global_index;
  dfs::BlockId block_id;
  std::string blob;
};

// Write one store file holding the given (already serialized) entries, in
// the requested format version (v1 drops the per-entry CRC32).
void write_store(const std::string& file_path, const std::string& dataset_path,
                 std::uint64_t raw_bytes, const BuildOptions& options,
                 const std::vector<StoredEntry>& entries,
                 std::uint64_t version = kVersion) {
  // Crash atomicity: build the file beside the target and rename over it, so
  // the live store is never open for writing and a crash mid-save leaves the
  // previous version intact.
  const std::string tmp_path = file_path + ".tmp";
  {
    std::ofstream f(tmp_path, std::ios::binary | std::ios::trunc);
    if (!f) throw std::runtime_error("MetaStore: cannot open " + tmp_path);
    put_u64(f, kMagic);
    put_u64(f, checked_version(version));
    put_u64(f, raw_bytes);
    put_f64(f, options.alpha);
    put_f64(f, options.bloom_fpp);
    put_u64(f, dataset_path.size());
    f.write(dataset_path.data(),
            static_cast<std::streamsize>(dataset_path.size()));
    put_u64(f, entries.size());

    // Index: (global_index, block_id, offset, length, crc32) per entry.
    // Offsets are relative to the end of the index.
    std::uint64_t offset = 0;
    for (const auto& e : entries) {
      put_u64(f, e.global_index);
      put_u64(f, e.block_id);
      put_u64(f, offset);
      put_u64(f, e.blob.size());
      if (version >= 2) put_u64(f, common::crc32(e.blob));
      offset += e.blob.size();
    }
    for (const auto& e : entries) {
      f.write(e.blob.data(), static_cast<std::streamsize>(e.blob.size()));
    }
    f.flush();
    if (!f) throw std::runtime_error("MetaStore: write failed for " + tmp_path);
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, file_path, ec);
  if (ec) throw std::runtime_error("MetaStore: rename failed for " + file_path);
}

struct StoreContents {
  std::string dataset_path;
  std::uint64_t raw_bytes;
  BuildOptions options;
  std::vector<StoredEntry> entries;
};

StoreContents read_store(const std::string& file_path) {
  std::ifstream f(file_path, std::ios::binary);
  if (!f) throw std::runtime_error("MetaStore: cannot open " + file_path);
  if (get_u64(f) != kMagic) throw MetaStoreCorruptError("MetaStore: bad magic");
  const std::uint64_t version = checked_version(get_u64(f));
  StoreContents out;
  out.raw_bytes = get_u64(f);
  out.options.alpha = get_f64(f);
  out.options.bloom_fpp = get_f64(f);
  const std::uint64_t path_len = get_u64(f);
  if (path_len > bytes_remaining(f)) {
    throw MetaStoreCorruptError("MetaStore: corrupt path length");
  }
  out.dataset_path.resize(path_len);
  f.read(out.dataset_path.data(), static_cast<std::streamsize>(path_len));
  if (!f) throw MetaStoreCorruptError("MetaStore: truncated file");
  const std::uint64_t n = get_u64(f);
  if (n > bytes_remaining(f) / index_entry_bytes(version)) {
    throw MetaStoreCorruptError("MetaStore: corrupt entry count");
  }
  struct RawIdx {
    std::uint64_t global, bid, off, len;
    std::uint32_t crc;
  };
  std::vector<RawIdx> idx(n);
  for (auto& e : idx) {
    e.global = get_u64(f);
    e.bid = get_u64(f);
    e.off = get_u64(f);
    e.len = get_u64(f);
    e.crc = version >= 2 ? static_cast<std::uint32_t>(get_u64(f)) : 0;
  }
  const auto blobs_begin = f.tellg();
  const std::uint64_t blob_region = bytes_remaining(f);
  out.entries.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    if (idx[i].len > blob_region || idx[i].off > blob_region - idx[i].len) {
      throw MetaStoreCorruptError("MetaStore: corrupt blob range");
    }
    out.entries[i].global_index = idx[i].global;
    out.entries[i].block_id = idx[i].bid;
    out.entries[i].blob.resize(idx[i].len);
    f.seekg(blobs_begin + static_cast<std::streamoff>(idx[i].off));
    f.read(out.entries[i].blob.data(), static_cast<std::streamsize>(idx[i].len));
    if (!f) throw MetaStoreCorruptError("MetaStore: truncated blob");
    if (version >= 2 && common::crc32(out.entries[i].blob) != idx[i].crc) {
      throw MetaStoreCorruptError("MetaStore: blob checksum mismatch");
    }
  }
  return out;
}

ElasticMapArray assemble(StoreContents&& contents) {
  std::sort(contents.entries.begin(), contents.entries.end(),
            [](const StoredEntry& a, const StoredEntry& b) {
              return a.global_index < b.global_index;
            });
  std::vector<BlockMeta> metas;
  std::vector<dfs::BlockId> ids;
  metas.reserve(contents.entries.size());
  ids.reserve(contents.entries.size());
  for (std::uint64_t i = 0; i < contents.entries.size(); ++i) {
    if (contents.entries[i].global_index != i) {
      throw MetaStoreCorruptError("MetaStore: missing block in store");
    }
    metas.push_back(BlockMeta::deserialize(contents.entries[i].blob));
    ids.push_back(contents.entries[i].block_id);
  }
  return ElasticMapArray::from_parts(std::move(contents.dataset_path),
                                     contents.options, std::move(metas),
                                     std::move(ids), contents.raw_bytes);
}

std::vector<StoredEntry> serialize_all(const ElasticMapArray& array) {
  std::vector<StoredEntry> entries(array.num_blocks());
  for (std::uint64_t i = 0; i < array.num_blocks(); ++i) {
    entries[i].global_index = i;
    entries[i].block_id = array.block_id(i);
    entries[i].blob = array.block_meta(i).serialize();
  }
  return entries;
}

}  // namespace

void MetaStore::save(const ElasticMapArray& array, const std::string& file_path) {
  write_store(file_path, array.path(), array.raw_bytes(), array.options(),
              serialize_all(array));
}

ElasticMapArray MetaStore::load(const std::string& file_path) {
  return assemble(read_store(file_path));
}

void MetaStore::rewrite_as_v1(const std::string& file_path) {
  auto contents = read_store(file_path);  // verifies CRCs before dropping them
  write_store(file_path, contents.dataset_path, contents.raw_bytes,
              contents.options, contents.entries, /*version=*/1);
}

MetaStore::Reader::Reader(const std::string& file_path)
    : file_(file_path, std::ios::binary) {
  if (!file_) throw std::runtime_error("MetaStore::Reader: cannot open " + file_path);
  if (get_u64(file_) != kMagic) throw MetaStoreCorruptError("Reader: bad magic");
  version_ = checked_version(get_u64(file_));
  raw_bytes_ = get_u64(file_);
  (void)get_f64(file_);  // alpha
  (void)get_f64(file_);  // fpp
  const std::uint64_t path_len = get_u64(file_);
  if (path_len > bytes_remaining(file_)) {
    throw MetaStoreCorruptError("Reader: corrupt path length");
  }
  dataset_path_.resize(path_len);
  file_.read(dataset_path_.data(), static_cast<std::streamsize>(path_len));
  if (!file_) throw MetaStoreCorruptError("Reader: truncated file");
  const std::uint64_t n = get_u64(file_);
  if (n > bytes_remaining(file_) / index_entry_bytes(version_)) {
    throw MetaStoreCorruptError("Reader: corrupt entry count");
  }
  index_.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    auto& e = index_[i];
    const std::uint64_t global = get_u64(file_);
    e.block_id = get_u64(file_);
    e.offset = get_u64(file_);
    e.length = get_u64(file_);
    e.crc = version_ >= 2 ? static_cast<std::uint32_t>(get_u64(file_)) : 0;
    // The lazy reader addresses blocks positionally, so it requires a full
    // (non-sharded) store whose entries are in global order.
    if (global != i) throw MetaStoreCorruptError("Reader: store is sharded/unordered");
  }
  blobs_begin_ = file_.tellg();
  const std::uint64_t blob_region = bytes_remaining(file_);
  for (const auto& e : index_) {
    if (e.length > blob_region || e.offset > blob_region - e.length) {
      throw MetaStoreCorruptError("Reader: corrupt blob range");
    }
  }
}

BlockMeta MetaStore::Reader::load_block(std::uint64_t block_index) {
  if (block_index >= index_.size()) throw std::out_of_range("Reader::load_block");
  const auto& e = index_[block_index];
  std::string blob(e.length, '\0');
  file_.seekg(blobs_begin_ + static_cast<std::streamoff>(e.offset));
  file_.read(blob.data(), static_cast<std::streamsize>(e.length));
  if (!file_) throw MetaStoreCorruptError("Reader: truncated blob");
  if (version_ >= 2 && common::crc32(blob) != e.crc) {
    throw MetaStoreCorruptError("Reader: blob checksum mismatch");
  }
  return BlockMeta::deserialize(blob);
}

dfs::BlockId MetaStore::Reader::block_id(std::uint64_t block_index) const {
  if (block_index >= index_.size()) throw std::out_of_range("Reader::block_id");
  return index_[block_index].block_id;
}

std::string ShardedMetaStore::shard_file(const std::string& prefix,
                                         std::uint32_t shard) {
  return prefix + ".shard" + std::to_string(shard);
}

void ShardedMetaStore::save(const ElasticMapArray& array, const std::string& prefix,
                            std::uint32_t num_shards) {
  if (num_shards == 0) throw std::invalid_argument("ShardedMetaStore: 0 shards");
  const auto all = serialize_all(array);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    std::vector<StoredEntry> shard_entries;
    for (std::uint64_t i = s; i < all.size(); i += num_shards) {
      shard_entries.push_back(all[i]);
    }
    write_store(shard_file(prefix, s), array.path(), array.raw_bytes(),
                array.options(), shard_entries);
  }
}

void ShardedMetaStore::save(const ElasticMapArray& array,
                            const std::string& prefix,
                            const dfs::HashRing& ring) {
  auto all = serialize_all(array);
  std::vector<std::vector<StoredEntry>> per_shard(ring.num_shards());
  for (auto& e : all) {
    per_shard[ring.shard_of_block(e.block_id)].push_back(std::move(e));
  }
  for (std::uint32_t s = 0; s < ring.num_shards(); ++s) {
    write_store(shard_file(prefix, s), array.path(), array.raw_bytes(),
                array.options(), per_shard[s]);
  }
}

ElasticMapArray ShardedMetaStore::load(const std::string& prefix,
                                       std::uint32_t num_shards) {
  if (num_shards == 0) throw std::invalid_argument("ShardedMetaStore: 0 shards");
  StoreContents merged;
  bool first = true;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    auto part = read_store(shard_file(prefix, s));
    if (first) {
      merged.dataset_path = part.dataset_path;
      merged.raw_bytes = part.raw_bytes;
      merged.options = part.options;
      first = false;
    } else if (part.dataset_path != merged.dataset_path ||
               part.raw_bytes != merged.raw_bytes ||
               part.options.alpha != merged.options.alpha ||
               part.options.bloom_fpp != merged.options.bloom_fpp) {
      // Every shard carries the same header; any disagreement means the
      // files were mixed from different builds.
      throw std::runtime_error("ShardedMetaStore: shards disagree on dataset");
    }
    for (auto& e : part.entries) merged.entries.push_back(std::move(e));
  }
  return assemble(std::move(merged));
}

}  // namespace datanet::elasticmap
