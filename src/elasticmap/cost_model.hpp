#pragma once
// Equation 5 of the paper: expected ElasticMap memory for one block that
// contains m sub-datasets, of which a fraction alpha goes to the hash map
// (k-bit records at load factor delta) and the rest to a Bloom filter with
// false-positive rate eps:
//
//   Cost(bits) = m * (1 - alpha) * (-ln(eps) / ln^2(2)) + m * alpha * k / delta

#include <cstdint>

namespace datanet::elasticmap {

struct CostModelParams {
  double alpha = 0.3;          // fraction of sub-datasets kept exactly
  double bloom_fpp = 0.01;     // eps
  double hashmap_record_bits = 96.0;  // k: id (64) + size (32) is typical
  double hashmap_load_factor = 0.7;   // delta
};

// Expected meta-data bits for a block holding `num_subdatasets` sub-datasets.
[[nodiscard]] double elasticmap_cost_bits(std::uint64_t num_subdatasets,
                                          const CostModelParams& p);

// Same in bytes (rounded up).
[[nodiscard]] std::uint64_t elasticmap_cost_bytes(std::uint64_t num_subdatasets,
                                                  const CostModelParams& p);

// Given a per-block memory budget, the largest alpha the model affords
// (clamped to [0, 1]).
[[nodiscard]] double alpha_for_budget(std::uint64_t num_subdatasets,
                                      std::uint64_t budget_bytes,
                                      const CostModelParams& p);

}  // namespace datanet::elasticmap
