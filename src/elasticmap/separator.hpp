#pragma once
// Single-scan dominant/non-dominant separation (Section III-B). While a block
// is scanned, per-sub-dataset byte counts S_j are accumulated; sizes are
// simultaneously counted into Fibonacci-spaced buckets (bucket/count-sort
// style, O(m) — no sorting). After the scan, `threshold_for_fraction` walks
// the bucket counts from the top to find the smallest size cutoff that keeps
// at most an alpha-fraction of sub-datasets in the hash map.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "stats/histogram.hpp"
#include "workload/record.hpp"

namespace datanet::elasticmap {

struct SeparatorOptions {
  // Bucket geometry: Fibonacci multiples of `bucket_unit` up to
  // `bucket_max`. The paper uses 1 KiB..32 KiB for 64 MiB blocks, i.e.
  // unit ~= block_size / 65536 and max ~= block_size / 2048.
  std::uint64_t bucket_unit = 64;     // bytes
  std::uint64_t bucket_max = 16384;   // bytes

  // Derive unit/max from a block size with the paper's 64 MiB ratios.
  static SeparatorOptions for_block_size(std::uint64_t block_size_bytes);
};

class DominantSeparator {
 public:
  explicit DominantSeparator(SeparatorOptions options);

  // Accumulate `bytes` for sub-dataset `id`; bucket counts are adjusted
  // incrementally (old bucket --, new bucket ++), exactly the single-scan
  // update the paper describes.
  void add(workload::SubDatasetId id, std::uint64_t bytes);

  // Smallest size threshold T such that |{j : S_j >= T}| <= alpha * m, where
  // m is the number of distinct sub-datasets seen. Returns bucket lower
  // bounds only (granularity of the method). alpha in [0, 1]; alpha = 1
  // keeps everything (threshold 0).
  [[nodiscard]] std::uint64_t threshold_for_fraction(double alpha) const;

  // Number of sub-datasets with S_j >= threshold.
  [[nodiscard]] std::uint64_t count_at_or_above(std::uint64_t threshold) const;

  [[nodiscard]] const std::unordered_map<workload::SubDatasetId, std::uint64_t>&
  sizes() const noexcept {
    return sizes_;
  }
  [[nodiscard]] std::uint64_t num_subdatasets() const noexcept {
    return sizes_.size();
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_; }

  // Bucket lower-bound edges (ascending) and the per-bucket sub-dataset
  // counts; exposed for tests and the bucket-geometry ablation bench.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const noexcept {
    return counts_;
  }

 private:
  [[nodiscard]] std::size_t bucket_of(std::uint64_t bytes) const;

  std::vector<std::uint64_t> edges_;   // ascending bucket lower bounds (> 0)
  std::vector<std::uint64_t> counts_;  // edges_.size() + 1 buckets
  std::unordered_map<workload::SubDatasetId, std::uint64_t> sizes_;
  std::uint64_t total_ = 0;
};

}  // namespace datanet::elasticmap
