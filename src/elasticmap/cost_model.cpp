#include "elasticmap/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace datanet::elasticmap {

namespace {
constexpr double kLn2Sq = 0.4804530139182014;  // ln^2(2)

void validate(const CostModelParams& p) {
  if (p.alpha < 0.0 || p.alpha > 1.0) throw std::invalid_argument("alpha in [0,1]");
  if (!(p.bloom_fpp > 0.0) || p.bloom_fpp >= 1.0) {
    throw std::invalid_argument("bloom_fpp in (0,1)");
  }
  if (!(p.hashmap_record_bits > 0.0)) throw std::invalid_argument("k > 0");
  if (!(p.hashmap_load_factor > 0.0) || p.hashmap_load_factor > 1.0) {
    throw std::invalid_argument("load factor in (0,1]");
  }
}
}  // namespace

double elasticmap_cost_bits(std::uint64_t num_subdatasets,
                            const CostModelParams& p) {
  validate(p);
  const double m = static_cast<double>(num_subdatasets);
  const double bloom_bits = m * (1.0 - p.alpha) * (-std::log(p.bloom_fpp) / kLn2Sq);
  const double map_bits = m * p.alpha * p.hashmap_record_bits / p.hashmap_load_factor;
  return bloom_bits + map_bits;
}

std::uint64_t elasticmap_cost_bytes(std::uint64_t num_subdatasets,
                                    const CostModelParams& p) {
  return static_cast<std::uint64_t>(
      std::ceil(elasticmap_cost_bits(num_subdatasets, p) / 8.0));
}

double alpha_for_budget(std::uint64_t num_subdatasets, std::uint64_t budget_bytes,
                        const CostModelParams& p) {
  CostModelParams lo = p;
  lo.alpha = 0.0;
  CostModelParams hi = p;
  hi.alpha = 1.0;
  const double budget_bits = static_cast<double>(budget_bytes) * 8.0;
  if (elasticmap_cost_bits(num_subdatasets, lo) >= budget_bits) return 0.0;
  if (elasticmap_cost_bits(num_subdatasets, hi) <= budget_bits) return 1.0;
  // Cost is linear in alpha; solve directly.
  const double c0 = elasticmap_cost_bits(num_subdatasets, lo);
  const double c1 = elasticmap_cost_bits(num_subdatasets, hi);
  return std::clamp((budget_bits - c0) / (c1 - c0), 0.0, 1.0);
}

}  // namespace datanet::elasticmap
