#pragma once
// ElasticMapArray: the DataNet meta-data structure over the n blocks of a
// stored dataset (Figure 3) — one BlockMeta per block, built in a single
// scan of the raw data. This is the structure the master node keeps and the
// distribution-aware scheduler queries.

#include <cstdint>
#include <string>
#include <vector>

#include "dfs/mini_dfs.hpp"
#include "elasticmap/block_meta.hpp"
#include "elasticmap/separator.hpp"
#include "workload/record.hpp"

namespace datanet::elasticmap {

struct BuildOptions {
  // Fraction of each block's sub-datasets stored exactly in the hash map
  // (the paper's alpha; evaluation default 0.3).
  double alpha = 0.3;
  double bloom_fpp = 0.01;
  // Bucket geometry; zero unit means "derive from the DFS block size with
  // the paper's 64 MiB ratios" (SeparatorOptions::for_block_size).
  SeparatorOptions separator{.bucket_unit = 0, .bucket_max = 0};
  // Worker threads for the build scan. Blocks are independent, so the
  // result is bit-identical at any thread count. 1 = serial (default),
  // 0 = hardware concurrency.
  std::uint32_t build_threads = 1;
};

// One block's contribution to a sub-dataset's distribution, as estimated
// from the ElasticMap.
struct BlockShare {
  std::uint64_t block_index = 0;  // ordinal within the file
  dfs::BlockId block_id = 0;
  std::uint64_t estimated_bytes = 0;
  bool exact = false;  // true: hash map, false: bloom-filter delta estimate
};

class ElasticMapArray {
 public:
  // Single scan over every block of `path` in `dfs` (O(total records)).
  static ElasticMapArray build(const dfs::MiniDfs& dfs, const std::string& path,
                               const BuildOptions& options);

  // Reassemble from previously persisted parts (see MetaStore).
  static ElasticMapArray from_parts(std::string path, BuildOptions options,
                                    std::vector<BlockMeta> metas,
                                    std::vector<dfs::BlockId> block_ids,
                                    std::uint64_t raw_bytes);

  // Incremental maintenance for append-only logs (Flume-style ingestion):
  // scan only the blocks appended to `path` since this array was built.
  // Returns the number of new blocks incorporated. The dfs file must have
  // the already-covered blocks as an unchanged prefix.
  std::uint64_t extend(const dfs::MiniDfs& dfs);

  // Rate-limited variant: incorporate at most `max_blocks` of the appended
  // blocks (oldest first) — the LiveMapMaintainer's tick primitive. Same
  // prefix validation; max_blocks == 0 incorporates nothing.
  std::uint64_t extend(const dfs::MiniDfs& dfs, std::uint64_t max_blocks);

  [[nodiscard]] std::uint64_t num_blocks() const noexcept { return metas_.size(); }
  [[nodiscard]] const BlockMeta& block_meta(std::uint64_t block_index) const;
  [[nodiscard]] dfs::BlockId block_id(std::uint64_t block_index) const;
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

  // Estimated per-block distribution of a sub-dataset; blocks with no
  // hash-map entry and no bloom hit are omitted — the I/O-skipping
  // optimization of Section V-B-1.
  [[nodiscard]] std::vector<BlockShare> distribution(
      workload::SubDatasetId id) const;

  // Equation 6: Z = sum_{b in tau1} |s ∩ b| + delta * |tau2|.
  [[nodiscard]] std::uint64_t estimate_total_size(workload::SubDatasetId id) const;

  // Total measured meta-data footprint in bytes.
  [[nodiscard]] std::uint64_t memory_bytes() const;

  // Size ratio of raw data to meta-data (Table II, last column).
  [[nodiscard]] double representation_ratio() const;

  // Accuracy χ (Section V-B-1): 1 - (estimated_total - actual_total)/actual,
  // where the estimate sums Eq. 6 over all sub-datasets. Needs the exact
  // per-id totals from a GroundTruth-style oracle.
  [[nodiscard]] double accuracy_chi(
      const std::vector<std::pair<workload::SubDatasetId, std::uint64_t>>&
          actual_totals) const;

  [[nodiscard]] std::uint64_t raw_bytes() const noexcept { return raw_bytes_; }
  [[nodiscard]] const BuildOptions& options() const noexcept { return options_; }

 private:
  ElasticMapArray(std::string path, BuildOptions options);

  std::string path_;
  BuildOptions options_;
  std::vector<BlockMeta> metas_;
  std::vector<dfs::BlockId> block_ids_;
  std::uint64_t raw_bytes_ = 0;
};

}  // namespace datanet::elasticmap
