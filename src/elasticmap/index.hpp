#pragma once
// Inverted index over an ElasticMapArray: sub-dataset id -> the blocks where
// it is *dominant* (hash-map resident), plus its exact byte total across
// those blocks. distribution()/estimate_total_size() walk every BlockMeta
// (O(n) per query); the index answers the common "where is this sub-dataset
// concentrated?" and "what are the biggest sub-datasets?" queries in O(hits)
// — the access pattern of an interactive master node serving many analyses
// over one dataset.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "elasticmap/elastic_map.hpp"

namespace datanet::elasticmap {

class SubDatasetIndex {
 public:
  explicit SubDatasetIndex(const ElasticMapArray& array);

  struct Posting {
    std::uint32_t block_index;
    std::uint64_t bytes;  // exact |b ∩ s|
  };

  // Blocks where `id` is dominant, ascending block order; empty if the id is
  // nowhere dominant (it may still be bloom-resident).
  [[nodiscard]] std::span<const Posting> dominant_blocks(
      workload::SubDatasetId id) const;

  // Total exact bytes recorded for `id` (the tau_1 term of Eq. 6).
  [[nodiscard]] std::uint64_t exact_total(workload::SubDatasetId id) const;

  // The `k` sub-datasets with the largest exact totals, descending.
  [[nodiscard]] std::vector<std::pair<workload::SubDatasetId, std::uint64_t>>
  top_subdatasets(std::size_t k) const;

  [[nodiscard]] std::size_t num_subdatasets() const noexcept {
    return totals_.size();
  }
  [[nodiscard]] std::uint64_t memory_bytes() const;

 private:
  std::unordered_map<workload::SubDatasetId, std::vector<Posting>> postings_;
  std::unordered_map<workload::SubDatasetId, std::uint64_t> totals_;
};

}  // namespace datanet::elasticmap
