#pragma once
// Persistence for ElasticMap meta-data (the paper's Section V-B-1 note:
// "as the problem size becomes extremely large, the meta-data ... can be
// stored into a database or distributed among multiple machines").
//
// Two layers:
//  * MetaStore — a single file: header, per-block (offset, length) index,
//    then serialized BlockMetas. Supports eager full load and a lazy Reader
//    that deserializes one block's meta on demand (the "does not fit in the
//    master's memory" regime).
//  * ShardedMetaStore — partitions the block index across S shard files
//    (block i lives in shard i % S), modeling meta-data spread over
//    multiple master machines.

// Durability (format v2): every blob carries a CRC32 in its index entry, so
// a bit-flipped store fails with MetaStoreCorruptError instead of feeding
// garbage to BlockMeta::deserialize; writes go to `<path>.tmp` and rename
// over the target, so a crash mid-save leaves the previous store intact.
// v1 files (no CRCs) are still readable.

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "dfs/hash_ring.hpp"
#include "elasticmap/elastic_map.hpp"

namespace datanet::elasticmap {

// A store file that is structurally invalid: bad magic/version, truncated,
// out-of-bounds index, or a blob whose CRC32 no longer matches its index
// entry. Derives from std::runtime_error so pre-v2 handlers keep working.
class MetaStoreCorruptError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class MetaStore {
 public:
  // Write the full array to `file_path` (crash-atomic: tmp file + rename).
  static void save(const ElasticMapArray& array, const std::string& file_path);

  // Read the whole file back into memory.
  static ElasticMapArray load(const std::string& file_path);

  // Downgrade a store file in place to format v1 (32-byte index entries, no
  // per-blob CRCs) — the compat escape hatch for tooling that still speaks
  // v1, and the fixture generator for mixed-format load tests. Lossless for
  // the metadata itself; only the checksums are dropped.
  static void rewrite_as_v1(const std::string& file_path);

  // Lazy access: header and index in memory, block metas read on demand.
  class Reader {
   public:
    explicit Reader(const std::string& file_path);

    [[nodiscard]] std::uint64_t num_blocks() const noexcept {
      return index_.size();
    }
    [[nodiscard]] const std::string& dataset_path() const noexcept {
      return dataset_path_;
    }
    [[nodiscard]] std::uint64_t raw_bytes() const noexcept { return raw_bytes_; }

    // Deserialize one block's meta (one seek + one read).
    [[nodiscard]] BlockMeta load_block(std::uint64_t block_index);
    [[nodiscard]] dfs::BlockId block_id(std::uint64_t block_index) const;

   private:
    struct Entry {
      std::uint64_t offset;
      std::uint64_t length;
      dfs::BlockId block_id;
      std::uint32_t crc = 0;  // v2 stores; load_block verifies
    };
    std::ifstream file_;
    std::string dataset_path_;
    std::uint64_t raw_bytes_ = 0;
    std::uint64_t version_ = 0;
    std::vector<Entry> index_;
    std::streamoff blobs_begin_ = 0;
  };
};

class ShardedMetaStore {
 public:
  // Writes `num_shards` files "<prefix>.shard<k>"; block i -> shard i % S.
  static void save(const ElasticMapArray& array, const std::string& prefix,
                   std::uint32_t num_shards);

  // Ring-partitioned layout: block i -> ring.shard_of_block(block_id(i)),
  // the placement the sharded metadata plane uses so a store shard lives
  // with the metadata shard that owns its blocks. A shard owning no blocks
  // still gets a (valid, empty) file, so load() never depends on which
  // shards happened to win blocks. Reassemble with load(prefix,
  // ring.num_shards()) — loading is placement-agnostic.
  static void save(const ElasticMapArray& array, const std::string& prefix,
                   const dfs::HashRing& ring);

  // Reassemble the full array from the shard files.
  static ElasticMapArray load(const std::string& prefix, std::uint32_t num_shards);

  [[nodiscard]] static std::string shard_file(const std::string& prefix,
                                              std::uint32_t shard);
};

}  // namespace datanet::elasticmap
