#include "elasticmap/separator.hpp"

#include <algorithm>
#include <stdexcept>

namespace datanet::elasticmap {

SeparatorOptions SeparatorOptions::for_block_size(std::uint64_t block_size_bytes) {
  // Paper geometry for a 64 MiB block: unit 1 KiB (1/65536 of the block),
  // "tens of buckets" ending where a bucket's worth of sub-datasets is
  // always affordable in the hash map. We span unit .. block/16 — anything
  // holding more than 1/16th of a block is unconditionally dominant (at
  // most 16 such sub-datasets exist per block), which keeps the ladder
  // meaningful for scaled-down blocks too. For 64 MiB blocks this yields
  // the paper's 1 KiB lower bound with ~19 Fibonacci edges.
  SeparatorOptions o;
  o.bucket_unit = std::max<std::uint64_t>(block_size_bytes / 65536, 16);
  o.bucket_max =
      std::max<std::uint64_t>(block_size_bytes / 16, o.bucket_unit * 34);
  return o;
}

DominantSeparator::DominantSeparator(SeparatorOptions options) {
  if (options.bucket_unit == 0 || options.bucket_max < options.bucket_unit) {
    throw std::invalid_argument("DominantSeparator: bad bucket geometry");
  }
  // Fibonacci multiples of the unit: 1, 2, 3, 5, 8, 13, 21, 34, ...
  std::uint64_t a = 1, b = 2;
  while (a * options.bucket_unit <= options.bucket_max) {
    edges_.push_back(a * options.bucket_unit);
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  if (edges_.empty()) edges_.push_back(options.bucket_unit);
  counts_.assign(edges_.size() + 1, 0);
}

std::size_t DominantSeparator::bucket_of(std::uint64_t bytes) const {
  // Bucket i holds sizes in [edges_[i-1], edges_[i]); bucket 0 is (0, e0),
  // the last bucket is [e_last, inf).
  const auto it = std::upper_bound(edges_.begin(), edges_.end(), bytes);
  return static_cast<std::size_t>(it - edges_.begin());
}

void DominantSeparator::add(workload::SubDatasetId id, std::uint64_t bytes) {
  if (bytes == 0) return;
  auto [it, inserted] = sizes_.try_emplace(id, 0);
  const std::uint64_t old_size = it->second;
  it->second += bytes;
  total_ += bytes;
  if (!inserted) --counts_[bucket_of(old_size)];
  ++counts_[bucket_of(it->second)];
}

std::uint64_t DominantSeparator::threshold_for_fraction(double alpha) const {
  if (alpha < 0.0 || alpha > 1.0) throw std::invalid_argument("alpha in [0,1]");
  if (sizes_.empty()) return 0;
  const auto budget = static_cast<std::uint64_t>(
      alpha * static_cast<double>(sizes_.size()) + 1e-9);
  if (budget >= sizes_.size()) return 0;  // keep everything

  // Walk buckets from the largest down, accumulating counts while whole
  // buckets still fit in the budget. When bucket b no longer fits, the
  // threshold is its upper bound (= the lower bound of the smallest bucket
  // kept in full). The top bucket is always retained even if it alone
  // exceeds the budget — the paper sizes the bucket geometry so the top
  // bucket is affordable, and partial buckets cannot be expressed at this
  // granularity.
  std::uint64_t kept = 0;
  for (std::size_t b = counts_.size(); b-- > 0;) {
    if (kept + counts_[b] > budget) {
      return b >= edges_.size() ? edges_.back() : edges_[b];
    }
    kept += counts_[b];
  }
  return 0;  // every bucket fit
}

std::uint64_t DominantSeparator::count_at_or_above(std::uint64_t threshold) const {
  std::uint64_t n = 0;
  for (const auto& [id, sz] : sizes_) {
    if (sz >= threshold) ++n;
  }
  return n;
}

}  // namespace datanet::elasticmap
