#include "elasticmap/block_meta.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/varint.hpp"

namespace datanet::elasticmap {

namespace {
constexpr std::uint64_t kMagic = 0x454d4254u;  // "EMBT"
constexpr std::uint64_t kVersion = 2;          // v2: varint sizes

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t get_u64(std::string_view bytes, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[off + i]))
         << (8 * i);
  return v;
}
}  // namespace

BlockMeta::BlockMeta(
    std::unordered_map<workload::SubDatasetId, std::uint64_t> dominant,
    const std::vector<workload::SubDatasetId>& tail_ids, double bloom_fpp,
    std::uint64_t delta)
    : dominant_(std::move(dominant)),
      bloom_(std::max<std::uint64_t>(tail_ids.size(), 1), bloom_fpp),
      delta_(delta) {
  for (const auto id : tail_ids) bloom_.insert(id);
}

BlockMeta::BlockMeta(
    std::unordered_map<workload::SubDatasetId, std::uint64_t> dominant,
    bloom::BloomFilter bloom, std::uint64_t delta)
    : dominant_(std::move(dominant)), bloom_(std::move(bloom)), delta_(delta) {}

std::optional<std::uint64_t> BlockMeta::exact_size(
    workload::SubDatasetId id) const {
  const auto it = dominant_.find(id);
  if (it == dominant_.end()) return std::nullopt;
  return it->second;
}

bool BlockMeta::maybe_in_tail(workload::SubDatasetId id) const {
  return bloom_.maybe_contains(id);
}

std::uint64_t BlockMeta::estimate_size(workload::SubDatasetId id,
                                       bool* was_exact) const {
  if (const auto exact = exact_size(id)) {
    if (was_exact) *was_exact = true;
    return *exact;
  }
  if (was_exact) *was_exact = false;
  return maybe_in_tail(id) ? delta_ : 0;
}

std::uint64_t BlockMeta::memory_bytes() const {
  // Exactly what serialize() writes: 16-byte header, varint delta, varint
  // count, per-record fixed 8-byte id + varint size, then the bloom filter
  // (32-byte header + bitmap).
  std::uint64_t bytes = 16 + common::varint_length(delta_) +
                        common::varint_length(dominant_.size());
  for (const auto& [id, size] : dominant_) {
    (void)id;
    bytes += 8 + common::varint_length(size);
  }
  return bytes + 32 + bloom_.memory_bytes();
}

std::string BlockMeta::serialize() const {
  std::string out;
  out.reserve(memory_bytes());
  put_u64(out, kMagic);
  put_u64(out, kVersion);
  common::put_varint(out, delta_);
  common::put_varint(out, dominant_.size());
  for (const auto& [id, size] : dominant_) {
    put_u64(out, id);  // hashed ids are high-entropy; varint would not help
    common::put_varint(out, size);
  }
  out += bloom_.serialize();
  return out;
}

BlockMeta BlockMeta::deserialize(std::string_view bytes) {
  if (bytes.size() < 18) throw std::invalid_argument("BlockMeta: truncated");
  if (get_u64(bytes, 0) != kMagic) throw std::invalid_argument("BlockMeta: magic");
  if (get_u64(bytes, 8) != kVersion) {
    throw std::invalid_argument("BlockMeta: unsupported version");
  }
  std::size_t off = 16;
  const auto delta = common::get_varint(bytes, off);
  const auto count = common::get_varint(bytes, off);
  if (!delta || !count) throw std::invalid_argument("BlockMeta: bad header");
  // Each dominant record occupies >= 9 bytes (8-byte id + >= 1 varint byte);
  // bound the count before reserving so a corrupt value cannot drive a huge
  // allocation.
  if (*count > (bytes.size() - off) / 9) {
    throw std::invalid_argument("BlockMeta: corrupt record count");
  }
  std::unordered_map<workload::SubDatasetId, std::uint64_t> dominant;
  dominant.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    if (off + 8 > bytes.size()) throw std::invalid_argument("BlockMeta: truncated");
    const std::uint64_t id = get_u64(bytes, off);
    off += 8;
    const auto size = common::get_varint(bytes, off);
    if (!size) throw std::invalid_argument("BlockMeta: truncated size");
    dominant.emplace(id, *size);
  }
  auto bloom = bloom::BloomFilter::deserialize(bytes.substr(off));
  return BlockMeta(std::move(dominant), std::move(bloom), *delta);
}

}  // namespace datanet::elasticmap
