#pragma once
// elasticmap::LiveMapMaintainer — keeps one dataset's ElasticMapArray fresh
// while the dataset grows (PR 10). Blocks sealed by the ingestion path are
// incorporated as incremental deltas (ElasticMapArray::extend scans only the
// new blocks: a dominant-set + Bloom-tail BlockMeta per block appended to
// the array) instead of a full rebuild, rate-limited by the same tick/drain
// discipline as dfs::ReplicationMonitor.
//
// Between deltas the map is measurably stale: every sub-dataset estimate
// misses the bytes of sealed-but-uncovered blocks, so the accuracy drift is
// bounded by the stale byte fraction — if a fraction f of the file's bytes
// is uncovered, the Eq. 6 estimate is at most f low and |chi - 1| <= f.
// The StalenessLedger tracks exactly that bound, plus a rebuild watermark
// for when accumulated drift says a from-scratch build is warranted.
//
// Thread contract: the maintainer runs on the mutator side (the thread that
// seals blocks, or a background compactor serialized with it); readers keep
// using their own immutable snapshots (server::DatasetCache).

#include <cstdint>
#include <string>

#include "dfs/mini_dfs.hpp"
#include "elasticmap/elastic_map.hpp"

namespace datanet::elasticmap {

struct LiveMapOptions {
  BuildOptions build;
  std::uint32_t max_blocks_per_tick = 4;  // delta-apply rate limit
  // When stale bytes exceed this fraction of the file's total bytes, the
  // ledger recommends a full rebuild (drift bound considered too loose).
  double rebuild_watermark = 0.25;
  std::uint64_t max_drain_ticks = 100000;  // drain() safety valve
};

// Per-dataset staleness/accuracy accounting, refreshed by every scan/tick.
struct StalenessLedger {
  std::uint64_t covered_blocks = 0;  // blocks the map incorporates
  std::uint64_t covered_bytes = 0;
  std::uint64_t stale_blocks = 0;    // sealed since the last delta
  std::uint64_t stale_bytes = 0;
  // Upper bound on |chi - 1| from staleness alone:
  // stale_bytes / (covered_bytes + stale_bytes); 0 when the file is empty.
  double estimated_chi_drift = 0.0;
  bool rebuild_recommended = false;  // drift past the rebuild watermark
  std::uint64_t deltas_applied = 0;  // blocks incorporated incrementally
  std::uint64_t full_rebuilds = 0;
  std::uint64_t scans = 0;
  std::uint64_t ticks = 0;
};

class LiveMapMaintainer {
 public:
  // Builds the initial map over `path` (which may have zero blocks so far).
  LiveMapMaintainer(const dfs::MiniDfs& dfs, std::string path,
                    LiveMapOptions options = {});

  // Refresh the ledger against the live namespace; returns the number of
  // stale (sealed but uncovered) blocks. Skipped cheaply when the DFS
  // mutation epoch has not moved since the last scan.
  std::uint64_t scan();

  // One unit of background time: incorporate up to max_blocks_per_tick
  // stale blocks as deltas. Returns the number of blocks applied.
  std::uint64_t tick();

  // scan + tick until no stale blocks remain; returns ticks spent.
  std::uint64_t drain();

  // From-scratch rebuild (what the deltas amortize away); resets staleness
  // and bumps full_rebuilds. Returns the number of blocks covered.
  std::uint64_t full_rebuild();

  [[nodiscard]] const StalenessLedger& ledger() const noexcept {
    return ledger_;
  }
  [[nodiscard]] const ElasticMapArray& map() const noexcept { return map_; }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void refresh_ledger();

  const dfs::MiniDfs& dfs_;
  std::string path_;
  LiveMapOptions options_;
  ElasticMapArray map_;
  StalenessLedger ledger_;
  std::uint64_t scanned_epoch_ = 0;
  bool scanned_ = false;
};

}  // namespace datanet::elasticmap
