#include "dfs/meta_client.hpp"

#include <stdexcept>

namespace datanet::dfs {

ClientMetaCache::ClientMetaCache(const MetaPlane& plane,
                                 ClientCacheOptions options)
    : plane_(&plane), options_(options) {}

void ClientMetaCache::fetch(const std::string& path, Entry& e) {
  e.shard = plane_->shard_of(path);
  const MiniDfs& owner = plane_->dfs(e.shard);
  // Snapshot the epoch BEFORE reading the bundle: if a mutation races the
  // fetch the bundle is at least as fresh as the recorded epoch, so the next
  // revalidation refetches rather than trusting a torn snapshot.
  e.epoch = owner.mutation_epoch();
  e.blocks = owner.blocks_of(path);
  e.replicas.clear();
  e.replicas.reserve(e.blocks.size());
  for (const BlockId id : e.blocks) {
    e.replicas.emplace(id, owner.replicas_snapshot(id));
  }
  e.lease_until = now_ + options_.lease_ticks;
  ++stats_.refetches;
}

ClientMetaCache::Entry& ClientMetaCache::resolve(const std::string& path) {
  auto [it, inserted] = entries_.try_emplace(path);
  Entry& e = it->second;
  if (inserted) {
    fetch(path, e);
    return e;
  }
  if (options_.lease_ticks > 0 && now_ < e.lease_until) {
    ++stats_.lease_hits;  // lease contract: no shard contact at all
    return e;
  }
  if (plane_->dfs(e.shard).mutation_epoch() == e.epoch) {
    e.lease_until = now_ + options_.lease_ticks;
    ++stats_.renewals;
    return e;
  }
  fetch(path, e);
  return e;
}

const std::vector<BlockId>& ClientMetaCache::blocks_of(
    const std::string& path) {
  return resolve(path).blocks;
}

const std::vector<NodeId>& ClientMetaCache::replicas(const std::string& path,
                                                     BlockId id) {
  Entry& e = resolve(path);
  auto it = e.replicas.find(id);
  if (it == e.replicas.end()) {
    // The cached bundle predates this block (the file grew): refetch once.
    fetch(path, e);
    it = e.replicas.find(id);
    if (it == e.replicas.end()) {
      throw std::invalid_argument("ClientMetaCache: block " +
                                  std::to_string(id) + " is not part of " +
                                  path);
    }
  }
  return it->second;
}

void ClientMetaCache::invalidate(const std::string& path) {
  if (entries_.erase(path) > 0) ++stats_.invalidations;
}

void ClientMetaCache::invalidate_all() {
  stats_.invalidations += entries_.size();
  entries_.clear();
}

}  // namespace datanet::dfs
