#include "dfs/fs_image.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <utility>

#include "common/hash.hpp"
#include "dfs/edit_log.hpp"
#include "dfs/wire.hpp"

namespace datanet::dfs {

namespace {

constexpr std::uint64_t kMagic = 0x30474d4946534644ull;  // "DFSFIMG0"
// v2 appends an open-block section (id, file, extents_applied per open
// block) after the block table so checkpoints taken mid-ingestion restore
// in-flight blocks. v1 images (no open blocks) still load.
constexpr std::uint32_t kVersion = 2;

std::string read_whole_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw FsImageError("FsImage: cannot open " + path);
  return std::string{std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>()};
}

// Parse + CRC-verify the image body; shared by load/inspect/journal_covered.
// Returns the payload (everything before the 4-byte CRC trailer).
std::string_view checked_body(const std::string& raw, const std::string& path) {
  if (raw.size() < 4) throw FsImageError("FsImage: truncated image " + path);
  const std::string_view body(raw.data(), raw.size() - 4);
  wire::Cursor trailer(std::string_view(raw).substr(raw.size() - 4));
  if (common::crc32(body) != trailer.u32()) {
    throw FsImageError("FsImage: checksum mismatch in " + path);
  }
  return body;
}

struct Header {
  std::uint32_t version = kVersion;
  DfsOptions options;
  std::vector<RackId> rack_of;
  std::vector<bool> active;
  std::uint64_t journal_covered = 0;
  std::uint64_t num_files = 0;  // cursor is left at the file table
};

Header read_header(wire::Cursor& c, const std::string& path) {
  Header h;
  if (c.u64() != kMagic) throw FsImageError("FsImage: bad magic in " + path);
  h.version = c.u32();
  if (h.version < 1 || h.version > kVersion) {
    throw FsImageError("FsImage: unsupported version in " + path);
  }
  h.options.block_size = c.u64();
  h.options.replication = c.u32();
  h.options.seed = c.u64();
  h.options.inline_repair = c.u8() != 0;
  const std::uint32_t num_nodes = c.u32();
  h.rack_of.reserve(num_nodes);
  for (std::uint32_t n = 0; n < num_nodes; ++n) h.rack_of.push_back(c.u32());
  h.active.reserve(num_nodes);
  for (std::uint32_t n = 0; n < num_nodes; ++n) h.active.push_back(c.u8() != 0);
  h.journal_covered = c.u64();
  h.num_files = c.u64();
  return h;
}

}  // namespace

void FsImage::save(const MiniDfs& dfs, const std::string& path) {
  std::string out;
  wire::put_u64(out, kMagic);
  wire::put_u32(out, kVersion);
  wire::put_u64(out, dfs.options_.block_size);
  wire::put_u32(out, dfs.options_.replication);
  wire::put_u64(out, dfs.options_.seed);
  out.push_back(dfs.options_.inline_repair ? 1 : 0);
  const std::uint32_t num_nodes = dfs.topology_.num_nodes();
  wire::put_u32(out, num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    wire::put_u32(out, dfs.topology_.rack_of(n));
  }
  for (NodeId n = 0; n < num_nodes; ++n) {
    out.push_back(dfs.node_active_[n] ? 1 : 0);
  }
  wire::put_u64(out, dfs.journal_ != nullptr ? dfs.journal_->bytes_written() : 0);

  // File table, sorted by name so the image bytes are deterministic across
  // unordered_map iteration orders.
  std::vector<std::string> names = dfs.list_files();
  std::sort(names.begin(), names.end());
  wire::put_u64(out, names.size());
  for (const std::string& name : names) {
    wire::put_bytes(out, name);
    const auto& ids = dfs.files_.at(name);
    wire::put_u64(out, ids.size());
    for (const BlockId id : ids) wire::put_u64(out, id);
  }

  // Block table in id order; file membership lives in the table above.
  wire::put_u64(out, dfs.blocks_.size());
  for (const BlockInfo& b : dfs.blocks_) {
    wire::put_u64(out, b.id);
    wire::put_u32(out, b.index_in_file);
    wire::put_u64(out, b.num_records);
    wire::put_u32(out, b.checksum);
    wire::put_u32(out, static_cast<std::uint32_t>(b.replicas.size()));
    for (const NodeId n : b.replicas) wire::put_u32(out, n);
    wire::put_bytes(out, dfs.block_data_[b.id]);
  }

  // Open-block section (v2): which dense ids are still unsealed, the file
  // each belongs to (absent from the file table until seal), and the extent
  // count — persisted so checkpoint + journal-suffix replay stays idempotent
  // (kAppendExtent frames at or below extents_applied are skipped).
  wire::put_u64(out, dfs.open_blocks_.size());
  for (const auto& [id, state] : dfs.open_blocks_) {
    wire::put_u64(out, id);
    wire::put_bytes(out, state.file);
    wire::put_u64(out, state.extents_applied);
  }

  wire::put_u32(out, common::crc32(out));

  // Crash atomicity: never open the live image for writing. A crash before
  // the rename leaves the old image; rename itself is atomic on POSIX.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) throw FsImageError("FsImage: cannot open " + tmp);
    f.write(out.data(), static_cast<std::streamsize>(out.size()));
    f.flush();
    if (!f) throw FsImageError("FsImage: write failed for " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) throw FsImageError("FsImage: rename failed for " + path);
}

MiniDfs FsImage::load(const std::string& path) {
  const std::string raw = read_whole_file(path);
  wire::Cursor c(checked_body(raw, path));
  try {
    const Header h = read_header(c, path);
    MiniDfs dfs(ClusterTopology::from_rack_of(h.rack_of), h.options);
    dfs.node_active_ = h.active;
    dfs.active_nodes_ = static_cast<std::uint32_t>(
        std::count(h.active.begin(), h.active.end(), true));

    std::vector<std::pair<std::string, std::vector<BlockId>>> file_table;
    file_table.reserve(h.num_files);
    for (std::uint64_t i = 0; i < h.num_files; ++i) {
      std::string name = c.bytes();
      const std::uint64_t nblocks = c.u64();
      std::vector<BlockId> ids;
      ids.reserve(nblocks);
      for (std::uint64_t j = 0; j < nblocks; ++j) ids.push_back(c.u64());
      file_table.emplace_back(std::move(name), std::move(ids));
    }

    const std::uint64_t num_blocks = c.u64();
    for (std::uint64_t i = 0; i < num_blocks; ++i) {
      BlockInfo b;
      b.id = c.u64();
      if (b.id != i) throw FsImageError("FsImage: non-dense block ids");
      b.index_in_file = c.u32();
      b.num_records = c.u64();
      b.checksum = c.u32();
      const std::uint32_t nreps = c.u32();
      if (nreps > h.rack_of.size()) {
        throw FsImageError("FsImage: replica count exceeds cluster");
      }
      for (std::uint32_t r = 0; r < nreps; ++r) {
        const NodeId n = c.u32();
        if (n >= h.rack_of.size()) throw FsImageError("FsImage: bad replica node");
        b.replicas.push_back(n);
        dfs.node_blocks_[n].push_back(b.id);
      }
      std::string data = c.bytes();
      b.size_bytes = data.size();
      dfs.total_bytes_ += b.size_bytes;
      dfs.blocks_.push_back(std::move(b));
      dfs.block_data_.push_back(std::move(data));
      dfs.push_block_runtime_state(MiniDfs::kUnknown);  // recompute on read
    }

    for (auto& [name, ids] : file_table) {
      for (const BlockId id : ids) {
        if (id >= num_blocks) throw FsImageError("FsImage: bad block id in file");
        dfs.blocks_[id].file = name;
      }
      dfs.files_.emplace(std::move(name), std::move(ids));
    }

    if (h.version >= 2) {
      const std::uint64_t num_open = c.u64();
      for (std::uint64_t i = 0; i < num_open; ++i) {
        const BlockId id = c.u64();
        if (id >= num_blocks) throw FsImageError("FsImage: bad open block id");
        std::string file = c.bytes();
        const std::uint64_t extents = c.u64();
        if (!dfs.files_.contains(file)) {
          throw FsImageError("FsImage: open block in unknown file");
        }
        dfs.blocks_[id].file = file;
        dfs.open_blocks_.emplace(
            id, MiniDfs::OpenBlockState{std::move(file), extents});
      }
    }
    if (!c.exhausted()) throw FsImageError("FsImage: trailing bytes in " + path);
    // Blocks were loaded behind the incremental counter's back.
    dfs.recount_under_replicated();
    return dfs;
  } catch (const std::runtime_error& e) {
    // Bounds failures inside wire::Cursor surface as the generic truncation
    // error; rewrap so callers get one typed error for any bad image.
    throw FsImageError(std::string("FsImage: ") + e.what() + " (" + path + ")");
  }
}

std::uint64_t FsImage::journal_covered(const std::string& path) {
  const std::string raw = read_whole_file(path);
  wire::Cursor c(checked_body(raw, path));
  return read_header(c, path).journal_covered;
}

FsImage::Stats FsImage::inspect(const std::string& path) {
  const std::string raw = read_whole_file(path);
  wire::Cursor c(checked_body(raw, path));
  const Header h = read_header(c, path);
  Stats s;
  s.file_bytes = raw.size();
  s.journal_covered = h.journal_covered;
  s.num_files = h.num_files;
  s.num_nodes = static_cast<std::uint32_t>(h.rack_of.size());
  s.active_nodes = static_cast<std::uint32_t>(
      std::count(h.active.begin(), h.active.end(), true));
  // Skip the file table to reach the block count.
  for (std::uint64_t i = 0; i < h.num_files; ++i) {
    (void)c.bytes();
    const std::uint64_t nblocks = c.u64();
    for (std::uint64_t j = 0; j < nblocks; ++j) (void)c.u64();
  }
  s.num_blocks = c.u64();
  if (h.version >= 2) {
    // Skip the block table to reach the open-block section.
    for (std::uint64_t i = 0; i < s.num_blocks; ++i) {
      (void)c.u64();  // id
      (void)c.u32();  // index_in_file
      (void)c.u64();  // num_records
      (void)c.u32();  // checksum
      const std::uint32_t nreps = c.u32();
      for (std::uint32_t r = 0; r < nreps; ++r) (void)c.u32();
      (void)c.bytes();
    }
    s.num_open_blocks = c.u64();
  }
  return s;
}

MiniDfs MiniDfs::recover(const std::string& image_path,
                         const std::string& journal_path, RecoveryInfo* info) {
  MiniDfs dfs = FsImage::load(image_path);
  const std::uint64_t covered = FsImage::journal_covered(image_path);
  const EditLog::Replay replay = EditLog::replay(journal_path);
  RecoveryInfo out;
  out.dropped_bytes = replay.dropped_bytes;
  out.torn = replay.torn;
  for (std::size_t i = 0; i < replay.records.size(); ++i) {
    // Frames the checkpoint already covers are skipped; apply_edit is
    // idempotent anyway, so a conservative image offset only costs time.
    if (replay.frame_ends[i] <= covered) {
      ++out.skipped_frames;
      continue;
    }
    dfs.apply_edit(replay.records[i]);
    ++out.replayed_frames;
  }
  if (info != nullptr) *info = out;
  return dfs;
}

}  // namespace datanet::dfs
