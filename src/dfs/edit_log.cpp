#include "dfs/edit_log.hpp"

#include <filesystem>
#include <stdexcept>

#include "common/hash.hpp"
#include "dfs/wire.hpp"

namespace datanet::dfs {

EditLog::EditLog(std::string path)
    : path_(std::move(path)),
      file_(path_, std::ios::binary | std::ios::trunc) {
  if (!file_) throw std::runtime_error("EditLog: cannot open " + path_);
}

void EditLog::append(const EditRecord& record) {
  if (sealed_) throw std::logic_error("EditLog: append after crash/seal");
  const std::string payload = encode(record);
  std::string frame;
  frame.reserve(8 + payload.size());
  wire::put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  wire::put_u32(frame, common::crc32(payload));
  frame.append(payload);
  file_.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  file_.flush();
  if (!file_) throw std::runtime_error("EditLog: write failed for " + path_);
  bytes_written_ += frame.size();
  ++frames_written_;
}

void EditLog::seal() {
  if (sealed_) return;
  file_.flush();
  file_.close();
  sealed_ = true;
}

void EditLog::crash_truncate(std::uint64_t keep_bytes) {
  if (!sealed_) {
    file_.flush();
    file_.close();
    sealed_ = true;
  }
  std::error_code ec;
  const auto size = std::filesystem::file_size(path_, ec);
  if (ec) throw std::runtime_error("EditLog: cannot stat " + path_);
  if (keep_bytes < size) {
    std::filesystem::resize_file(path_, keep_bytes, ec);
    if (ec) throw std::runtime_error("EditLog: cannot truncate " + path_);
    bytes_written_ = keep_bytes;
  }
}

EditLog::Replay EditLog::replay(const std::string& path) {
  Replay out;
  std::ifstream f(path, std::ios::binary);
  if (!f) return out;  // no journal = empty replay
  const std::string all{std::istreambuf_iterator<char>(f),
                        std::istreambuf_iterator<char>()};
  std::uint64_t pos = 0;
  while (pos < all.size()) {
    if (all.size() - pos < 8) break;  // torn frame header
    wire::Cursor header(std::string_view(all).substr(pos, 8));
    const std::uint32_t len = header.u32();
    const std::uint32_t crc = header.u32();
    if (all.size() - pos - 8 < len) break;  // torn payload
    const std::string_view payload = std::string_view(all).substr(pos + 8, len);
    if (common::crc32(payload) != crc) break;  // bit-flipped or torn rewrite
    try {
      out.records.push_back(decode(payload));
    } catch (const std::exception&) {
      break;  // undecodable payload that happens to pass CRC: stop cleanly
    }
    pos += 8 + len;
    out.frame_ends.push_back(pos);
  }
  out.valid_bytes = pos;
  out.dropped_bytes = all.size() - pos;
  out.torn = out.dropped_bytes > 0;
  return out;
}

std::string EditLog::encode(const EditRecord& record) {
  std::string out;
  out.push_back(static_cast<char>(record.op));
  switch (record.op) {
    case EditOp::kCreateFile:
      wire::put_bytes(out, record.file);
      break;
    case EditOp::kAddBlock:
      wire::put_u64(out, record.block);
      wire::put_bytes(out, record.file);
      wire::put_u64(out, record.num_records);
      wire::put_u32(out, record.checksum);
      wire::put_u32(out, static_cast<std::uint32_t>(record.replicas.size()));
      for (const NodeId n : record.replicas) wire::put_u32(out, n);
      wire::put_bytes(out, record.data);
      break;
    case EditOp::kDecommission:
      wire::put_u32(out, record.node);
      break;
    case EditOp::kRemoveReplica:
    case EditOp::kAddReplica:
      wire::put_u64(out, record.block);
      wire::put_u32(out, record.node);
      break;
    case EditOp::kMoveReplica:
      wire::put_u64(out, record.block);
      wire::put_u32(out, record.node);
      wire::put_u32(out, record.node2);
      break;
    case EditOp::kOpenBlock:
      wire::put_u64(out, record.block);
      wire::put_bytes(out, record.file);
      wire::put_u32(out, static_cast<std::uint32_t>(record.replicas.size()));
      for (const NodeId n : record.replicas) wire::put_u32(out, n);
      break;
    case EditOp::kAppendExtent:
      wire::put_u64(out, record.block);
      wire::put_u64(out, record.extent_seq);
      wire::put_u64(out, record.num_records);
      wire::put_bytes(out, record.data);
      break;
    case EditOp::kSealBlock:
      wire::put_u64(out, record.block);
      wire::put_u64(out, record.num_records);
      wire::put_u32(out, record.checksum);
      break;
  }
  return out;
}

EditRecord EditLog::decode(std::string_view payload) {
  wire::Cursor c(payload);
  EditRecord rec;
  const std::uint8_t op = c.u8();
  if (op < static_cast<std::uint8_t>(EditOp::kCreateFile) ||
      op > static_cast<std::uint8_t>(EditOp::kSealBlock)) {
    throw std::runtime_error("EditLog: unknown opcode");
  }
  rec.op = static_cast<EditOp>(op);
  switch (rec.op) {
    case EditOp::kCreateFile:
      rec.file = c.bytes();
      break;
    case EditOp::kAddBlock: {
      rec.block = c.u64();
      rec.file = c.bytes();
      rec.num_records = c.u64();
      rec.checksum = c.u32();
      const std::uint32_t nreps = c.u32();
      if (nreps > c.remaining() / 4) {
        throw std::runtime_error("EditLog: corrupt replica count");
      }
      rec.replicas.reserve(nreps);
      for (std::uint32_t i = 0; i < nreps; ++i) rec.replicas.push_back(c.u32());
      rec.data = c.bytes();
      break;
    }
    case EditOp::kDecommission:
      rec.node = c.u32();
      break;
    case EditOp::kRemoveReplica:
    case EditOp::kAddReplica:
      rec.block = c.u64();
      rec.node = c.u32();
      break;
    case EditOp::kMoveReplica:
      rec.block = c.u64();
      rec.node = c.u32();
      rec.node2 = c.u32();
      break;
    case EditOp::kOpenBlock: {
      rec.block = c.u64();
      rec.file = c.bytes();
      const std::uint32_t nreps = c.u32();
      if (nreps > c.remaining() / 4) {
        throw std::runtime_error("EditLog: corrupt replica count");
      }
      rec.replicas.reserve(nreps);
      for (std::uint32_t i = 0; i < nreps; ++i) rec.replicas.push_back(c.u32());
      break;
    }
    case EditOp::kAppendExtent:
      rec.block = c.u64();
      rec.extent_seq = c.u64();
      rec.num_records = c.u64();
      rec.data = c.bytes();
      break;
    case EditOp::kSealBlock:
      rec.block = c.u64();
      rec.num_records = c.u64();
      rec.checksum = c.u32();
      break;
  }
  if (!c.exhausted()) throw std::runtime_error("EditLog: trailing bytes");
  return rec;
}

}  // namespace datanet::dfs
