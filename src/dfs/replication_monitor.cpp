#include "dfs/replication_monitor.hpp"

#include <algorithm>

namespace datanet::dfs {

ReplicationMonitor::ReplicationMonitor(MiniDfs& dfs,
                                       ReplicationMonitorOptions options)
    : dfs_(dfs), options_(options) {
  if (options_.max_repairs_per_tick == 0) {
    throw std::invalid_argument("ReplicationMonitor: zero repair rate");
  }
}

std::uint64_t ReplicationMonitor::scan() {
  ++stats_.scans;

  // Pay-as-you-go: every actionable scrub or repair mutates the DFS and
  // bumps its mutation epoch, so an unchanged epoch proves this scan would
  // rebuild exactly the queue it left behind last time. Idle monitors (clean
  // runs, converged drains) stop paying O(blocks) per tick.
  if (scanned_ && dfs_.mutation_epoch() == scanned_epoch_) {
    return queue_.size();
  }

  // Scrub pass: a copy marked corrupt is dropped as soon as a healthy
  // sibling exists to re-replicate from — that moves the block into the
  // under-replication view below, where the rate-limited queue heals it.
  // Media-corrupt blocks (checksum of the logical bytes broken) have no
  // healthy source anywhere and are left alone; so is a marked copy that is
  // currently the only one, since dropping it would turn damage into loss.
  for (BlockId id = 0; id < dfs_.num_blocks(); ++id) {
    for (const NodeId node : dfs_.corrupt_replica_marks(id)) {
      const auto& reps = dfs_.block(id).replicas;
      const bool have_sibling =
          std::any_of(reps.begin(), reps.end(), [&](NodeId n) {
            return n != node && dfs_.replica_healthy(id, n);
          });
      if (!have_sibling) continue;
      dfs_.report_corrupt_replica(id, node);
      ++stats_.scrubbed_replicas;
    }
  }

  // Rebuild the queue from the fsck view, keeping first-observed ticks for
  // blocks already being tracked.
  queue_.clear();
  for (const UnderReplicatedBlock& u : under_replicated_blocks(dfs_)) {
    const auto [it, inserted] = observed_at_.try_emplace(u.block, stats_.ticks);
    queue_.push_back({u.block, u.surviving, u.target, it->second});
    (void)inserted;
  }
  stats_.pending_repairs = queue_.size();
  scanned_epoch_ = dfs_.mutation_epoch();
  scanned_ = true;
  return queue_.size();
}

std::uint64_t ReplicationMonitor::tick() {
  ++stats_.ticks;
  std::uint64_t repaired = 0;
  std::vector<PendingRepair> still_pending;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    PendingRepair item = queue_[i];
    if (repaired >= options_.max_repairs_per_tick) {
      still_pending.push_back(item);
      continue;
    }
    const auto target_node = dfs_.repair_block(item.block);
    if (!target_node) {
      // No healthy source or no eligible target right now; drop it rather
      // than spin — the next scan re-queues it if the situation changes.
      // The drop changed the queue without touching the DFS, so the next
      // scan must run in full to preserve the historical re-queue cadence.
      ++stats_.unrepairable;
      observed_at_.erase(item.block);
      scanned_ = false;
      continue;
    }
    ++repaired;
    ++stats_.repairs;
    ++item.surviving;
    if (item.surviving >= item.target) {
      ++stats_.healed_blocks;
      stats_.mttr_ticks += stats_.ticks - item.observed_tick;
      observed_at_.erase(item.block);
    } else {
      still_pending.push_back(item);
    }
  }
  queue_ = std::move(still_pending);
  // Queue order is (surviving, block id); partially-healed blocks may now
  // sort later than untouched ones.
  std::sort(queue_.begin(), queue_.end(),
            [](const PendingRepair& a, const PendingRepair& b) {
              if (a.surviving != b.surviving) return a.surviving < b.surviving;
              return a.block < b.block;
            });
  stats_.pending_repairs = queue_.size();
  return repaired;
}

std::uint64_t ReplicationMonitor::drain() {
  std::uint64_t spent = 0;
  while (spent < options_.max_drain_ticks) {
    if (scan() == 0) break;
    ++spent;
    if (tick() == 0) break;  // everything queued is unrepairable
  }
  return spent;
}

std::vector<ReplicationMonitor::PendingRepair> ReplicationMonitor::queue()
    const {
  return queue_;
}

}  // namespace datanet::dfs
