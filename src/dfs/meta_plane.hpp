#pragma once
// dfs::MetaPlane — the sharded metadata plane. The namespace is partitioned
// across N metadata shards by consistent hashing over file paths (HashRing):
// a file's blocks all live on its owning shard, so per-file operations touch
// exactly one shard and BlockIds stay shard-local. Every shard is a full
// NameNode (a MiniDfs) with its OWN EditLog/FsImage pair, so checkpointing,
// crash, and recovery are per-shard: one shard can be killed (the PR 5
// kCrashNameNode seam) and rebuilt from its own image + journal suffix while
// the other shards keep serving.
//
// Determinism: every shard is constructed over the same topology with the
// SAME DfsOptions (including the placement seed). A dataset ingested into a
// fresh plane therefore gets byte-identical block placement regardless of
// which shard owns it — which is what keeps fig5/fig8 selection digests
// byte-identical between a plain MiniDfs and a plane at ANY shard count, not
// just shard count 1 (each file is the first file of its owning shard's RNG
// stream, exactly as it is the first file of a fresh MiniDfs).
//
// Epochs: mutation_epoch generalizes for free — each shard's MiniDfs keeps
// its own counter, exposed as shard_epoch(k). Replica churn on one shard no
// longer advances the epochs other shards' cached metadata was validated
// against; the server's dataset cache and the lease-based ClientMetaCache
// both key on the owning shard's epoch only.
//
// Concurrency: routing state (the ring) is immutable after construction.
// Each shard inherits MiniDfs's single-mutator/many-readers contract
// independently. crash_shard/recover_shard/checkpoint are mutator-side calls;
// readers of OTHER shards are unaffected, readers of the crashed shard must
// have drained (the plane refuses access to a crashed shard with a typed
// ShardUnavailableError until recover_shard brings it back).

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "dfs/edit_log.hpp"
#include "dfs/hash_ring.hpp"
#include "dfs/mini_dfs.hpp"

namespace datanet::dfs {

// Thrown when an operation routes to a shard that is crashed and not yet
// recovered. Callers that can degrade (serve other shards, retry later)
// catch this; everything else propagates it as a hard error.
class ShardUnavailableError : public std::runtime_error {
 public:
  ShardUnavailableError(std::uint32_t shard, std::string what)
      : std::runtime_error(std::move(what)), shard_id(shard) {}
  std::uint32_t shard_id;
};

struct MetaPlaneOptions {
  std::uint32_t num_shards = 1;
  std::uint32_t vnodes_per_shard = 64;
  std::uint64_t ring_seed = 0;
  // Shared by every shard — same seed on purpose (see file comment).
  DfsOptions dfs;
};

class MetaPlane {
 public:
  MetaPlane(ClusterTopology topology, MetaPlaneOptions options);

  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return static_cast<std::uint32_t>(shards_.size());
  }
  [[nodiscard]] const HashRing& ring() const noexcept { return ring_; }
  [[nodiscard]] const MetaPlaneOptions& options() const noexcept {
    return options_;
  }

  // ---- routing ----

  [[nodiscard]] std::uint32_t shard_of(std::string_view path) const noexcept {
    return ring_.shard_of_path(path);
  }

  // Shard accessors throw std::out_of_range on a bad id and
  // ShardUnavailableError while the shard is crashed.
  [[nodiscard]] MiniDfs& dfs(std::uint32_t shard);
  [[nodiscard]] const MiniDfs& dfs(std::uint32_t shard) const;
  [[nodiscard]] MiniDfs& dfs_for(std::string_view path);
  [[nodiscard]] const MiniDfs& dfs_for(std::string_view path) const;

  // Degraded-mode access (PR 9): the shard's current in-memory state, with
  // NO crashed check. crash_shard kills the NameNode service (seals the
  // journal, refuses mutators and routed reads) but the block BYTES survive
  // — datanodes don't die with the NameNode — so a server that cached the
  // shard's metadata can keep answering read-only queries from this
  // snapshot. Returned as a shared_ptr: recover_shard swaps in a rebuilt
  // MiniDfs, and holders of the pre-crash snapshot must outlive that swap
  // safely. Callers MUST NOT mutate through this while the shard is down.
  [[nodiscard]] std::shared_ptr<const MiniDfs> dfs_snapshot(
      std::uint32_t shard) const;

  // ---- namespace operations (routed to the owning shard) ----

  [[nodiscard]] FileWriter create(std::string path);
  [[nodiscard]] bool exists(std::string_view path) const;
  // Union over all shards, sorted (shards enumerate independently).
  [[nodiscard]] std::vector<std::string> list_files() const;
  [[nodiscard]] std::uint64_t total_blocks() const;
  [[nodiscard]] std::uint64_t under_replicated_count() const;

  // Per-shard mutation epoch (the generalized mutation_epoch).
  [[nodiscard]] std::uint64_t shard_epoch(std::uint32_t shard) const;
  [[nodiscard]] std::vector<std::uint64_t> shard_epochs() const;

  // ---- per-shard durability ----

  // Attach one write-ahead journal per shard under `workdir`
  // ("<workdir>/shard<k>.edits") and write an initial checkpoint per shard
  // ("<workdir>/shard<k>.fsimage"), so every shard has a consistent
  // image/journal pair from the moment durability is on — recover_shard is
  // legal at any later point.
  void attach_journals(const std::string& workdir);
  [[nodiscard]] bool journals_attached() const noexcept { return attached_; }
  [[nodiscard]] const std::string& journal_path(std::uint32_t shard) const;
  [[nodiscard]] const std::string& image_path(std::uint32_t shard) const;

  // Checkpoint one shard (crash-atomic; records the shard journal's current
  // offset). Throws std::logic_error before attach_journals and
  // ShardUnavailableError while crashed.
  void checkpoint_shard(std::uint32_t shard);
  void checkpoint_all();

  // Kill one shard's NameNode: seal (optionally tear) its journal and mark
  // the shard unavailable. Other shards are untouched.
  void crash_shard(std::uint32_t shard,
                   std::uint64_t journal_keep_bytes = MiniDfs::kKeepAllBytes);
  [[nodiscard]] bool shard_crashed(std::uint32_t shard) const;
  [[nodiscard]] std::uint32_t crashed_shards() const noexcept;

  // Rebuild a crashed shard from its own FsImage + EditLog suffix, attach a
  // fresh journal, and re-checkpoint so the pair is consistent going
  // forward. Returns replay accounting. Throws std::logic_error unless the
  // shard is crashed.
  RecoveryInfo recover_shard(std::uint32_t shard);

  // Order-sensitive chain over per-shard namespace digests (shard order is
  // part of the identity: the same files on different shards differ).
  // Requires every shard live.
  [[nodiscard]] std::uint64_t namespace_digest() const;

 private:
  struct Shard {
    // shared_ptr, not unique_ptr: dfs_snapshot hands out read-only refs
    // that must survive the recover_shard swap (degraded serving).
    std::shared_ptr<MiniDfs> dfs;
    std::unique_ptr<EditLog> journal;
    std::string journal_path;
    std::string image_path;
    bool crashed = false;
  };

  [[nodiscard]] Shard& shard_at(std::uint32_t shard);
  [[nodiscard]] const Shard& shard_at(std::uint32_t shard) const;
  [[nodiscard]] Shard& live_shard(std::uint32_t shard);
  [[nodiscard]] const Shard& live_shard(std::uint32_t shard) const;

  MetaPlaneOptions options_;
  HashRing ring_;
  std::vector<Shard> shards_;
  bool attached_ = false;
};

}  // namespace datanet::dfs
