#include "dfs/topology.hpp"

namespace datanet::dfs {

ClusterTopology ClusterTopology::flat(std::uint32_t num_nodes) {
  return racked(num_nodes, num_nodes);
}

ClusterTopology ClusterTopology::racked(std::uint32_t num_nodes,
                                        std::uint32_t nodes_per_rack) {
  if (num_nodes == 0) throw std::invalid_argument("topology: num_nodes == 0");
  if (nodes_per_rack == 0) throw std::invalid_argument("topology: rack size == 0");
  ClusterTopology t;
  t.rack_of_.resize(num_nodes);
  for (NodeId n = 0; n < num_nodes; ++n) {
    const RackId r = n / nodes_per_rack;
    t.rack_of_[n] = r;
    if (r >= t.racks_.size()) t.racks_.emplace_back();
    t.racks_[r].push_back(n);
  }
  t.num_racks_ = static_cast<std::uint32_t>(t.racks_.size());
  return t;
}

ClusterTopology ClusterTopology::from_rack_of(
    const std::vector<RackId>& rack_of) {
  if (rack_of.empty()) throw std::invalid_argument("topology: num_nodes == 0");
  ClusterTopology t;
  t.rack_of_ = rack_of;
  for (NodeId n = 0; n < rack_of.size(); ++n) {
    const RackId r = rack_of[n];
    if (r >= t.racks_.size()) t.racks_.resize(r + 1);
    t.racks_[r].push_back(n);
  }
  for (const auto& rack : t.racks_) {
    if (rack.empty()) throw std::invalid_argument("topology: sparse rack ids");
  }
  t.num_racks_ = static_cast<std::uint32_t>(t.racks_.size());
  return t;
}

}  // namespace datanet::dfs
