#pragma once
// Cluster topology for the simulated DFS: nodes grouped into racks. The
// paper's testbed (PRObE Marmot) is 128 nodes on one switch; we additionally
// support racked layouts so the rack-aware placement policy (default in real
// HDFS) can be exercised.

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace datanet::dfs {

using NodeId = std::uint32_t;
using RackId = std::uint32_t;

class ClusterTopology {
 public:
  // All nodes in a single rack (flat switch, like Marmot).
  static ClusterTopology flat(std::uint32_t num_nodes);

  // Nodes split into consecutive racks of `nodes_per_rack` (last may be short).
  static ClusterTopology racked(std::uint32_t num_nodes, std::uint32_t nodes_per_rack);

  // Rebuild from an explicit node->rack map (FsImage checkpoint load). Rack
  // ids must be dense: every id in [0, max] must appear.
  static ClusterTopology from_rack_of(const std::vector<RackId>& rack_of);

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(rack_of_.size());
  }
  [[nodiscard]] std::uint32_t num_racks() const noexcept { return num_racks_; }

  [[nodiscard]] RackId rack_of(NodeId node) const {
    if (node >= rack_of_.size()) throw std::out_of_range("rack_of: bad node");
    return rack_of_[node];
  }

  [[nodiscard]] const std::vector<NodeId>& nodes_in_rack(RackId rack) const {
    if (rack >= racks_.size()) throw std::out_of_range("nodes_in_rack: bad rack");
    return racks_[rack];
  }

 private:
  ClusterTopology() = default;

  std::vector<RackId> rack_of_;           // node -> rack
  std::vector<std::vector<NodeId>> racks_;  // rack -> nodes
  std::uint32_t num_racks_ = 0;
};

}  // namespace datanet::dfs
