#pragma once
// dfs::EditLog — a CRC-framed write-ahead journal of NameNode namespace
// mutations (the HDFS edits file). MiniDfs appends one logical record per
// durable mutation: file creation, block commits (with the block payload —
// MiniDfs keeps the one in-memory copy of block bytes that stands in for the
// datanode plane, so the journal must carry it for a recovered NameNode to
// serve reads), decommissions, and every replica add/remove/move including
// re-replication repairs.
//
// On-disk format: a sequence of frames
//   [u32 payload_len][u32 crc32(payload)][payload]
// appended with a flush per record. Replay is torn-tail tolerant: it stops
// cleanly at the first frame whose header is short, whose length overruns the
// file, or whose CRC mismatches — a crash mid-append loses at most the frame
// being written, never the prefix. crash_truncate() is the deterministic
// torn-write hook used by FaultKind::kCrashNameNode and the recovery tests.

#include <cstdint>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "dfs/topology.hpp"

namespace datanet::dfs {

using BlockId = std::uint64_t;  // same alias as mini_dfs.hpp (no cycle)

enum class EditOp : std::uint8_t {
  kCreateFile = 1,     // file
  kAddBlock = 2,       // block, file, num_records, checksum, replicas, data
  kDecommission = 3,   // node leaves service; its replicas are dropped
  kRemoveReplica = 4,  // block, node (corrupt copy dropped by the NameNode)
  kAddReplica = 5,     // block, node (re-replication / monitor repair)
  kMoveReplica = 6,    // block, node -> node2 (balancer move)
  // Streaming ingestion (PR 10). An open block is journaled in three acts so
  // a crash at any byte leaves a replayable prefix: placement is fixed at
  // open (replicas journaled explicitly — replay never re-runs the RNG),
  // each group commit is one kAppendExtent frame, and seal publishes the
  // block into its file's block list.
  kOpenBlock = 7,      // block, file, replicas
  kAppendExtent = 8,   // block, extent_seq, num_records, data
  kSealBlock = 9,      // block, num_records, checksum
};

struct EditRecord {
  EditOp op = EditOp::kCreateFile;
  std::string file;               // kCreateFile / kAddBlock / kOpenBlock
  BlockId block = 0;              // block-scoped ops
  std::uint64_t num_records = 0;  // kAddBlock / kAppendExtent / kSealBlock
  std::uint32_t checksum = 0;     // kAddBlock / kSealBlock: CRC32 of bytes
  NodeId node = 0;                // node-scoped ops; kMoveReplica source
  NodeId node2 = 0;               // kMoveReplica target
  std::vector<NodeId> replicas;   // kAddBlock / kOpenBlock initial placement
  std::string data;               // kAddBlock block bytes / kAppendExtent
  std::uint64_t extent_seq = 0;   // kAppendExtent: 0-based per-block index
};

class EditLog {
 public:
  // Creates/truncates `path` and opens it for appends.
  explicit EditLog(std::string path);

  // Frame, append, and flush one record. Throws std::logic_error after a
  // seal/crash (the NameNode process is gone) and std::runtime_error when the
  // filesystem write fails.
  void append(const EditRecord& record);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t bytes_written() const noexcept {
    return bytes_written_;
  }
  [[nodiscard]] std::uint64_t frames_written() const noexcept {
    return frames_written_;
  }
  [[nodiscard]] bool sealed() const noexcept { return sealed_; }

  // Crash seams. seal() models a clean NameNode death: the durable tail stays
  // whole but no further mutation will ever be journaled. crash_truncate()
  // additionally tears the on-disk file down to `keep_bytes` — a partially
  // flushed final frame — before sealing.
  void seal();
  void crash_truncate(std::uint64_t keep_bytes);

  struct Replay {
    std::vector<EditRecord> records;       // every intact frame, in order
    std::vector<std::uint64_t> frame_ends; // file offset after each frame
    std::uint64_t valid_bytes = 0;         // prefix consumed as intact frames
    std::uint64_t dropped_bytes = 0;       // torn tail discarded
    bool torn = false;
  };

  // Read every intact frame of `path`; never throws on a torn tail (only on
  // an unreadable file). A missing file replays as zero records — recovery
  // from a checkpoint alone is legal.
  [[nodiscard]] static Replay replay(const std::string& path);

  // Payload (de)serialization without the frame header; exposed for tests.
  [[nodiscard]] static std::string encode(const EditRecord& record);
  [[nodiscard]] static EditRecord decode(std::string_view payload);

 private:
  std::string path_;
  std::ofstream file_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t frames_written_ = 0;
  bool sealed_ = false;
};

}  // namespace datanet::dfs
