#pragma once
// dfs::FsImage — the NameNode checkpoint (HDFS fsimage). save() serializes
// the whole durable namespace — options, topology, active-node mask, files,
// block metadata AND block bytes (MiniDfs holds the single in-memory copy
// that stands in for the datanode plane) — plus the journal offset the image
// covers, then commits it crash-atomically: write `<path>.tmp`, flush, rename
// over `path`. A crash mid-checkpoint leaves the previous image intact; a
// reader never sees a torn file because the whole buffer carries a CRC32
// trailer that load() verifies before parsing a byte.
//
// Recovery = FsImage::load(image) + EditLog::replay(journal) suffix, wrapped
// as MiniDfs::recover (defined here, next to the serializer it pairs with).

#include <cstdint>
#include <string>

#include "dfs/mini_dfs.hpp"

namespace datanet::dfs {

// Thrown when an image file is missing, truncated, bit-flipped (CRC32
// trailer mismatch), or structurally invalid.
class FsImageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class FsImage {
 public:
  // Header-only summary for `datanet_cli fsck` — cheap relative to a full
  // load only in spirit (the CRC check still reads the file once).
  struct Stats {
    std::uint64_t file_bytes = 0;        // on-disk image size
    std::uint64_t journal_covered = 0;   // journal offset the image reflects
    std::uint64_t num_files = 0;
    std::uint64_t num_blocks = 0;
    std::uint64_t num_open_blocks = 0;  // unsealed blocks in the image (v2)
    std::uint32_t num_nodes = 0;
    std::uint32_t active_nodes = 0;
  };

  // Checkpoint `dfs` to `path` atomically. The recorded journal offset is
  // the attached journal's bytes_written() (0 when none is attached).
  static void save(const MiniDfs& dfs, const std::string& path);

  // Parse and verify an image. The rebuilt instance uses RandomPlacement and
  // a fresh placement RNG seeded from the stored options.
  [[nodiscard]] static MiniDfs load(const std::string& path);

  // Journal offset recorded in the image at `path` (what recover() skips).
  [[nodiscard]] static std::uint64_t journal_covered(const std::string& path);

  [[nodiscard]] static Stats inspect(const std::string& path);
};

}  // namespace datanet::dfs
