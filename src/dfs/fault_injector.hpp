#pragma once
// Deterministic fault injection for MiniDfs-backed runs. A FaultInjector
// holds a plan of events, each pinned to a logical point in a run (the
// number of completed tasks); the driving harness calls advance(completed)
// after every task and the injector applies all due events to the DFS —
// killing nodes (decommission), corrupting single replicas or whole blocks,
// slowing nodes (a simulated-clock speed multiplier), stalling nodes (the
// node stays alive and keeps its replicas but stops answering task
// requests), and arming transient read errors (a block read fails N times,
// then succeeds). Plans are either explicit or generated from a seed, so
// every faulted run is reproducible bit-for-bit given (DFS seed, plan seed).

#include <cstdint>
#include <vector>

#include "dfs/mini_dfs.hpp"

namespace datanet::dfs {

enum class FaultKind : std::uint8_t {
  kKillNode,        // decommission `node`
  kCorruptReplica,  // mark one copy of `block` bad (see event resolution)
  kCorruptBlock,    // flip a byte of `block`'s data: every copy goes bad
  kSlowNode,        // multiply `node`'s speed by `speed_factor`
  kStallNode,       // `node` stops answering task requests but stays alive:
                    // replicas remain readable and completed work survives —
                    // the straggler case, distinguishable from kKillNode
  kTransientReadError,  // the next `fail_count` reads of `block` fail before
                        // one succeeds (exercises timeout/backoff, not loss)
  kCrashNameNode,   // kill the NameNode: seal the attached edit log, tearing
                    // its tail down to `journal_keep_bytes` (kKeepAllBytes =
                    // a clean death). No-op when no journal is attached, so
                    // plans stay portable to non-durable runs.
};

struct FaultEvent {
  std::uint64_t at_task = 0;  // fires once `at_task` tasks have completed
  FaultKind kind = FaultKind::kKillNode;
  NodeId node = 0;            // kKillNode / kSlowNode / kStallNode; replica
                              // pick for kCorruptReplica (below)
  BlockId block = 0;  // kCorruptReplica / kCorruptBlock / kTransientReadError
  double speed_factor = 1.0;  // kSlowNode only; < 1 means slower
  std::uint32_t fail_count = 1;  // kTransientReadError only; reads that fail
  // kCrashNameNode only: journal bytes surviving the crash (a torn final
  // frame); MiniDfs::kKeepAllBytes keeps the whole durable tail.
  std::uint64_t journal_keep_bytes = MiniDfs::kKeepAllBytes;

  // kCorruptReplica resolution: if `node` hosts `block` at fire time that
  // copy is corrupted; otherwise (re-replication may have moved copies since
  // the plan was written) the replica with ordinal `node % replicas` is —
  // the event always lands on exactly one current copy, deterministically.
};

struct FaultStats {
  std::uint64_t nodes_killed = 0;
  std::uint64_t replicas_corrupted = 0;
  std::uint64_t blocks_corrupted = 0;  // whole-block (media) corruptions
  std::uint64_t nodes_slowed = 0;
  std::uint64_t nodes_stalled = 0;
  std::uint64_t transient_failures_armed = 0;    // sum of fail_count fired
  std::uint64_t transient_failures_consumed = 0; // reads actually failed
  std::uint64_t namenode_crashes = 0;            // kCrashNameNode fired
  // Blocks whose last replica died with a killed node (replication-1 loss).
  std::vector<BlockId> lost_blocks;
};

class FaultInjector {
 public:
  // `dfs` must outlive the injector. The plan is sorted by at_task (stable,
  // so same-point events fire in the order given).
  FaultInjector(MiniDfs& dfs, std::vector<FaultEvent> plan);

  // Seeded random plan over a run of `horizon_tasks` tasks: kill
  // `kill_nodes` distinct nodes, corrupt `corrupt_replicas` random block
  // copies, slow `slow_nodes` distinct nodes by a factor in [0.25, 1), stall
  // `stall_nodes` distinct nodes (disjoint from the killed/slowed sets), and
  // arm `transient_reads` transient read errors (1-3 failures each) on
  // random blocks — each at a point uniform in [1, horizon_tasks]. Never
  // kills more nodes than would leave the cluster empty.
  static FaultInjector random_plan(MiniDfs& dfs, std::uint64_t seed,
                                   std::uint64_t horizon_tasks,
                                   std::uint32_t kill_nodes,
                                   std::uint32_t corrupt_replicas,
                                   std::uint32_t slow_nodes = 0,
                                   std::uint32_t stall_nodes = 0,
                                   std::uint32_t transient_reads = 0);

  // Fire every event due at or before `completed_tasks`; returns the events
  // fired by THIS call (already applied to the DFS). Monotonic: passing a
  // smaller count than before fires nothing.
  std::vector<FaultEvent> advance(std::uint64_t completed_tasks);

  [[nodiscard]] bool exhausted() const noexcept { return next_ == plan_.size(); }
  [[nodiscard]] const std::vector<FaultEvent>& plan() const noexcept {
    return plan_;
  }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

  // Current speed multiplier per node (1.0 = nominal; kSlowNode events
  // multiply in). Aligned with the topology's node ids.
  [[nodiscard]] const std::vector<double>& node_speeds() const noexcept {
    return speed_;
  }
  [[nodiscard]] bool any_slowdown() const noexcept { return any_slowdown_; }

  // Whether a fired kStallNode left `node` unresponsive. Stalled nodes keep
  // their replicas and any completed outputs; they just never finish new
  // work. At least one active node always stays responsive (apply() turns a
  // last-responsive-node stall into a no-op, mirroring the kill guard).
  [[nodiscard]] bool is_stalled(NodeId node) const {
    return node < stalled_.size() && stalled_[node] != 0;
  }

  // Consume one armed transient failure for `block` if any remain: returns
  // true when the read should fail (caller retries with backoff), false when
  // it proceeds normally. Deterministic: a countdown per block.
  bool take_transient_read_failure(BlockId block);

  [[nodiscard]] std::uint32_t pending_transient_failures(BlockId block) const;

 private:
  void apply(const FaultEvent& event);

  MiniDfs* dfs_;
  std::vector<FaultEvent> plan_;
  std::size_t next_ = 0;
  FaultStats stats_;
  std::vector<double> speed_;
  std::vector<std::uint8_t> stalled_;
  std::vector<std::uint32_t> transient_;  // remaining failures per block
  bool any_slowdown_ = false;
};

}  // namespace datanet::dfs
