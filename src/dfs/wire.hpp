#pragma once
// Little-endian byte-buffer primitives shared by the dfs persistence plane
// (EditLog frames, FsImage checkpoints). Every read is bounds-checked against
// the buffer, so torn or corrupt inputs surface as typed errors instead of
// out-of-range reads or attacker-sized allocations (same discipline as the
// elasticmap::MetaStore deserializers).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace datanet::dfs::wire {

inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// Length-prefixed byte string.
inline void put_bytes(std::string& out, std::string_view bytes) {
  put_u64(out, bytes.size());
  out.append(bytes);
}

// Bounds-checked sequential reader over a serialized buffer.
class Cursor {
 public:
  explicit Cursor(std::string_view buf) : buf_(buf) {}

  [[nodiscard]] std::uint64_t remaining() const noexcept {
    return buf_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == buf_.size(); }

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(buf_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::string bytes() {
    const std::uint64_t len = u64();
    need(len);
    std::string out(buf_.substr(pos_, len));
    pos_ += len;
    return out;
  }

 private:
  void need(std::uint64_t n) const {
    if (remaining() < n) {
      throw std::runtime_error("dfs::wire: truncated buffer");
    }
  }

  std::string_view buf_;
  std::size_t pos_ = 0;
};

}  // namespace datanet::dfs::wire
