#include "dfs/meta_plane.hpp"

#include <algorithm>
#include <utility>

#include "common/hash.hpp"
#include "dfs/fs_image.hpp"

namespace datanet::dfs {

MetaPlane::MetaPlane(ClusterTopology topology, MetaPlaneOptions options)
    : options_(options),
      ring_(options.num_shards, options.vnodes_per_shard, options.ring_seed) {
  shards_.reserve(options_.num_shards);
  for (std::uint32_t s = 0; s < options_.num_shards; ++s) {
    Shard sh;
    sh.dfs = std::make_shared<MiniDfs>(topology, options_.dfs);
    shards_.push_back(std::move(sh));
  }
}

MetaPlane::Shard& MetaPlane::shard_at(std::uint32_t shard) {
  if (shard >= shards_.size()) {
    throw std::out_of_range("MetaPlane: shard " + std::to_string(shard) +
                            " out of range (have " +
                            std::to_string(shards_.size()) + ")");
  }
  return shards_[shard];
}

const MetaPlane::Shard& MetaPlane::shard_at(std::uint32_t shard) const {
  return const_cast<MetaPlane*>(this)->shard_at(shard);
}

MetaPlane::Shard& MetaPlane::live_shard(std::uint32_t shard) {
  Shard& sh = shard_at(shard);
  if (sh.crashed) {
    throw ShardUnavailableError(
        shard, "MetaPlane: shard " + std::to_string(shard) +
                   " is crashed (recover_shard to restore service)");
  }
  return sh;
}

const MetaPlane::Shard& MetaPlane::live_shard(std::uint32_t shard) const {
  return const_cast<MetaPlane*>(this)->live_shard(shard);
}

MiniDfs& MetaPlane::dfs(std::uint32_t shard) { return *live_shard(shard).dfs; }

const MiniDfs& MetaPlane::dfs(std::uint32_t shard) const {
  return *live_shard(shard).dfs;
}

MiniDfs& MetaPlane::dfs_for(std::string_view path) {
  return dfs(shard_of(path));
}

const MiniDfs& MetaPlane::dfs_for(std::string_view path) const {
  return dfs(shard_of(path));
}

std::shared_ptr<const MiniDfs> MetaPlane::dfs_snapshot(
    std::uint32_t shard) const {
  return shard_at(shard).dfs;
}

FileWriter MetaPlane::create(std::string path) {
  MiniDfs& owner = dfs_for(path);
  return owner.create(std::move(path));
}

bool MetaPlane::exists(std::string_view path) const {
  return dfs_for(path).exists(path);
}

std::vector<std::string> MetaPlane::list_files() const {
  std::vector<std::string> out;
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    auto files = dfs(s).list_files();
    out.insert(out.end(), std::make_move_iterator(files.begin()),
               std::make_move_iterator(files.end()));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t MetaPlane::total_blocks() const {
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < num_shards(); ++s) total += dfs(s).num_blocks();
  return total;
}

std::uint64_t MetaPlane::under_replicated_count() const {
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    total += dfs(s).under_replicated_count();
  }
  return total;
}

std::uint64_t MetaPlane::shard_epoch(std::uint32_t shard) const {
  return dfs(shard).mutation_epoch();
}

std::vector<std::uint64_t> MetaPlane::shard_epochs() const {
  std::vector<std::uint64_t> out(num_shards(), 0);
  for (std::uint32_t s = 0; s < num_shards(); ++s) out[s] = shard_epoch(s);
  return out;
}

void MetaPlane::attach_journals(const std::string& workdir) {
  if (attached_) throw std::logic_error("MetaPlane: journals already attached");
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    Shard& sh = live_shard(s);
    sh.journal_path = workdir + "/shard" + std::to_string(s) + ".edits";
    sh.image_path = workdir + "/shard" + std::to_string(s) + ".fsimage";
    sh.journal = std::make_unique<EditLog>(sh.journal_path);
    sh.dfs->attach_edit_log(sh.journal.get());
    // Initial checkpoint: the pair (image covering the current namespace,
    // empty journal) is consistent, so a crash at any later point recovers.
    FsImage::save(*sh.dfs, sh.image_path);
  }
  attached_ = true;
}

const std::string& MetaPlane::journal_path(std::uint32_t shard) const {
  const Shard& sh = shard_at(shard);
  if (!attached_) throw std::logic_error("MetaPlane: journals not attached");
  return sh.journal_path;
}

const std::string& MetaPlane::image_path(std::uint32_t shard) const {
  const Shard& sh = shard_at(shard);
  if (!attached_) throw std::logic_error("MetaPlane: journals not attached");
  return sh.image_path;
}

void MetaPlane::checkpoint_shard(std::uint32_t shard) {
  Shard& sh = live_shard(shard);
  if (!attached_) throw std::logic_error("MetaPlane: journals not attached");
  FsImage::save(*sh.dfs, sh.image_path);
}

void MetaPlane::checkpoint_all() {
  for (std::uint32_t s = 0; s < num_shards(); ++s) checkpoint_shard(s);
}

void MetaPlane::crash_shard(std::uint32_t shard,
                            std::uint64_t journal_keep_bytes) {
  Shard& sh = live_shard(shard);
  if (!attached_) throw std::logic_error("MetaPlane: journals not attached");
  sh.dfs->crash_namenode(journal_keep_bytes);
  sh.crashed = true;
}

bool MetaPlane::shard_crashed(std::uint32_t shard) const {
  return shard_at(shard).crashed;
}

std::uint32_t MetaPlane::crashed_shards() const noexcept {
  std::uint32_t n = 0;
  for (const Shard& sh : shards_) n += sh.crashed ? 1u : 0u;
  return n;
}

RecoveryInfo MetaPlane::recover_shard(std::uint32_t shard) {
  Shard& sh = shard_at(shard);
  if (!sh.crashed) {
    throw std::logic_error("MetaPlane: recover_shard on a live shard");
  }
  RecoveryInfo info;
  // Replay image + journal suffix FIRST — only then open a fresh journal
  // (the EditLog constructor truncates), attach it, and checkpoint so the
  // recovered shard's image/journal pair is consistent going forward. The
  // old MiniDfs stays alive for any dfs_snapshot holders still finishing a
  // degraded read; the swap only redirects future routing.
  auto recovered = std::make_shared<MiniDfs>(
      MiniDfs::recover(sh.image_path, sh.journal_path, &info));
  sh.dfs = std::move(recovered);
  sh.journal = std::make_unique<EditLog>(sh.journal_path);
  sh.dfs->attach_edit_log(sh.journal.get());
  FsImage::save(*sh.dfs, sh.image_path);
  sh.crashed = false;
  return info;
}

std::uint64_t MetaPlane::namespace_digest() const {
  std::uint64_t h = common::hash_bytes("datanet-meta-plane");
  for (std::uint32_t s = 0; s < num_shards(); ++s) {
    h = common::hash_combine(h, dfs(s).namespace_digest());
  }
  return h;
}

}  // namespace datanet::dfs
