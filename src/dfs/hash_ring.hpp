#pragma once
// dfs::HashRing — consistent hashing with virtual nodes, the partitioner
// behind the sharded metadata plane (dfs::MetaPlane) and the ring-partitioned
// elasticmap::ShardedMetaStore. Each shard contributes `vnodes_per_shard`
// points on a 64-bit ring; a key is owned by the first point clockwise from
// its hash. Virtual nodes smooth the per-shard share (classic Karger-style
// rings give a cv of roughly 1/sqrt(vnodes) over shard loads), and
// consistency means adding or removing one shard only moves the keys that
// land on that shard's points — no global reshuffle.
//
// Lookups are O(1), not O(log points): the constructor precomputes a
// power-of-two bucket table mapping the top bits of a hash to the first ring
// point at or past the bucket's start, so shard_of is a table index plus an
// expected-constant scan within one bucket (the table has at least as many
// buckets as points). The table is immutable after construction — lookups
// are lock-free and safe from any thread.

#include <cstdint>
#include <string_view>
#include <vector>

namespace datanet::dfs {

class HashRing {
 public:
  // `num_shards` >= 1. The default vnode count keeps the max/mean shard
  // share under ~1.3 for any shard count the plane uses (tested).
  explicit HashRing(std::uint32_t num_shards,
                    std::uint32_t vnodes_per_shard = 64,
                    std::uint64_t seed = 0);

  [[nodiscard]] std::uint32_t num_shards() const noexcept { return num_shards_; }
  [[nodiscard]] std::uint32_t vnodes_per_shard() const noexcept {
    return vnodes_per_shard_;
  }

  // Owner of a raw 64-bit ring position.
  [[nodiscard]] std::uint32_t shard_of_hash(std::uint64_t hash) const noexcept;

  // Owner of a namespace path (files route by path: a file's blocks live
  // together on one metadata shard, so per-file operations touch one shard).
  [[nodiscard]] std::uint32_t shard_of_path(std::string_view path) const noexcept;

  // Owner of a block id (used by the ring-partitioned ElasticMap store,
  // where blocks of one dataset spread across store shards).
  [[nodiscard]] std::uint32_t shard_of_block(std::uint64_t block_id) const noexcept;

  // Number of ring points each shard owns (diagnostics / balance tests).
  [[nodiscard]] std::vector<std::uint32_t> points_per_shard() const;

 private:
  struct Point {
    std::uint64_t position;
    std::uint32_t shard;
  };

  std::uint32_t num_shards_;
  std::uint32_t vnodes_per_shard_;
  std::vector<Point> points_;        // sorted by position
  std::vector<std::uint32_t> bucket_start_;  // bucket -> first point index
  std::uint32_t bucket_shift_ = 64;  // hash >> shift = bucket index
};

}  // namespace datanet::dfs
