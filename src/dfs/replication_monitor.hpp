#pragma once
// dfs::ReplicationMonitor — the NameNode's background healing loop (HDFS's
// ReplicationMonitor / RedundancyMonitor). Replaces the inline one-shot
// repair in MiniDfs (run with DfsOptions::inline_repair = false): damage is
// only *recorded* at fault time, and this monitor converges the namespace
// back to full replication through a rate-limited queue.
//
//   scan()  — refresh the work queue from the fsck under-replication view,
//             after scrubbing marked-corrupt copies that have a healthy
//             sibling (dropping a bad copy is what puts the block into the
//             under-replicated set the queue is built from).
//   tick()  — one unit of background time: repair up to
//             max_repairs_per_tick queued blocks, most-damaged first
//             (fewest surviving replicas, block id as tiebreak), each via
//             MiniDfs::repair_block (placement-policy + active-mask aware).
//   drain() — scan+tick until fsck is clean or no progress is possible.
//
// MTTR accounting: a block's damage is timestamped with the tick count at
// the scan that first saw it; when the block reaches its effective target,
// mttr_ticks accumulates (heal tick − observed tick). Everything is
// deterministic — same DFS seed and fault plan, same healing sequence.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dfs/fsck.hpp"
#include "dfs/mini_dfs.hpp"

namespace datanet::dfs {

struct ReplicationMonitorOptions {
  std::uint32_t max_repairs_per_tick = 4;  // healing rate limit
  std::uint64_t max_drain_ticks = 100000;  // drain() safety valve
};

struct ReplicationMonitorStats {
  std::uint64_t healed_blocks = 0;      // blocks brought back to target
  std::uint64_t pending_repairs = 0;    // queue depth after last scan/tick
  std::uint64_t mttr_ticks = 0;         // sum of (heal tick − observed tick)
  std::uint64_t scans = 0;
  std::uint64_t ticks = 0;
  std::uint64_t repairs = 0;            // replicas created
  std::uint64_t scrubbed_replicas = 0;  // marked-corrupt copies dropped
  std::uint64_t unrepairable = 0;       // dropped from queue: no source/target
};

class ReplicationMonitor {
 public:
  explicit ReplicationMonitor(MiniDfs& dfs,
                              ReplicationMonitorOptions options = {});

  // Returns the queue depth after the refresh.
  std::uint64_t scan();

  // Returns the number of replicas created this tick.
  std::uint64_t tick();

  // Returns the number of ticks spent. Stops when a scan finds nothing or a
  // tick makes no progress (every queued block unrepairable).
  std::uint64_t drain();

  [[nodiscard]] const ReplicationMonitorStats& stats() const noexcept {
    return stats_;
  }

  struct PendingRepair {
    BlockId block = 0;
    std::uint32_t surviving = 0;
    std::uint32_t target = 0;
    std::uint64_t observed_tick = 0;
  };
  // Snapshot of the queue in repair order.
  [[nodiscard]] std::vector<PendingRepair> queue() const;

 private:
  MiniDfs& dfs_;
  ReplicationMonitorOptions options_;
  ReplicationMonitorStats stats_;
  std::vector<PendingRepair> queue_;                       // repair order
  std::unordered_map<BlockId, std::uint64_t> observed_at_;  // first-seen tick
  // DFS mutation epoch as of the last full scan; when it hasn't moved, the
  // scrub/rebuild pass would reproduce the queue verbatim and is skipped.
  std::uint64_t scanned_epoch_ = 0;
  bool scanned_ = false;
};

}  // namespace datanet::dfs
