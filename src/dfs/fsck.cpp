#include "dfs/fsck.hpp"

#include <algorithm>
#include <cmath>

namespace datanet::dfs {

FsckReport fsck(const MiniDfs& dfs) {
  FsckReport report;
  const std::uint32_t target = dfs.options().replication;
  const std::uint32_t nodes = dfs.topology().num_nodes();
  report.node_block_counts.assign(nodes, 0);

  for (BlockId id = 0; id < dfs.num_blocks(); ++id) {
    const auto& reps = dfs.block(id).replicas;
    ++report.total_blocks;
    if (reps.empty()) {
      ++report.missing_blocks;
    } else if (reps.size() < target) {
      // Under-replication only counts when spare active nodes exist.
      if (reps.size() < std::min<std::size_t>(target, dfs.num_active_nodes())) {
        ++report.under_replicated;
      } else {
        ++report.healthy_blocks;
      }
    } else if (reps.size() > target) {
      ++report.over_replicated;
    } else {
      ++report.healthy_blocks;
    }
    for (const NodeId n : reps) ++report.node_block_counts[n];
  }

  for (const OpenBlockInfo& ob : dfs.open_blocks()) {
    ++report.open_blocks;
    report.open_bytes += ob.size_bytes;
  }

  // Balance over active nodes only.
  double sum = 0.0, count = 0.0;
  for (NodeId n = 0; n < nodes; ++n) {
    if (!dfs.is_active(n)) continue;
    sum += static_cast<double>(report.node_block_counts[n]);
    count += 1.0;
  }
  if (count > 0.0 && sum > 0.0) {
    const double mean = sum / count;
    double ss = 0.0;
    for (NodeId n = 0; n < nodes; ++n) {
      if (!dfs.is_active(n)) continue;
      const double d = static_cast<double>(report.node_block_counts[n]) - mean;
      ss += d * d;
    }
    report.replica_balance_cv = std::sqrt(ss / count) / mean;
  }
  return report;
}

PlaneFsckReport fsck(const MetaPlane& plane) {
  PlaneFsckReport out;
  out.shards.reserve(plane.num_shards());
  for (std::uint32_t s = 0; s < plane.num_shards(); ++s) {
    out.shards.push_back(fsck(plane.dfs(s)));  // throws while crashed
  }

  FsckReport& c = out.combined;
  for (const FsckReport& r : out.shards) {
    c.total_blocks += r.total_blocks;
    c.healthy_blocks += r.healthy_blocks;
    c.under_replicated += r.under_replicated;
    c.missing_blocks += r.missing_blocks;
    c.over_replicated += r.over_replicated;
    c.open_blocks += r.open_blocks;
    c.open_bytes += r.open_bytes;
    if (c.node_block_counts.size() < r.node_block_counts.size()) {
      c.node_block_counts.resize(r.node_block_counts.size(), 0);
    }
    for (std::size_t n = 0; n < r.node_block_counts.size(); ++n) {
      c.node_block_counts[n] += r.node_block_counts[n];
    }
  }

  // Balance cv over the summed loads, counting nodes active on shard 0
  // (every shard shares the topology and the active mask only diverges under
  // per-shard faults; the roll-up is a capacity view, not a health gate).
  const MiniDfs& ref = plane.dfs(0);
  double sum = 0.0, count = 0.0;
  for (NodeId n = 0; n < c.node_block_counts.size(); ++n) {
    if (!ref.is_active(n)) continue;
    sum += static_cast<double>(c.node_block_counts[n]);
    count += 1.0;
  }
  if (count > 0.0 && sum > 0.0) {
    const double mean = sum / count;
    double ss = 0.0;
    for (NodeId n = 0; n < c.node_block_counts.size(); ++n) {
      if (!ref.is_active(n)) continue;
      const double d = static_cast<double>(c.node_block_counts[n]) - mean;
      ss += d * d;
    }
    c.replica_balance_cv = std::sqrt(ss / count) / mean;
  }
  return out;
}

std::vector<UnderReplicatedBlock> under_replicated_blocks(const MiniDfs& dfs) {
  std::vector<UnderReplicatedBlock> out;
  const auto target = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      dfs.options().replication, dfs.num_active_nodes()));
  for (BlockId id = 0; id < dfs.num_blocks(); ++id) {
    const auto surviving =
        static_cast<std::uint32_t>(dfs.block(id).replicas.size());
    if (surviving > 0 && surviving < target) {
      out.push_back({id, surviving, target});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const UnderReplicatedBlock& a, const UnderReplicatedBlock& b) {
              if (a.surviving != b.surviving) return a.surviving < b.surviving;
              return a.block < b.block;
            });
  return out;
}

PostFaultCheck check_post_fault_invariants(const MiniDfs& dfs) {
  PostFaultCheck check;
  check.report = fsck(dfs);
  if (check.report.missing_blocks > 0 && dfs.options().replication > 1) {
    check.ok = false;
    check.violation = "fsck: " + std::to_string(check.report.missing_blocks) +
                      " block(s) missing with replication " +
                      std::to_string(dfs.options().replication) +
                      " — faults must not silently destroy replicated data";
  }
  return check;
}

OpenBlockAudit audit_open_blocks(const MiniDfs& live, const MiniDfs& durable) {
  OpenBlockAudit audit;
  const auto live_open = live.open_blocks();
  const auto durable_open = durable.open_blocks();
  audit.open_blocks = live_open.size();
  for (const OpenBlockInfo& ob : live_open) audit.open_bytes += ob.size_bytes;

  auto flag = [&audit](std::string what) {
    ++audit.mismatched;
    audit.violations.push_back(std::move(what));
  };

  if (live_open.size() != durable_open.size()) {
    flag("open-block count: live " + std::to_string(live_open.size()) +
         " vs durable " + std::to_string(durable_open.size()));
  }
  for (const OpenBlockInfo& lb : live_open) {
    const auto it = std::find_if(
        durable_open.begin(), durable_open.end(),
        [&lb](const OpenBlockInfo& db) { return db.id == lb.id; });
    if (it == durable_open.end()) {
      flag("block " + std::to_string(lb.id) +
           ": open on the live NameNode but not journaled");
      continue;
    }
    const OpenBlockInfo& db = *it;
    if (lb.size_bytes != db.size_bytes || lb.num_records != db.num_records ||
        lb.extents_applied != db.extents_applied) {
      flag("block " + std::to_string(lb.id) + ": stored " +
           std::to_string(lb.size_bytes) + " B / " +
           std::to_string(lb.num_records) + " rec / " +
           std::to_string(lb.extents_applied) + " extents vs journaled " +
           std::to_string(db.size_bytes) + " B / " +
           std::to_string(db.num_records) + " rec / " +
           std::to_string(db.extents_applied) + " extents");
      continue;
    }
    if (lb.file != db.file) {
      flag("block " + std::to_string(lb.id) + ": file '" + lb.file +
           "' vs journaled '" + db.file + "'");
      continue;
    }
    // Same length; the committed CONTENT must match too (the running CRC is
    // recomputed at every group commit, so it stands in for the bytes).
    if (live.block(lb.id).checksum != durable.block(db.id).checksum) {
      flag("block " + std::to_string(lb.id) +
           ": stored bytes disagree with the journaled extents (CRC)");
    }
  }
  return audit;
}

BalanceResult balance_replicas(MiniDfs& dfs, std::uint64_t tolerance) {
  BalanceResult result;
  const std::uint32_t nodes = dfs.topology().num_nodes();

  for (;;) {
    // Recompute per-node counts (active nodes only participate).
    std::vector<std::uint64_t> counts(nodes, 0);
    for (BlockId id = 0; id < dfs.num_blocks(); ++id) {
      for (const NodeId n : dfs.block(id).replicas) ++counts[n];
    }
    NodeId busiest = nodes, idlest = nodes;
    for (NodeId n = 0; n < nodes; ++n) {
      if (!dfs.is_active(n)) continue;
      if (busiest == nodes || counts[n] > counts[busiest]) busiest = n;
      if (idlest == nodes || counts[n] < counts[idlest]) idlest = n;
    }
    if (busiest == nodes || idlest == nodes ||
        counts[busiest] <= counts[idlest] + tolerance) {
      break;
    }
    // Move the first block on the busiest node that the idlest doesn't hold.
    bool moved = false;
    for (const BlockId id : std::vector<BlockId>(dfs.blocks_on(busiest))) {
      const auto& reps = dfs.block(id).replicas;
      if (std::find(reps.begin(), reps.end(), idlest) == reps.end()) {
        dfs.move_replica(id, busiest, idlest);
        ++result.moves;
        moved = true;
        break;
      }
    }
    if (!moved) break;  // no legal move between this pair
  }
  result.after = fsck(dfs);
  return result;
}

}  // namespace datanet::dfs
