#pragma once
// Replica placement policies. Real HDFS places the first replica on the
// writer's node, the second and third on two nodes of one remote rack; with a
// single ingestion point (e.g. Flume) that degenerates to effectively random
// spreading, which is what the paper's analysis assumes. All three policies
// are provided and unit-tested.
//
// Placement sees the NameNode's liveness view: `active[n]` marks node n in
// service, and dead nodes never receive new replicas (an empty vector means
// every node is active). MiniDfs threads its own view through on every
// commit, so writes issued after a decommission land only on live nodes.

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "dfs/topology.hpp"

namespace datanet::dfs {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Return `replication` distinct ACTIVE nodes for the next block. `rng` is
  // owned by the caller (the NameNode) so placement is deterministic per DFS
  // seed. `active` is the caller's liveness view (empty = all nodes active);
  // throws std::invalid_argument when fewer than `replication` active nodes
  // exist.
  [[nodiscard]] virtual std::vector<NodeId> place(const ClusterTopology& topo,
                                                  const std::vector<bool>& active,
                                                  std::uint32_t replication,
                                                  common::Rng& rng) = 0;

  // Convenience for fully-healthy clusters.
  [[nodiscard]] std::vector<NodeId> place(const ClusterTopology& topo,
                                          std::uint32_t replication,
                                          common::Rng& rng) {
    return place(topo, {}, replication, rng);
  }
};

// r distinct nodes chosen uniformly at random (partial Fisher–Yates).
class RandomPlacement final : public PlacementPolicy {
 public:
  using PlacementPolicy::place;
  [[nodiscard]] std::vector<NodeId> place(const ClusterTopology& topo,
                                          const std::vector<bool>& active,
                                          std::uint32_t replication,
                                          common::Rng& rng) override;
};

// Primary replica cycles round-robin over active nodes; remaining replicas
// random. Gives the most uniform block count per node — useful as a
// best-case baseline.
class RoundRobinPlacement final : public PlacementPolicy {
 public:
  using PlacementPolicy::place;
  [[nodiscard]] std::vector<NodeId> place(const ClusterTopology& topo,
                                          const std::vector<bool>& active,
                                          std::uint32_t replication,
                                          common::Rng& rng) override;

 private:
  NodeId next_ = 0;
};

// HDFS default policy: replica 1 on a random "writer" node, replicas 2..r on
// distinct nodes of one different rack (falls back to any node when the
// topology has a single rack or no remote rack has enough active nodes).
class RackAwarePlacement final : public PlacementPolicy {
 public:
  using PlacementPolicy::place;
  [[nodiscard]] std::vector<NodeId> place(const ClusterTopology& topo,
                                          const std::vector<bool>& active,
                                          std::uint32_t replication,
                                          common::Rng& rng) override;
};

}  // namespace datanet::dfs
