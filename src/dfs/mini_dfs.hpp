#pragma once
// MiniDfs: an in-memory simulation of HDFS with exactly the properties the
// paper relies on — fixed-size blocks, r-way replication, a NameNode-style
// block->replica map, and per-node block inventories. Record lines never
// straddle a block boundary (Hadoop's line record reader presents the same
// record-complete view to map tasks).
//
// Failure model: every block carries a CRC32 checksum computed at commit
// time, and each replica can be independently marked corrupt (a datanode
// copy going bad). Reads verify: read_block / read_replica throw
// BlockCorruptError on checksum failure, and report_corrupt_replica models
// the NameNode dropping a bad copy and re-replicating from a healthy one.
// corrupt_block / corrupt_replica are the test/fault-injection hooks.
//
// Concurrency contract (single mutator, many readers): one external mutator
// thread at a time (writers, fault hooks, ReplicationMonitor healing) may run
// against any number of concurrent reader threads. Namespace metadata is
// guarded by an internal shared_mutex; committed block BYTES never move
// (deque storage) and are mutated only by corrupt_block, which waits for
// outstanding read pins to drain first. Reader threads racing a mutator must
//   - read bytes through read_block_pinned / read_replica_pinned (the view
//     stays valid for the pin's lifetime), and
//   - take replica sets via replicas_snapshot (by value), not
//     block(id).replicas.
// Reference-returning accessors (block, blocks_of, blocks_on, read_block)
// hand out references that are only stable on the mutator thread or while
// the namespace is quiescent — the single-threaded idiom every offline
// builder, bench and test keeps using unchanged.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "dfs/placement.hpp"
#include "dfs/topology.hpp"

namespace datanet::dfs {

using BlockId = std::uint64_t;

// Thrown when a read touches data whose CRC32 no longer matches the checksum
// recorded at commit time (or a replica marked bad by fault injection).
class BlockCorruptError : public std::runtime_error {
 public:
  BlockCorruptError(BlockId id, std::string what)
      : std::runtime_error(std::move(what)), block_id(id) {}
  BlockId block_id;
};

struct BlockInfo {
  BlockId id = 0;
  std::string file;
  std::uint32_t index_in_file = 0;  // 0-based block ordinal within the file
  std::uint64_t size_bytes = 0;
  std::uint64_t num_records = 0;
  std::uint32_t checksum = 0;    // CRC32 of the block bytes at commit
  std::vector<NodeId> replicas;  // distinct nodes hosting a copy
};

// Snapshot of one open (unsealed) block: durable bytes that are not yet part
// of the query surface. Returned by open_blocks() for fsck and recovery
// audits.
struct OpenBlockInfo {
  BlockId id = 0;
  std::string file;
  std::uint64_t extents_applied = 0;  // group commits folded into the block
  std::uint64_t size_bytes = 0;
  std::uint64_t num_records = 0;
};

struct DfsOptions {
  std::uint64_t block_size = 1ull << 20;  // scaled-down stand-in for 64 MB
  std::uint32_t replication = 3;
  std::uint64_t seed = 42;
  // When true (the default), decommission and report_corrupt_replica
  // re-replicate inline, one-shot, as they always have. When false the
  // NameNode only records the damage and a ReplicationMonitor is expected to
  // heal under-replication in the background (rate-limited, prioritized).
  bool inline_repair = true;
};

class MiniDfs;
class EditLog;
struct EditRecord;
class FsImage;

// RAII read pin on one block. While any pin is held, that block's bytes are
// neither mutated nor relocated, so zero-copy string_views into them stay
// valid even while a mutator thread heals, drops replicas, or tries to
// corrupt the block concurrently (corrupt_block blocks until pins drain).
// Move-only; releasing is lock-free, so pin holders can never deadlock a
// waiting mutator. A default-constructed pin holds nothing.
class BlockPin {
 public:
  BlockPin() noexcept = default;
  BlockPin(BlockPin&& other) noexcept
      : count_(std::exchange(other.count_, nullptr)) {}
  BlockPin& operator=(BlockPin&& other) noexcept {
    if (this != &other) {
      release();
      count_ = std::exchange(other.count_, nullptr);
    }
    return *this;
  }
  BlockPin(const BlockPin&) = delete;
  BlockPin& operator=(const BlockPin&) = delete;
  ~BlockPin() { release(); }

  [[nodiscard]] bool holds() const noexcept { return count_ != nullptr; }
  void release() noexcept {
    if (count_ != nullptr) {
      count_->fetch_sub(1, std::memory_order_release);
      count_ = nullptr;
    }
  }

 private:
  friend class MiniDfs;
  explicit BlockPin(std::atomic<std::uint32_t>* count) noexcept
      : count_(count) {}
  std::atomic<std::uint32_t>* count_ = nullptr;  // stable: deque element
};

// A pinned zero-copy read: `data` is valid exactly as long as `pin` is held.
struct PinnedRead {
  std::string_view data;
  BlockPin pin;
};

// Outcome of MiniDfs::recover beyond the rebuilt namespace itself.
struct RecoveryInfo {
  std::uint64_t replayed_frames = 0;  // journal suffix frames applied
  std::uint64_t skipped_frames = 0;   // frames already covered by the image
  std::uint64_t dropped_bytes = 0;    // torn tail discarded by replay
  bool torn = false;
};

// Append-only writer; blocks are sealed when a record would overflow the
// block size (a record larger than a block gets a block of its own).
class FileWriter {
 public:
  ~FileWriter();
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;
  FileWriter(FileWriter&&) noexcept;
  FileWriter& operator=(FileWriter&&) = delete;

  // `record` must not contain '\n'; a trailing '\n' is added by the writer.
  void append(std::string_view record);

  void close();

 private:
  friend class MiniDfs;
  FileWriter(MiniDfs* dfs, std::string path);
  void seal_block();

  MiniDfs* dfs_;  // null after close/move
  std::string path_;
  std::string buffer_;
  std::uint64_t buffered_records_ = 0;
};

class MiniDfs {
 public:
  MiniDfs(ClusterTopology topology, DfsOptions options,
          std::unique_ptr<PlacementPolicy> placement);

  // Convenience: random placement (the regime analyzed in Section II-B).
  MiniDfs(ClusterTopology topology, DfsOptions options);

  [[nodiscard]] FileWriter create(std::string path);

  [[nodiscard]] bool exists(std::string_view path) const;
  [[nodiscard]] const std::vector<BlockId>& blocks_of(std::string_view path) const;
  [[nodiscard]] const BlockInfo& block(BlockId id) const;
  // Read the logical block bytes; throws BlockCorruptError when the data no
  // longer matches its commit-time checksum (verification is memoized, so
  // the CRC is recomputed only after corruption hooks touch the block).
  [[nodiscard]] std::string_view read_block(BlockId id) const;
  [[nodiscard]] const std::vector<BlockId>& blocks_on(NodeId node) const;

  // ---- concurrent-reader API (see the contract in the file comment) ----

  // Pinned zero-copy reads: same semantics and errors as read_block /
  // read_replica, but the returned view is guaranteed valid for the pin's
  // lifetime even while the mutator thread runs. The concurrent selection
  // path (datanetd jobs racing background healing) reads through these.
  [[nodiscard]] PinnedRead read_block_pinned(BlockId id) const;
  [[nodiscard]] PinnedRead read_replica_pinned(BlockId id, NodeId node) const;

  // By-value copy of block(id).replicas, taken under the namespace lock —
  // the form of replica lookup that is safe against concurrent healing
  // (graph builders use this when jobs run against a live mutator).
  [[nodiscard]] std::vector<NodeId> replicas_snapshot(BlockId id) const;

  [[nodiscard]] const ClusterTopology& topology() const noexcept { return topology_; }
  [[nodiscard]] const DfsOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::uint64_t num_blocks() const noexcept { return blocks_.size(); }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::vector<std::string> list_files() const;

  // True iff `node` hosts a replica of `id`.
  [[nodiscard]] bool is_local(BlockId id, NodeId node) const;

  // ---- streaming ingestion (open blocks, PR 10) ----
  //
  // An open block is a block whose bytes are durable — placement is fixed
  // and journaled at open, every append_extent is one journaled group
  // commit — but which is NOT yet part of the query surface: blocks_of(),
  // ElasticMap builds and selection see only sealed blocks, so a reader
  // racing ingestion always observes a committed prefix of whole blocks.
  // Open-block bytes may relocate on append, so pinned zero-copy reads
  // refuse open blocks; plain read_block works on the mutator thread.
  // All three mutators follow the single-mutator contract.

  // Allocate the next block id for `path` (which must exist), place its
  // replicas now, and journal the placement. The block starts empty.
  BlockId open_block(const std::string& path);

  // Append one group-committed extent (one journal frame + flush). `data`
  // is raw line-oriented bytes (records already '\n'-terminated). The
  // block's checksum is recomputed over the grown bytes so verify_block
  // and checkpoints stay uniform across open and sealed blocks.
  void append_extent(BlockId id, std::string_view data,
                     std::uint64_t num_records);

  // Publish the block into its file's block list (index_in_file assigned
  // here) and journal the seal with the final record count + checksum.
  void seal_block(BlockId id);

  [[nodiscard]] bool is_block_open(BlockId id) const;
  // Every open block, ascending by id.
  [[nodiscard]] std::vector<OpenBlockInfo> open_blocks() const;

  // ---- fault handling ----

  // Take a node out of service. Every replica it held is re-created on an
  // active node that does not already hold the block (NameNode
  // re-replication). Returns the ids of blocks whose LAST replica lived on
  // the node — with a single in-memory copy per block those are lost only
  // when replication = 1. Idempotent for already-inactive nodes.
  std::vector<BlockId> decommission(NodeId node);

  [[nodiscard]] bool is_active(NodeId node) const;
  [[nodiscard]] std::uint32_t num_active_nodes() const noexcept {
    return active_nodes_;
  }

  // O(1) count of under-replicated blocks, maintained incrementally at every
  // replica-set mutation. Matches dfs::fsck exactly: a block counts iff
  // 0 < replicas < min(target replication, active nodes) — so post-run
  // health reporting never rescans the namespace. Atomic: job reports read
  // it from reader threads while the monitor heals.
  [[nodiscard]] std::uint64_t under_replicated_count() const noexcept {
    return cs_->under_replicated.load(std::memory_order_relaxed);
  }

  // Monotone counter bumped by every mutation that can change replica
  // placement or health (commits, drops, repairs, moves, corruption marks).
  // ReplicationMonitor::scan compares it against the epoch of its last full
  // scan to skip whole-namespace rescans when nothing changed; the server's
  // dataset cache uses it for epoch-based invalidation. Atomic for the same
  // reader-vs-mutator reason as under_replicated_count.
  [[nodiscard]] std::uint64_t mutation_epoch() const noexcept {
    return cs_->mutation_epoch.load(std::memory_order_relaxed);
  }

  // Relocate one replica of `id` from `from` to `to` (balancer primitive).
  // Throws unless `from` hosts the block, `to` is an active node that does
  // not already host it. A corrupt source copy stays corrupt after the move.
  void move_replica(BlockId id, NodeId from, NodeId to);

  // ---- checksums & corruption ----

  // Fault hook: flip one byte of the stored block data, so every replica
  // fails verification (media corruption of the logical block).
  void corrupt_block(BlockId id);

  // Fault hook: mark the copy of `id` hosted on `node` as corrupt (a single
  // datanode's disk going bad). Throws unless `node` hosts the block.
  void corrupt_replica(BlockId id, NodeId node);

  // Recompute-and-compare the block's CRC32 (memoized until the next
  // corruption hook touches the block).
  [[nodiscard]] bool verify_block(BlockId id) const;

  // True iff `node` hosts `id`, is active, the copy is not marked corrupt,
  // and the block data passes verification.
  [[nodiscard]] bool replica_healthy(BlockId id, NodeId node) const;

  // Read through a specific replica, as a map task on `node` (or fetching
  // from it) would. Throws std::invalid_argument unless `node` hosts the
  // block; throws BlockCorruptError when that copy fails its checksum.
  [[nodiscard]] std::string_view read_replica(BlockId id, NodeId node) const;

  // NameNode reaction to a client-reported checksum failure: drop the bad
  // copy on `node` and (inline_repair only) re-replicate from a healthy
  // replica onto an active node that does not already host the block.
  // Returns true when a healthy replica remains afterwards; false means the
  // block is unreadable (every copy bad — with replication 1 or
  // corrupt_block).
  bool report_corrupt_replica(BlockId id, NodeId node);

  // Copy of the marked-corrupt node list for `id`, sorted (empty when every
  // copy is clean). Read by the ReplicationMonitor scrub pass and the CLI.
  [[nodiscard]] std::vector<NodeId> corrupt_replica_marks(BlockId id) const;

  // ---- crash recovery ----

  // Attach a write-ahead journal; every namespace mutation from here on is
  // appended (and flushed) before the in-memory state returns to the caller.
  // Non-owning: `log` must outlive the attachment. Pass nullptr to detach.
  void attach_edit_log(EditLog* log) noexcept { journal_ = log; }
  [[nodiscard]] EditLog* edit_log() const noexcept { return journal_; }

  static constexpr std::uint64_t kKeepAllBytes = ~0ull;
  // Kill the NameNode process: seal the attached journal (optionally tearing
  // its tail down to `journal_keep_bytes` — a crash mid-append) and detach
  // it. The in-memory object stays readable so tests can compare the live
  // namespace against what recover() rebuilds.
  void crash_namenode(std::uint64_t journal_keep_bytes = kKeepAllBytes);

  // Rebuild a NameNode from the last checkpoint plus the journal suffix:
  // FsImage::load(image_path), then apply every intact journal frame past the
  // offset the image covers. Torn tails are dropped, never thrown. The
  // recovered instance uses RandomPlacement and a fresh placement RNG — the
  // namespace is restored exactly, the RNG stream is not.
  [[nodiscard]] static MiniDfs recover(const std::string& image_path,
                                       const std::string& journal_path,
                                       RecoveryInfo* info = nullptr);

  // Order-insensitive digest of the durable namespace: files, block
  // metadata + bytes, sorted replica sets, and the active-node mask.
  // Corruption marks and verification memos are runtime health state and are
  // deliberately excluded (they are rediscovered by scanning, not recovered).
  [[nodiscard]] std::uint64_t namespace_digest() const;

  // ---- background healing primitive ----

  // Add one replica of `id` on an active non-hosting node chosen by the
  // placement policy. Requires a healthy source copy. Returns the target
  // node, or nullopt when the block has no healthy source or no eligible
  // target (then it is unrepairable for now). Used by ReplicationMonitor.
  std::optional<NodeId> repair_block(BlockId id);

 private:
  friend class FileWriter;
  friend class FsImage;

  // Verification memo per block: 0 = unknown, 1 = ok, 2 = bad. Reset to
  // unknown by corrupt_block so the next read recomputes honestly.
  enum : std::uint8_t { kUnknown = 0, kOk = 1, kBad = 2 };

  // Cross-thread state. Boxed so MiniDfs stays movable (FsImage::load and
  // recover return by value); the box itself is never null and never moves
  // while readers run, so BlockPin can point straight at a pin counter.
  struct ConcurrencyState {
    // Readers take shared, the mutator takes unique. Public methods lock and
    // delegate to *_unlocked private helpers (shared_mutex is non-reentrant).
    mutable std::shared_mutex mu;
    // Per-block memos/pins live in deques: elements never move on growth, so
    // lock-free access through raw pointers/references stays valid.
    mutable std::deque<std::atomic<std::uint8_t>> verified;
    mutable std::deque<std::atomic<std::uint32_t>> pins;
    std::atomic<std::uint64_t> under_replicated{0};
    std::atomic<std::uint64_t> mutation_epoch{0};
  };

  // Per-open-block bookkeeping beyond what BlockInfo carries. Ordered map:
  // digest and open_blocks() iterate it deterministically.
  struct OpenBlockState {
    std::string file;
    std::uint64_t extents_applied = 0;
  };

  BlockId commit_block(const std::string& path, std::string data,
                       std::uint64_t num_records);
  // Lock-free internals shared by the live mutators and apply_edit.
  BlockId open_block_impl(const std::string& path,
                          std::vector<NodeId> replicas);
  void append_extent_impl(BlockId id, std::string_view data,
                          std::uint64_t num_records);
  void seal_block_impl(BlockId id);
  [[nodiscard]] bool replica_marked_corrupt(BlockId id, NodeId node) const;
  [[nodiscard]] bool is_local_unlocked(BlockId id, NodeId node) const;
  [[nodiscard]] bool verify_block_unlocked(BlockId id) const;
  [[nodiscard]] bool replica_healthy_unlocked(BlockId id, NodeId node) const;
  [[nodiscard]] std::string_view read_block_unlocked(BlockId id) const;
  // Grow the per-block runtime state (verify memo + pin counter) in step
  // with blocks_/block_data_; every block-adding path must call this.
  void push_block_runtime_state(std::uint8_t verified);
  // Journal one record iff a journal is attached.
  void log_edit(const EditRecord& record);
  // Replay-side interpreter: idempotent application of one journal record
  // (already-applied records are skipped, so checkpoint + full journal and
  // checkpoint + suffix converge to the same namespace).
  void apply_edit(const EditRecord& record);
  // Deactivate `node` and drop every replica it held (no re-replication, no
  // journaling); returns the blocks that were hosted there.
  std::vector<BlockId> drop_node(NodeId node);
  // Drop the copy of `id` on `node` (replica list, inventory, corruption
  // mark); returns false when `node` does not host the block.
  bool drop_replica(BlockId id, NodeId node);
  // Shared inline-repair choice rule: uniform over active non-hosting nodes.
  [[nodiscard]] std::optional<NodeId> pick_rereplication_target(
      const std::vector<NodeId>& reps);
  void move_replica_impl(BlockId id, NodeId from, NodeId to);
  // Incremental under-replication accounting: bracket every replica-set
  // change with changing (before) / changed (after); recount when the
  // active-node count moves (the threshold shifts for every block at once).
  [[nodiscard]] bool is_under_replicated(BlockId id) const;
  void replicas_changing(BlockId id);
  void replicas_changed(BlockId id);
  void recount_under_replicated();

  ClusterTopology topology_;
  DfsOptions options_;
  std::unique_ptr<PlacementPolicy> placement_;
  common::Rng placement_rng_;

  // blocks_ and block_data_ are deques so committed BlockInfo records and
  // block bytes never relocate on namespace growth — the anchor for every
  // zero-copy view and pin handed out to concurrent readers.
  std::deque<BlockInfo> blocks_;        // BlockId == index
  std::deque<std::string> block_data_;  // BlockId -> bytes (one copy)
  std::unordered_map<std::string, std::vector<BlockId>> files_;
  std::vector<std::vector<BlockId>> node_blocks_;  // node -> hosted blocks
  std::vector<bool> node_active_;
  std::uint32_t active_nodes_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::unique_ptr<ConcurrencyState> cs_ =
      std::make_unique<ConcurrencyState>();
  // (block -> nodes whose copy is marked bad); sparse, fault-injection only.
  std::unordered_map<BlockId, std::vector<NodeId>> corrupt_replicas_;
  // Blocks opened but not yet sealed: present in blocks_/block_data_ (dense
  // ids) but absent from files_ until seal_block publishes them.
  std::map<BlockId, OpenBlockState> open_blocks_;
  EditLog* journal_ = nullptr;  // non-owning; nullptr = no durability
};

}  // namespace datanet::dfs
