#pragma once
// MiniDfs: an in-memory simulation of HDFS with exactly the properties the
// paper relies on — fixed-size blocks, r-way replication, a NameNode-style
// block->replica map, and per-node block inventories. Record lines never
// straddle a block boundary (Hadoop's line record reader presents the same
// record-complete view to map tasks).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "dfs/placement.hpp"
#include "dfs/topology.hpp"

namespace datanet::dfs {

using BlockId = std::uint64_t;

struct BlockInfo {
  BlockId id = 0;
  std::string file;
  std::uint32_t index_in_file = 0;  // 0-based block ordinal within the file
  std::uint64_t size_bytes = 0;
  std::uint64_t num_records = 0;
  std::vector<NodeId> replicas;  // distinct nodes hosting a copy
};

struct DfsOptions {
  std::uint64_t block_size = 1ull << 20;  // scaled-down stand-in for 64 MB
  std::uint32_t replication = 3;
  std::uint64_t seed = 42;
};

class MiniDfs;

// Append-only writer; blocks are sealed when a record would overflow the
// block size (a record larger than a block gets a block of its own).
class FileWriter {
 public:
  ~FileWriter();
  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;
  FileWriter(FileWriter&&) noexcept;
  FileWriter& operator=(FileWriter&&) = delete;

  // `record` must not contain '\n'; a trailing '\n' is added by the writer.
  void append(std::string_view record);

  void close();

 private:
  friend class MiniDfs;
  FileWriter(MiniDfs* dfs, std::string path);
  void seal_block();

  MiniDfs* dfs_;  // null after close/move
  std::string path_;
  std::string buffer_;
  std::uint64_t buffered_records_ = 0;
};

class MiniDfs {
 public:
  MiniDfs(ClusterTopology topology, DfsOptions options,
          std::unique_ptr<PlacementPolicy> placement);

  // Convenience: random placement (the regime analyzed in Section II-B).
  MiniDfs(ClusterTopology topology, DfsOptions options);

  [[nodiscard]] FileWriter create(std::string path);

  [[nodiscard]] bool exists(std::string_view path) const;
  [[nodiscard]] const std::vector<BlockId>& blocks_of(std::string_view path) const;
  [[nodiscard]] const BlockInfo& block(BlockId id) const;
  [[nodiscard]] std::string_view read_block(BlockId id) const;
  [[nodiscard]] const std::vector<BlockId>& blocks_on(NodeId node) const;

  [[nodiscard]] const ClusterTopology& topology() const noexcept { return topology_; }
  [[nodiscard]] const DfsOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::uint64_t num_blocks() const noexcept { return blocks_.size(); }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::vector<std::string> list_files() const;

  // True iff `node` hosts a replica of `id`.
  [[nodiscard]] bool is_local(BlockId id, NodeId node) const;

  // ---- fault handling ----

  // Take a node out of service. Every replica it held is re-created on an
  // active node that does not already hold the block (NameNode
  // re-replication). Returns the ids of blocks whose LAST replica lived on
  // the node — with a single in-memory copy per block those are lost only
  // when replication = 1. Idempotent for already-inactive nodes.
  std::vector<BlockId> decommission(NodeId node);

  [[nodiscard]] bool is_active(NodeId node) const;
  [[nodiscard]] std::uint32_t num_active_nodes() const noexcept {
    return active_nodes_;
  }

  // Relocate one replica of `id` from `from` to `to` (balancer primitive).
  // Throws unless `from` hosts the block, `to` is an active node that does
  // not already host it.
  void move_replica(BlockId id, NodeId from, NodeId to);

 private:
  friend class FileWriter;
  BlockId commit_block(const std::string& path, std::string data,
                       std::uint64_t num_records);

  ClusterTopology topology_;
  DfsOptions options_;
  std::unique_ptr<PlacementPolicy> placement_;
  common::Rng placement_rng_;

  std::vector<BlockInfo> blocks_;             // BlockId == index
  std::vector<std::string> block_data_;       // BlockId -> bytes (one copy)
  std::unordered_map<std::string, std::vector<BlockId>> files_;
  std::vector<std::vector<BlockId>> node_blocks_;  // node -> hosted blocks
  std::vector<bool> node_active_;
  std::uint32_t active_nodes_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace datanet::dfs
