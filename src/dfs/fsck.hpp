#pragma once
// NameNode administrative utilities: fsck (replication health report) and a
// balancer that evens out per-node block counts by moving replicas — the
// MiniDfs counterparts of `hdfs fsck` and the HDFS balancer. Used by the
// fault-handling tests and available to examples/CLI users.

#include <cstdint>
#include <string>
#include <vector>

#include "dfs/meta_plane.hpp"
#include "dfs/mini_dfs.hpp"

namespace datanet::dfs {

struct FsckReport {
  std::uint64_t total_blocks = 0;
  std::uint64_t healthy_blocks = 0;        // replicas == target
  std::uint64_t under_replicated = 0;      // 0 < replicas < target
  std::uint64_t missing_blocks = 0;        // no replicas at all
  std::uint64_t over_replicated = 0;       // replicas > target
  std::uint64_t open_blocks = 0;           // unsealed (mid-ingestion) blocks
  std::uint64_t open_bytes = 0;            // committed bytes in open blocks
  std::vector<std::uint64_t> node_block_counts;  // replicas hosted per node
  double replica_balance_cv = 0.0;  // cv of counts over *active* nodes

  [[nodiscard]] bool healthy() const {
    return missing_blocks == 0 && under_replicated == 0;
  }
};

// Inspect the replica map against the configured replication target.
[[nodiscard]] FsckReport fsck(const MiniDfs& dfs);

// Plane-wide fsck: every shard inspected independently (a shard is a full
// NameNode with its own replica map), plus a combined roll-up whose counts
// are summed, node loads added element-wise, and balance cv recomputed over
// the summed per-node loads. healthy() == every shard healthy. Throws
// ShardUnavailableError while any shard is crashed — recover first, then
// audit (fsck over a half-dead plane would under-count damage).
struct PlaneFsckReport {
  std::vector<FsckReport> shards;  // index == shard id
  FsckReport combined;

  [[nodiscard]] bool healthy() const { return combined.healthy(); }
};

[[nodiscard]] PlaneFsckReport fsck(const MetaPlane& plane);

// One row of the under-replication table: a block with fewer replicas than
// its effective target (min(configured replication, active nodes) — the same
// rule fsck counts by, so draining this list leaves fsck clean).
struct UnderReplicatedBlock {
  BlockId block = 0;
  std::uint32_t surviving = 0;  // current replica count
  std::uint32_t target = 0;     // effective target
};

// All under-replicated blocks, most-damaged first (fewest surviving
// replicas, block id as tiebreak) — the ReplicationMonitor's work queue
// order and the CLI's table.
[[nodiscard]] std::vector<UnderReplicatedBlock> under_replicated_blocks(
    const MiniDfs& dfs);

// Post-run invariant over a faulted DFS: a completed selection may leave
// blocks under-replicated (kills strand replicas until re-replication
// catches up), but data must never silently go missing — unless the cluster
// ran with replication == 1, where a single kill legitimately destroys the
// only copy. `ok` false carries a human-readable violation.
struct PostFaultCheck {
  FsckReport report;
  bool ok = true;
  std::string violation;
};

// Open-block integrity audit (PR 10): compares the live NameNode's open
// blocks against what the durable state (checkpoint + journal) says they
// should hold — `durable` is a MiniDfs::recover'd instance of the same
// namespace. A clean run always matches (MiniDfs only holds committed
// bytes); a mismatch means a group commit was lost or stored bytes diverged
// from the journaled length, and `datanet fsck` exits non-zero on it.
struct OpenBlockAudit {
  std::uint64_t open_blocks = 0;   // open blocks on the live side
  std::uint64_t open_bytes = 0;    // committed bytes across them
  std::uint64_t mismatched = 0;
  std::vector<std::string> violations;  // one human-readable line each

  [[nodiscard]] bool ok() const { return mismatched == 0; }
};

[[nodiscard]] OpenBlockAudit audit_open_blocks(const MiniDfs& live,
                                               const MiniDfs& durable);

[[nodiscard]] PostFaultCheck check_post_fault_invariants(const MiniDfs& dfs);

struct BalanceResult {
  std::uint64_t moves = 0;  // replicas relocated
  FsckReport after;
};

// Even out per-node replica counts: repeatedly move one replica from the
// most-loaded active node to the least-loaded active node that does not
// already hold the block, until the spread is within `tolerance` blocks or
// no legal move remains. Never changes a block's replica count.
BalanceResult balance_replicas(MiniDfs& dfs, std::uint64_t tolerance = 1);

}  // namespace datanet::dfs
