#include "dfs/placement.hpp"

#include <algorithm>
#include <stdexcept>

namespace datanet::dfs {

namespace {

// Choose `count` distinct nodes uniformly from `pool`, excluding any already
// in `out`. Appends to `out`.
void pick_distinct(const std::vector<NodeId>& pool, std::uint32_t count,
                   common::Rng& rng, std::vector<NodeId>& out) {
  std::vector<NodeId> candidates;
  candidates.reserve(pool.size());
  for (NodeId n : pool) {
    if (std::find(out.begin(), out.end(), n) == out.end()) candidates.push_back(n);
  }
  if (candidates.size() < count) {
    throw std::invalid_argument("placement: not enough nodes for replication");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t j =
        i + rng.bounded(static_cast<std::uint64_t>(candidates.size()) - i);
    std::swap(candidates[i], candidates[j]);
    out.push_back(candidates[i]);
  }
}

std::vector<NodeId> all_nodes(const ClusterTopology& topo) {
  std::vector<NodeId> v(topo.num_nodes());
  for (NodeId n = 0; n < topo.num_nodes(); ++n) v[n] = n;
  return v;
}

}  // namespace

std::vector<NodeId> RandomPlacement::place(const ClusterTopology& topo,
                                           std::uint32_t replication,
                                           common::Rng& rng) {
  std::vector<NodeId> out;
  out.reserve(replication);
  pick_distinct(all_nodes(topo), replication, rng, out);
  return out;
}

std::vector<NodeId> RoundRobinPlacement::place(const ClusterTopology& topo,
                                               std::uint32_t replication,
                                               common::Rng& rng) {
  std::vector<NodeId> out;
  out.reserve(replication);
  out.push_back(next_);
  next_ = (next_ + 1) % topo.num_nodes();
  if (replication > 1) pick_distinct(all_nodes(topo), replication - 1, rng, out);
  return out;
}

std::vector<NodeId> RackAwarePlacement::place(const ClusterTopology& topo,
                                              std::uint32_t replication,
                                              common::Rng& rng) {
  std::vector<NodeId> out;
  out.reserve(replication);
  const NodeId writer = static_cast<NodeId>(rng.bounded(topo.num_nodes()));
  out.push_back(writer);
  if (replication == 1) return out;

  if (topo.num_racks() <= 1) {
    pick_distinct(all_nodes(topo), replication - 1, rng, out);
    return out;
  }
  // Pick a remote rack with enough free nodes; fall back to the whole cluster
  // if none can host all remaining replicas.
  const RackId local = topo.rack_of(writer);
  std::vector<RackId> remote;
  for (RackId r = 0; r < topo.num_racks(); ++r) {
    if (r != local && topo.nodes_in_rack(r).size() >= replication - 1) {
      remote.push_back(r);
    }
  }
  if (remote.empty()) {
    pick_distinct(all_nodes(topo), replication - 1, rng, out);
  } else {
    const RackId r = remote[rng.bounded(remote.size())];
    pick_distinct(topo.nodes_in_rack(r), replication - 1, rng, out);
  }
  return out;
}

}  // namespace datanet::dfs
