#include "dfs/placement.hpp"

#include <algorithm>
#include <stdexcept>

namespace datanet::dfs {

namespace {

bool node_active(const std::vector<bool>& active, NodeId n) {
  return active.empty() || active[n];
}

// Choose `count` distinct nodes uniformly from `pool`, excluding any already
// in `out`. Appends to `out`.
void pick_distinct(const std::vector<NodeId>& pool, std::uint32_t count,
                   common::Rng& rng, std::vector<NodeId>& out) {
  std::vector<NodeId> candidates;
  candidates.reserve(pool.size());
  for (NodeId n : pool) {
    if (std::find(out.begin(), out.end(), n) == out.end()) candidates.push_back(n);
  }
  if (candidates.size() < count) {
    throw std::invalid_argument("placement: not enough active nodes for replication");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t j =
        i + rng.bounded(static_cast<std::uint64_t>(candidates.size()) - i);
    std::swap(candidates[i], candidates[j]);
    out.push_back(candidates[i]);
  }
}

std::vector<NodeId> live_nodes(const ClusterTopology& topo,
                               const std::vector<bool>& active) {
  std::vector<NodeId> v;
  v.reserve(topo.num_nodes());
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (node_active(active, n)) v.push_back(n);
  }
  return v;
}

std::vector<NodeId> live_nodes_in_rack(const ClusterTopology& topo, RackId rack,
                                       const std::vector<bool>& active) {
  std::vector<NodeId> v;
  for (NodeId n : topo.nodes_in_rack(rack)) {
    if (node_active(active, n)) v.push_back(n);
  }
  return v;
}

}  // namespace

std::vector<NodeId> RandomPlacement::place(const ClusterTopology& topo,
                                           const std::vector<bool>& active,
                                           std::uint32_t replication,
                                           common::Rng& rng) {
  std::vector<NodeId> out;
  out.reserve(replication);
  pick_distinct(live_nodes(topo, active), replication, rng, out);
  return out;
}

std::vector<NodeId> RoundRobinPlacement::place(const ClusterTopology& topo,
                                               const std::vector<bool>& active,
                                               std::uint32_t replication,
                                               common::Rng& rng) {
  const auto pool = live_nodes(topo, active);
  if (pool.empty() || pool.size() < replication) {
    throw std::invalid_argument("placement: not enough active nodes for replication");
  }
  // Advance the cursor past dead nodes so the primary keeps cycling over the
  // surviving cluster.
  while (!node_active(active, next_)) next_ = (next_ + 1) % topo.num_nodes();
  std::vector<NodeId> out;
  out.reserve(replication);
  out.push_back(next_);
  next_ = (next_ + 1) % topo.num_nodes();
  if (replication > 1) pick_distinct(pool, replication - 1, rng, out);
  return out;
}

std::vector<NodeId> RackAwarePlacement::place(const ClusterTopology& topo,
                                              const std::vector<bool>& active,
                                              std::uint32_t replication,
                                              common::Rng& rng) {
  const auto pool = live_nodes(topo, active);
  if (pool.size() < replication) {
    throw std::invalid_argument("placement: not enough active nodes for replication");
  }
  std::vector<NodeId> out;
  out.reserve(replication);
  const NodeId writer = pool[rng.bounded(pool.size())];
  out.push_back(writer);
  if (replication == 1) return out;

  if (topo.num_racks() <= 1) {
    pick_distinct(pool, replication - 1, rng, out);
    return out;
  }
  // Pick a remote rack with enough free active nodes; fall back to the whole
  // cluster if none can host all remaining replicas.
  const RackId local = topo.rack_of(writer);
  std::vector<RackId> remote;
  for (RackId r = 0; r < topo.num_racks(); ++r) {
    if (r != local &&
        live_nodes_in_rack(topo, r, active).size() >= replication - 1) {
      remote.push_back(r);
    }
  }
  if (remote.empty()) {
    pick_distinct(pool, replication - 1, rng, out);
  } else {
    const RackId r = remote[rng.bounded(remote.size())];
    pick_distinct(live_nodes_in_rack(topo, r, active), replication - 1, rng, out);
  }
  return out;
}

}  // namespace datanet::dfs
