#include "dfs/ingest.hpp"

#include <stdexcept>
#include <utility>

namespace datanet::dfs {

Ingestor::Ingestor(MiniDfs& dfs, std::string path, IngestOptions options)
    : dfs_(&dfs), path_(std::move(path)), options_(options) {
  if (options_.group_records == 0) {
    throw std::invalid_argument("Ingestor: group_records must be positive");
  }
  if (!dfs_->exists(path_)) {
    dfs_->create(path_).close();
    return;
  }
  // Recovery handoff: adopt the open block a crashed ingestor left behind
  // (at most one per path under the single-mutator contract), so continued
  // ingestion packs it full before opening a new one — block boundaries stay
  // identical to a run that never crashed.
  for (const auto& open : dfs_->open_blocks()) {
    if (open.file != path_) continue;
    block_ = open.id;
    block_bytes_ = open.size_bytes;
    block_open_ = true;
  }
}

Ingestor::~Ingestor() { close(); }

std::uint64_t Ingestor::open_bytes() const {
  return block_bytes_ + buffer_.size();
}

void Ingestor::append(std::string_view record) {
  if (dfs_ == nullptr) throw std::logic_error("Ingestor: append after close");
  if (record.find('\n') != std::string_view::npos) {
    throw std::invalid_argument("Ingestor: record contains newline");
  }
  const std::uint64_t needed = record.size() + 1;
  // FileWriter's boundary rule: seal when the record would overflow a
  // non-empty block; an oversized record gets a block of its own.
  if (open_bytes() > 0 && open_bytes() + needed > dfs_->options().block_size) {
    seal();
  }
  buffer_.append(record);
  buffer_.push_back('\n');
  ++buffered_records_;
  ++stats_.records_appended;
  if (buffered_records_ >= options_.group_records) flush();
}

void Ingestor::flush() {
  if (dfs_ == nullptr) throw std::logic_error("Ingestor: flush after close");
  if (buffer_.empty()) return;
  if (!block_open_) {
    block_ = dfs_->open_block(path_);
    block_open_ = true;
    ++stats_.blocks_opened;
  }
  dfs_->append_extent(block_, buffer_, buffered_records_);
  block_bytes_ += buffer_.size();
  stats_.records_committed += buffered_records_;
  stats_.bytes_committed += buffer_.size();
  ++stats_.group_commits;
  buffer_.clear();
  buffered_records_ = 0;
}

void Ingestor::seal() {
  if (dfs_ == nullptr) throw std::logic_error("Ingestor: seal after close");
  flush();
  if (!block_open_) return;
  dfs_->seal_block(block_);
  ++stats_.blocks_sealed;
  block_open_ = false;
  block_bytes_ = 0;
  if (on_seal) on_seal(block_);
}

void Ingestor::close() {
  if (dfs_ == nullptr) return;
  seal();
  dfs_ = nullptr;
}

}  // namespace datanet::dfs
