#include "dfs/mini_dfs.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/hash.hpp"
#include "dfs/edit_log.hpp"

namespace datanet::dfs {

// Locking discipline (see the contract in mini_dfs.hpp): public readers take
// a shared lock on cs_->mu and delegate to *_unlocked helpers; public
// mutators take a unique lock. Private helpers never lock — they are only
// reached with the appropriate lock already held (or from single-threaded
// recovery). shared_mutex is non-reentrant, so public methods must not call
// other locking public methods.

FileWriter::FileWriter(MiniDfs* dfs, std::string path)
    : dfs_(dfs), path_(std::move(path)) {}

FileWriter::FileWriter(FileWriter&& other) noexcept
    : dfs_(std::exchange(other.dfs_, nullptr)),
      path_(std::move(other.path_)),
      buffer_(std::move(other.buffer_)),
      buffered_records_(other.buffered_records_) {}

FileWriter::~FileWriter() { close(); }

void FileWriter::append(std::string_view record) {
  if (dfs_ == nullptr) throw std::logic_error("FileWriter: append after close");
  if (record.find('\n') != std::string_view::npos) {
    throw std::invalid_argument("FileWriter: record contains newline");
  }
  const std::uint64_t needed = record.size() + 1;
  if (!buffer_.empty() && buffer_.size() + needed > dfs_->options().block_size) {
    seal_block();
  }
  buffer_.append(record);
  buffer_.push_back('\n');
  ++buffered_records_;
}

void FileWriter::seal_block() {
  dfs_->commit_block(path_, std::move(buffer_), buffered_records_);
  buffer_.clear();
  buffered_records_ = 0;
}

void FileWriter::close() {
  if (dfs_ == nullptr) return;
  if (!buffer_.empty()) seal_block();
  dfs_ = nullptr;
}

MiniDfs::MiniDfs(ClusterTopology topology, DfsOptions options,
                 std::unique_ptr<PlacementPolicy> placement)
    : topology_(std::move(topology)),
      options_(options),
      placement_(std::move(placement)),
      placement_rng_(options.seed) {
  if (options_.block_size == 0) throw std::invalid_argument("block_size == 0");
  if (options_.replication == 0) throw std::invalid_argument("replication == 0");
  if (options_.replication > topology_.num_nodes()) {
    throw std::invalid_argument("replication exceeds cluster size");
  }
  node_blocks_.resize(topology_.num_nodes());
  node_active_.assign(topology_.num_nodes(), true);
  active_nodes_ = topology_.num_nodes();
}

MiniDfs::MiniDfs(ClusterTopology topology, DfsOptions options)
    : MiniDfs(std::move(topology), options, std::make_unique<RandomPlacement>()) {}

void MiniDfs::push_block_runtime_state(std::uint8_t verified) {
  cs_->verified.emplace_back(verified);
  cs_->pins.emplace_back(0);
}

FileWriter MiniDfs::create(std::string path) {
  {
    std::unique_lock lock(cs_->mu);
    if (files_.contains(path)) {
      throw std::invalid_argument("file exists: " + path);
    }
    files_.emplace(path, std::vector<BlockId>{});
    log_edit({.op = EditOp::kCreateFile, .file = path});
  }
  return FileWriter(this, std::move(path));
}

BlockId MiniDfs::commit_block(const std::string& path, std::string data,
                              std::uint64_t num_records) {
  std::unique_lock lock(cs_->mu);
  if (active_nodes_ == 0) {
    throw std::runtime_error("MiniDfs: no active nodes to place a block on");
  }
  // After failures the cluster may no longer support the configured
  // replication; like HDFS, write with as many replicas as fit rather than
  // failing the write.
  const std::uint32_t replication =
      std::min(options_.replication, active_nodes_);
  const BlockId id = blocks_.size();
  BlockInfo info;
  info.id = id;
  info.file = path;
  info.index_in_file = static_cast<std::uint32_t>(files_.at(path).size());
  info.size_bytes = data.size();
  info.num_records = num_records;
  info.checksum = common::crc32(data);
  info.replicas =
      placement_->place(topology_, node_active_, replication, placement_rng_);
  for (NodeId n : info.replicas) node_blocks_[n].push_back(id);
  total_bytes_ += info.size_bytes;
  files_.at(path).push_back(id);
  blocks_.push_back(std::move(info));
  block_data_.push_back(std::move(data));
  push_block_runtime_state(kOk);  // checksum just computed from these bytes
  replicas_changed(id);
  if (journal_ != nullptr) {
    const BlockInfo& b = blocks_.back();
    // The journal carries the block bytes: MiniDfs keeps the one in-memory
    // copy that stands in for the datanode plane, so a recovered NameNode
    // must get them from the log (or the checkpoint) to serve reads.
    log_edit({.op = EditOp::kAddBlock,
              .file = b.file,
              .block = b.id,
              .num_records = b.num_records,
              .checksum = b.checksum,
              .replicas = b.replicas,
              .data = block_data_.back()});
  }
  return id;
}

// ---- streaming ingestion (open blocks) ----

BlockId MiniDfs::open_block_impl(const std::string& path,
                                 std::vector<NodeId> replicas) {
  const BlockId id = blocks_.size();
  BlockInfo info;
  info.id = id;
  info.file = path;
  info.index_in_file = 0;  // assigned when the block seals
  info.checksum = common::crc32(std::string_view{});
  info.replicas = std::move(replicas);
  for (const NodeId n : info.replicas) node_blocks_[n].push_back(id);
  blocks_.push_back(std::move(info));
  block_data_.emplace_back();
  push_block_runtime_state(kOk);  // empty bytes match the empty-CRC
  open_blocks_.emplace(id, OpenBlockState{path, 0});
  replicas_changed(id);
  return id;
}

BlockId MiniDfs::open_block(const std::string& path) {
  std::unique_lock lock(cs_->mu);
  if (!files_.contains(path)) {
    throw std::out_of_range("open_block: no such file: " + path);
  }
  if (active_nodes_ == 0) {
    throw std::runtime_error("MiniDfs: no active nodes to place a block on");
  }
  const std::uint32_t replication =
      std::min(options_.replication, active_nodes_);
  auto replicas =
      placement_->place(topology_, node_active_, replication, placement_rng_);
  const BlockId id = open_block_impl(path, std::move(replicas));
  // Placement is journaled explicitly so replay never re-runs the RNG.
  log_edit({.op = EditOp::kOpenBlock,
            .file = path,
            .block = id,
            .replicas = blocks_[id].replicas});
  return id;
}

void MiniDfs::append_extent_impl(BlockId id, std::string_view data,
                                 std::uint64_t num_records) {
  auto& state = open_blocks_.at(id);
  block_data_[id].append(data);
  BlockInfo& b = blocks_[id];
  b.size_bytes += data.size();
  b.num_records += num_records;
  // The running CRC keeps verify_block and checkpoints uniform across open
  // and sealed blocks at every group-commit boundary.
  b.checksum = common::crc32(block_data_[id]);
  total_bytes_ += data.size();
  ++state.extents_applied;
  cs_->verified[id].store(kOk, std::memory_order_release);
  cs_->mutation_epoch.fetch_add(1, std::memory_order_relaxed);
}

void MiniDfs::append_extent(BlockId id, std::string_view data,
                            std::uint64_t num_records) {
  std::unique_lock lock(cs_->mu);
  const auto it = open_blocks_.find(id);
  if (it == open_blocks_.end()) {
    throw std::invalid_argument("append_extent: block not open");
  }
  const std::uint64_t seq = it->second.extents_applied;
  append_extent_impl(id, data, num_records);
  log_edit({.op = EditOp::kAppendExtent,
            .block = id,
            .num_records = num_records,
            .data = std::string(data),
            .extent_seq = seq});
}

void MiniDfs::seal_block_impl(BlockId id) {
  const auto it = open_blocks_.find(id);
  BlockInfo& b = blocks_[id];
  auto& file_blocks = files_.at(it->second.file);
  b.index_in_file = static_cast<std::uint32_t>(file_blocks.size());
  file_blocks.push_back(id);
  open_blocks_.erase(it);
  cs_->mutation_epoch.fetch_add(1, std::memory_order_relaxed);
}

void MiniDfs::seal_block(BlockId id) {
  std::unique_lock lock(cs_->mu);
  if (!open_blocks_.contains(id)) {
    throw std::invalid_argument("seal_block: block not open");
  }
  seal_block_impl(id);
  // The final count + CRC ride on the seal frame so audits (fsck) can check
  // stored bytes against what the journal committed.
  log_edit({.op = EditOp::kSealBlock,
            .block = id,
            .num_records = blocks_[id].num_records,
            .checksum = blocks_[id].checksum});
}

bool MiniDfs::is_block_open(BlockId id) const {
  std::shared_lock lock(cs_->mu);
  return open_blocks_.contains(id);
}

std::vector<OpenBlockInfo> MiniDfs::open_blocks() const {
  std::shared_lock lock(cs_->mu);
  std::vector<OpenBlockInfo> out;
  out.reserve(open_blocks_.size());
  for (const auto& [id, state] : open_blocks_) {
    const BlockInfo& b = blocks_[id];
    out.push_back({.id = id,
                   .file = state.file,
                   .extents_applied = state.extents_applied,
                   .size_bytes = b.size_bytes,
                   .num_records = b.num_records});
  }
  return out;
}

bool MiniDfs::exists(std::string_view path) const {
  std::shared_lock lock(cs_->mu);
  return files_.contains(std::string(path));
}

const std::vector<BlockId>& MiniDfs::blocks_of(std::string_view path) const {
  std::shared_lock lock(cs_->mu);
  const auto it = files_.find(std::string(path));
  if (it == files_.end()) throw std::out_of_range("no such file: " + std::string(path));
  return it->second;
}

const BlockInfo& MiniDfs::block(BlockId id) const {
  std::shared_lock lock(cs_->mu);
  if (id >= blocks_.size()) throw std::out_of_range("bad block id");
  return blocks_[id];
}

std::string_view MiniDfs::read_block_unlocked(BlockId id) const {
  if (id >= block_data_.size()) throw std::out_of_range("bad block id");
  if (!verify_block_unlocked(id)) {
    throw BlockCorruptError(id, "read_block: checksum mismatch on block " +
                                    std::to_string(id));
  }
  return block_data_[id];
}

std::string_view MiniDfs::read_block(BlockId id) const {
  std::shared_lock lock(cs_->mu);
  return read_block_unlocked(id);
}

PinnedRead MiniDfs::read_block_pinned(BlockId id) const {
  std::shared_lock lock(cs_->mu);
  if (open_blocks_.contains(id)) {
    // Open-block bytes relocate on append, so no zero-copy view can be
    // guaranteed stable: readers only ever see sealed blocks.
    throw std::invalid_argument("read_block_pinned: block is open");
  }
  const std::string_view data = read_block_unlocked(id);
  // The shared lock orders this increment against any mutator: a mutator
  // that could invalidate the bytes takes the unique lock first and then
  // waits for the count to drain, so relaxed suffices here (the release is
  // on the unpin side).
  cs_->pins[id].fetch_add(1, std::memory_order_relaxed);
  return {data, BlockPin(&cs_->pins[id])};
}

PinnedRead MiniDfs::read_replica_pinned(BlockId id, NodeId node) const {
  std::shared_lock lock(cs_->mu);
  if (id >= block_data_.size()) {
    throw std::out_of_range("read_replica: bad block");
  }
  if (open_blocks_.contains(id)) {
    throw std::invalid_argument("read_replica_pinned: block is open");
  }
  if (!is_local_unlocked(id, node)) {
    throw std::invalid_argument("read_replica: node does not host block");
  }
  if (replica_marked_corrupt(id, node)) {
    throw BlockCorruptError(id, "read_replica: corrupt copy of block " +
                                    std::to_string(id) + " on node " +
                                    std::to_string(node));
  }
  const std::string_view data = read_block_unlocked(id);
  cs_->pins[id].fetch_add(1, std::memory_order_relaxed);
  return {data, BlockPin(&cs_->pins[id])};
}

std::vector<NodeId> MiniDfs::replicas_snapshot(BlockId id) const {
  std::shared_lock lock(cs_->mu);
  if (id >= blocks_.size()) throw std::out_of_range("bad block id");
  return blocks_[id].replicas;
}

const std::vector<BlockId>& MiniDfs::blocks_on(NodeId node) const {
  std::shared_lock lock(cs_->mu);
  if (node >= node_blocks_.size()) throw std::out_of_range("bad node id");
  return node_blocks_[node];
}

std::vector<std::string> MiniDfs::list_files() const {
  std::shared_lock lock(cs_->mu);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, _] : files_) names.push_back(name);
  return names;
}

bool MiniDfs::is_local_unlocked(BlockId id, NodeId node) const {
  if (id >= blocks_.size()) throw std::out_of_range("bad block id");
  const auto& reps = blocks_[id].replicas;
  return std::find(reps.begin(), reps.end(), node) != reps.end();
}

bool MiniDfs::is_local(BlockId id, NodeId node) const {
  std::shared_lock lock(cs_->mu);
  return is_local_unlocked(id, node);
}

bool MiniDfs::is_active(NodeId node) const {
  std::shared_lock lock(cs_->mu);
  if (node >= node_active_.size()) throw std::out_of_range("is_active: bad node");
  return node_active_[node];
}

void MiniDfs::move_replica(BlockId id, NodeId from, NodeId to) {
  std::unique_lock lock(cs_->mu);
  if (id >= blocks_.size()) throw std::out_of_range("move_replica: bad block");
  if (from >= node_blocks_.size() || to >= node_blocks_.size()) {
    throw std::out_of_range("move_replica: bad node");
  }
  if (!node_active_[to]) {
    throw std::invalid_argument("move_replica: target node inactive");
  }
  const auto& reps = blocks_[id].replicas;
  if (std::find(reps.begin(), reps.end(), from) == reps.end()) {
    throw std::invalid_argument("move_replica: source does not host block");
  }
  if (std::find(reps.begin(), reps.end(), to) != reps.end()) {
    throw std::invalid_argument("move_replica: target already hosts block");
  }
  move_replica_impl(id, from, to);
  log_edit({.op = EditOp::kMoveReplica, .block = id, .node = from, .node2 = to});
}

void MiniDfs::move_replica_impl(BlockId id, NodeId from, NodeId to) {
  auto& reps = blocks_[id].replicas;
  *std::find(reps.begin(), reps.end(), from) = to;
  auto& from_inv = node_blocks_[from];
  from_inv.erase(std::remove(from_inv.begin(), from_inv.end(), id),
                 from_inv.end());
  node_blocks_[to].push_back(id);
  // The new copy is made from the source copy, so a bad source stays bad.
  if (replica_marked_corrupt(id, from)) {
    auto& marks = corrupt_replicas_[id];
    std::replace(marks.begin(), marks.end(), from, to);
  }
  // Replica count unchanged, placement not.
  cs_->mutation_epoch.fetch_add(1, std::memory_order_relaxed);
}

std::vector<BlockId> MiniDfs::drop_node(NodeId node) {
  node_active_[node] = false;
  --active_nodes_;
  const std::vector<BlockId> hosted = std::move(node_blocks_[node]);
  node_blocks_[node].clear();
  for (const BlockId id : hosted) {
    auto& reps = blocks_[id].replicas;
    reps.erase(std::remove(reps.begin(), reps.end(), node), reps.end());
    // The node's copy is gone; so is any corruption mark on it.
    if (auto it = corrupt_replicas_.find(id); it != corrupt_replicas_.end()) {
      auto& marks = it->second;
      marks.erase(std::remove(marks.begin(), marks.end(), node), marks.end());
      if (marks.empty()) corrupt_replicas_.erase(it);
    }
  }
  // active_nodes_ moved: the under-replication threshold shifted for every
  // block, so the incremental count must be rebuilt.
  recount_under_replicated();
  return hosted;
}

std::optional<NodeId> MiniDfs::pick_rereplication_target(
    const std::vector<NodeId>& reps) {
  std::vector<NodeId> candidates;
  for (NodeId n = 0; n < topology_.num_nodes(); ++n) {
    if (node_active_[n] &&
        std::find(reps.begin(), reps.end(), n) == reps.end()) {
      candidates.push_back(n);
    }
  }
  if (candidates.empty()) return std::nullopt;
  return candidates[placement_rng_.bounded(candidates.size())];
}

std::vector<BlockId> MiniDfs::decommission(NodeId node) {
  std::unique_lock lock(cs_->mu);
  if (node >= node_active_.size()) {
    throw std::out_of_range("decommission: bad node");
  }
  if (!node_active_[node]) return {};
  const std::vector<BlockId> hosted = drop_node(node);
  // One kDecommission frame stands for the whole strip; inline repairs are
  // journaled as explicit kAddReplica frames so replay never re-runs the
  // placement RNG.
  log_edit({.op = EditOp::kDecommission, .node = node});

  std::vector<BlockId> lost;
  for (const BlockId id : hosted) {
    auto& reps = blocks_[id].replicas;
    if (reps.empty()) {
      lost.push_back(id);
      continue;  // no surviving copy to re-replicate from
    }
    if (!options_.inline_repair) continue;  // ReplicationMonitor's job
    const auto target = pick_rereplication_target(reps);
    if (!target) continue;  // under-replicated, but not lost
    replicas_changing(id);
    reps.push_back(*target);
    node_blocks_[*target].push_back(id);
    replicas_changed(id);
    log_edit({.op = EditOp::kAddReplica, .block = id, .node = *target});
  }
  return lost;
}

// ---- under-replication accounting ----

bool MiniDfs::is_under_replicated(BlockId id) const {
  const std::size_t n = blocks_[id].replicas.size();
  return n > 0 &&
         n < std::min<std::size_t>(options_.replication, active_nodes_);
}

void MiniDfs::replicas_changing(BlockId id) {
  if (is_under_replicated(id)) {
    cs_->under_replicated.fetch_sub(1, std::memory_order_relaxed);
  }
}

void MiniDfs::replicas_changed(BlockId id) {
  if (is_under_replicated(id)) {
    cs_->under_replicated.fetch_add(1, std::memory_order_relaxed);
  }
  cs_->mutation_epoch.fetch_add(1, std::memory_order_relaxed);
}

void MiniDfs::recount_under_replicated() {
  std::uint64_t count = 0;
  for (BlockId id = 0; id < blocks_.size(); ++id) {
    if (is_under_replicated(id)) ++count;
  }
  cs_->under_replicated.store(count, std::memory_order_relaxed);
  cs_->mutation_epoch.fetch_add(1, std::memory_order_relaxed);
}

// ---- checksums & corruption ----

void MiniDfs::corrupt_block(BlockId id) {
  std::unique_lock lock(cs_->mu);
  if (id >= block_data_.size()) throw std::out_of_range("corrupt_block: bad block");
  if (open_blocks_.contains(id)) {
    // An append would recompute the CRC over the flipped bytes and mask the
    // damage; open blocks are not a corruption target.
    throw std::invalid_argument("corrupt_block: block is open");
  }
  auto& data = block_data_[id];
  if (data.empty()) return;  // nothing to corrupt
  // The one post-commit byte mutation in the system: wait out every pinned
  // zero-copy reader first. New pins need the shared lock (which we hold
  // uniquely), so the count can only fall; unpinning is lock-free, so this
  // wait cannot deadlock against readers.
  while (cs_->pins[id].load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x40);
  // Next read recomputes and fails.
  cs_->verified[id].store(kUnknown, std::memory_order_release);
  // Health changed; scrubbers must re-look.
  cs_->mutation_epoch.fetch_add(1, std::memory_order_relaxed);
}

void MiniDfs::corrupt_replica(BlockId id, NodeId node) {
  std::unique_lock lock(cs_->mu);
  if (id >= blocks_.size()) throw std::out_of_range("corrupt_replica: bad block");
  if (!is_local_unlocked(id, node)) {
    throw std::invalid_argument("corrupt_replica: node does not host block");
  }
  auto& marks = corrupt_replicas_[id];
  if (std::find(marks.begin(), marks.end(), node) == marks.end()) {
    marks.push_back(node);
    // Health changed; scrubbers must re-look.
    cs_->mutation_epoch.fetch_add(1, std::memory_order_relaxed);
  }
}

bool MiniDfs::verify_block_unlocked(BlockId id) const {
  if (id >= block_data_.size()) throw std::out_of_range("verify_block: bad block");
  auto& memo = cs_->verified[id];
  std::uint8_t v = memo.load(std::memory_order_acquire);
  if (v == kUnknown) {
    // Concurrent readers may race the recompute; they derive the same value
    // from the same bytes (byte flips require the unique lock), so the
    // last-writer-wins store is benign.
    v = common::crc32(block_data_[id]) == blocks_[id].checksum ? kOk : kBad;
    memo.store(v, std::memory_order_release);
  }
  return v == kOk;
}

bool MiniDfs::verify_block(BlockId id) const {
  std::shared_lock lock(cs_->mu);
  return verify_block_unlocked(id);
}

bool MiniDfs::replica_marked_corrupt(BlockId id, NodeId node) const {
  const auto it = corrupt_replicas_.find(id);
  if (it == corrupt_replicas_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), node) != it->second.end();
}

bool MiniDfs::replica_healthy_unlocked(BlockId id, NodeId node) const {
  if (id >= blocks_.size()) throw std::out_of_range("replica_healthy: bad block");
  if (node >= node_active_.size()) {
    throw std::out_of_range("replica_healthy: bad node");
  }
  return node_active_[node] && is_local_unlocked(id, node) &&
         !replica_marked_corrupt(id, node) && verify_block_unlocked(id);
}

bool MiniDfs::replica_healthy(BlockId id, NodeId node) const {
  std::shared_lock lock(cs_->mu);
  return replica_healthy_unlocked(id, node);
}

std::string_view MiniDfs::read_replica(BlockId id, NodeId node) const {
  std::shared_lock lock(cs_->mu);
  if (id >= block_data_.size()) {
    throw std::out_of_range("read_replica: bad block");
  }
  if (!is_local_unlocked(id, node)) {
    throw std::invalid_argument("read_replica: node does not host block");
  }
  if (replica_marked_corrupt(id, node)) {
    throw BlockCorruptError(id, "read_replica: corrupt copy of block " +
                                    std::to_string(id) + " on node " +
                                    std::to_string(node));
  }
  return read_block_unlocked(id);  // verifies the logical bytes
}

bool MiniDfs::drop_replica(BlockId id, NodeId node) {
  auto& reps = blocks_[id].replicas;
  const auto it = std::find(reps.begin(), reps.end(), node);
  if (it == reps.end()) return false;
  replicas_changing(id);
  reps.erase(it);
  auto& inv = node_blocks_[node];
  inv.erase(std::remove(inv.begin(), inv.end(), id), inv.end());
  if (auto mit = corrupt_replicas_.find(id); mit != corrupt_replicas_.end()) {
    auto& marks = mit->second;
    marks.erase(std::remove(marks.begin(), marks.end(), node), marks.end());
    if (marks.empty()) corrupt_replicas_.erase(mit);
  }
  replicas_changed(id);
  return true;
}

bool MiniDfs::report_corrupt_replica(BlockId id, NodeId node) {
  std::unique_lock lock(cs_->mu);
  if (id >= blocks_.size()) {
    throw std::out_of_range("report_corrupt_replica: bad block");
  }
  if (!is_local_unlocked(id, node)) {
    throw std::invalid_argument("report_corrupt_replica: node does not host block");
  }
  // Drop the bad copy.
  drop_replica(id, node);
  log_edit({.op = EditOp::kRemoveReplica, .block = id, .node = node});

  // Media corruption of the logical bytes: no healthy source exists.
  if (!verify_block_unlocked(id)) return false;

  const auto& reps = blocks_[id].replicas;
  // A healthy, active source replica must remain to copy from.
  const bool have_source =
      std::any_of(reps.begin(), reps.end(),
                  [&](NodeId n) { return replica_healthy_unlocked(id, n); });
  if (!have_source) return false;

  if (options_.inline_repair) {
    // Re-replicate onto an active node that does not already hold the block
    // (same choice rule as decommission).
    if (const auto target = pick_rereplication_target(reps)) {
      replicas_changing(id);
      blocks_[id].replicas.push_back(*target);
      node_blocks_[*target].push_back(id);
      replicas_changed(id);
      log_edit({.op = EditOp::kAddReplica, .block = id, .node = *target});
    }
  }
  return true;
}

std::vector<NodeId> MiniDfs::corrupt_replica_marks(BlockId id) const {
  std::shared_lock lock(cs_->mu);
  if (id >= blocks_.size()) {
    throw std::out_of_range("corrupt_replica_marks: bad block");
  }
  const auto it = corrupt_replicas_.find(id);
  if (it == corrupt_replicas_.end()) return {};
  std::vector<NodeId> marks = it->second;
  std::sort(marks.begin(), marks.end());
  return marks;
}

std::optional<NodeId> MiniDfs::repair_block(BlockId id) {
  std::unique_lock lock(cs_->mu);
  if (id >= blocks_.size()) throw std::out_of_range("repair_block: bad block");
  auto& reps = blocks_[id].replicas;
  const bool have_source =
      std::any_of(reps.begin(), reps.end(),
                  [&](NodeId n) { return replica_healthy_unlocked(id, n); });
  if (!have_source) return std::nullopt;
  std::vector<bool> eligible(node_active_.size(), false);
  std::uint32_t num_eligible = 0;
  for (NodeId n = 0; n < topology_.num_nodes(); ++n) {
    if (node_active_[n] &&
        std::find(reps.begin(), reps.end(), n) == reps.end()) {
      eligible[n] = true;
      ++num_eligible;
    }
  }
  if (num_eligible == 0) return std::nullopt;
  const NodeId target = placement_->place(topology_, eligible, 1, placement_rng_)[0];
  replicas_changing(id);
  reps.push_back(target);
  node_blocks_[target].push_back(id);
  replicas_changed(id);
  log_edit({.op = EditOp::kAddReplica, .block = id, .node = target});
  return target;
}

// ---- crash recovery ----

void MiniDfs::log_edit(const EditRecord& record) {
  if (journal_ != nullptr) journal_->append(record);
}

void MiniDfs::crash_namenode(std::uint64_t journal_keep_bytes) {
  std::unique_lock lock(cs_->mu);
  if (journal_ == nullptr) {
    throw std::logic_error("crash_namenode: no journal attached");
  }
  if (journal_keep_bytes == kKeepAllBytes) {
    journal_->seal();
  } else {
    journal_->crash_truncate(journal_keep_bytes);
  }
  journal_ = nullptr;
}

void MiniDfs::apply_edit(const EditRecord& record) {
  // Recovery-time only: the instance under reconstruction is owned by one
  // thread, so no locking — but the shared unlocked helpers keep behaviour
  // identical to the live mutation paths.
  switch (record.op) {
    case EditOp::kCreateFile:
      if (!files_.contains(record.file)) {
        files_.emplace(record.file, std::vector<BlockId>{});
      }
      break;
    case EditOp::kAddBlock: {
      if (record.block < blocks_.size()) break;  // already applied
      if (record.block > blocks_.size()) {
        throw std::runtime_error("apply_edit: block id gap in journal");
      }
      if (!files_.contains(record.file)) {
        files_.emplace(record.file, std::vector<BlockId>{});
      }
      BlockInfo info;
      info.id = record.block;
      info.file = record.file;
      info.index_in_file =
          static_cast<std::uint32_t>(files_.at(record.file).size());
      info.size_bytes = record.data.size();
      info.num_records = record.num_records;
      info.checksum = record.checksum;
      info.replicas = record.replicas;
      for (const NodeId n : info.replicas) node_blocks_[n].push_back(info.id);
      total_bytes_ += info.size_bytes;
      files_.at(record.file).push_back(info.id);
      blocks_.push_back(std::move(info));
      block_data_.push_back(record.data);
      push_block_runtime_state(kUnknown);  // recompute honestly on read
      replicas_changed(record.block);
      break;
    }
    case EditOp::kDecommission:
      if (node_active_[record.node]) drop_node(record.node);
      break;
    case EditOp::kRemoveReplica:
      if (is_local_unlocked(record.block, record.node)) {
        drop_replica(record.block, record.node);
      }
      break;
    case EditOp::kAddReplica:
      if (!is_local_unlocked(record.block, record.node)) {
        replicas_changing(record.block);
        blocks_[record.block].replicas.push_back(record.node);
        node_blocks_[record.node].push_back(record.block);
        replicas_changed(record.block);
      }
      break;
    case EditOp::kMoveReplica:
      if (is_local_unlocked(record.block, record.node) &&
          !is_local_unlocked(record.block, record.node2)) {
        move_replica_impl(record.block, record.node, record.node2);
      }
      break;
    case EditOp::kOpenBlock: {
      if (record.block < blocks_.size()) break;  // already applied
      if (record.block > blocks_.size()) {
        throw std::runtime_error("apply_edit: block id gap in journal");
      }
      if (!files_.contains(record.file)) {
        files_.emplace(record.file, std::vector<BlockId>{});
      }
      open_block_impl(record.file, record.replicas);
      break;
    }
    case EditOp::kAppendExtent: {
      if (record.block >= blocks_.size()) {
        throw std::runtime_error("apply_edit: extent for unknown block");
      }
      const auto it = open_blocks_.find(record.block);
      if (it == open_blocks_.end()) break;  // block already sealed
      if (record.extent_seq < it->second.extents_applied) break;  // applied
      if (record.extent_seq > it->second.extents_applied) {
        throw std::runtime_error("apply_edit: extent sequence gap");
      }
      append_extent_impl(record.block, record.data, record.num_records);
      break;
    }
    case EditOp::kSealBlock:
      if (open_blocks_.contains(record.block)) {
        seal_block_impl(record.block);
      }
      break;
  }
}

std::uint64_t MiniDfs::namespace_digest() const {
  std::shared_lock lock(cs_->mu);
  std::uint64_t h = common::hash_bytes("minidfs-namespace-v2");
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, _] : files_) names.push_back(name);
  std::sort(names.begin(), names.end());
  h = common::hash_combine(h, names.size());
  for (const std::string& name : names) {
    h = common::hash_combine(h, common::hash_bytes(name));
    for (const BlockId id : files_.at(name)) {
      const BlockInfo& b = blocks_[id];
      h = common::hash_combine(h, b.id);
      h = common::hash_combine(h, b.index_in_file);
      h = common::hash_combine(h, b.size_bytes);
      h = common::hash_combine(h, b.num_records);
      h = common::hash_combine(h, b.checksum);
      std::vector<NodeId> reps = b.replicas;
      std::sort(reps.begin(), reps.end());
      h = common::hash_combine(h, reps.size());
      for (const NodeId n : reps) h = common::hash_combine(h, n);
      h = common::hash_combine(h, common::hash_bytes(block_data_[id]));
    }
  }
  // Open blocks are durable state too: a recovered NameNode must restore
  // them (bytes, extent count, placement) exactly up to the last committed
  // group, so the digest covers them alongside the sealed namespace.
  h = common::hash_combine(h, open_blocks_.size());
  for (const auto& [id, state] : open_blocks_) {
    const BlockInfo& b = blocks_[id];
    h = common::hash_combine(h, id);
    h = common::hash_combine(h, common::hash_bytes(state.file));
    h = common::hash_combine(h, state.extents_applied);
    h = common::hash_combine(h, b.size_bytes);
    h = common::hash_combine(h, b.num_records);
    h = common::hash_combine(h, b.checksum);
    std::vector<NodeId> reps = b.replicas;
    std::sort(reps.begin(), reps.end());
    h = common::hash_combine(h, reps.size());
    for (const NodeId n : reps) h = common::hash_combine(h, n);
    h = common::hash_combine(h, common::hash_bytes(block_data_[id]));
  }
  for (const bool active : node_active_) {
    h = common::hash_combine(h, active ? 1 : 0);
  }
  return h;
}

}  // namespace datanet::dfs
