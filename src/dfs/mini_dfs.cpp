#include "dfs/mini_dfs.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/hash.hpp"

namespace datanet::dfs {

FileWriter::FileWriter(MiniDfs* dfs, std::string path)
    : dfs_(dfs), path_(std::move(path)) {}

FileWriter::FileWriter(FileWriter&& other) noexcept
    : dfs_(std::exchange(other.dfs_, nullptr)),
      path_(std::move(other.path_)),
      buffer_(std::move(other.buffer_)),
      buffered_records_(other.buffered_records_) {}

FileWriter::~FileWriter() { close(); }

void FileWriter::append(std::string_view record) {
  if (dfs_ == nullptr) throw std::logic_error("FileWriter: append after close");
  if (record.find('\n') != std::string_view::npos) {
    throw std::invalid_argument("FileWriter: record contains newline");
  }
  const std::uint64_t needed = record.size() + 1;
  if (!buffer_.empty() && buffer_.size() + needed > dfs_->options().block_size) {
    seal_block();
  }
  buffer_.append(record);
  buffer_.push_back('\n');
  ++buffered_records_;
}

void FileWriter::seal_block() {
  dfs_->commit_block(path_, std::move(buffer_), buffered_records_);
  buffer_.clear();
  buffered_records_ = 0;
}

void FileWriter::close() {
  if (dfs_ == nullptr) return;
  if (!buffer_.empty()) seal_block();
  dfs_ = nullptr;
}

MiniDfs::MiniDfs(ClusterTopology topology, DfsOptions options,
                 std::unique_ptr<PlacementPolicy> placement)
    : topology_(std::move(topology)),
      options_(options),
      placement_(std::move(placement)),
      placement_rng_(options.seed) {
  if (options_.block_size == 0) throw std::invalid_argument("block_size == 0");
  if (options_.replication == 0) throw std::invalid_argument("replication == 0");
  if (options_.replication > topology_.num_nodes()) {
    throw std::invalid_argument("replication exceeds cluster size");
  }
  node_blocks_.resize(topology_.num_nodes());
  node_active_.assign(topology_.num_nodes(), true);
  active_nodes_ = topology_.num_nodes();
}

MiniDfs::MiniDfs(ClusterTopology topology, DfsOptions options)
    : MiniDfs(std::move(topology), options, std::make_unique<RandomPlacement>()) {}

FileWriter MiniDfs::create(std::string path) {
  if (files_.contains(path)) throw std::invalid_argument("file exists: " + path);
  files_.emplace(path, std::vector<BlockId>{});
  return FileWriter(this, std::move(path));
}

BlockId MiniDfs::commit_block(const std::string& path, std::string data,
                              std::uint64_t num_records) {
  if (active_nodes_ == 0) {
    throw std::runtime_error("MiniDfs: no active nodes to place a block on");
  }
  // After failures the cluster may no longer support the configured
  // replication; like HDFS, write with as many replicas as fit rather than
  // failing the write.
  const std::uint32_t replication =
      std::min(options_.replication, active_nodes_);
  const BlockId id = blocks_.size();
  BlockInfo info;
  info.id = id;
  info.file = path;
  info.index_in_file = static_cast<std::uint32_t>(files_.at(path).size());
  info.size_bytes = data.size();
  info.num_records = num_records;
  info.checksum = common::crc32(data);
  info.replicas =
      placement_->place(topology_, node_active_, replication, placement_rng_);
  for (NodeId n : info.replicas) node_blocks_[n].push_back(id);
  total_bytes_ += info.size_bytes;
  files_.at(path).push_back(id);
  blocks_.push_back(std::move(info));
  block_data_.push_back(std::move(data));
  block_verified_.push_back(kOk);  // checksum just computed from these bytes
  return id;
}

bool MiniDfs::exists(std::string_view path) const {
  return files_.contains(std::string(path));
}

const std::vector<BlockId>& MiniDfs::blocks_of(std::string_view path) const {
  const auto it = files_.find(std::string(path));
  if (it == files_.end()) throw std::out_of_range("no such file: " + std::string(path));
  return it->second;
}

const BlockInfo& MiniDfs::block(BlockId id) const {
  if (id >= blocks_.size()) throw std::out_of_range("bad block id");
  return blocks_[id];
}

std::string_view MiniDfs::read_block(BlockId id) const {
  if (id >= block_data_.size()) throw std::out_of_range("bad block id");
  if (!verify_block(id)) {
    throw BlockCorruptError(id, "read_block: checksum mismatch on block " +
                                    std::to_string(id));
  }
  return block_data_[id];
}

const std::vector<BlockId>& MiniDfs::blocks_on(NodeId node) const {
  if (node >= node_blocks_.size()) throw std::out_of_range("bad node id");
  return node_blocks_[node];
}

std::vector<std::string> MiniDfs::list_files() const {
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, _] : files_) names.push_back(name);
  return names;
}

bool MiniDfs::is_local(BlockId id, NodeId node) const {
  const auto& reps = block(id).replicas;
  return std::find(reps.begin(), reps.end(), node) != reps.end();
}

bool MiniDfs::is_active(NodeId node) const {
  if (node >= node_active_.size()) throw std::out_of_range("is_active: bad node");
  return node_active_[node];
}

void MiniDfs::move_replica(BlockId id, NodeId from, NodeId to) {
  if (id >= blocks_.size()) throw std::out_of_range("move_replica: bad block");
  if (from >= node_blocks_.size() || to >= node_blocks_.size()) {
    throw std::out_of_range("move_replica: bad node");
  }
  if (!node_active_[to]) {
    throw std::invalid_argument("move_replica: target node inactive");
  }
  auto& reps = blocks_[id].replicas;
  const auto it = std::find(reps.begin(), reps.end(), from);
  if (it == reps.end()) {
    throw std::invalid_argument("move_replica: source does not host block");
  }
  if (std::find(reps.begin(), reps.end(), to) != reps.end()) {
    throw std::invalid_argument("move_replica: target already hosts block");
  }
  *it = to;
  auto& from_inv = node_blocks_[from];
  from_inv.erase(std::remove(from_inv.begin(), from_inv.end(), id),
                 from_inv.end());
  node_blocks_[to].push_back(id);
  // The new copy is made from the source copy, so a bad source stays bad.
  if (replica_marked_corrupt(id, from)) {
    auto& marks = corrupt_replicas_[id];
    std::replace(marks.begin(), marks.end(), from, to);
  }
}

std::vector<dfs::BlockId> MiniDfs::decommission(NodeId node) {
  if (node >= node_active_.size()) {
    throw std::out_of_range("decommission: bad node");
  }
  if (!node_active_[node]) return {};
  node_active_[node] = false;
  --active_nodes_;

  std::vector<BlockId> lost;
  const std::vector<BlockId> hosted = std::move(node_blocks_[node]);
  node_blocks_[node].clear();

  for (const BlockId id : hosted) {
    auto& reps = blocks_[id].replicas;
    reps.erase(std::remove(reps.begin(), reps.end(), node), reps.end());
    // The node's copy is gone; so is any corruption mark on it.
    if (auto it = corrupt_replicas_.find(id); it != corrupt_replicas_.end()) {
      auto& marks = it->second;
      marks.erase(std::remove(marks.begin(), marks.end(), node), marks.end());
      if (marks.empty()) corrupt_replicas_.erase(it);
    }
    if (reps.empty()) {
      lost.push_back(id);
      continue;  // no surviving copy to re-replicate from
    }
    // Re-replicate onto an active node that does not already hold the block.
    std::vector<NodeId> candidates;
    for (NodeId n = 0; n < topology_.num_nodes(); ++n) {
      if (node_active_[n] &&
          std::find(reps.begin(), reps.end(), n) == reps.end()) {
        candidates.push_back(n);
      }
    }
    if (candidates.empty()) continue;  // under-replicated, but not lost
    const NodeId target = candidates[placement_rng_.bounded(candidates.size())];
    reps.push_back(target);
    node_blocks_[target].push_back(id);
  }
  return lost;
}

// ---- checksums & corruption ----

void MiniDfs::corrupt_block(BlockId id) {
  if (id >= block_data_.size()) throw std::out_of_range("corrupt_block: bad block");
  auto& data = block_data_[id];
  if (data.empty()) return;  // nothing to corrupt
  data[data.size() / 2] = static_cast<char>(data[data.size() / 2] ^ 0x40);
  block_verified_[id] = kUnknown;  // next read recomputes and fails
}

void MiniDfs::corrupt_replica(BlockId id, NodeId node) {
  if (id >= blocks_.size()) throw std::out_of_range("corrupt_replica: bad block");
  if (!is_local(id, node)) {
    throw std::invalid_argument("corrupt_replica: node does not host block");
  }
  auto& marks = corrupt_replicas_[id];
  if (std::find(marks.begin(), marks.end(), node) == marks.end()) {
    marks.push_back(node);
  }
}

bool MiniDfs::verify_block(BlockId id) const {
  if (id >= block_data_.size()) throw std::out_of_range("verify_block: bad block");
  if (block_verified_[id] == kUnknown) {
    block_verified_[id] =
        common::crc32(block_data_[id]) == blocks_[id].checksum ? kOk : kBad;
  }
  return block_verified_[id] == kOk;
}

bool MiniDfs::replica_marked_corrupt(BlockId id, NodeId node) const {
  const auto it = corrupt_replicas_.find(id);
  if (it == corrupt_replicas_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), node) != it->second.end();
}

bool MiniDfs::replica_healthy(BlockId id, NodeId node) const {
  if (id >= blocks_.size()) throw std::out_of_range("replica_healthy: bad block");
  if (node >= node_active_.size()) {
    throw std::out_of_range("replica_healthy: bad node");
  }
  return node_active_[node] && is_local(id, node) &&
         !replica_marked_corrupt(id, node) && verify_block(id);
}

std::string_view MiniDfs::read_replica(BlockId id, NodeId node) const {
  if (id >= block_data_.size()) throw std::out_of_range("read_replica: bad block");
  if (!is_local(id, node)) {
    throw std::invalid_argument("read_replica: node does not host block");
  }
  if (replica_marked_corrupt(id, node)) {
    throw BlockCorruptError(id, "read_replica: corrupt copy of block " +
                                    std::to_string(id) + " on node " +
                                    std::to_string(node));
  }
  return read_block(id);  // verifies the logical bytes
}

bool MiniDfs::report_corrupt_replica(BlockId id, NodeId node) {
  if (id >= blocks_.size()) {
    throw std::out_of_range("report_corrupt_replica: bad block");
  }
  auto& reps = blocks_[id].replicas;
  const auto it = std::find(reps.begin(), reps.end(), node);
  if (it == reps.end()) {
    throw std::invalid_argument("report_corrupt_replica: node does not host block");
  }
  // Drop the bad copy.
  reps.erase(it);
  auto& inv = node_blocks_[node];
  inv.erase(std::remove(inv.begin(), inv.end(), id), inv.end());
  if (auto mit = corrupt_replicas_.find(id); mit != corrupt_replicas_.end()) {
    auto& marks = mit->second;
    marks.erase(std::remove(marks.begin(), marks.end(), node), marks.end());
    if (marks.empty()) corrupt_replicas_.erase(mit);
  }

  // Media corruption of the logical bytes: no healthy source exists.
  if (!verify_block(id)) return false;

  // A healthy, active source replica must remain to copy from.
  const bool have_source = std::any_of(
      reps.begin(), reps.end(), [&](NodeId n) { return replica_healthy(id, n); });
  if (!have_source) return false;

  // Re-replicate onto an active node that does not already hold the block
  // (same choice rule as decommission).
  std::vector<NodeId> candidates;
  for (NodeId n = 0; n < topology_.num_nodes(); ++n) {
    if (node_active_[n] && std::find(reps.begin(), reps.end(), n) == reps.end()) {
      candidates.push_back(n);
    }
  }
  if (!candidates.empty()) {
    const NodeId target = candidates[placement_rng_.bounded(candidates.size())];
    reps.push_back(target);
    node_blocks_[target].push_back(id);
  }
  return true;
}

}  // namespace datanet::dfs
