#pragma once
// dfs::ClientMetaCache — a lease-based client-side cache over a MetaPlane.
// Clients resolve file metadata (block lists, replica locations) constantly;
// round-tripping to a metadata shard for every resolution is the load the
// plane exists to shed. The cache holds a per-file metadata bundle under a
// time-bounded lease:
//
//   - Within the lease term the bundle is served with NO shard contact at
//     all — not even an epoch read. That is the lease contract: bounded
//     staleness in exchange for zero metadata-plane load on the hot path.
//   - At lease expiry the bundle is revalidated against the OWNING shard's
//     mutation epoch only. Unchanged epoch -> cheap renewal (one atomic
//     read); moved epoch -> refetch from the shard.
//   - A client that mutates the namespace (or learns of a mutation) calls
//     invalidate(path) for explicit invalidation — the next access refetches
//     regardless of the remaining lease term.
//
// Because epochs are per shard, churn on one shard never invalidates or
// revalidates bundles owned by another. Time is virtual (tick()), matching
// the repo's ReplicationMonitor discipline — callers advance it; tests and
// the bench drive it deterministically.
//
// Not thread-safe: one cache per client thread (it models client-local
// state, like an HDFS client's block-location cache).

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "dfs/meta_plane.hpp"

namespace datanet::dfs {

struct ClientCacheOptions {
  // Lease term in ticks. 0 disables leasing: every access revalidates
  // against the shard epoch (the PR 7 dataset-cache discipline).
  std::uint64_t lease_ticks = 16;
};

struct ClientCacheStats {
  std::uint64_t lease_hits = 0;     // served within the lease, no shard contact
  std::uint64_t renewals = 0;       // expired, epoch unchanged: lease renewed
  std::uint64_t refetches = 0;      // cold miss or epoch moved: refetched
  std::uint64_t invalidations = 0;  // explicit invalidate() dropped an entry
};

class ClientMetaCache {
 public:
  explicit ClientMetaCache(const MetaPlane& plane,
                           ClientCacheOptions options = {});

  void tick(std::uint64_t ticks = 1) noexcept { now_ += ticks; }
  [[nodiscard]] std::uint64_t now() const noexcept { return now_; }

  // Block list of `path` under the lease discipline. Throws what the owning
  // shard throws (ShardUnavailableError, unknown path) on refetch; a valid
  // lease keeps serving even while the owning shard is crashed.
  [[nodiscard]] const std::vector<BlockId>& blocks_of(const std::string& path);

  // Replica locations of one block of `path`. A block unknown to the cached
  // bundle (the file grew) forces a refetch before failing.
  [[nodiscard]] const std::vector<NodeId>& replicas(const std::string& path,
                                                    BlockId id);

  // Explicit invalidation on namespace mutation.
  void invalidate(const std::string& path);
  void invalidate_all();

  [[nodiscard]] const ClientCacheStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::uint64_t entries() const noexcept {
    return entries_.size();
  }

 private:
  struct Entry {
    std::uint32_t shard = 0;
    std::uint64_t epoch = 0;        // owning shard's epoch at validation
    std::uint64_t lease_until = 0;  // first tick the lease is NOT valid
    std::vector<BlockId> blocks;
    std::unordered_map<BlockId, std::vector<NodeId>> replicas;
  };

  // Fetch a fresh bundle from the owning shard into `e`.
  void fetch(const std::string& path, Entry& e);
  // The lease/epoch discipline: returns a bundle valid to serve from.
  Entry& resolve(const std::string& path);

  const MetaPlane* plane_;
  ClientCacheOptions options_;
  std::unordered_map<std::string, Entry> entries_;
  ClientCacheStats stats_;
  std::uint64_t now_ = 0;
};

}  // namespace datanet::dfs
