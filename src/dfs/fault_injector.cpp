#include "dfs/fault_injector.hpp"

#include <algorithm>
#include <stdexcept>

namespace datanet::dfs {

FaultInjector::FaultInjector(MiniDfs& dfs, std::vector<FaultEvent> plan)
    : dfs_(&dfs), plan_(std::move(plan)) {
  std::stable_sort(plan_.begin(), plan_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_task < b.at_task;
                   });
  for (const auto& e : plan_) {
    if ((e.kind == FaultKind::kKillNode || e.kind == FaultKind::kSlowNode ||
         e.kind == FaultKind::kStallNode) &&
        e.node >= dfs.topology().num_nodes()) {
      throw std::invalid_argument("FaultInjector: event names a bad node");
    }
    if (e.kind == FaultKind::kSlowNode && !(e.speed_factor > 0.0)) {
      throw std::invalid_argument("FaultInjector: speed_factor must be > 0");
    }
    if (e.kind == FaultKind::kTransientReadError && e.fail_count == 0) {
      throw std::invalid_argument("FaultInjector: fail_count must be > 0");
    }
  }
  speed_.assign(dfs.topology().num_nodes(), 1.0);
  stalled_.assign(dfs.topology().num_nodes(), 0);
}

FaultInjector FaultInjector::random_plan(MiniDfs& dfs, std::uint64_t seed,
                                         std::uint64_t horizon_tasks,
                                         std::uint32_t kill_nodes,
                                         std::uint32_t corrupt_replicas,
                                         std::uint32_t slow_nodes,
                                         std::uint32_t stall_nodes,
                                         std::uint32_t transient_reads) {
  common::Rng rng(seed);
  const std::uint32_t n = dfs.topology().num_nodes();
  const std::uint64_t horizon = std::max<std::uint64_t>(horizon_tasks, 1);
  std::vector<FaultEvent> plan;

  // Distinct victims: at least one node must survive every kill.
  kill_nodes = std::min(kill_nodes, n > 1 ? n - 1 : 0);
  std::vector<NodeId> nodes(n);
  for (NodeId i = 0; i < n; ++i) nodes[i] = i;
  for (std::uint32_t i = 0; i < kill_nodes; ++i) {
    const auto j = i + rng.bounded(nodes.size() - i);
    std::swap(nodes[i], nodes[j]);
    plan.push_back(FaultEvent{.at_task = 1 + rng.bounded(horizon),
                              .kind = FaultKind::kKillNode,
                              .node = nodes[i]});
  }
  for (std::uint32_t i = 0; i < corrupt_replicas && dfs.num_blocks() > 0; ++i) {
    plan.push_back(FaultEvent{.at_task = 1 + rng.bounded(horizon),
                              .kind = FaultKind::kCorruptReplica,
                              .node = static_cast<NodeId>(rng.bounded(n)),
                              .block = rng.bounded(dfs.num_blocks())});
  }
  slow_nodes = std::min(slow_nodes, n - kill_nodes);  // draw from the rest
  for (std::uint32_t i = 0; i < slow_nodes; ++i) {
    const auto j = kill_nodes + i +
                   rng.bounded(nodes.size() - kill_nodes - i);
    std::swap(nodes[kill_nodes + i], nodes[j]);
    plan.push_back(FaultEvent{.at_task = 1 + rng.bounded(horizon),
                              .kind = FaultKind::kSlowNode,
                              .node = nodes[kill_nodes + i],
                              .speed_factor = rng.uniform(0.25, 1.0)});
  }
  // Stalled nodes draw from the remaining (never-killed, never-slowed) pool
  // and always leave one responsive survivor among them.
  const std::uint32_t drawn = kill_nodes + slow_nodes;
  stall_nodes = std::min(stall_nodes, n > drawn + 1 ? n - drawn - 1 : 0);
  for (std::uint32_t i = 0; i < stall_nodes; ++i) {
    const auto j = drawn + i + rng.bounded(nodes.size() - drawn - i);
    std::swap(nodes[drawn + i], nodes[j]);
    plan.push_back(FaultEvent{.at_task = 1 + rng.bounded(horizon),
                              .kind = FaultKind::kStallNode,
                              .node = nodes[drawn + i]});
  }
  for (std::uint32_t i = 0; i < transient_reads && dfs.num_blocks() > 0; ++i) {
    plan.push_back(FaultEvent{
        .at_task = 1 + rng.bounded(horizon),
        .kind = FaultKind::kTransientReadError,
        .block = rng.bounded(dfs.num_blocks()),
        .fail_count = static_cast<std::uint32_t>(1 + rng.bounded(3))});
  }
  return FaultInjector(dfs, std::move(plan));
}

std::vector<FaultEvent> FaultInjector::advance(std::uint64_t completed_tasks) {
  std::vector<FaultEvent> fired;
  while (next_ < plan_.size() && plan_[next_].at_task <= completed_tasks) {
    apply(plan_[next_]);
    fired.push_back(plan_[next_]);
    ++next_;
  }
  return fired;
}

bool FaultInjector::take_transient_read_failure(BlockId block) {
  if (block >= transient_.size() || transient_[block] == 0) return false;
  --transient_[block];
  ++stats_.transient_failures_consumed;
  return true;
}

std::uint32_t FaultInjector::pending_transient_failures(BlockId block) const {
  return block < transient_.size() ? transient_[block] : 0;
}

void FaultInjector::apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kKillNode: {
      if (!dfs_->is_active(event.node)) break;  // already dead: no-op
      if (dfs_->num_active_nodes() <= 1) break;  // never empty the cluster
      const auto lost = dfs_->decommission(event.node);
      stats_.lost_blocks.insert(stats_.lost_blocks.end(), lost.begin(),
                                lost.end());
      ++stats_.nodes_killed;
      break;
    }
    case FaultKind::kCorruptReplica: {
      if (event.block >= dfs_->num_blocks()) break;
      const auto& reps = dfs_->block(event.block).replicas;
      if (reps.empty()) break;  // already lost
      const NodeId victim =
          dfs_->is_local(event.block, event.node)
              ? event.node
              : reps[event.node % reps.size()];
      dfs_->corrupt_replica(event.block, victim);
      ++stats_.replicas_corrupted;
      break;
    }
    case FaultKind::kCorruptBlock: {
      if (event.block >= dfs_->num_blocks()) break;
      dfs_->corrupt_block(event.block);
      ++stats_.blocks_corrupted;
      break;
    }
    case FaultKind::kSlowNode: {
      speed_[event.node] *= event.speed_factor;
      any_slowdown_ = true;
      ++stats_.nodes_slowed;
      break;
    }
    case FaultKind::kStallNode: {
      if (stalled_[event.node]) break;            // already stalled: no-op
      if (!dfs_->is_active(event.node)) break;    // dead nodes can't stall
      // Never stall the last responsive active node: some worker must keep
      // answering or every plan would hang at the retry cap.
      std::uint32_t responsive = 0;
      for (NodeId n = 0; n < stalled_.size(); ++n) {
        if (dfs_->is_active(n) && !stalled_[n]) ++responsive;
      }
      if (responsive <= 1) break;
      stalled_[event.node] = 1;
      ++stats_.nodes_stalled;
      break;
    }
    case FaultKind::kTransientReadError: {
      if (event.block >= dfs_->num_blocks()) break;
      if (transient_.size() < dfs_->num_blocks()) {
        transient_.resize(dfs_->num_blocks(), 0);
      }
      transient_[event.block] += event.fail_count;
      stats_.transient_failures_armed += event.fail_count;
      break;
    }
    case FaultKind::kCrashNameNode: {
      if (dfs_->edit_log() == nullptr) break;  // nothing durable to tear
      dfs_->crash_namenode(event.journal_keep_bytes);
      ++stats_.namenode_crashes;
      break;
    }
  }
}

}  // namespace datanet::dfs
