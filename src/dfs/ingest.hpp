#pragma once
// dfs::Ingestor — the streaming append path (PR 10). Batches record appends
// into open blocks with GROUP COMMIT: records accumulate in memory and are
// made durable in groups, one kAppendExtent journal frame (and flush) per
// group instead of per record. A crash loses at most the group being
// buffered — never a committed group — and recovery restores the open block
// exactly up to the last committed extent.
//
// Block boundaries follow FileWriter's rule exactly (a block seals when the
// next record would overflow block_size; an oversized record gets a block of
// its own), so a file ingested through this class is digest-identical to the
// same records written through FileWriter. Placement is drawn at open_block
// time — one placement draw per block in block order, the same RNG
// consumption as FileWriter's commit-time draw.
//
// Single-mutator contract: an Ingestor is the one mutator thread while it
// runs; queries may read concurrently and only ever see sealed blocks.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "dfs/mini_dfs.hpp"

namespace datanet::dfs {

struct IngestOptions {
  // Records per group commit. Larger groups amortize journal flushes at the
  // cost of a bigger crash-loss window (the in-memory tail).
  std::uint64_t group_records = 64;
};

struct IngestStats {
  std::uint64_t records_appended = 0;  // handed to append()
  std::uint64_t records_committed = 0; // durable (covered by an extent frame)
  std::uint64_t bytes_committed = 0;
  std::uint64_t group_commits = 0;     // kAppendExtent frames written
  std::uint64_t blocks_opened = 0;
  std::uint64_t blocks_sealed = 0;
};

class Ingestor {
 public:
  // Creates `path` when it does not exist yet; appending to an existing
  // file continues its block list.
  Ingestor(MiniDfs& dfs, std::string path, IngestOptions options = {});
  ~Ingestor();
  Ingestor(const Ingestor&) = delete;
  Ingestor& operator=(const Ingestor&) = delete;

  // Buffer one record ('\n' is added); group-commits automatically every
  // group_records and seals blocks at FileWriter boundaries.
  void append(std::string_view record);

  // Force the buffered group durable now (one journal frame), leaving the
  // current block open.
  void flush();

  // flush() + seal the current open block (if any). The next append opens a
  // fresh block. Called on every block-boundary crossing and by close().
  void seal();

  // seal() and detach; further appends throw. Idempotent; the destructor
  // calls it.
  void close();

  [[nodiscard]] const IngestStats& stats() const noexcept { return stats_; }

  // Invoked after each block seals (live map maintenance hook). Set before
  // appending; never invoked for blocks sealed by other writers.
  std::function<void(BlockId)> on_seal;

 private:
  [[nodiscard]] std::uint64_t open_bytes() const;

  MiniDfs* dfs_;  // null after close()
  std::string path_;
  IngestOptions options_;
  IngestStats stats_;
  bool block_open_ = false;
  BlockId block_ = 0;
  std::uint64_t block_bytes_ = 0;  // durable bytes in the open block
  std::string buffer_;             // records awaiting group commit
  std::uint64_t buffered_records_ = 0;
};

}  // namespace datanet::dfs
