#include "dfs/hash_ring.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "common/hash.hpp"

namespace datanet::dfs {

HashRing::HashRing(std::uint32_t num_shards, std::uint32_t vnodes_per_shard,
                   std::uint64_t seed)
    : num_shards_(num_shards), vnodes_per_shard_(vnodes_per_shard) {
  if (num_shards == 0) throw std::invalid_argument("HashRing: 0 shards");
  if (vnodes_per_shard == 0) throw std::invalid_argument("HashRing: 0 vnodes");
  if (num_shards == 1) return;  // degenerate ring: everything is shard 0

  points_.reserve(static_cast<std::size_t>(num_shards) * vnodes_per_shard);
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    for (std::uint32_t v = 0; v < vnodes_per_shard; ++v) {
      const std::uint64_t pos = common::mix64(
          common::hash_combine(common::mix64(seed ^ 0x9e3779b97f4a7c15ULL),
                               (static_cast<std::uint64_t>(s) << 32) | v));
      points_.push_back({pos, s});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.position < b.position ||
                     (a.position == b.position && a.shard < b.shard);
            });

  // Bucket table: at least one bucket per point (rounded up to a power of
  // two), so the expected number of points per bucket is <= 1 and the scan
  // in shard_of_hash is O(1) amortized.
  const std::uint32_t want = std::bit_ceil(
      static_cast<std::uint32_t>(std::max<std::size_t>(points_.size(), 1)));
  bucket_shift_ = 64 - std::bit_width(want) + 1;  // want == 1u << (64 - shift)
  bucket_start_.resize(want);
  std::size_t p = 0;
  for (std::uint32_t b = 0; b < want; ++b) {
    const std::uint64_t bucket_begin = static_cast<std::uint64_t>(b)
                                       << bucket_shift_;
    while (p < points_.size() && points_[p].position < bucket_begin) ++p;
    bucket_start_[b] = static_cast<std::uint32_t>(p);
  }
}

std::uint32_t HashRing::shard_of_hash(std::uint64_t hash) const noexcept {
  if (num_shards_ == 1) return 0;
  // First point at or past `hash`, wrapping to the ring's first point.
  std::size_t i = bucket_start_[hash >> bucket_shift_];
  while (i < points_.size() && points_[i].position < hash) ++i;
  return i < points_.size() ? points_[i].shard : points_.front().shard;
}

std::uint32_t HashRing::shard_of_path(std::string_view path) const noexcept {
  return shard_of_hash(common::hash_bytes(path, /*seed=*/0x706c616e65ULL));
}

std::uint32_t HashRing::shard_of_block(std::uint64_t block_id) const noexcept {
  return shard_of_hash(common::mix64(block_id + 0x626c6f636bULL));
}

std::vector<std::uint32_t> HashRing::points_per_shard() const {
  std::vector<std::uint32_t> counts(num_shards_, 0);
  if (num_shards_ == 1) {
    counts[0] = 1;
    return counts;
  }
  for (const Point& p : points_) ++counts[p.shard];
  return counts;
}

}  // namespace datanet::dfs
