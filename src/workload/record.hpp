#pragma once
// The log-record model. Every dataset in this repository is a chronological
// stream of records `timestamp \t sub-dataset-key \t payload` — exactly the
// "lists of records, each consisting of several fields such as source/user
// id, log time, ..." shape the paper describes (Section II-A). A sub-dataset
// S(e) is the set of records whose key equals e (Eq. 1).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.hpp"
#include "common/simd_scan.hpp"

namespace datanet::workload {

// Numeric id of a sub-dataset: stable 64-bit hash of its key. ElasticMap,
// Bloom filters and schedulers all operate on ids, never on raw keys.
using SubDatasetId = std::uint64_t;

[[nodiscard]] inline SubDatasetId subdataset_id(std::string_view key) noexcept {
  return common::hash_bytes(key, /*seed=*/0x5d57ULL);
}

struct Record {
  std::uint64_t timestamp = 0;  // seconds since dataset epoch
  std::string key;              // sub-dataset key (movie name, event type, ...)
  std::string payload;          // free text / fields
};

// Zero-copy view over one encoded line.
struct RecordView {
  std::uint64_t timestamp = 0;
  std::string_view key;
  std::string_view payload;

  [[nodiscard]] SubDatasetId id() const noexcept { return subdataset_id(key); }
  // On-disk footprint of this record including the trailing newline; this is
  // the |b ∩ s| contribution used throughout DataNet.
  [[nodiscard]] std::uint64_t encoded_size() const noexcept;
};

[[nodiscard]] std::string encode_record(const Record& r);
[[nodiscard]] std::optional<RecordView> decode_record(std::string_view line);

// Invoke fn(RecordView) for each well-formed line in a block's bytes;
// malformed lines are counted and skipped. Returns number of skipped lines.
// Line splitting rides the SIMD scanner (empty lines never reach the
// decoder, exactly as the old find('\n') loop skipped them).
template <typename Fn>
std::uint64_t for_each_record(std::string_view block_bytes, Fn&& fn) {
  struct Ctx {
    Fn* fn;
    std::uint64_t skipped;
  } ctx{&fn, 0};
  common::scan_lines(block_bytes, &ctx, [](void* p, std::string_view line) {
    auto& c = *static_cast<Ctx*>(p);
    if (auto rv = decode_record(line)) {
      (*c.fn)(*rv);
    } else {
      ++c.skipped;
    }
  });
  return ctx.skipped;
}

}  // namespace datanet::workload
