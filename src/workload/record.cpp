#include "workload/record.hpp"

#include <charconv>

namespace datanet::workload {

std::uint64_t RecordView::encoded_size() const noexcept {
  // digits(ts) + '\t' + key + '\t' + payload + '\n'
  std::uint64_t ts = timestamp;
  std::uint64_t digits = 1;
  while (ts >= 10) {
    ts /= 10;
    ++digits;
  }
  return digits + 1 + key.size() + 1 + payload.size() + 1;
}

std::string encode_record(const Record& r) {
  std::string out;
  out.reserve(24 + r.key.size() + r.payload.size());
  char buf[24];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), r.timestamp);
  (void)ec;
  out.append(buf, p);
  out.push_back('\t');
  out.append(r.key);
  out.push_back('\t');
  out.append(r.payload);
  return out;
}

std::optional<RecordView> decode_record(std::string_view line) {
  const std::size_t t1 = line.find('\t');
  if (t1 == std::string_view::npos) return std::nullopt;
  const std::size_t t2 = line.find('\t', t1 + 1);
  if (t2 == std::string_view::npos) return std::nullopt;

  RecordView rv;
  const std::string_view ts = line.substr(0, t1);
  const auto [ptr, ec] = std::from_chars(ts.data(), ts.data() + ts.size(),
                                         rv.timestamp);
  if (ec != std::errc{} || ptr != ts.data() + ts.size()) return std::nullopt;
  rv.key = line.substr(t1 + 1, t2 - t1 - 1);
  if (rv.key.empty()) return std::nullopt;
  rv.payload = line.substr(t2 + 1);
  return rv;
}

}  // namespace datanet::workload
