#include "workload/dataset.hpp"

#include <algorithm>

namespace datanet::workload {

std::uint64_t ingest(dfs::MiniDfs& dfs, const std::string& path,
                     std::span<const Record> records) {
  auto writer = dfs.create(path);
  for (const Record& r : records) writer.append(encode_record(r));
  writer.close();
  return dfs.blocks_of(path).size();
}

GroundTruth::GroundTruth(const dfs::MiniDfs& dfs, const std::string& path) {
  const auto& blocks = dfs.blocks_of(path);
  per_block_.resize(blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for_each_record(dfs.read_block(blocks[i]), [&](const RecordView& rv) {
      const std::uint64_t sz = rv.encoded_size();
      per_block_[i][rv.id()] += sz;
      totals_[rv.id()] += sz;
      total_bytes_ += sz;
    });
  }
}

std::uint64_t GroundTruth::size_in_block(std::uint64_t block_index,
                                         SubDatasetId id) const {
  if (block_index >= per_block_.size()) return 0;
  const auto it = per_block_[block_index].find(id);
  return it == per_block_[block_index].end() ? 0 : it->second;
}

std::uint64_t GroundTruth::total_size(SubDatasetId id) const {
  const auto it = totals_.find(id);
  return it == totals_.end() ? 0 : it->second;
}

std::vector<std::uint64_t> GroundTruth::distribution(SubDatasetId id) const {
  std::vector<std::uint64_t> out(per_block_.size(), 0);
  for (std::size_t i = 0; i < per_block_.size(); ++i) {
    out[i] = size_in_block(i, id);
  }
  return out;
}

std::vector<SubDatasetId> GroundTruth::ids_by_size() const {
  std::vector<SubDatasetId> ids;
  ids.reserve(totals_.size());
  for (const auto& [id, _] : totals_) ids.push_back(id);
  std::sort(ids.begin(), ids.end(), [&](SubDatasetId a, SubDatasetId b) {
    const auto sa = totals_.at(a), sb = totals_.at(b);
    return sa != sb ? sa > sb : a < b;
  });
  return ids;
}

}  // namespace datanet::workload
