#include "workload/github_gen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "workload/text_gen.hpp"

namespace datanet::workload {

const std::vector<std::string>& github_event_types() {
  static const std::vector<std::string> kTypes = {
      "PushEvent",          "CreateEvent",
      "IssueCommentEvent",  "WatchEvent",
      "IssuesEvent",        "PullRequestEvent",
      "ForkEvent",          "DeleteEvent",
      "PullRequestReviewCommentEvent",
      "GollumEvent",        "CommitCommentEvent",
      "ReleaseEvent",       "MemberEvent",
      "PublicEvent",        "IssueEvent",
      "LabelEvent",         "MilestoneEvent",
      "PageBuildEvent",     "StatusEvent",
      "DeploymentEvent",    "TeamAddEvent",
      "DownloadEvent"};
  return kTypes;
}

const std::vector<double>& github_event_weights() {
  // Rough shape of the public archive: pushes dominate, long tail of rare
  // administrative events. Same order as github_event_types().
  static const std::vector<double> kWeights = {
      52.0, 10.0, 8.0, 7.0, 4.5, 4.0, 3.5, 1.5, 1.2, 0.8, 0.7,
      0.6,  0.5,  0.4, 4.0, 0.3, 0.25, 0.2, 0.2, 0.15, 0.1, 0.1};
  return kWeights;
}

GithubLogGenerator::GithubLogGenerator(GithubGenOptions options)
    : options_(options) {
  if (options_.num_records == 0) throw std::invalid_argument("num_records == 0");
  if (options_.horizon_seconds == 0) throw std::invalid_argument("horizon == 0");
  if (options_.drift < 0.0 || options_.drift > 1.0) {
    throw std::invalid_argument("drift must be in [0,1]");
  }
}

std::vector<Record> GithubLogGenerator::generate() const {
  const auto& types = github_event_types();
  const auto& base = github_event_weights();
  common::Rng rng(options_.seed);
  const TextGenerator text(1500, 1.05);

  // Mean-reverting log-rate walk per type, advanced once per time slice
  // (~200 slices over the horizon), creating block-scale density waves.
  constexpr std::uint64_t kSlices = 200;
  std::vector<double> lograte(types.size(), 0.0);
  std::vector<std::vector<double>> slice_weights(kSlices,
                                                 std::vector<double>(types.size()));
  for (std::uint64_t s = 0; s < kSlices; ++s) {
    for (std::size_t t = 0; t < types.size(); ++t) {
      // OU-style update: pull to 0, Gaussian-ish kick via sum of uniforms.
      const double kick = (rng.uniform() + rng.uniform() + rng.uniform() - 1.5);
      lograte[t] = 0.9 * lograte[t] + options_.drift * 0.6 * kick;
      slice_weights[s][t] = base[t] * std::exp(lograte[t]);
    }
  }

  std::vector<Record> records;
  records.reserve(options_.num_records);
  for (std::uint64_t i = 0; i < options_.num_records; ++i) {
    // Timestamps uniform over the horizon — event order is arrival order.
    const std::uint64_t ts = rng.bounded(options_.horizon_seconds);
    const std::uint64_t slice = ts * kSlices / options_.horizon_seconds;

    const auto& w = slice_weights[slice];
    double total = 0.0;
    for (double x : w) total += x;
    double u = rng.uniform() * total;
    std::size_t type = 0;
    while (type + 1 < w.size() && u >= w[type]) {
      u -= w[type];
      ++type;
    }

    Record r;
    r.timestamp = ts;
    r.key = types[type];
    char repo[32];
    std::snprintf(repo, sizeof(repo), "repo_%06llu",
                  static_cast<unsigned long long>(rng.bounded(options_.num_repos)));
    r.payload = std::string("repo=") + repo + " actor=user_" +
                std::to_string(rng.bounded(100000)) + " body=\"" +
                text.sentence(rng, 4, 20) + "\"";
    records.push_back(std::move(r));
  }

  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return a.timestamp < b.timestamp;
                   });
  return records;
}

}  // namespace datanet::workload
