#pragma once
// Synthetic natural-ish text for review payloads: words drawn from a fixed
// vocabulary with Zipfian frequencies, so WordCount / histogram / TopK jobs
// process realistic token distributions.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "stats/zipf.hpp"

namespace datanet::workload {

class TextGenerator {
 public:
  // `vocabulary_size` distinct words, frequency rank ~ Zipf(zipf_exponent).
  explicit TextGenerator(std::uint32_t vocabulary_size = 2000,
                         double zipf_exponent = 1.05);

  // A sentence of exactly `num_words` space-separated words.
  [[nodiscard]] std::string sentence(common::Rng& rng, std::uint32_t num_words) const;

  // A sentence whose length is uniform in [min_words, max_words].
  [[nodiscard]] std::string sentence(common::Rng& rng, std::uint32_t min_words,
                                     std::uint32_t max_words) const;

  [[nodiscard]] const std::vector<std::string>& vocabulary() const noexcept {
    return vocab_;
  }

 private:
  std::vector<std::string> vocab_;
  stats::ZipfSampler zipf_;
};

}  // namespace datanet::workload
