#include "workload/worldcup_gen.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "stats/zipf.hpp"

namespace datanet::workload {

WorldCupLogGenerator::WorldCupLogGenerator(WorldCupGenOptions options)
    : options_(options) {
  if (options_.num_pages == 0 || options_.num_records == 0 ||
      options_.num_days == 0) {
    throw std::invalid_argument("WorldCupLogGenerator: zero-sized option");
  }
  if (options_.num_match_days > options_.num_days) {
    throw std::invalid_argument("num_match_days > num_days");
  }
}

std::vector<Record> WorldCupLogGenerator::generate() const {
  common::Rng rng(options_.seed);
  const stats::ZipfSampler base_pop(options_.num_pages, 0.9);

  // Pick match days and, for each, 2 bursting pages.
  std::vector<std::vector<std::uint64_t>> bursts(options_.num_days);
  for (std::uint64_t i = 0; i < options_.num_match_days; ++i) {
    const std::uint64_t day = rng.bounded(options_.num_days);
    bursts[day].push_back(rng.bounded(options_.num_pages));
    bursts[day].push_back(rng.bounded(options_.num_pages));
  }

  constexpr std::uint64_t kSecondsPerDay = 86400;
  std::vector<Record> records;
  records.reserve(options_.num_records);
  const std::uint64_t per_day = options_.num_records / options_.num_days;

  for (std::uint64_t day = 0; day < options_.num_days; ++day) {
    // Burst days produce proportionally more traffic.
    const bool match = !bursts[day].empty();
    const std::uint64_t day_records = match ? per_day * 3 : per_day;
    for (std::uint64_t i = 0; i < day_records; ++i) {
      std::uint64_t page;
      if (match && rng.bernoulli(options_.burst_factor /
                                 (options_.burst_factor + 10.0))) {
        page = bursts[day][rng.bounded(bursts[day].size())];
      } else {
        page = base_pop.sample(rng);
      }
      Record r;
      r.timestamp = day * kSecondsPerDay + rng.bounded(kSecondsPerDay);
      char key[32];
      std::snprintf(key, sizeof(key), "page_%04llu",
                    static_cast<unsigned long long>(page));
      r.key = key;
      r.payload = "method=GET status=" +
                  std::to_string(rng.bernoulli(0.97) ? 200 : 404) +
                  " bytes=" + std::to_string(200 + rng.bounded(40000)) +
                  " client=c" + std::to_string(rng.bounded(100000));
      records.push_back(std::move(r));
    }
  }

  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return a.timestamp < b.timestamp;
                   });
  return records;
}

}  // namespace datanet::workload
