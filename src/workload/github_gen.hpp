#pragma once
// GitHub-archive-shaped event log (paper ref [2], Section V-A-4). Twenty-plus
// event types with a realistic frequency mix. Unlike the movie dataset this
// stream has NO content clustering: every event type appears throughout the
// horizon. Imbalance comes instead from a slowly drifting per-type rate
// (mean-reverting random walk), reproducing Fig. 8a — the IssueEvent density
// per block fluctuates several-fold but is spread over all blocks.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "workload/record.hpp"

namespace datanet::workload {

struct GithubGenOptions {
  std::uint64_t num_records = 200'000;
  std::uint64_t horizon_seconds = 86400ull * 30;  // one month of events
  // Rate-drift strength: 0 = perfectly stationary mix, 1 = strong drift.
  double drift = 0.5;
  std::uint64_t num_repos = 5000;
  std::uint64_t seed = 4321;
};

// The canonical public GitHub event types.
[[nodiscard]] const std::vector<std::string>& github_event_types();

// Baseline relative frequency of each type (same order as the list above);
// PushEvent dominates, as in the real archive.
[[nodiscard]] const std::vector<double>& github_event_weights();

class GithubLogGenerator {
 public:
  explicit GithubLogGenerator(GithubGenOptions options);

  [[nodiscard]] std::vector<Record> generate() const;

  [[nodiscard]] const GithubGenOptions& options() const noexcept { return options_; }

 private:
  GithubGenOptions options_;
};

}  // namespace datanet::workload
