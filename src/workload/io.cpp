#include "workload/io.hpp"

#include <fstream>
#include <stdexcept>

namespace datanet::workload {

std::uint64_t save_records(const std::string& file_path,
                           std::span<const Record> records) {
  std::ofstream out(file_path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_records: cannot open " + file_path);
  std::uint64_t bytes = 0;
  for (const Record& r : records) {
    const auto line = encode_record(r);
    out.write(line.data(), static_cast<std::streamsize>(line.size()));
    out.put('\n');
    bytes += line.size() + 1;
  }
  if (!out) throw std::runtime_error("save_records: write failed");
  return bytes;
}

std::vector<Record> load_records(const std::string& file_path, LoadStats* stats) {
  std::ifstream in(file_path, std::ios::binary);
  if (!in) throw std::runtime_error("load_records: cannot open " + file_path);
  std::vector<Record> records;
  LoadStats local;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (const auto rv = decode_record(line)) {
      records.push_back(Record{rv->timestamp, std::string(rv->key),
                               std::string(rv->payload)});
      ++local.loaded;
    } else {
      ++local.skipped;
    }
  }
  if (stats) *stats = local;
  return records;
}

std::uint64_t ingest_file(dfs::MiniDfs& dfs, const std::string& dfs_path,
                          const std::string& local_file, LoadStats* stats) {
  std::ifstream in(local_file, std::ios::binary);
  if (!in) throw std::runtime_error("ingest_file: cannot open " + local_file);
  auto writer = dfs.create(dfs_path);
  LoadStats local;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (decode_record(line)) {
      writer.append(line);
      ++local.loaded;
    } else {
      ++local.skipped;
    }
  }
  writer.close();
  if (stats) *stats = local;
  return dfs.blocks_of(dfs_path).size();
}

}  // namespace datanet::workload
