#include "workload/movie_gen.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "stats/zipf.hpp"
#include "workload/text_gen.hpp"

namespace datanet::workload {

MovieLogGenerator::MovieLogGenerator(MovieGenOptions options)
    : options_(options) {
  if (options_.num_movies == 0) throw std::invalid_argument("num_movies == 0");
  if (options_.num_records == 0) throw std::invalid_argument("num_records == 0");
  if (options_.horizon_seconds == 0) throw std::invalid_argument("horizon == 0");

  common::Rng rng(options_.seed);
  const stats::ZipfSampler pop(options_.num_movies, options_.popularity_zipf);
  movies_.resize(options_.num_movies);
  for (std::uint64_t m = 0; m < options_.num_movies; ++m) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "movie_%05llu",
                  static_cast<unsigned long long>(m));
    movies_[m].key = buf;
    // Releases spread over the first 90% of the horizon so late releases
    // still accumulate reviews inside the log window.
    movies_[m].release = rng.bounded(options_.horizon_seconds * 9 / 10);
    movies_[m].popularity = pop.probability(m);
  }
}

std::string MovieLogGenerator::movie_key(std::uint64_t rank) const {
  if (rank >= movies_.size()) throw std::out_of_range("movie_key: bad rank");
  return movies_[rank].key;  // rank order == construction order (Zipf ranks)
}

std::vector<Record> MovieLogGenerator::generate() const {
  common::Rng rng(options_.seed ^ 0x9d2c5680ULL);
  const stats::ZipfSampler pop(options_.num_movies, options_.popularity_zipf);
  const TextGenerator text;

  std::vector<Record> records;
  records.reserve(options_.num_records);
  for (std::uint64_t i = 0; i < options_.num_records; ++i) {
    const std::uint64_t m = pop.sample(rng);
    const MovieInfo& movie = movies_[m];

    std::uint64_t ts;
    if (rng.bernoulli(options_.background_fraction)) {
      // Background chatter: uniform over the post-release window.
      ts = movie.release + rng.bounded(options_.horizon_seconds - movie.release);
    } else {
      // Release-decay burst: Exp(decay) after release, clamped into horizon.
      const double delay = -options_.decay_seconds * std::log(1.0 - rng.uniform());
      ts = movie.release + static_cast<std::uint64_t>(delay);
      if (ts >= options_.horizon_seconds) ts = options_.horizon_seconds - 1;
    }

    Record r;
    r.timestamp = ts;
    r.key = movie.key;
    const int rating = static_cast<int>(rng.range(1, 10));
    r.payload = "rating=" + std::to_string(rating) + " " +
                text.sentence(rng, options_.min_review_words,
                              options_.max_review_words);
    records.push_back(std::move(r));
  }

  // Chronological storage order; stable so equal timestamps keep draw order
  // and the stream is deterministic.
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& a, const Record& b) {
                     return a.timestamp < b.timestamp;
                   });
  return records;
}

}  // namespace datanet::workload
