#include "workload/text_gen.hpp"

#include <stdexcept>

namespace datanet::workload {

namespace {
// Deterministic pronounceable word from an index: alternating consonant/vowel
// syllables, length grows slowly with index so common words are short (as in
// natural language).
std::string make_word(std::uint32_t index) {
  static constexpr char kCons[] = "bcdfghklmnprstvw";
  static constexpr char kVowel[] = "aeiou";
  std::string w;
  std::uint64_t x = datanet::common::mix64(index + 1);
  const std::uint32_t syllables = 1 + index / 400 + static_cast<std::uint32_t>(x % 2);
  for (std::uint32_t s = 0; s < syllables + 1; ++s) {
    w.push_back(kCons[x % 16]);
    x /= 16;
    w.push_back(kVowel[x % 5]);
    x /= 5;
    if (x < 16) x = datanet::common::mix64(x ^ (index * 2654435761u));
  }
  return w;
}
}  // namespace

TextGenerator::TextGenerator(std::uint32_t vocabulary_size, double zipf_exponent)
    : zipf_(vocabulary_size, zipf_exponent) {
  if (vocabulary_size == 0) throw std::invalid_argument("vocabulary_size == 0");
  vocab_.reserve(vocabulary_size);
  for (std::uint32_t i = 0; i < vocabulary_size; ++i) vocab_.push_back(make_word(i));
}

std::string TextGenerator::sentence(common::Rng& rng, std::uint32_t num_words) const {
  std::string out;
  out.reserve(num_words * 7);
  for (std::uint32_t i = 0; i < num_words; ++i) {
    if (i) out.push_back(' ');
    out += vocab_[zipf_.sample(rng)];
  }
  return out;
}

std::string TextGenerator::sentence(common::Rng& rng, std::uint32_t min_words,
                                    std::uint32_t max_words) const {
  if (min_words > max_words) throw std::invalid_argument("min_words > max_words");
  const auto n = static_cast<std::uint32_t>(rng.range(min_words, max_words));
  return sentence(rng, n);
}

}  // namespace datanet::workload
