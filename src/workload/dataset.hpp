#pragma once
// Glue between generators and the DFS: ingest a record stream into MiniDfs
// (Flume-style chronological append) and compute exact per-block sub-dataset
// ground truth for accuracy evaluation (Fig. 9, Table II) and tests.

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dfs/mini_dfs.hpp"
#include "workload/record.hpp"

namespace datanet::workload {

// Write `records` (already in storage order) into a new DFS file.
// Returns the number of blocks the file occupies.
std::uint64_t ingest(dfs::MiniDfs& dfs, const std::string& path,
                     std::span<const Record> records);

// Exact |b ∩ s| for every block of a file and every sub-dataset: the oracle
// DataNet's ElasticMap approximates.
class GroundTruth {
 public:
  GroundTruth(const dfs::MiniDfs& dfs, const std::string& path);

  // Bytes of sub-dataset `id` inside block ordinal `block_index` (0 if none).
  [[nodiscard]] std::uint64_t size_in_block(std::uint64_t block_index,
                                            SubDatasetId id) const;

  // Total bytes of sub-dataset `id` across the file.
  [[nodiscard]] std::uint64_t total_size(SubDatasetId id) const;

  // Per-block distribution vector for one sub-dataset (Fig. 1a / 5b series).
  [[nodiscard]] std::vector<std::uint64_t> distribution(SubDatasetId id) const;

  // All sub-dataset ids present in the file, sorted by descending total size.
  [[nodiscard]] std::vector<SubDatasetId> ids_by_size() const;

  [[nodiscard]] std::uint64_t num_blocks() const noexcept {
    return per_block_.size();
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::uint64_t num_subdatasets() const noexcept {
    return totals_.size();
  }

 private:
  std::vector<std::unordered_map<SubDatasetId, std::uint64_t>> per_block_;
  std::unordered_map<SubDatasetId, std::uint64_t> totals_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace datanet::workload
