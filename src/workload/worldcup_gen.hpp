#pragma once
// WorldCup-98-shaped HTTP access log (paper ref [3], used in the intro as a
// motivating sub-dataset workload). Requests target pages; match days create
// huge bursts for the pages of the teams playing — a second, independent
// content-clustering regime (burst clustering rather than release decay).

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/record.hpp"

namespace datanet::workload {

struct WorldCupGenOptions {
  std::uint64_t num_pages = 500;
  std::uint64_t num_records = 150'000;
  std::uint64_t num_days = 60;
  // Number of "match days"; on each, a few pages spike by `burst_factor`.
  std::uint64_t num_match_days = 20;
  double burst_factor = 40.0;
  std::uint64_t seed = 777;
};

class WorldCupLogGenerator {
 public:
  explicit WorldCupLogGenerator(WorldCupGenOptions options);

  [[nodiscard]] std::vector<Record> generate() const;

  [[nodiscard]] const WorldCupGenOptions& options() const noexcept {
    return options_;
  }

 private:
  WorldCupGenOptions options_;
};

}  // namespace datanet::workload
