#pragma once
// MovieLens/MovieTweetings-shaped review log (the paper's primary dataset,
// ref [11]): a chronological stream of movie ratings + text reviews. Content
// clustering is produced by the release-decay model — each movie's reviews
// arrive at an exponentially decaying rate after its release date, so the
// bulk of a movie's sub-dataset lands in the few blocks covering that period
// (Fig. 1a / Fig. 5b). Movie popularity follows a Zipf law, so a block is
// dominated by a handful of then-hot movies while containing stray records of
// many others — the regime ElasticMap's hashmap/bloom split targets.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "workload/record.hpp"

namespace datanet::workload {

struct MovieGenOptions {
  std::uint64_t num_movies = 2000;
  std::uint64_t num_records = 200'000;
  std::uint64_t horizon_seconds = 86400ull * 365;  // one year of logs
  double popularity_zipf = 0.95;  // movie popularity skew
  double decay_seconds = 86400.0 * 30;  // mean review delay after release
  // Fraction of reviews that ignore the release decay (background chatter
  // about old movies); keeps tails realistic.
  double background_fraction = 0.02;
  std::uint32_t min_review_words = 6;
  std::uint32_t max_review_words = 30;
  std::uint64_t seed = 1234;
};

struct MovieInfo {
  std::string key;          // "movie_00042"
  std::uint64_t release = 0;  // release timestamp
  double popularity = 0.0;    // relative share of total reviews
};

class MovieLogGenerator {
 public:
  explicit MovieLogGenerator(MovieGenOptions options);

  // Generate the full stream sorted by timestamp (chronological storage, as
  // the paper's dataset is stored).
  [[nodiscard]] std::vector<Record> generate() const;

  [[nodiscard]] const std::vector<MovieInfo>& movies() const noexcept {
    return movies_;
  }
  [[nodiscard]] const MovieGenOptions& options() const noexcept { return options_; }

  // The key of the `rank`-th most popular movie (rank 0 = most popular).
  [[nodiscard]] std::string movie_key(std::uint64_t rank) const;

 private:
  MovieGenOptions options_;
  std::vector<MovieInfo> movies_;
};

}  // namespace datanet::workload
