#pragma once
// Local-file import/export for record streams: lets the CLI (and users) run
// DataNet over real log files instead of synthetic generators, and dump
// generated datasets for inspection. Files are newline-separated encoded
// records ("ts\tkey\tpayload").

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dfs/mini_dfs.hpp"
#include "workload/record.hpp"

namespace datanet::workload {

// Write records as encoded lines; returns bytes written. Overwrites.
std::uint64_t save_records(const std::string& file_path,
                           std::span<const Record> records);

struct LoadStats {
  std::uint64_t loaded = 0;
  std::uint64_t skipped = 0;  // malformed lines
};

// Read and validate records from a local file; malformed lines are counted
// and dropped. Throws on I/O failure.
[[nodiscard]] std::vector<Record> load_records(const std::string& file_path,
                                               LoadStats* stats = nullptr);

// Stream a local log file straight into a DFS file without materializing
// all records (line-validated). Returns the number of blocks written;
// `stats` reports skipped lines.
std::uint64_t ingest_file(dfs::MiniDfs& dfs, const std::string& dfs_path,
                          const std::string& local_file,
                          LoadStats* stats = nullptr);

}  // namespace datanet::workload
