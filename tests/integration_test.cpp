// End-to-end integration tests over the full DataNet pipeline: generate ->
// ingest -> build ElasticMap -> schedule selection -> analyze. These encode
// the paper's headline claims as assertions (small-scale versions of the
// Section V experiments).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "apps/moving_average.hpp"
#include "apps/topk_search.hpp"
#include "apps/word_count.hpp"
#include "datanet/datanet.hpp"
#include "datanet/experiment.hpp"
#include "datanet/selection_runtime.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/flow_sched.hpp"
#include "scheduler/locality.hpp"
#include "stats/descriptive.hpp"

namespace dc = datanet::core;
namespace dsch = datanet::scheduler;
namespace dw = datanet::workload;

namespace {

dc::ExperimentConfig small_config() {
  dc::ExperimentConfig cfg;
  cfg.num_nodes = 8;
  cfg.block_size = 16 * 1024;
  cfg.seed = 5;
  return cfg;
}

std::vector<double> to_doubles(const std::vector<std::uint64_t>& v) {
  return {v.begin(), v.end()};
}

// Clean (no-fault, analytic-timing) selection through the runtime.
dc::SelectionResult run_selection(const datanet::dfs::MiniDfs& dfs,
                                  const std::string& path,
                                  const std::string& key,
                                  dsch::TaskScheduler& sched,
                                  const dc::DataNet* net,
                                  const dc::ExperimentConfig& cfg) {
  dc::DirectReadPolicy read(dfs, cfg.remote_read_penalty);
  dc::NoFaults faults;
  dc::AnalyticBackend timing;
  return dc::SelectionRuntime(read, faults, timing)
      .run(dfs, path, key, sched, net, cfg);
}

}  // namespace

TEST(Integration, MovieDatasetShapesAreSane) {
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, /*num_blocks=*/48, /*num_movies=*/300);
  const auto blocks = ds.dfs->blocks_of(ds.path).size();
  EXPECT_GE(blocks, 40u);
  EXPECT_LE(blocks, 56u);  // sized from the average record estimate
  EXPECT_FALSE(ds.hot_keys.empty());
  EXPECT_GT(ds.truth->num_subdatasets(), 100u);
}

TEST(Integration, HotMovieIsContentClustered) {
  // Fig. 1a / 5b: most of the hot movie's bytes sit in a small fraction of
  // blocks.
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const auto id = dw::subdataset_id(ds.hot_keys[0]);
  auto dist = ds.truth->distribution(id);
  const std::uint64_t total = std::accumulate(dist.begin(), dist.end(), 0ull);
  std::sort(dist.rbegin(), dist.rend());
  const std::size_t top = dist.size() / 4;
  const std::uint64_t top_sum = std::accumulate(dist.begin(), dist.begin() + top, 0ull);
  EXPECT_GT(static_cast<double>(top_sum) / static_cast<double>(total), 0.5);
}

TEST(Integration, DataNetFacadeEstimatesMatchTruthShape) {
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  // Hot keys: nearly exact (dominant in most blocks). Colder keys may be
  // over- or mildly under-estimated in their bloom-resident blocks — the
  // regime Fig. 9 shows.
  for (const auto& key : ds.hot_keys) {
    const auto actual = ds.truth->total_size(dw::subdataset_id(key));
    const auto est = net.estimate_total_size(key);
    EXPECT_GE(static_cast<double>(est), 0.5 * static_cast<double>(actual));
    EXPECT_LT(static_cast<double>(est), 5.0 * static_cast<double>(actual) + 8192);
  }
  for (std::size_t r = 0; r < 3; ++r) {
    const auto actual = ds.truth->total_size(dw::subdataset_id(ds.hot_keys[r]));
    const auto est = net.estimate_total_size(ds.hot_keys[r]);
    EXPECT_LT(static_cast<double>(est), 1.5 * static_cast<double>(actual));
  }
}

TEST(Integration, SelectionMaterializesExactSubdataset) {
  // Both schedulers must filter exactly the target records — DataNet changes
  // placement, never content.
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const auto& key = ds.hot_keys[0];
  const auto actual_bytes = ds.truth->total_size(dw::subdataset_id(key));

  dsch::LocalityScheduler base(3);
  const auto sel_base =
      run_selection(*ds.dfs, ds.path, key, base, nullptr, cfg);
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  dsch::DataNetScheduler dn;
  const auto sel_dn = run_selection(*ds.dfs, ds.path, key, dn, &net, cfg);

  const auto sum = [](const std::vector<std::uint64_t>& v) {
    return std::accumulate(v.begin(), v.end(), 0ull);
  };
  EXPECT_EQ(sum(sel_base.node_filtered_bytes), actual_bytes);
  EXPECT_EQ(sum(sel_dn.node_filtered_bytes), actual_bytes);

  // Every materialized line must belong to the target sub-dataset.
  for (const auto& data : sel_dn.node_local_data) {
    dw::for_each_record(data, [&](const dw::RecordView& rv) {
      EXPECT_EQ(rv.key, key);
    });
  }
}

TEST(Integration, DataNetBalancesFilteredWorkload) {
  // Fig. 5c: per-node filtered bytes are far more even with DataNet.
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const auto& key = ds.hot_keys[0];

  dsch::LocalityScheduler base(3);
  const auto sel_base =
      run_selection(*ds.dfs, ds.path, key, base, nullptr, cfg);
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  dsch::DataNetScheduler dn;
  const auto sel_dn = run_selection(*ds.dfs, ds.path, key, dn, &net, cfg);

  const auto sb = datanet::stats::summarize(to_doubles(sel_base.node_filtered_bytes));
  const auto sd = datanet::stats::summarize(to_doubles(sel_dn.node_filtered_bytes));
  EXPECT_LT(sd.coeff_variation(), sb.coeff_variation());
  EXPECT_LT(sd.max_over_mean(), sb.max_over_mean());
}

TEST(Integration, DataNetScansFewerBlocks) {
  // I/O skipping: ElasticMap prunes blocks with no target data.
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 2000);
  // A mid-rank movie appears in few blocks.
  const auto& key = ds.hot_keys[10];
  dsch::LocalityScheduler base(3);
  const auto sel_base =
      run_selection(*ds.dfs, ds.path, key, base, nullptr, cfg);
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  dsch::DataNetScheduler dn;
  const auto sel_dn = run_selection(*ds.dfs, ds.path, key, dn, &net, cfg);
  EXPECT_LT(sel_dn.blocks_scanned, sel_base.blocks_scanned);
}

TEST(Integration, AnalysisOutputIndependentOfScheduler) {
  // WordCount over the filtered sub-dataset must produce identical counts
  // whichever scheduler placed the data.
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 32, 200);
  const auto& key = ds.hot_keys[0];

  dsch::LocalityScheduler base(3);
  const auto sel_base =
      run_selection(*ds.dfs, ds.path, key, base, nullptr, cfg);
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  dsch::DataNetScheduler dn;
  const auto sel_dn = run_selection(*ds.dfs, ds.path, key, dn, &net, cfg);

  const auto job = datanet::apps::make_word_count_job();
  const auto rb = dc::run_analysis(job, sel_base, cfg);
  const auto rd = dc::run_analysis(job, sel_dn, cfg);
  EXPECT_EQ(rb.output, rd.output);
  EXPECT_FALSE(rb.output.empty());
}

TEST(Integration, DataNetImprovesEndToEndTime) {
  // Fig. 5a: with DataNet the end-to-end simulated time drops.
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const auto& key = ds.hot_keys[0];
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});

  const auto job = datanet::apps::make_word_count_job();
  dsch::LocalityScheduler base(3);
  const auto without =
      dc::run_end_to_end(*ds.dfs, ds.path, key, base, nullptr, job, cfg);
  dsch::DataNetScheduler dn;
  const auto with = dc::run_end_to_end(*ds.dfs, ds.path, key, dn, &net, job, cfg);

  EXPECT_LT(with.total_seconds(), without.total_seconds());
  // The analysis map phase is where the gain concentrates.
  EXPECT_LT(with.analysis.map_phase_seconds, without.analysis.map_phase_seconds);
}

TEST(Integration, ComputeHeavyJobGainsMore) {
  // Fig. 5a ordering: TopK (CPU heavy) gains more than MovingAverage.
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const auto& key = ds.hot_keys[0];
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});

  // Fig. 6's mechanism: relative map-phase gain grows with per-byte CPU
  // cost, because fixed task startup dilutes the gain for light jobs.
  const auto gain = [&](const datanet::mapred::Job& job) {
    dsch::LocalityScheduler base(3);
    const auto without =
        dc::run_end_to_end(*ds.dfs, ds.path, key, base, nullptr, job, cfg);
    dsch::DataNetScheduler dn;
    const auto with =
        dc::run_end_to_end(*ds.dfs, ds.path, key, dn, &net, job, cfg);
    return 1.0 -
           with.analysis.map_phase_seconds / without.analysis.map_phase_seconds;
  };
  const double topk_gain = gain(datanet::apps::make_topk_search_job("query", 5));
  const double ma_gain = gain(datanet::apps::make_moving_average_job(86400));
  EXPECT_GT(topk_gain, ma_gain);
}

TEST(Integration, ShuffleWaitsShrinkWithDataNet) {
  // Fig. 7: shuffle-phase span shrinks when map finishes evenly.
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const auto& key = ds.hot_keys[0];
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  const auto job = datanet::apps::make_word_count_job();

  dsch::LocalityScheduler base(3);
  const auto without =
      dc::run_end_to_end(*ds.dfs, ds.path, key, base, nullptr, job, cfg);
  dsch::DataNetScheduler dn;
  const auto with = dc::run_end_to_end(*ds.dfs, ds.path, key, dn, &net, job, cfg);
  EXPECT_LT(with.analysis.shuffle_phase_seconds,
            without.analysis.shuffle_phase_seconds);
}

TEST(Integration, FlowSchedulerAlsoBalances) {
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const auto& key = ds.hot_keys[0];
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  dsch::FlowScheduler flow;
  const auto sel = run_selection(*ds.dfs, ds.path, key, flow, &net, cfg);
  const auto s = datanet::stats::summarize(to_doubles(sel.node_filtered_bytes));
  EXPECT_LT(s.coeff_variation(), 0.5);
}

TEST(Integration, GithubIssueEventNotClusteredButImbalanced) {
  // Fig. 8 regime: IssueEvent exists in nearly all blocks (no clustering),
  // yet block densities vary.
  const auto cfg = small_config();
  const auto ds = dc::make_github_dataset(cfg, 32);
  const auto id = dw::subdataset_id("IssueEvent");
  const auto dist = ds.truth->distribution(id);
  std::size_t nonzero = 0;
  std::uint64_t mx = 0, mn = UINT64_MAX;
  for (const auto v : dist) {
    if (v > 0) {
      ++nonzero;
      mx = std::max(mx, v);
      mn = std::min(mn, v);
    }
  }
  EXPECT_GT(nonzero, dist.size() * 9 / 10);
  EXPECT_GT(mx, 2 * mn);
}

TEST(Integration, GithubStillBenefitsFromDataNet) {
  const auto cfg = small_config();
  const auto ds = dc::make_github_dataset(cfg, 32);
  const std::string key = "IssueEvent";
  // With only ~22 event types per block the hash map is cheap, so a high
  // alpha is the realistic configuration (the paper's Section V-B notes the
  // ratio of raw data to meta-data is very large for GitHub-like datasets).
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.6});
  const auto job = datanet::apps::make_topk_search_job("issue body text", 5);

  dsch::LocalityScheduler base(3);
  const auto without =
      dc::run_end_to_end(*ds.dfs, ds.path, key, base, nullptr, job, cfg);
  dsch::DataNetScheduler dn;
  const auto with = dc::run_end_to_end(*ds.dfs, ds.path, key, dn, &net, job, cfg);
  // The paper's GitHub gain is modest (125 s -> 107 s max map time); require
  // improvement, scaled to this smaller setup.
  EXPECT_LT(with.analysis.map_phase_seconds,
            without.analysis.map_phase_seconds);
}

TEST(Integration, RunSelectionValidatesConfig) {
  const auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 16, 100);
  auto bad = cfg;
  bad.num_nodes = 4;  // dataset was built for 8 nodes
  dsch::LocalityScheduler sched(1);
  EXPECT_THROW(
      run_selection(*ds.dfs, ds.path, ds.hot_keys[0], sched, nullptr, bad),
      std::invalid_argument);
}

TEST(Integration, DeterministicEndToEnd) {
  const auto cfg = small_config();
  const auto run = [&] {
    const auto ds = dc::make_movie_dataset(cfg, 32, 200);
    const auto& key = ds.hot_keys[0];
    const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
    dsch::DataNetScheduler dn;
    return dc::run_end_to_end(*ds.dfs, ds.path, key, dn, &net,
                              datanet::apps::make_word_count_job(), cfg);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.analysis.output, b.analysis.output);
  EXPECT_DOUBLE_EQ(a.total_seconds(), b.total_seconds());
}
