// Tests for the second wave of library features: Gamma model fitting,
// varint encoding, the sub-dataset inverted index, the sessionization job,
// the LPT scheduler, and record file I/O.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "apps/sessionize.hpp"
#include "common/rng.hpp"
#include "common/varint.hpp"
#include "datanet/experiment.hpp"
#include "elasticmap/index.hpp"
#include "mapred/engine.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/lpt.hpp"
#include "stats/descriptive.hpp"
#include "stats/fit.hpp"
#include "stats/gamma.hpp"
#include "workload/io.hpp"
#include "workload/movie_gen.hpp"

namespace dc = datanet::core;
namespace de = datanet::elasticmap;
namespace ds = datanet::stats;
namespace dw = datanet::workload;
namespace dsch = datanet::scheduler;

// ---- digamma + gamma fitting ----

TEST(Digamma, KnownValues) {
  // psi(1) = -gamma_EM; psi(2) = 1 - gamma_EM; psi(0.5) = -gamma_EM - 2 ln 2.
  constexpr double kEuler = 0.5772156649015329;
  EXPECT_NEAR(ds::digamma(1.0), -kEuler, 1e-10);
  EXPECT_NEAR(ds::digamma(2.0), 1.0 - kEuler, 1e-10);
  EXPECT_NEAR(ds::digamma(0.5), -kEuler - 2.0 * std::log(2.0), 1e-10);
  EXPECT_NEAR(ds::digamma(10.0), 2.251752589066721, 1e-10);
}

TEST(Digamma, RecurrenceHolds) {
  // psi(x+1) = psi(x) + 1/x.
  for (double x : {0.3, 1.7, 4.2, 25.0}) {
    EXPECT_NEAR(ds::digamma(x + 1.0), ds::digamma(x) + 1.0 / x, 1e-10);
  }
}

TEST(Digamma, RejectsNonPositive) {
  EXPECT_THROW((void)ds::digamma(0.0), std::invalid_argument);
  EXPECT_THROW((void)ds::digamma(-1.0), std::invalid_argument);
}

TEST(GammaFit, RecoversParametersFromSamples) {
  const ds::GammaDistribution g(1.2, 7.0);  // paper parameters
  datanet::common::Rng rng(99);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = g.sample(rng);
  const auto mom = ds::fit_gamma_moments(xs);
  const auto mle = ds::fit_gamma_mle(xs);
  EXPECT_NEAR(mom.shape, 1.2, 0.1);
  EXPECT_NEAR(mom.scale, 7.0, 0.5);
  EXPECT_NEAR(mle.shape, 1.2, 0.05);
  EXPECT_NEAR(mle.scale, 7.0, 0.3);
  EXPECT_GT(mle.iterations, 0);
}

TEST(GammaFit, MleBeatsMomentsOnSkewedData) {
  // For small shapes MLE is markedly more efficient than moments.
  const ds::GammaDistribution g(0.4, 3.0);
  datanet::common::Rng rng(5);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = g.sample(rng);
  const auto mle = ds::fit_gamma_mle(xs);
  EXPECT_NEAR(mle.shape, 0.4, 0.03);
}

TEST(GammaFit, RejectsBadInput) {
  EXPECT_THROW((void)ds::fit_gamma_moments(std::vector<double>{1.0}),
               std::invalid_argument);
  const std::vector<double> with_zero{1.0, 0.0, 2.0};
  EXPECT_THROW((void)ds::fit_gamma_mle(with_zero), std::invalid_argument);
}

TEST(GammaFit, DegenerateEqualSamples) {
  const std::vector<double> same{5.0, 5.0, 5.0, 5.0};
  const auto fit = ds::fit_gamma_mle(same);
  EXPECT_GT(fit.shape, 1e6);  // near-deterministic
  EXPECT_NEAR(fit.shape * fit.scale, 5.0, 1e-3);
}

// ---- varint ----

TEST(Varint, RoundTripBoundaries) {
  for (const std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, (1ull << 32),
        ~0ull}) {
    std::string buf;
    datanet::common::put_varint(buf, v);
    EXPECT_EQ(buf.size(), datanet::common::varint_length(v));
    std::size_t off = 0;
    const auto back = datanet::common::get_varint(buf, off);
    ASSERT_TRUE(back) << v;
    EXPECT_EQ(*back, v);
    EXPECT_EQ(off, buf.size());
  }
}

TEST(Varint, SequencesDecodeInOrder) {
  std::string buf;
  datanet::common::Rng rng(3);
  std::vector<std::uint64_t> values(500);
  for (auto& v : values) {
    v = rng() >> (rng.bounded(64));
    datanet::common::put_varint(buf, v);
  }
  std::size_t off = 0;
  for (const auto v : values) {
    const auto got = datanet::common::get_varint(buf, off);
    ASSERT_TRUE(got);
    EXPECT_EQ(*got, v);
  }
  EXPECT_EQ(off, buf.size());
}

TEST(Varint, TruncationDetected) {
  std::string buf;
  datanet::common::put_varint(buf, 1ull << 40);
  buf.pop_back();
  std::size_t off = 0;
  EXPECT_FALSE(datanet::common::get_varint(buf, off));
}

TEST(Varint, SmallSizesAreCompact) {
  EXPECT_EQ(datanet::common::varint_length(100), 1u);
  EXPECT_EQ(datanet::common::varint_length(5000), 2u);
  EXPECT_EQ(datanet::common::varint_length(1u << 20), 3u);
}

// ---- sub-dataset index ----

namespace {
struct IndexFixture {
  dc::StoredDataset ds;
  de::ElasticMapArray em;
  IndexFixture()
      : ds([] {
          dc::ExperimentConfig cfg;
          cfg.num_nodes = 8;
          cfg.block_size = 16 * 1024;
          cfg.seed = 17;
          return dc::make_movie_dataset(cfg, 32, 200);
        }()),
        em(de::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3})) {}
};
}  // namespace

TEST(Index, PostingsMatchBlockMetas) {
  IndexFixture f;
  const de::SubDatasetIndex index(f.em);
  const auto id = dw::subdataset_id(f.ds.hot_keys[0]);
  const auto posts = index.dominant_blocks(id);
  EXPECT_FALSE(posts.empty());
  std::uint64_t total = 0;
  for (const auto& p : posts) {
    EXPECT_EQ(f.em.block_meta(p.block_index).exact_size(id), p.bytes);
    total += p.bytes;
  }
  EXPECT_EQ(index.exact_total(id), total);
}

TEST(Index, PostingsAscendingBlocks) {
  IndexFixture f;
  const de::SubDatasetIndex index(f.em);
  const auto posts = index.dominant_blocks(dw::subdataset_id(f.ds.hot_keys[0]));
  for (std::size_t i = 1; i < posts.size(); ++i) {
    EXPECT_LT(posts[i - 1].block_index, posts[i].block_index);
  }
}

TEST(Index, UnknownIdEmpty) {
  IndexFixture f;
  const de::SubDatasetIndex index(f.em);
  EXPECT_TRUE(index.dominant_blocks(dw::subdataset_id("nope")).empty());
  EXPECT_EQ(index.exact_total(dw::subdataset_id("nope")), 0u);
}

TEST(Index, TopSubdatasetsDescendingAndConsistent) {
  IndexFixture f;
  const de::SubDatasetIndex index(f.em);
  const auto top = index.top_subdatasets(5);
  ASSERT_EQ(top.size(), 5u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
  // The hottest movie should lead the exact-bytes ranking.
  EXPECT_EQ(top[0].first, dw::subdataset_id(f.ds.hot_keys[0]));
  EXPECT_GT(index.memory_bytes(), 0u);
}

TEST(Index, TopLargerThanUniverseClamped) {
  IndexFixture f;
  const de::SubDatasetIndex index(f.em);
  const auto top = index.top_subdatasets(1 << 20);
  EXPECT_EQ(top.size(), index.num_subdatasets());
}

// ---- sessionize ----

TEST(Sessionize, ExtractField) {
  using datanet::apps::extract_field;
  EXPECT_EQ(extract_field("client=c42 method=GET", "client="), "c42");
  EXPECT_EQ(extract_field("method=GET client=c42", "client="), "c42");
  EXPECT_EQ(extract_field("method=GET", "client="), "");
  EXPECT_EQ(extract_field("xclient=c9 client=c1", "client="), "c1");
  EXPECT_EQ(extract_field("client=", "client="), "");
}

TEST(Sessionize, CountsSessionsBySplittingGaps) {
  // Entity u1: events at 0, 100, 5000 with gap 1000 => 2 sessions,
  // total span (100-0) + 0 = 100.
  const std::string data =
      "0\tk\tuser=u1 x\n"
      "100\tk\tuser=u1 y\n"
      "5000\tk\tuser=u1 z\n"
      "50\tk\tuser=u2 a\n";
  datanet::mapred::Engine engine({.num_nodes = 1});
  const auto report = engine.run(
      datanet::apps::make_sessionize_job("user=", 1000),
      {{.node = 0, .data = data, .charged_bytes = 0}});
  EXPECT_EQ(report.output.at("u1"), "sessions=2 events=3 span=100");
  EXPECT_EQ(report.output.at("u2"), "sessions=1 events=1 span=0");
}

TEST(Sessionize, MergesAcrossSplits) {
  // The same user's events arrive in two map tasks; the reducer must merge
  // and sort them before splitting sessions.
  const std::string b1 = "100\tk\tuser=u1 x\n";
  const std::string b2 = "0\tk\tuser=u1 y\n900\tk\tuser=u1 z\n";
  datanet::mapred::Engine engine({.num_nodes = 2});
  const auto report =
      engine.run(datanet::apps::make_sessionize_job("user=", 1000),
                 {{.node = 0, .data = b1, .charged_bytes = 0},
                  {.node = 1, .data = b2, .charged_bytes = 0}});
  EXPECT_EQ(report.output.at("u1"), "sessions=1 events=3 span=900");
}

TEST(Sessionize, RejectsBadArgs) {
  EXPECT_THROW(datanet::apps::make_sessionize_job("", 100),
               std::invalid_argument);
  EXPECT_THROW(datanet::apps::make_sessionize_job("u=", 0),
               std::invalid_argument);
}

// ---- LPT scheduler ----

namespace {
datanet::graph::BipartiteGraph lpt_graph(std::uint32_t nodes, std::size_t blocks,
                                         std::uint64_t seed) {
  datanet::common::Rng rng(seed);
  std::vector<datanet::graph::BlockVertex> bs;
  for (std::size_t j = 0; j < blocks; ++j) {
    datanet::graph::BlockVertex v;
    v.block_id = j;
    v.weight = j < blocks / 4 ? 2000 + rng.bounded(8000) : rng.bounded(60);
    while (v.hosts.size() < 3) {
      const auto n = static_cast<datanet::dfs::NodeId>(rng.bounded(nodes));
      if (std::find(v.hosts.begin(), v.hosts.end(), n) == v.hosts.end()) {
        v.hosts.push_back(n);
      }
    }
    bs.push_back(std::move(v));
  }
  return datanet::graph::BipartiteGraph(nodes, std::move(bs));
}
}  // namespace

TEST(Lpt, AssignsEverythingOnce) {
  const auto g = lpt_graph(8, 96, 3);
  dsch::LptScheduler sched;
  const auto rec = dsch::drain(
      sched, g, std::vector<std::uint64_t>(g.num_blocks(), 1 << 20));
  std::uint64_t total = 0;
  for (const auto l : rec.node_load) total += l;
  EXPECT_EQ(total, g.total_weight());
}

TEST(Lpt, BalancesClusteredWeights) {
  const auto g = lpt_graph(16, 256, 7);
  dsch::LptScheduler sched;
  const auto rec = dsch::drain(
      sched, g, std::vector<std::uint64_t>(g.num_blocks(), 1 << 20));
  std::vector<double> loads(rec.node_load.begin(), rec.node_load.end());
  const auto s = ds::summarize(loads);
  EXPECT_LT(s.coeff_variation(), 0.35);
}

TEST(Lpt, DrainNeverWorseThanPlan) {
  const auto g = lpt_graph(8, 128, 11);
  dsch::LptScheduler sched;
  const auto rec = dsch::drain(
      sched, g, std::vector<std::uint64_t>(g.num_blocks(), 1 << 20));
  // Fair-order draining may steal from long queues (work conservation),
  // which can only reduce the maximum planned load; totals are conserved.
  dsch::LptScheduler fresh;
  fresh.reset(g);
  const auto planned = fresh.planned_loads();
  const auto planned_total =
      std::accumulate(planned.begin(), planned.end(), std::uint64_t{0});
  const auto drained_total =
      std::accumulate(rec.node_load.begin(), rec.node_load.end(), std::uint64_t{0});
  EXPECT_EQ(planned_total, drained_total);
  // Stealing moves only light tasks, so the drained makespan stays within a
  // few percent of the static plan.
  EXPECT_LE(static_cast<double>(
                *std::max_element(rec.node_load.begin(), rec.node_load.end())),
            1.05 * static_cast<double>(
                       *std::max_element(planned.begin(), planned.end())));
}

TEST(Lpt, ComparableToAlgorithm1) {
  const auto g = lpt_graph(16, 256, 13);
  const std::vector<std::uint64_t> bytes(g.num_blocks(), 1 << 20);
  dsch::LptScheduler lpt;
  dsch::DataNetScheduler dn;
  const auto rl = dsch::drain(lpt, g, bytes);
  const auto rd = dsch::drain(dn, g, bytes);
  const auto ml = *std::max_element(rl.node_load.begin(), rl.node_load.end());
  const auto md = *std::max_element(rd.node_load.begin(), rd.node_load.end());
  // Both distribution-aware; neither should be wildly worse.
  EXPECT_LT(static_cast<double>(ml), 1.5 * static_cast<double>(md));
  EXPECT_LT(static_cast<double>(md), 1.5 * static_cast<double>(ml));
}

// ---- record file I/O ----

namespace {
struct TempDir {
  std::filesystem::path dir;
  TempDir() {
    dir = std::filesystem::temp_directory_path() /
          ("datanet_io_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
  }
  ~TempDir() { std::filesystem::remove_all(dir); }
  std::string file(const std::string& name) const { return (dir / name).string(); }
};
}  // namespace

TEST(RecordIo, SaveLoadRoundTrip) {
  TempDir tmp;
  dw::MovieGenOptions o;
  o.num_movies = 20;
  o.num_records = 500;
  const auto records = dw::MovieLogGenerator(o).generate();
  const auto bytes = dw::save_records(tmp.file("r.log"), records);
  EXPECT_GT(bytes, 0u);

  dw::LoadStats stats;
  const auto loaded = dw::load_records(tmp.file("r.log"), &stats);
  EXPECT_EQ(stats.loaded, records.size());
  EXPECT_EQ(stats.skipped, 0u);
  ASSERT_EQ(loaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); i += 37) {
    EXPECT_EQ(loaded[i].timestamp, records[i].timestamp);
    EXPECT_EQ(loaded[i].key, records[i].key);
    EXPECT_EQ(loaded[i].payload, records[i].payload);
  }
}

TEST(RecordIo, SkipsMalformedLines) {
  TempDir tmp;
  {
    std::ofstream f(tmp.file("bad.log"));
    f << "1\ta\tok\n"
      << "garbage line\n"
      << "\n"
      << "2\tb\talso ok\n";
  }
  dw::LoadStats stats;
  const auto loaded = dw::load_records(tmp.file("bad.log"), &stats);
  EXPECT_EQ(loaded.size(), 2u);
  EXPECT_EQ(stats.skipped, 1u);  // empty lines are ignored, not "skipped"
}

TEST(RecordIo, IngestFileIntoDfs) {
  TempDir tmp;
  dw::MovieGenOptions o;
  o.num_movies = 30;
  o.num_records = 2000;
  const auto records = dw::MovieLogGenerator(o).generate();
  dw::save_records(tmp.file("in.log"), records);

  datanet::dfs::DfsOptions dopt;
  dopt.block_size = 8192;
  datanet::dfs::MiniDfs fs(datanet::dfs::ClusterTopology::flat(4), dopt);
  dw::LoadStats stats;
  const auto blocks = dw::ingest_file(fs, "/x", tmp.file("in.log"), &stats);
  EXPECT_EQ(stats.loaded, records.size());
  EXPECT_GT(blocks, 1u);

  std::uint64_t count = 0;
  for (const auto b : fs.blocks_of("/x")) {
    dw::for_each_record(fs.read_block(b), [&](const dw::RecordView&) { ++count; });
  }
  EXPECT_EQ(count, records.size());
}

TEST(RecordIo, ThrowsOnMissingFile) {
  EXPECT_THROW(dw::load_records("/nonexistent/file.log"), std::runtime_error);
  datanet::dfs::MiniDfs fs(datanet::dfs::ClusterTopology::flat(4), {});
  EXPECT_THROW(dw::ingest_file(fs, "/x", "/nonexistent/file.log"),
               std::runtime_error);
}
