// Tests for the extension features beyond the paper's core: the runtime
// rebalancing comparator (Section V-A-4 discussion), aggregation-transfer
// planning (Section IV-B future work), heterogeneous-capability scheduling,
// speculative execution, meta-data persistence (MetaStore), incremental
// ElasticMap maintenance, multi-key scheduling, and DFS fault handling.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <set>

#include "apps/word_count.hpp"
#include "datanet/aggregation.hpp"
#include "datanet/datanet.hpp"
#include "datanet/experiment.hpp"
#include "datanet/rebalance.hpp"
#include "datanet/selection_runtime.hpp"
#include "elasticmap/meta_store.hpp"
#include "mapred/engine.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/locality.hpp"
#include "stats/descriptive.hpp"
#include "workload/dataset.hpp"
#include "workload/movie_gen.hpp"

namespace dc = datanet::core;
namespace de = datanet::elasticmap;
namespace dm = datanet::mapred;
namespace dsch = datanet::scheduler;
namespace dw = datanet::workload;

namespace {
// Clean (no-fault, analytic-timing) selection through the runtime.
dc::SelectionResult run_selection(const datanet::dfs::MiniDfs& dfs,
                                  const std::string& path,
                                  const std::string& key,
                                  dsch::TaskScheduler& sched,
                                  const dc::DataNet* net,
                                  const dc::ExperimentConfig& cfg) {
  dc::DirectReadPolicy read(dfs, cfg.remote_read_penalty);
  dc::NoFaults faults;
  dc::AnalyticBackend timing;
  return dc::SelectionRuntime(read, faults, timing)
      .run(dfs, path, key, sched, net, cfg);
}
}  // namespace

// ---- rebalance comparator ----

TEST(Rebalance, AlreadyBalancedNeedsNoMoves) {
  const auto plan = dc::plan_rebalance({100, 100, 100, 100});
  EXPECT_TRUE(plan.moves.empty());
  EXPECT_EQ(plan.migrated_bytes, 0u);
  EXPECT_DOUBLE_EQ(plan.migrated_fraction(), 0.0);
}

TEST(Rebalance, EqualizesSkewedLoads) {
  const std::vector<std::uint64_t> loads{1000, 0, 0, 0};
  const auto plan = dc::plan_rebalance(loads, 0.05);
  const auto total =
      std::accumulate(plan.loads_after.begin(), plan.loads_after.end(), 0ull);
  EXPECT_EQ(total, 1000u);  // bytes conserved
  const double mean = 250.0;
  for (const auto l : plan.loads_after) {
    EXPECT_GE(static_cast<double>(l), mean * 0.9);
    EXPECT_LE(static_cast<double>(l), mean * 1.1);
  }
  EXPECT_NEAR(plan.migrated_fraction(), 0.75, 0.01);
  EXPECT_EQ(plan.nodes_touched, 4u);
}

TEST(Rebalance, MigrationTimeFromBusiestNic) {
  dc::RebalancePlan plan;
  plan.moves = {{0, 1, 1 << 20}, {0, 2, 1 << 20}};  // node 0 sends 2 MiB
  EXPECT_DOUBLE_EQ(plan.migration_seconds(0.5), 1.0);
}

TEST(Rebalance, RejectsBadArgs) {
  EXPECT_THROW(dc::plan_rebalance({}), std::invalid_argument);
  EXPECT_THROW(dc::plan_rebalance({1, 2}, -0.1), std::invalid_argument);
}

TEST(Rebalance, LocalitySelectionMigratesLargeFraction) {
  // The paper's §V-A-4 observation: rebalancing a locality-scheduled
  // selection moves a large share of the data and touches most nodes.
  dc::ExperimentConfig cfg;
  cfg.num_nodes = 16;
  cfg.block_size = 32 * 1024;
  cfg.seed = 3;
  const auto ds = dc::make_movie_dataset(cfg, 96, 500);
  dsch::LocalityScheduler base(7);
  const auto sel =
      run_selection(*ds.dfs, ds.path, ds.hot_keys[0], base, nullptr, cfg);
  const auto plan = dc::plan_rebalance(sel.node_filtered_bytes);
  EXPECT_GT(plan.migrated_fraction(), 0.20);
  EXPECT_GT(plan.nodes_touched, cfg.num_nodes / 2);

  // DataNet's proactive schedule needs almost no follow-up migration.
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  dsch::DataNetScheduler dn;
  const auto sel_dn =
      run_selection(*ds.dfs, ds.path, ds.hot_keys[0], dn, &net, cfg);
  const auto plan_dn = dc::plan_rebalance(sel_dn.node_filtered_bytes);
  EXPECT_LT(plan_dn.migrated_fraction(), 0.5 * plan.migrated_fraction());
}

// ---- aggregation planner ----

TEST(Aggregation, PlacesReducersOnHeaviestNodes) {
  const std::vector<std::uint64_t> out{10, 500, 20, 300};
  const auto plan = dc::plan_aggregation(out, 2);
  ASSERT_EQ(plan.reducer_hosts.size(), 2u);
  EXPECT_EQ(plan.reducer_hosts[0], 1u);
  EXPECT_EQ(plan.reducer_hosts[1], 3u);
}

TEST(Aggregation, TransferAccountsRetainedShare) {
  // 2 reducers on nodes 1 and 3: each retains 1/2 of its own output.
  const std::vector<std::uint64_t> out{10, 500, 20, 300};
  const auto plan = dc::plan_aggregation(out, 2);
  EXPECT_EQ(plan.total_bytes, 830u);
  EXPECT_EQ(plan.transfer_bytes, 830u - 500 / 2 - 300 / 2);
}

TEST(Aggregation, BeatsRoundRobinOnSkewedOutput) {
  std::vector<std::uint64_t> out(16, 10);
  out[7] = 5000;
  out[11] = 3000;
  const auto smart = dc::plan_aggregation(out, 4);
  const auto naive = dc::plan_aggregation_roundrobin(out, 4);
  EXPECT_LT(smart.transfer_bytes, naive.transfer_bytes);
}

TEST(Aggregation, EqualOutputMakesPlansEquivalent) {
  const std::vector<std::uint64_t> out(8, 100);
  const auto smart = dc::plan_aggregation(out, 8);
  const auto naive = dc::plan_aggregation_roundrobin(out, 8);
  EXPECT_EQ(smart.transfer_bytes, naive.transfer_bytes);
}

TEST(Aggregation, MoreReducersThanNodesWraps) {
  const std::vector<std::uint64_t> out{900, 100};
  const auto plan = dc::plan_aggregation(out, 3);
  // Heaviest node gets the extra reducer.
  EXPECT_EQ(std::count(plan.reducer_hosts.begin(), plan.reducer_hosts.end(), 0u),
            2);
}

TEST(Aggregation, RejectsBadArgs) {
  EXPECT_THROW(dc::plan_aggregation({}, 2), std::invalid_argument);
  EXPECT_THROW(dc::plan_aggregation({1}, 0), std::invalid_argument);
}

// ---- heterogeneous capability scheduling ----

namespace {
datanet::graph::BipartiteGraph hetero_graph(std::uint32_t nodes,
                                            std::size_t blocks,
                                            std::uint64_t seed) {
  datanet::common::Rng rng(seed);
  std::vector<datanet::graph::BlockVertex> bs;
  for (std::size_t j = 0; j < blocks; ++j) {
    datanet::graph::BlockVertex v;
    v.block_id = j;
    v.weight = 500 + rng.bounded(4000);
    while (v.hosts.size() < 3) {
      const auto n = static_cast<datanet::dfs::NodeId>(rng.bounded(nodes));
      if (std::find(v.hosts.begin(), v.hosts.end(), n) == v.hosts.end()) {
        v.hosts.push_back(n);
      }
    }
    bs.push_back(std::move(v));
  }
  return datanet::graph::BipartiteGraph(nodes, std::move(bs));
}
}  // namespace

TEST(Heterogeneous, LoadsTrackCapabilities) {
  const auto g = hetero_graph(8, 256, 5);
  // Nodes 0-3 are twice as capable as nodes 4-7: they heartbeat twice as
  // often (drain_timed) and their Algorithm 1 target is twice as large.
  const std::vector<double> caps{2, 2, 2, 2, 1, 1, 1, 1};
  dsch::DataNetSchedulerOptions opt;
  opt.capabilities = caps;
  dsch::DataNetScheduler sched(opt);
  const auto rec = dsch::drain_timed(
      sched, g, std::vector<std::uint64_t>(g.num_blocks(), 1 << 20), caps);
  double fast = 0, slow = 0;
  for (int n = 0; n < 4; ++n) fast += static_cast<double>(rec.node_load[n]);
  for (int n = 4; n < 8; ++n) slow += static_cast<double>(rec.node_load[n]);
  EXPECT_NEAR(fast / slow, 2.0, 0.3);
}

TEST(DrainTimed, HomogeneousMatchesTotals) {
  const auto g = hetero_graph(6, 96, 23);
  const std::vector<std::uint64_t> bytes(g.num_blocks(), 1 << 20);
  dsch::DataNetScheduler sched;
  const auto rec = dsch::drain_timed(sched, g, bytes, {});
  const auto total =
      std::accumulate(rec.node_load.begin(), rec.node_load.end(), 0ull);
  EXPECT_EQ(total, g.total_weight());
  EXPECT_EQ(rec.local_tasks + rec.remote_tasks, g.num_blocks());
}

TEST(DrainTimed, SlowNodeScansFewerBlocks) {
  const auto g = hetero_graph(4, 128, 29);
  const std::vector<std::uint64_t> bytes(g.num_blocks(), 1 << 20);
  dsch::LocalityScheduler sched(3);
  const auto rec = dsch::drain_timed(sched, g, bytes, {1.0, 1.0, 1.0, 0.25});
  std::vector<int> counts(4, 0);
  for (const auto n : rec.block_to_node) ++counts[n];
  EXPECT_LT(counts[3], counts[0] / 2);
}

TEST(DrainTimed, RejectsBadArgs) {
  const auto g = hetero_graph(4, 16, 31);
  dsch::LocalityScheduler sched(1);
  const std::vector<std::uint64_t> bytes(g.num_blocks(), 1);
  EXPECT_THROW(dsch::drain_timed(sched, g, {1, 2}, {}), std::invalid_argument);
  EXPECT_THROW(dsch::drain_timed(sched, g, bytes, {1.0}), std::invalid_argument);
  EXPECT_THROW(dsch::drain_timed(sched, g, bytes, {1, 1, 1, 0}),
               std::invalid_argument);
}

TEST(Heterogeneous, UniformCapabilitiesMatchHomogeneous) {
  const auto g = hetero_graph(6, 128, 9);
  dsch::DataNetSchedulerOptions opt;
  opt.capabilities = {3, 3, 3, 3, 3, 3};
  dsch::DataNetScheduler uniform(opt);
  dsch::DataNetScheduler plain;
  const std::vector<std::uint64_t> bytes(g.num_blocks(), 1 << 20);
  EXPECT_EQ(dsch::drain(uniform, g, bytes).block_to_node,
            dsch::drain(plain, g, bytes).block_to_node);
}

TEST(Heterogeneous, TargetOfReflectsCapability) {
  const auto g = hetero_graph(4, 64, 13);
  dsch::DataNetSchedulerOptions opt;
  opt.capabilities = {1, 1, 1, 3};
  dsch::DataNetScheduler sched(opt);
  sched.reset(g);
  EXPECT_NEAR(sched.target_of(3), 3.0 * sched.target_of(0), 1e-9);
  EXPECT_NEAR(sched.target_of(0) + sched.target_of(1) + sched.target_of(2) +
                  sched.target_of(3),
              static_cast<double>(g.total_weight()), 1e-6);
}

TEST(Heterogeneous, RejectsBadCapabilities) {
  const auto g = hetero_graph(4, 16, 17);
  dsch::DataNetSchedulerOptions wrong_size;
  wrong_size.capabilities = {1, 1};
  dsch::DataNetScheduler a(wrong_size);
  EXPECT_THROW(a.reset(g), std::invalid_argument);
  dsch::DataNetSchedulerOptions zeros;
  zeros.capabilities = {0, 0, 0, 0};
  dsch::DataNetScheduler b(zeros);
  EXPECT_THROW(b.reset(g), std::invalid_argument);
}

// ---- heterogeneous engine speeds + speculation ----

namespace {
std::string tiny_block(int records) {
  std::string data;
  for (int i = 0; i < records; ++i) {
    data += std::to_string(i) + "\tk\tpayload words here\n";
  }
  return data;
}

dm::Job unit_cost_job() {
  auto job = datanet::apps::make_word_count_job();
  job.config.cost = {};
  job.config.cost.io_s_per_mib = 0.0;
  job.config.cost.cpu_s_per_mib = 0.0;
  job.config.cost.cpu_us_per_record = 0.0;
  job.config.cost.task_overhead_s = 1.0;  // every task costs exactly 1 s
  return job;
}
}  // namespace

TEST(NodeSpeed, FasterNodeFinishesSooner) {
  const auto b = tiny_block(5);
  dm::EngineOptions opt;
  opt.num_nodes = 2;
  opt.slots_per_node = 1;
  opt.node_speed = {1.0, 2.0};
  dm::Engine engine(opt);
  const std::vector<dm::InputSplit> splits{
      {.node = 0, .data = b, .charged_bytes = 0},
      {.node = 1, .data = b, .charged_bytes = 0}};
  const auto r = engine.run(unit_cost_job(), splits);
  EXPECT_DOUBLE_EQ(r.node_map_seconds[0], 1.0);
  EXPECT_DOUBLE_EQ(r.node_map_seconds[1], 0.5);
}

TEST(NodeSpeed, RejectsBadSpeeds) {
  dm::EngineOptions opt;
  opt.num_nodes = 2;
  opt.node_speed = {1.0};
  EXPECT_THROW(dm::Engine{opt}, std::invalid_argument);
  opt.node_speed = {1.0, 0.0};
  EXPECT_THROW(dm::Engine{opt}, std::invalid_argument);
}

TEST(Speculation, CutsStragglerTail) {
  const auto b = tiny_block(5);
  dm::EngineOptions opt;
  opt.num_nodes = 4;
  opt.slots_per_node = 1;
  dm::Engine plain(opt);
  opt.speculative = true;
  dm::Engine spec(opt);
  // Node 0 gets 4 tasks (finishes at 4 s); others get 1 task each.
  std::vector<dm::InputSplit> splits;
  for (int i = 0; i < 4; ++i) splits.push_back({.node = 0, .data = b, .charged_bytes = 0});
  for (std::uint32_t n = 1; n < 4; ++n) {
    splits.push_back({.node = n, .data = b, .charged_bytes = 0});
  }
  const auto r_plain = plain.run(unit_cost_job(), splits);
  const auto r_spec = spec.run(unit_cost_job(), splits);
  EXPECT_DOUBLE_EQ(r_plain.map_phase_seconds, 4.0);
  // Backup of node 0's 4th task launches at t=3 on an idle node... but its
  // original finishes at 4 and a fresh copy started at max(1, 3) = 3 ends at
  // 4 — equal, no gain. The 4th task *starts* at 3; backup can start at 1
  // (earliest idle) => finish 2? No: launch = max(earliest_idle, task start)
  // = 3. Single-wave speculation cannot beat an already-running dense chain,
  // exactly like Hadoop. Output must be unchanged and phase never longer.
  EXPECT_LE(r_spec.map_phase_seconds, r_plain.map_phase_seconds);
  EXPECT_EQ(r_spec.output, r_plain.output);
}

TEST(Speculation, HelpsSlowNodeStraggler) {
  const auto b = tiny_block(5);
  dm::EngineOptions opt;
  opt.num_nodes = 3;
  opt.slots_per_node = 1;
  opt.node_speed = {0.25, 1.0, 1.0};  // node 0 is 4x slower
  dm::Engine plain(opt);
  opt.speculative = true;
  dm::Engine spec(opt);
  const std::vector<dm::InputSplit> splits{
      {.node = 0, .data = b, .charged_bytes = 0},   // 4 s on the slow node
      {.node = 1, .data = b, .charged_bytes = 0},   // 1 s
      {.node = 2, .data = b, .charged_bytes = 0}};  // 1 s
  const auto r_plain = plain.run(unit_cost_job(), splits);
  const auto r_spec = spec.run(unit_cost_job(), splits);
  EXPECT_DOUBLE_EQ(r_plain.map_phase_seconds, 4.0);
  // Backup launches at t=1 on a fast node and finishes at 2.
  EXPECT_DOUBLE_EQ(r_spec.map_phase_seconds, 2.0);
  EXPECT_EQ(r_spec.output, r_plain.output);
}

// ---- MetaStore persistence ----

namespace {
struct TempDir {
  std::filesystem::path dir;
  TempDir() {
    dir = std::filesystem::temp_directory_path() /
          ("datanet_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
  }
  ~TempDir() { std::filesystem::remove_all(dir); }
  std::string file(const std::string& name) const { return (dir / name).string(); }
};

dc::StoredDataset meta_dataset() {
  dc::ExperimentConfig cfg;
  cfg.num_nodes = 8;
  cfg.block_size = 16 * 1024;
  cfg.seed = 11;
  return dc::make_movie_dataset(cfg, 24, 150);
}
}  // namespace

TEST(MetaStore, SaveLoadRoundTrip) {
  TempDir tmp;
  const auto ds = meta_dataset();
  const auto em = de::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});
  de::MetaStore::save(em, tmp.file("meta.bin"));
  const auto loaded = de::MetaStore::load(tmp.file("meta.bin"));

  EXPECT_EQ(loaded.num_blocks(), em.num_blocks());
  EXPECT_EQ(loaded.raw_bytes(), em.raw_bytes());
  EXPECT_EQ(loaded.path(), em.path());
  EXPECT_DOUBLE_EQ(loaded.options().alpha, 0.3);
  for (const auto id : ds.truth->ids_by_size()) {
    EXPECT_EQ(loaded.estimate_total_size(id), em.estimate_total_size(id));
  }
}

TEST(MetaStore, LazyReaderMatchesEagerLoad) {
  TempDir tmp;
  const auto ds = meta_dataset();
  const auto em = de::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});
  de::MetaStore::save(em, tmp.file("meta.bin"));

  de::MetaStore::Reader reader(tmp.file("meta.bin"));
  EXPECT_EQ(reader.num_blocks(), em.num_blocks());
  EXPECT_EQ(reader.dataset_path(), em.path());
  EXPECT_EQ(reader.raw_bytes(), em.raw_bytes());
  // Random-access a few blocks, out of order.
  for (const std::uint64_t b : {em.num_blocks() - 1, std::uint64_t{0},
                                em.num_blocks() / 2}) {
    const auto meta = reader.load_block(b);
    EXPECT_EQ(meta.num_dominant(), em.block_meta(b).num_dominant());
    EXPECT_EQ(meta.delta(), em.block_meta(b).delta());
    EXPECT_EQ(reader.block_id(b), em.block_id(b));
  }
  EXPECT_THROW(reader.load_block(em.num_blocks()), std::out_of_range);
}

TEST(MetaStore, ShardedRoundTrip) {
  TempDir tmp;
  const auto ds = meta_dataset();
  const auto em = de::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});
  for (const std::uint32_t shards : {1u, 3u, 7u}) {
    const auto prefix = tmp.file("sharded" + std::to_string(shards));
    de::ShardedMetaStore::save(em, prefix, shards);
    const auto loaded = de::ShardedMetaStore::load(prefix, shards);
    EXPECT_EQ(loaded.num_blocks(), em.num_blocks());
    const auto hot = dw::subdataset_id(ds.hot_keys[0]);
    EXPECT_EQ(loaded.estimate_total_size(hot), em.estimate_total_size(hot));
    EXPECT_EQ(loaded.distribution(hot).size(), em.distribution(hot).size());
  }
}

TEST(MetaStore, LoadRejectsGarbage) {
  TempDir tmp;
  {
    std::ofstream f(tmp.file("junk.bin"), std::ios::binary);
    f << "this is not a metastore file at all................";
  }
  EXPECT_THROW(de::MetaStore::load(tmp.file("junk.bin")), std::runtime_error);
  EXPECT_THROW(de::MetaStore::load(tmp.file("missing.bin")), std::runtime_error);
}

TEST(MetaStore, RingPartitionedShardsRoundTrip) {
  TempDir tmp;
  const auto ds = meta_dataset();
  const auto em = de::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});
  const auto hot = dw::subdataset_id(ds.hot_keys[0]);
  // 64 shards over 24 blocks guarantees empty shards: load() must not care
  // which shards happened to win blocks.
  for (const std::uint32_t shards : {1u, 4u, 64u}) {
    const datanet::dfs::HashRing ring(shards);
    const auto prefix = tmp.file("ring" + std::to_string(shards));
    de::ShardedMetaStore::save(em, prefix, ring);
    for (std::uint32_t s = 0; s < shards; ++s) {
      EXPECT_TRUE(std::filesystem::exists(
          de::ShardedMetaStore::shard_file(prefix, s)));
    }
    const auto loaded = de::ShardedMetaStore::load(prefix, shards);
    EXPECT_EQ(loaded.num_blocks(), em.num_blocks());
    EXPECT_EQ(loaded.estimate_total_size(hot), em.estimate_total_size(hot));
    const auto da = loaded.distribution(hot);
    const auto db = em.distribution(hot);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
      EXPECT_EQ(da[i].block_id, db[i].block_id);
      EXPECT_EQ(da[i].estimated_bytes, db[i].estimated_bytes);
    }
  }
}

TEST(MetaStore, MixedFormatShardsLoadTogether) {
  TempDir tmp;
  const auto ds = meta_dataset();
  const auto em = de::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});
  const auto prefix = tmp.file("mixed");
  const datanet::dfs::HashRing ring(3);
  de::ShardedMetaStore::save(em, prefix, ring);

  // Downgrade one shard to format v1 in place; a v1 shard must load next to
  // its v2 siblings (rolling-upgrade reality: masters rewrite at their own
  // pace).
  de::MetaStore::rewrite_as_v1(de::ShardedMetaStore::shard_file(prefix, 1));
  const auto loaded = de::ShardedMetaStore::load(prefix, 3);
  EXPECT_EQ(loaded.num_blocks(), em.num_blocks());
  const auto hot = dw::subdataset_id(ds.hot_keys[0]);
  EXPECT_EQ(loaded.estimate_total_size(hot), em.estimate_total_size(hot));
  EXPECT_EQ(loaded.distribution(hot).size(), em.distribution(hot).size());
}

TEST(MetaStore, CorruptShardBlobFailsTypedWhileV1SiblingLoads) {
  TempDir tmp;
  const auto ds = meta_dataset();
  const auto em = de::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});
  const auto prefix = tmp.file("corrupt");
  de::ShardedMetaStore::save(em, prefix, datanet::dfs::HashRing(2));
  (void)de::ShardedMetaStore::load(prefix, 2);  // clean: loads fine

  // Flip a byte inside some blob of shard 0 (past header+index): the v2 CRC
  // catches it with the typed error, not garbage metadata.
  const auto victim = de::ShardedMetaStore::shard_file(prefix, 0);
  std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(f.tellg());
  f.seekg(static_cast<std::streamoff>(size - 5));
  char b = 0;
  f.read(&b, 1);
  f.seekp(static_cast<std::streamoff>(size - 5));
  b = static_cast<char>(b ^ 0x40);
  f.write(&b, 1);
  f.close();

  EXPECT_THROW((void)de::ShardedMetaStore::load(prefix, 2),
               de::MetaStoreCorruptError);
}

// ---- incremental extend ----

TEST(Extend, MatchesFullRebuild) {
  dc::ExperimentConfig cfg;
  cfg.num_nodes = 8;
  cfg.block_size = 16 * 1024;
  cfg.seed = 21;
  dw::MovieGenOptions gopt;
  gopt.num_movies = 150;
  gopt.num_records = 12000;
  gopt.seed = 33;
  const auto records = dw::MovieLogGenerator(gopt).generate();

  datanet::dfs::DfsOptions dopt;
  dopt.block_size = cfg.block_size;
  dopt.seed = cfg.seed;
  datanet::dfs::MiniDfs dfs(datanet::dfs::ClusterTopology::flat(8), dopt);

  // Ingest the first half, build, ingest the rest into the same file via a
  // fresh writer-like append (simulate by re-creating with full content in a
  // second file and extending a half-built array over a growing file).
  const std::size_t half = records.size() / 2;
  auto writer = dfs.create("/log");
  for (std::size_t i = 0; i < half; ++i) {
    writer.append(dw::encode_record(records[i]));
  }
  writer.close();

  auto em = de::ElasticMapArray::build(dfs, "/log", {.alpha = 0.3});
  const auto blocks_before = em.num_blocks();

  // Append the second half through a second writer session... MiniDfs files
  // are write-once, so grow a sibling file and splice: instead we re-open
  // the same path through the internal writer path by creating a new DFS
  // holding the full stream and comparing extend() on a prefix-built array.
  datanet::dfs::MiniDfs dfs_full(datanet::dfs::ClusterTopology::flat(8), dopt);
  auto w2 = dfs_full.create("/log");
  for (const auto& r : records) w2.append(dw::encode_record(r));
  w2.close();

  auto em_prefix = de::ElasticMapArray::build(dfs, "/log", {.alpha = 0.3});
  (void)em_prefix;
  auto em_full = de::ElasticMapArray::build(dfs_full, "/log", {.alpha = 0.3});

  // extend() on an array already covering all blocks is a no-op.
  EXPECT_EQ(em_full.extend(dfs_full), 0u);
  EXPECT_EQ(em.extend(dfs), 0u);
  EXPECT_EQ(em.num_blocks(), blocks_before);
}

TEST(Extend, IncorporatesAppendedBlocks) {
  datanet::dfs::DfsOptions dopt;
  dopt.block_size = 8 * 1024;
  dopt.seed = 5;
  datanet::dfs::MiniDfs dfs(datanet::dfs::ClusterTopology::flat(4), dopt);

  dw::MovieGenOptions gopt;
  gopt.num_movies = 60;
  gopt.num_records = 6000;
  const auto records = dw::MovieLogGenerator(gopt).generate();

  // MiniDfs keeps the writer open across builds: write half, build while
  // more data arrives, then extend.
  auto writer = dfs.create("/log");
  for (std::size_t i = 0; i < records.size() / 2; ++i) {
    writer.append(dw::encode_record(records[i]));
  }
  // Blocks committed so far are visible; the writer's partial buffer is not.
  auto em = de::ElasticMapArray::build(dfs, "/log", {.alpha = 0.3});
  const auto before = em.num_blocks();

  for (std::size_t i = records.size() / 2; i < records.size(); ++i) {
    writer.append(dw::encode_record(records[i]));
  }
  writer.close();

  const auto added = em.extend(dfs);
  EXPECT_GT(added, 0u);
  EXPECT_EQ(em.num_blocks(), before + added);
  EXPECT_EQ(em.num_blocks(), dfs.blocks_of("/log").size());

  // The extended array must be identical to a from-scratch rebuild.
  const auto rebuilt = de::ElasticMapArray::build(dfs, "/log", {.alpha = 0.3});
  EXPECT_EQ(em.raw_bytes(), rebuilt.raw_bytes());
  dw::GroundTruth truth(dfs, "/log");
  for (const auto id : truth.ids_by_size()) {
    EXPECT_EQ(em.estimate_total_size(id), rebuilt.estimate_total_size(id));
  }
}

// ---- multi-key scheduling ----

TEST(MultiKey, GraphSumsWeights) {
  const auto ds = meta_dataset();
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  const std::vector<std::string> keys{ds.hot_keys[0], ds.hot_keys[1]};
  const auto multi = net.scheduling_graph(std::span(keys));
  const auto a = net.scheduling_graph(keys[0]);
  const auto b = net.scheduling_graph(keys[1]);
  EXPECT_EQ(multi.total_weight(), a.total_weight() + b.total_weight());
  EXPECT_GE(multi.num_blocks(), std::max(a.num_blocks(), b.num_blocks()));
  EXPECT_LE(multi.num_blocks(), a.num_blocks() + b.num_blocks());
}

TEST(MultiKey, EmptyKeyListEmptyGraph) {
  const auto ds = meta_dataset();
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  const std::vector<std::string> none;
  EXPECT_EQ(net.scheduling_graph(std::span(none)).num_blocks(), 0u);
}

// ---- DFS fault handling ----

namespace {
datanet::dfs::MiniDfs faulty_dfs(std::uint32_t repl) {
  datanet::dfs::DfsOptions o;
  o.block_size = 2048;
  o.replication = repl;
  o.seed = 9;
  datanet::dfs::MiniDfs dfs(datanet::dfs::ClusterTopology::flat(6), o);
  auto w = dfs.create("/f");
  for (int i = 0; i < 200; ++i) {
    w.append(std::to_string(i) + "\tk\tsome payload data");
  }
  w.close();
  return dfs;
}
}  // namespace

TEST(Faults, DecommissionReReplicates) {
  auto dfs = faulty_dfs(3);
  const auto lost = dfs.decommission(2);
  EXPECT_TRUE(lost.empty());  // 3-way replication survives one node
  EXPECT_FALSE(dfs.is_active(2));
  EXPECT_EQ(dfs.num_active_nodes(), 5u);
  EXPECT_TRUE(dfs.blocks_on(2).empty());
  // Every block is back to full replication on active, distinct nodes.
  for (const auto b : dfs.blocks_of("/f")) {
    const auto& reps = dfs.block(b).replicas;
    EXPECT_EQ(reps.size(), 3u);
    std::set<datanet::dfs::NodeId> uniq(reps.begin(), reps.end());
    EXPECT_EQ(uniq.size(), 3u);
    for (const auto n : reps) EXPECT_TRUE(dfs.is_active(n));
  }
}

TEST(Faults, SingleReplicaDataLoss) {
  auto dfs = faulty_dfs(1);
  const auto hosted = dfs.blocks_on(0).size();
  const auto lost = dfs.decommission(0);
  EXPECT_EQ(lost.size(), hosted);  // replication 1: everything on it is gone
}

TEST(Faults, DecommissionIsIdempotent) {
  auto dfs = faulty_dfs(3);
  (void)dfs.decommission(1);
  EXPECT_TRUE(dfs.decommission(1).empty());
  EXPECT_EQ(dfs.num_active_nodes(), 5u);
}

TEST(Faults, SurvivesMultipleFailures) {
  auto dfs = faulty_dfs(3);
  (void)dfs.decommission(0);
  (void)dfs.decommission(1);
  (void)dfs.decommission(2);
  EXPECT_EQ(dfs.num_active_nodes(), 3u);
  for (const auto b : dfs.blocks_of("/f")) {
    const auto& reps = dfs.block(b).replicas;
    EXPECT_EQ(reps.size(), 3u);  // exactly the 3 surviving nodes
    for (const auto n : reps) EXPECT_TRUE(dfs.is_active(n));
  }
}

TEST(Faults, SchedulingStillWorksAfterFailure) {
  // End-to-end: decommission a node, rebuild the graph from the repaired
  // replica map, and verify DataNet still balances and computes correctly.
  dc::ExperimentConfig cfg;
  cfg.num_nodes = 8;
  cfg.block_size = 16 * 1024;
  cfg.seed = 31;
  auto ds = dc::make_movie_dataset(cfg, 24, 150);
  const auto lost = ds.dfs->decommission(3);
  EXPECT_TRUE(lost.empty());

  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  dsch::DataNetScheduler dn;
  const auto result = dc::run_end_to_end(*ds.dfs, ds.path, ds.hot_keys[0], dn,
                                         &net, datanet::apps::make_word_count_job(),
                                         cfg);
  EXPECT_FALSE(result.analysis.output.empty());
}

TEST(Faults, RejectsBadNode) {
  auto dfs = faulty_dfs(2);
  EXPECT_THROW(dfs.decommission(99), std::out_of_range);
  EXPECT_THROW((void)dfs.is_active(99), std::out_of_range);
}

// ---- MetaStore robustness: corrupt and truncated stores ----

namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(f),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST(MetaStoreRobustness, ByteFlipFuzzRaisesTypedErrorsOnly) {
  TempDir tmp;
  const auto ds = meta_dataset();
  const auto em = de::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});
  de::MetaStore::save(em, tmp.file("meta.bin"));
  const std::string good = slurp(tmp.file("meta.bin"));
  ASSERT_GT(good.size(), 48u);

  // Exhaustive over the header + index region, sampled over the blobs.
  std::vector<std::size_t> positions;
  for (std::size_t p = 0; p < std::min<std::size_t>(good.size(), 512); ++p) {
    positions.push_back(p);
  }
  for (std::size_t p = 512; p < good.size(); p += 37) positions.push_back(p);

  for (const std::size_t pos : positions) {
    std::string bad = good;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x20);
    spit(tmp.file("fuzz.bin"), bad);
    try {
      const auto loaded = de::MetaStore::load(tmp.file("fuzz.bin"));
      (void)loaded.num_blocks();  // a value flip that parses is acceptable
    } catch (const std::bad_alloc&) {
      FAIL() << "bad_alloc from flipped byte at " << pos;
    } catch (const std::exception&) {
      // typed rejection (runtime_error / invalid_argument / out_of_range)
    }
  }
}

TEST(MetaStoreRobustness, EveryTruncationIsRejected) {
  TempDir tmp;
  const auto ds = meta_dataset();
  const auto em = de::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});
  de::MetaStore::save(em, tmp.file("meta.bin"));
  const std::string good = slurp(tmp.file("meta.bin"));

  std::vector<std::size_t> lengths{0, 7, 8, 16, 40, 47, 48};
  for (std::size_t len = 49; len < good.size(); len += 101) lengths.push_back(len);
  lengths.push_back(good.size() - 1);

  for (const std::size_t len : lengths) {
    if (len >= good.size()) continue;
    spit(tmp.file("trunc.bin"), good.substr(0, len));
    try {
      (void)de::MetaStore::load(tmp.file("trunc.bin"));
      FAIL() << "truncation to " << len << " bytes loaded successfully";
    } catch (const std::bad_alloc&) {
      FAIL() << "bad_alloc at truncation length " << len;
    } catch (const std::exception&) {
    }
    try {
      de::MetaStore::Reader r(tmp.file("trunc.bin"));
      // The lazy reader defers blob reads; force them all.
      for (std::uint64_t b = 0; b < em.num_blocks(); ++b) (void)r.load_block(b);
      FAIL() << "Reader accepted truncation to " << len << " bytes";
    } catch (const std::bad_alloc&) {
      FAIL() << "Reader bad_alloc at truncation length " << len;
    } catch (const std::exception&) {
    }
  }
}

TEST(MetaStoreRobustness, ShardedLoadRejectsMixedHeaders) {
  TempDir tmp;
  const auto ds = meta_dataset();
  const auto em = de::ElasticMapArray::build(*ds.dfs, ds.path, {.alpha = 0.3});
  de::ShardedMetaStore::save(em, tmp.file("meta"), 2);
  ASSERT_EQ(de::ShardedMetaStore::load(tmp.file("meta"), 2).num_blocks(),
            em.num_blocks());

  // Rewrite shard 1's raw_bytes header field (offset 16): the shards now
  // describe different datasets and must not merge silently.
  const auto shard1 = de::ShardedMetaStore::shard_file(tmp.file("meta"), 1);
  std::string bytes = slurp(shard1);
  bytes[16] = static_cast<char>(bytes[16] ^ 0x01);
  spit(shard1, bytes);
  EXPECT_THROW((void)de::ShardedMetaStore::load(tmp.file("meta"), 2),
               std::runtime_error);
}
