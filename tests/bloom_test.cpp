// Tests for the Bloom filter substrate, including the property-based sweeps
// over (expected_keys, target_fpp) configurations used by ElasticMap.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "bloom/bloom_filter.hpp"
#include "common/rng.hpp"

namespace db = datanet::bloom;

TEST(Bloom, NoFalseNegatives) {
  db::BloomFilter f(1000, 0.01);
  for (std::uint64_t k = 0; k < 1000; ++k) f.insert(k * 2654435761ULL);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_TRUE(f.maybe_contains(k * 2654435761ULL));
  }
}

TEST(Bloom, EmptyFilterContainsNothing) {
  const db::BloomFilter f(100, 0.01);
  datanet::common::Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(f.maybe_contains(rng()));
}

TEST(Bloom, FalsePositiveRateNearTarget) {
  constexpr std::uint64_t kN = 10000;
  db::BloomFilter f(kN, 0.01);
  datanet::common::Rng rng(8);
  for (std::uint64_t i = 0; i < kN; ++i) f.insert(rng());
  // Probe disjoint keys.
  std::uint64_t fp = 0;
  constexpr std::uint64_t kProbes = 100000;
  datanet::common::Rng probe_rng(1234);
  for (std::uint64_t i = 0; i < kProbes; ++i) fp += f.maybe_contains(probe_rng());
  const double rate = static_cast<double>(fp) / kProbes;
  EXPECT_LT(rate, 0.02);  // within 2x of the 1% target
}

TEST(Bloom, BitsPerKeyFormula) {
  // -ln(0.01)/ln^2(2) ~= 9.585 bits per key — the "10 bits" of Section III-A.
  EXPECT_NEAR(db::BloomFilter::bits_per_key(0.01), 9.585, 0.01);
  EXPECT_NEAR(db::BloomFilter::bits_per_key(0.001), 14.38, 0.01);
}

TEST(Bloom, MemoryScalesWithKeysAndFpp) {
  const db::BloomFilter small(1000, 0.01);
  const db::BloomFilter big(10000, 0.01);
  const db::BloomFilter tight(1000, 0.0001);
  EXPECT_GT(big.memory_bytes(), small.memory_bytes());
  EXPECT_GT(tight.memory_bytes(), small.memory_bytes());
}

TEST(Bloom, WithGeometry) {
  auto f = db::BloomFilter::with_geometry(256, 3);
  EXPECT_EQ(f.num_bits(), 256u);
  EXPECT_EQ(f.num_hashes(), 3u);
  f.insert(7);
  EXPECT_TRUE(f.maybe_contains(7));
}

TEST(Bloom, WithGeometryRejectsZero) {
  EXPECT_THROW(db::BloomFilter::with_geometry(0, 3), std::invalid_argument);
  EXPECT_THROW(db::BloomFilter::with_geometry(64, 0), std::invalid_argument);
}

TEST(Bloom, MergeUnion) {
  db::BloomFilter a = db::BloomFilter::with_geometry(1024, 4);
  db::BloomFilter b = db::BloomFilter::with_geometry(1024, 4);
  a.insert(1);
  b.insert(2);
  a.merge(b);
  EXPECT_TRUE(a.maybe_contains(1));
  EXPECT_TRUE(a.maybe_contains(2));
  EXPECT_EQ(a.insert_count(), 2u);
}

TEST(Bloom, MergeRejectsGeometryMismatch) {
  db::BloomFilter a = db::BloomFilter::with_geometry(1024, 4);
  db::BloomFilter b = db::BloomFilter::with_geometry(512, 4);
  db::BloomFilter c = db::BloomFilter::with_geometry(1024, 5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(Bloom, FillRatioGrowsWithInserts) {
  db::BloomFilter f(1000, 0.01);
  EXPECT_DOUBLE_EQ(f.fill_ratio(), 0.0);
  datanet::common::Rng rng(77);
  for (int i = 0; i < 500; ++i) f.insert(rng());
  const double half = f.fill_ratio();
  EXPECT_GT(half, 0.0);
  for (int i = 0; i < 500; ++i) f.insert(rng());
  EXPECT_GT(f.fill_ratio(), half);
  EXPECT_LT(f.fill_ratio(), 1.0);
}

TEST(Bloom, EstimatedCardinalityTracksInserts) {
  db::BloomFilter f(5000, 0.01);
  datanet::common::Rng rng(42);
  for (int i = 0; i < 3000; ++i) f.insert(rng());
  EXPECT_NEAR(f.estimated_cardinality(), 3000.0, 150.0);
}

TEST(Bloom, SerializeRoundTrip) {
  db::BloomFilter f(500, 0.02);
  datanet::common::Rng rng(9);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back(rng());
    f.insert(keys.back());
  }
  const auto bytes = f.serialize();
  const auto g = db::BloomFilter::deserialize(bytes);
  EXPECT_EQ(g.num_bits(), f.num_bits());
  EXPECT_EQ(g.num_hashes(), f.num_hashes());
  EXPECT_EQ(g.insert_count(), f.insert_count());
  for (const auto k : keys) EXPECT_TRUE(g.maybe_contains(k));
}

TEST(Bloom, DeserializeRejectsGarbage) {
  EXPECT_THROW(db::BloomFilter::deserialize(""), std::invalid_argument);
  EXPECT_THROW(db::BloomFilter::deserialize("short"), std::invalid_argument);
  std::string bytes = db::BloomFilter(10, 0.01).serialize();
  bytes[0] ^= 0x5a;  // corrupt magic
  EXPECT_THROW(db::BloomFilter::deserialize(bytes), std::invalid_argument);
  std::string truncated = db::BloomFilter(10, 0.01).serialize();
  truncated.pop_back();
  EXPECT_THROW(db::BloomFilter::deserialize(truncated), std::invalid_argument);
}

TEST(Bloom, FppClampedToValidRange) {
  // Nonsense fpp values are clamped rather than UB.
  const db::BloomFilter loose(100, 0.99);
  const db::BloomFilter tight(100, 1e-30);
  EXPECT_GE(loose.num_hashes(), 1u);
  EXPECT_LE(tight.num_hashes(), 30u);
}

TEST(Bloom, ZeroExpectedKeysClamped) {
  db::BloomFilter f(0, 0.01);
  f.insert(3);
  EXPECT_TRUE(f.maybe_contains(3));
}

// ---- property-style sweep (TEST_P): fpp stays near target across configs ----

class BloomFppSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(BloomFppSweep, MeasuredFppWithinTwoXOfTarget) {
  const auto [n, fpp] = GetParam();
  db::BloomFilter f(n, fpp);
  datanet::common::Rng rng(n * 31 + 7);
  for (std::uint64_t i = 0; i < n; ++i) f.insert(rng());

  std::uint64_t fp = 0;
  constexpr std::uint64_t kProbes = 50000;
  datanet::common::Rng probe(0xabcdef);
  for (std::uint64_t i = 0; i < kProbes; ++i) fp += f.maybe_contains(probe());
  const double measured = static_cast<double>(fp) / kProbes;
  EXPECT_LT(measured, std::max(fpp * 2.5, 0.0008))
      << "n=" << n << " target=" << fpp;
  // The estimate derived from the fill ratio should be in the same ballpark.
  EXPECT_LT(f.estimated_fpp(), fpp * 3);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BloomFppSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(100, 1000, 20000),
                       ::testing::Values(0.001, 0.01, 0.05)));

// ---- property: no false negatives under any geometry ----

class BloomNoFalseNegatives
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t>> {};

TEST_P(BloomNoFalseNegatives, AllInsertedFound) {
  const auto [bits, hashes] = GetParam();
  auto f = db::BloomFilter::with_geometry(bits, hashes);
  datanet::common::Rng rng(bits + hashes);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 200; ++i) {
    keys.push_back(rng());
    f.insert(keys.back());
  }
  for (const auto k : keys) EXPECT_TRUE(f.maybe_contains(k));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, BloomNoFalseNegatives,
    ::testing::Combine(::testing::Values<std::uint64_t>(64, 1024, 65536),
                       ::testing::Values<std::uint32_t>(1, 4, 13)));

TEST(Bloom, DeserializeRejectsHostileWordCountWithoutAllocating) {
  // A 40-byte buffer claiming 2^61+1 words: the old `32 + nwords * 8` size
  // check overflowed to a small value and the resize went for exabytes.
  std::string bytes = db::BloomFilter(10, 0.01).serialize();
  bytes.resize(40);
  const std::uint64_t nwords = (1ULL << 61) + 1;
  for (int i = 0; i < 8; ++i) {
    bytes[24 + i] = static_cast<char>((nwords >> (8 * i)) & 0xff);
  }
  EXPECT_THROW(db::BloomFilter::deserialize(bytes), std::invalid_argument);
}

TEST(Bloom, DeserializeByteFlipFuzzNeverCrashes) {
  db::BloomFilter f(64, 0.02);
  for (std::uint64_t k = 0; k < 64; ++k) f.insert(k * 0x9e3779b97f4a7c15ULL);
  const std::string good = f.serialize();
  for (std::size_t pos = 0; pos < good.size(); ++pos) {
    for (const unsigned char mask : {0x01, 0x80}) {
      std::string bad = good;
      bad[pos] = static_cast<char>(bad[pos] ^ mask);
      try {
        const auto g = db::BloomFilter::deserialize(bad);
        (void)g.maybe_contains(1);  // flips in the bitmap parse fine
      } catch (const std::bad_alloc&) {
        FAIL() << "bad_alloc from flipped byte at " << pos;
      } catch (const std::invalid_argument&) {
        // typed rejection is the expected failure mode
      }
    }
  }
}
