// PR 6 hot-path coverage: SIMD-vs-scalar scan equivalence fuzzing (every
// alignment offset 0..63, empty lines, partial key prefixes, missing final
// newline), Arena/ArenaAllocator unit tests, the armed-vs-unarmed
// bookkeeping fast path producing bit-identical SelectionResults across all
// schedulers and thread counts, the O(1) under-replication counter against
// fsck after every mutation kind, the ReplicationMonitor's epoch-gated scan
// skip, and parallel_for's inline small-range fast path.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/arena.hpp"
#include "common/simd_scan.hpp"
#include "common/thread_pool.hpp"
#include "datanet/experiment.hpp"
#include "datanet/selection_runtime.hpp"
#include "dfs/fault_injector.hpp"
#include "dfs/fs_image.hpp"
#include "dfs/fsck.hpp"
#include "dfs/replication_monitor.hpp"
#include "mapred/report_json.hpp"
#include "scheduler/datanet_sched.hpp"
#include "scheduler/flow_sched.hpp"
#include "scheduler/locality.hpp"
#include "scheduler/lpt.hpp"

namespace dc = datanet::core;
namespace dco = datanet::common;
namespace dfs = datanet::dfs;
namespace dm = datanet::mapred;
namespace dsch = datanet::scheduler;

namespace {

std::vector<dco::ScanKernel> available_kernels() {
  std::vector<dco::ScanKernel> v;
  for (const auto k : {dco::ScanKernel::kScalar, dco::ScanKernel::kSse2,
                       dco::ScanKernel::kAvx2}) {
    if (dco::scan_kernel_available(k)) v.push_back(k);
  }
  return v;
}

// Independent reference for scan_key_lines: the exact pre-SIMD predicate,
// written with std::string_view primitives only.
std::vector<std::string> reference_key_lines(std::string_view data,
                                             std::string_view key) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < data.size()) {
    std::size_t end = data.find('\n', start);
    if (end == std::string_view::npos) end = data.size();
    std::string_view line = data.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) {
      const std::size_t tab = line.find('\t');
      if (tab != std::string_view::npos) {
        const std::string_view rest = line.substr(tab + 1);
        if (rest.size() > key.size() && rest[key.size()] == '\t' &&
            rest.compare(0, key.size(), key) == 0) {
          out.emplace_back(line);
        }
      }
    }
    start = end + 1;
  }
  return out;
}

std::vector<std::string> reference_lines(std::string_view data) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start < data.size()) {
    std::size_t end = data.find('\n', start);
    if (end == std::string_view::npos) end = data.size();
    std::string_view line = data.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) out.emplace_back(line);
    start = end + 1;
  }
  return out;
}

struct Collect {
  std::vector<std::string> lines;
  static void sink(void* ctx, std::string_view line) {
    static_cast<Collect*>(ctx)->lines.emplace_back(line);
  }
};

std::vector<std::string> kernel_key_lines(std::string_view data,
                                          std::string_view key,
                                          dco::ScanKernel kernel) {
  Collect c;
  dco::scan_key_lines(data, key, &c, &Collect::sink, kernel);
  return std::move(c.lines);
}

std::vector<std::string> kernel_lines(std::string_view data,
                                      dco::ScanKernel kernel) {
  Collect c;
  dco::scan_lines(data, &c, &Collect::sink, kernel);
  return std::move(c.lines);
}

// Every kernel must reproduce the reference callback sequence on `corpus`
// viewed at every alignment offset 0..63 (the SIMD stripes see the same
// bytes at every phase of the 64-byte window).
void expect_equivalent_at_all_alignments(const std::string& corpus,
                                         const std::string& key,
                                         const std::string& label) {
  std::vector<char> buf(corpus.size() + 64);
  for (std::size_t off = 0; off < 64; ++off) {
    std::memcpy(buf.data() + off, corpus.data(), corpus.size());
    const std::string_view view(buf.data() + off, corpus.size());
    const auto want_key = reference_key_lines(view, key);
    const auto want_all = reference_lines(view);
    for (const auto kernel : available_kernels()) {
      EXPECT_EQ(kernel_key_lines(view, key, kernel), want_key)
          << label << " key-scan kernel=" << dco::scan_kernel_name(kernel)
          << " offset=" << off;
      EXPECT_EQ(kernel_lines(view, kernel), want_all)
          << label << " line-scan kernel=" << dco::scan_kernel_name(kernel)
          << " offset=" << off;
    }
  }
}

dc::ExperimentConfig small_config() {
  dc::ExperimentConfig cfg;
  cfg.num_nodes = 8;
  cfg.block_size = 16 * 1024;
  cfg.seed = 5;
  return cfg;
}

std::vector<std::unique_ptr<dsch::TaskScheduler>> all_schedulers() {
  std::vector<std::unique_ptr<dsch::TaskScheduler>> v;
  v.push_back(std::make_unique<dsch::LocalityScheduler>(7));
  v.push_back(std::make_unique<dsch::LptScheduler>());
  v.push_back(std::make_unique<dsch::DataNetScheduler>());
  v.push_back(std::make_unique<dsch::FlowScheduler>());
  return v;
}

void expect_identical(const dc::SelectionResult& a, const dc::SelectionResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.assignment.block_to_node, b.assignment.block_to_node) << label;
  EXPECT_EQ(a.node_local_data, b.node_local_data) << label;
  EXPECT_EQ(a.node_filtered_bytes, b.node_filtered_bytes) << label;
  EXPECT_EQ(a.blocks_scanned, b.blocks_scanned) << label;
  EXPECT_EQ(a.lost_block_ids, b.lost_block_ids) << label;
  EXPECT_EQ(dm::report_to_json(a.report, /*include_output=*/true),
            dm::report_to_json(b.report, /*include_output=*/true))
      << label;
}

}  // namespace

// ---- SIMD-vs-scalar equivalence ----

TEST(SimdScan, DegenerateShapesAllKernelsAllAlignments) {
  const std::string key = "movie_1";
  const std::string shapes[] = {
      "",                                  // empty input
      "\n\n\n",                            // only empty lines
      "no tabs at all",                    // no newline terminator, no tab
      "1\tmovie_1\tpayload",               // match without trailing newline
      "1\tmovie_1\t",                      // empty payload still matches
      "1\tmovie_1",                        // no payload tab: not a candidate
      "1\tmovie_12\tx\n2\tmovie_1\ty\n",   // partial-prefix neighbor
      "1\tmovie_\tx\n\n3\tmovie_1\tz",     // short field, blank line, tail
      "movie_1\tmovie_1\tx\n",             // key also in the timestamp slot
      "\t\t\n\t\tmovie_1\t\n",             // empty fields everywhere
      std::string(200, 'a') + "\t" + key + "\t" + std::string(300, 'b'),
  };
  for (const auto& shape : shapes) {
    expect_equivalent_at_all_alignments(shape, key, "shape");
  }
}

TEST(SimdScan, CrlfShapesAllKernelsAllAlignments) {
  // PR 7 scan-edge fix: Windows-style records must match and must not leak
  // '\r' into the emitted line; exactly ONE trailing '\r' is stripped, and
  // only at end of line.
  const std::string key = "movie_1";
  const std::string shapes[] = {
      "1\tmovie_1\tp\r\n",                  // plain CRLF record
      "1\tmovie_1\tp\r",                    // CR tail, no newline
      "\r\n\r\n\r\n",                       // only blank CRLF lines
      "\r",                                 // lone CR is a blank line
      "1\tmovie_1\tp\r\r\n",                // only ONE '\r' stripped
      "1\tmovie_1\r\tp\n",                  // CR mid-line stays put
      "1\tmovie_1\t\r\n",                   // empty payload, CRLF
      "1\tmovie_1\tp\r\n2\tmovie_1\tq\n",   // mixed terminators
      "1\tmovie_12\tx\r\n2\tmovie_1\ty\r",  // prefix neighbor + CR tail
      std::string("9\t") + key + "\t" + std::string(300, 'b') + "\r\n",
  };
  for (const auto& shape : shapes) {
    expect_equivalent_at_all_alignments(shape, key, "crlf shape");
  }
}

TEST(SimdScan, FuzzRandomCorporaAllKernelsAllAlignments) {
  std::mt19937_64 rng(20160807);
  const std::string keys[] = {"k", "movie_1", "a_rather_long_key_name"};
  for (int round = 0; round < 6; ++round) {
    const std::string& key = keys[round % 3];
    std::string corpus;
    std::uniform_int_distribution<int> line_kind(0, 5);
    std::uniform_int_distribution<int> len(0, 40);
    std::uniform_int_distribution<int> ch('a', 'z');
    for (int line = 0; line < 120; ++line) {
      switch (line_kind(rng)) {
        case 0:  // well-formed matching record
          corpus += std::to_string(line) + "\t" + key + "\tp";
          break;
        case 1: {  // well-formed non-matching record
          corpus += std::to_string(line) + "\t" + key;
          corpus += static_cast<char>(ch(rng));  // key is a strict prefix
          corpus += "\tp";
          break;
        }
        case 2:  // truncated key field
          corpus += "9\t" + key.substr(0, key.size() / 2) + "\tp";
          break;
        case 3:  // random junk, maybe tab-free
          for (int i = len(rng); i > 0; --i) {
            corpus += static_cast<char>(ch(rng));
          }
          break;
        case 4:  // empty line
          break;
        case 5:  // tabs only
          corpus += "\t\t\t";
          break;
      }
      // A third of the lines end Windows-style; kernels must treat "\r\n"
      // and "\n" terminators identically.
      if (line_kind(rng) < 2) corpus += '\r';
      corpus += '\n';
    }
    if (round % 2 == 0) corpus.pop_back();  // exercise the unterminated tail
    expect_equivalent_at_all_alignments(corpus, key, "fuzz round " +
                                                         std::to_string(round));
  }
}

TEST(SimdScan, FilterLinesMatchesDecodeAllReferenceOnEveryKernel) {
  // filter_lines (candidate pre-scan + decode) must keep exactly the lines
  // the decode-every-line reference keeps, on every kernel.
  std::string corpus;
  for (int i = 0; i < 500; ++i) {
    corpus += std::to_string(1000 + i) + "\tkey_" + std::to_string(i % 7) +
              "\tpayload " + std::to_string(i) + "\n";
  }
  corpus += "not a record\n123\tkey_3\n";  // malformed tails
  const std::string key = "key_3";
  std::string want;
  const auto want_bytes = dc::filter_lines_decode_all(corpus, key, want);
  for (const auto kernel : available_kernels()) {
    std::string got;
    const auto got_bytes = dc::filter_lines(corpus, key, got, kernel);
    EXPECT_EQ(got, want) << dco::scan_kernel_name(kernel);
    EXPECT_EQ(got_bytes, want_bytes) << dco::scan_kernel_name(kernel);
  }
}

TEST(SimdScan, DispatcherAndAvailability) {
  EXPECT_TRUE(dco::scan_kernel_available(dco::ScanKernel::kScalar));
  EXPECT_TRUE(dco::scan_kernel_available(dco::active_scan_kernel()));
  // An explicitly-requested unavailable kernel throws instead of silently
  // falling back (the bench must never mislabel a series).
  for (const auto k : {dco::ScanKernel::kSse2, dco::ScanKernel::kAvx2}) {
    if (dco::scan_kernel_available(k)) continue;
    Collect c;
    EXPECT_THROW(dco::scan_lines("x\n", &c, &Collect::sink, k),
                 std::invalid_argument);
  }
}

// ---- Arena ----

TEST(Arena, AlignmentAndDistinctPointers) {
  dco::Arena arena;
  auto* a = arena.allocate(1, 1);
  auto* b = arena.allocate(8, 8);
  auto* c = arena.allocate(3, 64);
  EXPECT_NE(a, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  // Zero-byte requests still yield distinct pointers.
  EXPECT_NE(arena.allocate(0, 1), arena.allocate(0, 1));
  EXPECT_GT(arena.bytes_used(), 0u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(Arena, EveryPowerOfTwoAlignmentUpTo128OnBothPaths) {
  // PR 7 hardening: over-aligned requests must come back aligned on BOTH
  // allocation paths — the bump-pointer chunk path and the dedicated
  // large-object path — even when preceded by odd-sized allocations that
  // leave the bump pointer misaligned.
  dco::Arena arena(4096);
  for (std::size_t align = 1; align <= 128; align *= 2) {
    (void)arena.allocate(1, 1);  // wedge the bump pointer off-alignment
    void* small = arena.allocate(24, align);
    ASSERT_NE(small, nullptr) << "align=" << align;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(small) % align, 0u)
        << "chunk path align=" << align;
    std::memset(small, 0x5a, 24);
    void* large = arena.allocate(64 * 1024, align);  // > chunk: own block
    ASSERT_NE(large, nullptr) << "align=" << align;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(large) % align, 0u)
        << "large path align=" << align;
    std::memset(large, 0xa5, 64 * 1024);
  }
}

TEST(Arena, ResetRetainsChunksAndReusesMemory) {
  dco::Arena arena(1024);
  void* first = arena.allocate(100, 8);
  for (int i = 0; i < 50; ++i) (void)arena.allocate(100, 8);
  const auto reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // chunks retained
  EXPECT_EQ(arena.allocate(100, 8), first);     // bump pointer rewound
}

TEST(Arena, LargeObjectFallbackFreedOnReset) {
  dco::Arena arena(1024);
  (void)arena.allocate(16, 8);
  const auto small_reserved = arena.bytes_reserved();
  auto* big = arena.allocate(1 << 20, 64);
  EXPECT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 64, 0u);
  EXPECT_GE(arena.bytes_reserved(), small_reserved + (1u << 20));
  std::memset(big, 0xab, 1 << 20);  // the block must really be ours
  arena.reset();
  // Dedicated large blocks are released; normal chunks stay.
  EXPECT_LT(arena.bytes_reserved(), 1u << 20);
}

TEST(Arena, ArenaVectorGrowsCorrectly) {
  dco::Arena arena;
  dco::ArenaVector<int> v{dco::ArenaAllocator<int>(arena)};
  for (int i = 0; i < 10000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 10000u);
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(v[i], i);
  dco::ArenaVector<std::string> s{dco::ArenaAllocator<std::string>(arena)};
  for (int i = 0; i < 100; ++i) {
    s.push_back("value_" + std::to_string(i) + std::string(i, 'x'));
  }
  EXPECT_EQ(s[99], "value_99" + std::string(99, 'x'));
}

// ---- armed vs unarmed fast path ----

TEST(HotPath, ArmedAndUnarmedReportsBitIdenticalAllSchedulersAllThreads) {
  auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 48, 300);
  const dc::DataNet net(*ds.dfs, ds.path, {.alpha = 0.3});
  const std::string key = ds.hot_keys[0];
  for (const std::uint32_t threads : {1u, 4u}) {
    cfg.execution_threads = threads;
    for (const auto& sched : all_schedulers()) {
      auto fresh = all_schedulers();
      for (auto& other : fresh) {
        if (other->name() != sched->name()) continue;
        dc::DirectReadPolicy read(*ds.dfs, cfg.remote_read_penalty);
        dc::AnalyticBackend timing;
        dc::NoFaults none;  // unarmed: the bookkeeping-free fast path
        const auto unarmed = dc::SelectionRuntime(read, none, timing)
                                 .run(*ds.dfs, ds.path, key, *sched, &net, cfg);
        dfs::FaultInjector injector(*ds.dfs, {});  // empty plan, still armed
        dc::InjectedFaults armed_policy(injector);
        const auto armed =
            dc::SelectionRuntime(read, armed_policy, timing)
                .run(*ds.dfs, ds.path, key, *other, &net, cfg);
        expect_identical(unarmed, armed,
                         std::string(sched->name()) + "/threads=" +
                             std::to_string(threads));
      }
    }
  }
}

TEST(HotPath, ArmedFlagDefaults) {
  dc::NoFaults none;
  EXPECT_FALSE(none.armed());
  auto cfg = small_config();
  const auto ds = dc::make_movie_dataset(cfg, 8, 50);
  dfs::FaultInjector injector(*ds.dfs, {});
  dc::InjectedFaults injected(injector);
  EXPECT_TRUE(injected.armed());  // custom policies must opt in to skipping
}

// ---- O(1) under-replication counter vs fsck ----

namespace {
void expect_counter_matches_fsck(const dfs::MiniDfs& d, const char* where) {
  EXPECT_EQ(d.under_replicated_count(), dfs::fsck(d).under_replicated)
      << where;
}
}  // namespace

TEST(HotPath, UnderReplicatedCounterTracksFsckThroughMutations) {
  auto cfg = small_config();
  cfg.inline_repair = false;
  const auto ds = dc::make_movie_dataset(cfg, 24, 200);
  auto& d = *ds.dfs;
  expect_counter_matches_fsck(d, "fresh dataset");
  const auto epoch0 = d.mutation_epoch();

  (void)d.decommission(1);
  expect_counter_matches_fsck(d, "after decommission");
  EXPECT_GT(d.under_replicated_count(), 0u);
  EXPECT_GT(d.mutation_epoch(), epoch0);

  const auto& blocks = d.blocks_of(ds.path);
  d.corrupt_replica(blocks[0], d.block(blocks[0]).replicas[0]);
  (void)d.report_corrupt_replica(blocks[0], d.block(blocks[0]).replicas[0]);
  expect_counter_matches_fsck(d, "after corrupt+report");

  d.corrupt_replica(blocks[1], d.block(blocks[1]).replicas[0]);
  (void)d.report_corrupt_replica(blocks[1], d.block(blocks[1]).replicas[0]);
  expect_counter_matches_fsck(d, "after second corrupt+report");

  while (d.under_replicated_count() > 0) {
    bool progressed = false;
    for (dfs::BlockId id = 0; id < d.num_blocks(); ++id) {
      if (d.repair_block(id)) progressed = true;
    }
    expect_counter_matches_fsck(d, "after repair sweep");
    if (!progressed) break;
  }

  (void)d.decommission(3);  // threshold shift: active_nodes moved
  expect_counter_matches_fsck(d, "after second decommission");
}

TEST(HotPath, UnderReplicatedCounterSurvivesFsImageRoundTrip) {
  auto cfg = small_config();
  cfg.inline_repair = false;
  const auto ds = dc::make_movie_dataset(cfg, 16, 100);
  (void)ds.dfs->decommission(2);
  const std::string path = ::testing::TempDir() + "/hotpath_fsimage.bin";
  dfs::FsImage::save(*ds.dfs, path);
  const auto loaded = dfs::FsImage::load(path);
  EXPECT_EQ(loaded.under_replicated_count(),
            dfs::fsck(loaded).under_replicated);
  EXPECT_EQ(loaded.under_replicated_count(), ds.dfs->under_replicated_count());
}

// ---- ReplicationMonitor epoch gate ----

TEST(HotPath, MonitorScanSkipsWhenEpochUnchanged) {
  auto cfg = small_config();
  cfg.inline_repair = false;
  const auto ds = dc::make_movie_dataset(cfg, 16, 100);
  (void)ds.dfs->decommission(1);
  dfs::ReplicationMonitor monitor(*ds.dfs, {.max_repairs_per_tick = 2});
  const auto depth1 = monitor.scan();
  const auto queue1 = monitor.queue();
  // No DFS mutation in between: the skip path must hand back the same queue.
  const auto depth2 = monitor.scan();
  EXPECT_EQ(depth1, depth2);
  const auto queue2 = monitor.queue();
  ASSERT_EQ(queue1.size(), queue2.size());
  for (std::size_t i = 0; i < queue1.size(); ++i) {
    EXPECT_EQ(queue1[i].block, queue2[i].block);
    EXPECT_EQ(queue1[i].surviving, queue2[i].surviving);
  }
  EXPECT_EQ(monitor.stats().scans, 2u);
  // Converge and verify the gate never left damage behind.
  (void)monitor.drain();
  EXPECT_TRUE(dfs::fsck(*ds.dfs).healthy());
  EXPECT_EQ(ds.dfs->under_replicated_count(), 0u);
}

// ---- parallel_for inline fast path ----

TEST(HotPath, ParallelForRunsSmallRangesInlineAndCoversAllIndices) {
  dco::ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  // n <= grain: runs on the caller, no pool round trip.
  std::vector<std::thread::id> who(3);
  dco::parallel_for(pool, 3, [&](std::size_t i) {
    who[i] = std::this_thread::get_id();
  }, /*grain=*/8);
  for (const auto& id : who) EXPECT_EQ(id, caller);
  // Large range still covers every index exactly once.
  std::vector<int> hits(10000, 0);
  dco::parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const int h : hits) ASSERT_EQ(h, 1);
  // Degenerate empty range is a no-op.
  dco::parallel_for(pool, 0, [&](std::size_t) { FAIL(); });
}

// ---- zero-copy pin lifetime (PR 7 bugfix regression) ----

TEST(HotPath, HealWaitsForPinnedReaderAndViewStaysStable) {
  // The PR 6 zero-copy reads handed out string_views into block storage with
  // no lifetime guard; a concurrent corrupt_block could rewrite the bytes
  // under a reader mid-scan. The fix pins the block: corrupt_block must
  // park until the pin drops, and the pinned view's bytes must not move.
  dfs::DfsOptions o;
  o.block_size = 1024;
  o.replication = 2;
  o.seed = 42;
  dfs::MiniDfs fs(dfs::ClusterTopology::flat(4), o);
  auto w = fs.create("/pinned");
  w.append("100\tk\t" + std::string(400, 'x'));
  w.close();
  const auto b = fs.blocks_of("/pinned")[0];

  dfs::PinnedRead read = fs.read_block_pinned(b);
  const std::string before(read.data);
  ASSERT_FALSE(before.empty());

  std::atomic<bool> heal_done{false};
  std::thread healer([&] {
    fs.corrupt_block(b);  // must block until the pin is released
    heal_done.store(true, std::memory_order_release);
  });
  // Give the healer ample time to (incorrectly) charge through the pin.
  for (int i = 0; i < 50; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_FALSE(heal_done.load(std::memory_order_acquire))
        << "corrupt_block proceeded while a reader held a pin";
    ASSERT_EQ(std::string_view(read.data), std::string_view(before))
        << "pinned view mutated under the reader";
  }
  read.pin.release();  // reader done: the mutator may now proceed
  healer.join();
  EXPECT_TRUE(heal_done.load(std::memory_order_acquire));
  EXPECT_FALSE(fs.verify_block(b));  // the corruption really landed
}
