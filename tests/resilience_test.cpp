// Chaos-hardened serving (PR 9): per-tenant circuit breaker determinism,
// deadline shedding, slowloris connection drops, retrying-client backoff and
// typed exhaustion, hostile-server reply hardening, seeded ChaosProxy fault
// injection (reset / truncate / stall / split), and degraded-mode serving —
// answering from the epoch-cached bundle while the owning metadata shard is
// down, with the digest still golden. Run under ASan by tools/asan_tests.sh.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "datanet/experiment.hpp"
#include "dfs/meta_plane.hpp"
#include "server/chaos_proxy.hpp"
#include "server/client.hpp"
#include "server/dataset_cache.hpp"
#include "server/dispatcher.hpp"
#include "server/protocol.hpp"
#include "server/resilient_client.hpp"
#include "server/server.hpp"
#include "server/socket_io.hpp"

namespace dc = datanet::core;
namespace dfs = datanet::dfs;
namespace srv = datanet::server;
namespace fs = std::filesystem;

namespace {

struct TempDir {
  fs::path dir;
  TempDir() {
    dir = fs::temp_directory_path() /
          ("datanet_resilience_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~TempDir() { fs::remove_all(dir); }
  [[nodiscard]] std::string path() const { return dir.string(); }
};

srv::ServerOptions small_server() {
  srv::ServerOptions opts;
  opts.cfg.num_nodes = 16;
  opts.cfg.block_size = 64 * 1024;
  opts.cfg.seed = 42;
  opts.dataset_blocks = 32;
  opts.workers = 2;
  return opts;
}

srv::QueryRequest query_for(const std::string& tenant,
                            const std::string& key) {
  srv::QueryRequest q;
  q.tenant = tenant;
  q.key = key;
  return q;
}

}  // namespace

// ---- circuit breaker (clock-free, pure function of the outcome stream) ----

TEST(CircuitBreaker, OpensAtThresholdAndProbesDeterministically) {
  srv::BreakerPolicy breaker;
  breaker.failure_threshold = 3;
  breaker.probe_interval = 4;
  srv::FairDispatcher d({.max_queue = 64, .max_inflight = 64}, breaker);

  auto pump_one = [&](bool success) {
    std::uint64_t ticket = 0;
    ASSERT_EQ(d.submit("t", {}, &ticket), srv::SubmitStatus::kAccepted);
    ASSERT_TRUE(d.next().has_value());
    d.record_outcome("t", success);
    d.complete("t");
  };

  pump_one(false);
  pump_one(false);
  EXPECT_FALSE(d.breaker_open("t"));  // 2 < threshold
  pump_one(true);                     // success resets the streak
  pump_one(false);
  pump_one(false);
  pump_one(false);  // 3rd consecutive failure trips it
  EXPECT_TRUE(d.breaker_open("t"));

  // While open: every probe_interval-th blocked submit is admitted as a
  // half-open probe; the rest shed typed. Deterministic — no clocks.
  std::uint64_t ticket = 0;
  EXPECT_EQ(d.submit("t", {}, &ticket), srv::SubmitStatus::kCircuitOpen);
  EXPECT_EQ(d.submit("t", {}, &ticket), srv::SubmitStatus::kCircuitOpen);
  EXPECT_EQ(d.submit("t", {}, &ticket), srv::SubmitStatus::kCircuitOpen);
  EXPECT_EQ(d.submit("t", {}, &ticket),
            srv::SubmitStatus::kAccepted);  // the probe
  ASSERT_TRUE(d.next().has_value());
  d.record_outcome("t", true);  // probe succeeds -> breaker closes
  d.complete("t");
  EXPECT_FALSE(d.breaker_open("t"));
  EXPECT_EQ(d.submit("t", {}, &ticket), srv::SubmitStatus::kAccepted);

  const srv::TenantStats ts = d.tenant_stats("t");
  EXPECT_EQ(ts.rejected_circuit, 3u);

  // A failed probe keeps it open.
  (void)d.next();
  d.record_outcome("t", false);
  d.record_outcome("t", false);
  d.record_outcome("t", false);
  d.complete("t");
  EXPECT_TRUE(d.breaker_open("t"));
  EXPECT_EQ(d.submit("t", {}, &ticket), srv::SubmitStatus::kCircuitOpen);
}

TEST(CircuitBreaker, DisabledByDefaultNeverTrips) {
  srv::FairDispatcher d;  // failure_threshold 0 = off
  std::uint64_t ticket = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(d.submit("t", {}, &ticket), srv::SubmitStatus::kAccepted);
    (void)d.next();
    d.record_outcome("t", false);
    d.complete("t");
  }
  EXPECT_FALSE(d.breaker_open("t"));
}

// ---- retry backoff (pure schedule, no sleeping) ----

TEST(RetryBackoff, BoundedExponentialWithEqualJitter) {
  srv::RetryPolicy p;
  p.base_backoff_ms = 10;
  p.max_backoff_ms = 80;
  // cap(k) = min(80, 10 << k): 10, 20, 40, 80, 80...; the jittered wait
  // always lands in (cap/2, cap].
  for (std::uint32_t k = 0; k < 8; ++k) {
    const std::uint32_t cap = std::min<std::uint32_t>(80, 10u << k);
    for (const std::uint64_t bits : {0ull, 1ull, 17ull, 0xffffffffull}) {
      const std::uint32_t ms = srv::backoff_ms(p, k, bits);
      EXPECT_GE(ms, cap / 2) << "k=" << k;
      EXPECT_LE(ms, cap) << "k=" << k;
    }
  }
  // Deterministic: same inputs, same wait.
  EXPECT_EQ(srv::backoff_ms(p, 3, 12345), srv::backoff_ms(p, 3, 12345));
  // Retry index far past 32 must not overflow the shift.
  EXPECT_EQ(srv::backoff_ms(p, 40, 0), 40u);
}

// ---- slowloris defense ----

TEST(ServerResilience, SlowlorisConnectionIsDroppedNotWedged) {
  srv::ServerOptions opts = small_server();
  opts.io_timeout_ms = 100;  // short so the test is fast
  srv::Server server(opts);
  server.start();

  // A half-open attacker: send ONE header byte, then stall forever.
  srv::Fd attacker = srv::connect_loopback(server.port());
  srv::write_all(attacker, "D");
  // The server must drop the connection after ~io_timeout_ms: we observe the
  // FIN as EOF/reset on our side within a bounded wait (3 s >> 100 ms).
  EXPECT_THROW(
      {
        const auto got = srv::read_exact(attacker, 1, 3'000);
        if (!got.has_value()) throw srv::SocketError("clean EOF");
      },
      srv::SocketError);

  // The handler thread was released, not wedged: a well-behaved client on a
  // fresh connection still gets served.
  srv::Client client(server.port(), 3'000);
  const auto result = client.query(
      query_for("alice", server.dataset().hot_keys.front()));
  EXPECT_TRUE(result.ok());
  server.stop();
}

// ---- hostile server replies (client hardening satellite) ----

namespace {

// A fake "server" that accepts one connection, reads one request frame, and
// answers with whatever hostile bytes the test chooses.
void hostile_reply_once(const srv::Fd& listener, const std::string& reply) {
  auto conn = srv::accept_client(listener);
  ASSERT_TRUE(conn.has_value());
  const auto header = srv::read_exact(*conn, srv::kFrameHeaderBytes);
  ASSERT_TRUE(header.has_value());
  const srv::FrameHeader h = srv::decode_frame_header(*header);
  ASSERT_TRUE(srv::read_exact(*conn, h.payload_len).has_value());
  srv::write_all(*conn, reply);
}

std::string u32le(std::uint32_t v) {
  std::string s(4, '\0');
  for (int i = 0; i < 4; ++i) s[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  return s;
}

}  // namespace

TEST(ClientHardening, MaliciousReplyHeadersAreTypedErrors) {
  struct Case {
    const char* name;
    std::string reply;
  };
  const std::string good = srv::frame(srv::encode_error("x"));
  std::string bad_crc = good;
  bad_crc[8] = static_cast<char>(bad_crc[8] ^ 0x5a);  // flip a CRC byte
  const std::vector<Case> cases = {
      // Wrong magic: not our protocol, refuse before trusting the length.
      {"bad_magic", u32le(0xdeadbeef) + u32le(4) + u32le(0) + "oops"},
      // Attacker-sized length: must be rejected BEFORE allocating/reading
      // 256 MiB that will never come.
      {"huge_len", u32le(srv::kFrameMagic) + u32le(256u << 20) + u32le(0)},
      // Valid header, corrupt payload: CRC catches it.
      {"bad_crc", bad_crc},
      // Valid frame of the WRONG message type for a query.
      {"wrong_type", srv::frame(srv::encode_shutdown_ok())},
  };
  for (const Case& c : cases) {
    auto [listener, port] = srv::listen_loopback(0);
    std::thread fake([&] { hostile_reply_once(listener, c.reply); });
    srv::Client client(port, 2'000);
    EXPECT_THROW((void)client.query(query_for("t", "k")), srv::ProtocolError)
        << c.name;
    fake.join();
  }
}

// ---- ResilientClient over a chaotic wire ----

TEST(ResilientClient, RetriesConnectionResetsToGoldenDigest) {
  srv::ServerOptions opts = small_server();
  srv::Server server(opts);
  server.start();
  // Reset, reset, clean, ... deterministic per connection index.
  srv::ChaosPlan plan;
  plan.seed = 7;
  plan.weight_clean = 1;
  plan.weight_reset = 2;
  plan.weight_truncate = 0;
  plan.weight_stall = 0;
  plan.weight_split = 0;
  srv::ChaosProxy proxy(server.port(), plan);
  proxy.start();

  srv::RetryPolicy retry;
  retry.max_attempts = 10;
  retry.base_backoff_ms = 1;
  retry.max_backoff_ms = 4;
  retry.timeout_ms = 2'000;
  srv::ResilientClient client(proxy.port(), retry);
  const srv::QueryRequest q =
      query_for("alice", server.dataset().hot_keys.front());
  const auto golden = srv::local_query(opts, q);
  ASSERT_TRUE(golden.ok);

  // 10 attempts vs ~2/3 reset probability: the chance all 10 connections
  // are resets under seed 7 is zero (the schedule is deterministic; we
  // simply assert the retry loop reaches a clean connection).
  const auto result = client.query(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.reply.digest, golden.reply.digest);
  EXPECT_FALSE(result.reply.degraded);
  EXPECT_GE(client.retry_stats().attempts, 1u);

  proxy.stop();
  server.stop();
}

TEST(ResilientClient, SplitWritesAreSlowNotWrong) {
  srv::ServerOptions opts = small_server();
  srv::Server server(opts);
  server.start();
  srv::ChaosPlan plan;
  plan.weight_clean = 0;
  plan.weight_reset = 0;
  plan.weight_truncate = 0;
  plan.weight_stall = 0;
  plan.weight_split = 1;  // every connection dribbles
  plan.split_bytes = 3;
  plan.delay_ms = 1;
  srv::ChaosProxy proxy(server.port(), plan);
  proxy.start();

  srv::RetryPolicy retry;
  retry.timeout_ms = 2'000;  // idle timeout: each dribble resets the clock
  srv::ResilientClient client(proxy.port(), retry);
  const srv::QueryRequest q =
      query_for("alice", server.dataset().hot_keys.front());
  const auto golden = srv::local_query(opts, q);
  const auto result = client.query(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.reply.digest, golden.reply.digest);
  // No retries were needed: pathological pacing is not a failure.
  EXPECT_EQ(client.retry_stats().attempts, 1u);
  proxy.stop();
  server.stop();
}

TEST(ResilientClient, ExhaustionIsTypedNeverAHang) {
  srv::ServerOptions opts = small_server();
  srv::Server server(opts);
  server.start();
  srv::ChaosPlan plan;
  plan.weight_clean = 0;
  plan.weight_reset = 0;
  plan.weight_truncate = 1;  // every reply torn mid-frame
  plan.weight_stall = 0;
  plan.weight_split = 0;
  srv::ChaosProxy proxy(server.port(), plan);
  proxy.start();

  srv::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.base_backoff_ms = 1;
  retry.max_backoff_ms = 2;
  retry.timeout_ms = 1'000;
  srv::ResilientClient client(proxy.port(), retry);
  try {
    (void)client.query(query_for("alice", server.dataset().hot_keys.front()));
    FAIL() << "expected RetriesExhaustedError";
  } catch (const srv::RetriesExhaustedError& e) {
    EXPECT_EQ(e.attempts, 3u);
    EXPECT_FALSE(e.last_error.empty());
  }
  EXPECT_EQ(client.retry_stats().attempts, 3u);
  EXPECT_EQ(client.retry_stats().reconnects, 2u);
  proxy.stop();
  server.stop();
}

TEST(ResilientClient, StallTripsIdleTimeoutAndCountsIt) {
  srv::ServerOptions opts = small_server();
  srv::Server server(opts);
  server.start();
  srv::ChaosPlan plan;
  plan.weight_clean = 0;
  plan.weight_reset = 0;
  plan.weight_truncate = 0;
  plan.weight_stall = 1;
  plan.weight_split = 0;
  plan.stall_ms = 5'000;  // far beyond the client deadline
  srv::ChaosProxy proxy(server.port(), plan);
  proxy.start();

  srv::RetryPolicy retry;
  retry.max_attempts = 2;
  retry.base_backoff_ms = 1;
  retry.max_backoff_ms = 2;
  retry.timeout_ms = 100;  // the only thing standing between us and a hang
  srv::ResilientClient client(proxy.port(), retry);
  EXPECT_THROW(
      (void)client.query(query_for("alice", server.dataset().hot_keys.front())),
      srv::RetriesExhaustedError);
  EXPECT_EQ(client.retry_stats().timeouts, 2u);
  proxy.stop();
  server.stop();
}

TEST(ChaosProxy, FaultScheduleIsPureFunctionOfSeed) {
  srv::ChaosPlan plan;
  plan.seed = 123;
  srv::ChaosProxy a(1, plan);  // never started: mode_of needs no socket
  srv::ChaosProxy b(1, plan);
  bool modes_seen[5] = {};
  for (std::uint64_t k = 0; k < 64; ++k) {
    EXPECT_EQ(a.mode_of(k), b.mode_of(k));
    modes_seen[static_cast<std::uint8_t>(a.mode_of(k))] = true;
  }
  // With equal weights, 64 draws cover every mode. kCorrupt is opt-in
  // (weight 0 by default) precisely so this schedule is unchanged from the
  // five-mode plans older drills were seeded with.
  for (const bool seen : modes_seen) EXPECT_TRUE(seen);

  srv::ChaosPlan with_corrupt = plan;
  with_corrupt.weight_corrupt = 5;
  srv::ChaosProxy c(1, with_corrupt);
  bool corrupt_drawn = false;
  for (std::uint64_t k = 0; k < 64; ++k) {
    corrupt_drawn |= c.mode_of(k) == srv::FaultMode::kCorrupt;
  }
  EXPECT_TRUE(corrupt_drawn);
}

// ---- mid-connection byte corruption (PR 10 satellite) ----

TEST(ChaosProxy, CorruptedRequestIsTypedBadRequestNeverAWrongAnswer) {
  srv::ServerOptions opts = small_server();
  srv::Server server(opts);
  server.start();
  srv::ChaosPlan plan;
  plan.seed = 99;
  plan.weight_clean = 0;
  plan.weight_reset = 0;
  plan.weight_truncate = 0;
  plan.weight_stall = 0;
  plan.weight_split = 0;
  plan.weight_corrupt = 1;  // every connection flips one request payload bit
  srv::ChaosProxy proxy(server.port(), plan);
  proxy.start();

  // Different connection indices flip different seeded bits; whatever the
  // bit, the server's frame CRC must catch it — a typed bad_request and a
  // dropped connection. A computed (wrong) answer is the forbidden outcome.
  for (int i = 0; i < 8; ++i) {
    srv::Client client(proxy.port(), 2'000);
    const auto result =
        client.query(query_for("alice", server.dataset().hot_keys.front()));
    ASSERT_EQ(result.status, srv::ClientResult::Status::kRejected) << i;
    EXPECT_EQ(result.rejection.reason, srv::RejectReason::kBadRequest) << i;
    EXPECT_THROW(
        (void)client.query(query_for("alice", "k")), srv::SocketError)
        << "connection " << i << " survived a corrupted frame";
  }
  EXPECT_EQ(proxy.stats().corruptions, 8u);
  EXPECT_EQ(server.queries_served(), 0u);
  proxy.stop();
  server.stop();
}

// ---- deadline shedding ----

TEST(ServerResilience, StaleQueuedWorkIsShedTyped) {
  srv::ServerOptions opts = small_server();
  opts.workers = 1;  // serialize workers so queues actually build
  srv::Server server(opts);
  server.start();
  const std::string key = server.dataset().hot_keys.front();

  // 8 concurrent clients, every query with a 1 ms budget: behind a single
  // worker whose service time is ~1 ms, most of the queue ages out. Every
  // reply must be either ok or a typed deadline rejection — and the server's
  // shed counter must match exactly.
  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  std::atomic<int> shed{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&] {
      srv::Client client(server.port(), 5'000);
      srv::QueryRequest q = query_for("alice", key);
      q.deadline_ms = 1;
      const auto result = client.query(q);
      if (result.ok()) {
        ++ok;
      } else {
        EXPECT_EQ(result.status, srv::ClientResult::Status::kRejected);
        EXPECT_EQ(result.rejection.reason,
                  srv::RejectReason::kDeadlineExceeded);
        ++shed;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok + shed, kClients);
  EXPECT_EQ(server.deadline_shed(), static_cast<std::uint64_t>(shed));
  EXPECT_EQ(server.queries_served(), static_cast<std::uint64_t>(ok));
  server.stop();
}

// ---- degraded-mode serving ----

TEST(ServerResilience, ServesDegradedFromCachedBundleWhileShardDown) {
  TempDir tmp;
  srv::ServerOptions opts = small_server();
  srv::Server server(opts);
  server.plane().attach_journals(tmp.path());
  server.start();
  const srv::QueryRequest q =
      query_for("alice", server.dataset().hot_keys.front());
  srv::Client client(server.port(), 5'000);

  // Warm the cache, pin the healthy digest.
  const auto before = client.query(q);
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before.reply.degraded);
  EXPECT_EQ(before.reply.staleness_micros, 0u);

  // NameNode down, DataNodes up: the owning shard refuses routed access but
  // the block bytes and the cached bundle survive.
  const std::uint32_t shard = server.plane().shard_of(server.dataset().path);
  server.plane().crash_shard(shard);
  const auto during = client.query(q);
  ASSERT_TRUE(during.ok());
  EXPECT_TRUE(during.reply.degraded);
  // Degraded is stale-tolerant, not wrong: nothing mutated, so the digest
  // is still golden — and the reply says HOW stale the bundle is (time
  // since it was last validated against the live namespace).
  EXPECT_EQ(during.reply.digest, before.reply.digest);
  EXPECT_GT(during.reply.staleness_micros, 0u);
  EXPECT_EQ(server.degraded_served(), 1u);

  // Recovery restores normal (non-degraded) service.
  (void)server.plane().recover_shard(shard);
  const auto after = client.query(q);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.reply.degraded);
  EXPECT_EQ(after.reply.digest, before.reply.digest);
  server.stop();
}

// The regression behind degraded serving: a DataNet bundle resolves replica
// placements through the MiniDfs it was built from, and recover_shard swaps
// that instance out. The cache must (a) never revalidate an entry against a
// DIFFERENT instance — epochs only order mutations within one — and (b) hand
// out bundles that keep their source instance alive, so a degraded query
// still holding the pre-crash bundle after the swap (and even after the
// entry is rebuilt) never touches freed memory. ASan-verified via
// tools/asan_tests.sh.
TEST(DatasetCacheLifetime, RecoveredShardRebuildsWhileStaleBundleStaysAlive) {
  TempDir tmp;
  dc::ExperimentConfig cfg;
  cfg.num_nodes = 16;
  cfg.block_size = 64 * 1024;
  cfg.seed = 42;
  dfs::MetaPlaneOptions popt;
  popt.num_shards = 1;
  popt.dfs = dc::make_dfs_options(cfg);
  dfs::MetaPlane plane(dfs::ClusterTopology::flat(cfg.num_nodes), popt);
  const std::string path = "/data/movies.log";
  const auto ingested =
      dc::ingest_movie_dataset(plane.dfs_for(path), path, cfg, 16);
  plane.attach_journals(tmp.path());

  srv::DatasetCache cache;
  const auto warm = cache.get(plane, path);
  ASSERT_NE(warm, nullptr);
  EXPECT_EQ(cache.stats().rebuilds, 1u);

  plane.crash_shard(0);
  // Degraded reads hand back the same bundle, un-revalidated.
  EXPECT_EQ(cache.get_stale(path).net.get(), warm.get());
  (void)plane.recover_shard(0);

  // Post-recovery get() must REBUILD, not revalidate: the recovered shard
  // is a new instance even though the namespace (and possibly the epoch)
  // looks identical.
  const auto fresh = cache.get(plane, path);
  EXPECT_NE(fresh.get(), warm.get());
  EXPECT_EQ(cache.stats().rebuilds, 2u);
  EXPECT_EQ(cache.stats().revalidations, 0u);

  // The pre-crash bundle — entry long gone, shard swapped — still resolves
  // placements through its pinned source instance.
  const auto graph = warm->scheduling_graph(ingested.hot_keys.front());
  EXPECT_GT(graph.num_blocks(), 0u);
}

TEST(ServerResilience, ColdCacheShardDownIsTypedShardUnavailable) {
  TempDir tmp;
  srv::ServerOptions opts = small_server();
  srv::Server server(opts);
  server.plane().attach_journals(tmp.path());
  server.start();
  srv::Client client(server.port(), 5'000);

  // Crash BEFORE any query: no epoch-validated bundle exists, so a metadata
  // query cannot be answered honestly — typed rejection, not a lie.
  server.plane().crash_shard(server.plane().shard_of(server.dataset().path));
  const auto result = client.query(
      query_for("alice", server.dataset().hot_keys.front()));
  ASSERT_EQ(result.status, srv::ClientResult::Status::kRejected);
  EXPECT_EQ(result.rejection.reason, srv::RejectReason::kShardUnavailable);

  // A baseline (metadata-blind) query needs no bundle: it degrades fine
  // even on a cold cache.
  srv::QueryRequest baseline =
      query_for("alice", server.dataset().hot_keys.front());
  baseline.use_datanet_meta = false;
  const auto degraded = client.query(baseline);
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded.reply.degraded);
  server.stop();
}

// ---- breaker end-to-end: typed rejection over the wire ----

TEST(ServerResilience, BreakerShedsOverTheWireAfterRepeatedFailures) {
  TempDir tmp;
  srv::ServerOptions opts = small_server();
  opts.breaker.failure_threshold = 3;
  opts.breaker.probe_interval = 4;
  srv::Server server(opts);
  server.plane().attach_journals(tmp.path());
  server.start();
  srv::Client client(server.port(), 5'000);
  const std::string key = server.dataset().hot_keys.front();

  // Cold cache + crashed shard: every metadata query fails shard-unavailable
  // (a breaker-counted failure) until the breaker opens.
  server.plane().crash_shard(server.plane().shard_of(server.dataset().path));
  for (int i = 0; i < 3; ++i) {
    const auto r = client.query(query_for("alice", key));
    ASSERT_EQ(r.status, srv::ClientResult::Status::kRejected);
    EXPECT_EQ(r.rejection.reason, srv::RejectReason::kShardUnavailable);
  }
  // Breaker now open: sheds at the door without touching the worker pool.
  const auto shed = client.query(query_for("alice", key));
  ASSERT_EQ(shed.status, srv::ClientResult::Status::kRejected);
  EXPECT_EQ(shed.rejection.reason, srv::RejectReason::kCircuitOpen);

  // Other tenants are unaffected — the breaker is per-tenant.
  srv::QueryRequest other = query_for("bob", key);
  other.use_datanet_meta = false;  // degrades fine; a SUCCESS for bob
  EXPECT_TRUE(client.query(other).ok());

  const srv::ServerStats stats = client.stats();
  EXPECT_GE(stats.circuit_rejected, 1u);
  server.stop();
}
