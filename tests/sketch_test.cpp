// Tests for the concentration metrics (content-clustering quantification),
// the HyperLogLog sketch, and the DistinctUsers analysis job.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "apps/distinct_users.hpp"
#include "bloom/hyperloglog.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "datanet/experiment.hpp"
#include "mapred/engine.hpp"
#include "stats/concentration.hpp"

namespace db = datanet::bloom;
namespace ds = datanet::stats;

// ---- concentration metrics ----

TEST(Concentration, GiniUniformIsZeroish) {
  const std::vector<double> even(100, 5.0);
  EXPECT_NEAR(ds::gini(std::span<const double>(even)), 0.0, 1e-12);
}

TEST(Concentration, GiniFullyConcentrated) {
  std::vector<double> xs(100, 0.0);
  xs[7] = 42.0;
  EXPECT_NEAR(ds::gini(std::span<const double>(xs)), 0.99, 1e-9);  // (n-1)/n
}

TEST(Concentration, GiniKnownValue) {
  // {1, 3} -> G = 1/4 by the standard formula.
  const std::vector<double> xs{1.0, 3.0};
  EXPECT_NEAR(ds::gini(std::span<const double>(xs)), 0.25, 1e-12);
}

TEST(Concentration, GiniEdgeCasesAndValidation) {
  EXPECT_DOUBLE_EQ(ds::gini(std::span<const double>{}), 0.0);
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(ds::gini(std::span<const double>(one)), 0.0);
  const std::vector<double> zeros(10, 0.0);
  EXPECT_DOUBLE_EQ(ds::gini(std::span<const double>(zeros)), 0.0);
  const std::vector<double> neg{1.0, -2.0};
  EXPECT_THROW((void)ds::gini(std::span<const double>(neg)), std::invalid_argument);
}

TEST(Concentration, EntropyUniformIsLogN) {
  const std::vector<double> even(16, 2.0);
  EXPECT_NEAR(ds::shannon_entropy_bits(even), 4.0, 1e-12);
  EXPECT_NEAR(ds::normalized_entropy(even), 1.0, 1e-12);
}

TEST(Concentration, EntropyPointMassIsZero) {
  std::vector<double> xs(8, 0.0);
  xs[0] = 10.0;
  EXPECT_DOUBLE_EQ(ds::shannon_entropy_bits(xs), 0.0);
  EXPECT_DOUBLE_EQ(ds::normalized_entropy(xs), 0.0);
}

TEST(Concentration, RatioBasics) {
  const std::vector<std::uint64_t> xs{100, 1, 1, 1};
  EXPECT_NEAR(ds::concentration_ratio(xs, 0.25), 100.0 / 103.0, 1e-12);
  EXPECT_DOUBLE_EQ(ds::concentration_ratio(xs, 1.0), 1.0);
  EXPECT_THROW((void)ds::concentration_ratio(xs, 0.0), std::invalid_argument);
  EXPECT_THROW((void)ds::concentration_ratio(xs, 1.5), std::invalid_argument);
}

TEST(Concentration, ClusteredMovieBeatsGithubEvent) {
  // The movie sub-dataset (release-decay clustering) must measure as more
  // concentrated than the GitHub IssueEvent distribution (no clustering) —
  // the quantitative version of Fig. 1a vs Fig. 8a.
  datanet::core::ExperimentConfig cfg;
  cfg.num_nodes = 8;
  cfg.block_size = 16 * 1024;
  cfg.seed = 3;
  const auto movies = datanet::core::make_movie_dataset(cfg, 48, 300);
  const auto github = datanet::core::make_github_dataset(cfg, 48);

  const auto movie_dist = movies.truth->distribution(
      datanet::workload::subdataset_id(movies.hot_keys[0]));
  const auto issue_dist = github.truth->distribution(
      datanet::workload::subdataset_id("IssueEvent"));
  EXPECT_GT(ds::gini(std::span<const std::uint64_t>(movie_dist)),
            ds::gini(std::span<const std::uint64_t>(issue_dist)) + 0.2);
}

// ---- HyperLogLog ----

TEST(Hll, SmallExactViaLinearCounting) {
  db::HyperLogLog hll(12);
  for (std::uint64_t i = 0; i < 100; ++i) hll.insert(i);
  EXPECT_NEAR(hll.estimate(), 100.0, 3.0);
}

TEST(Hll, DuplicatesDoNotInflate) {
  db::HyperLogLog hll(12);
  for (int rep = 0; rep < 50; ++rep) {
    for (std::uint64_t i = 0; i < 200; ++i) hll.insert(i);
  }
  EXPECT_NEAR(hll.estimate(), 200.0, 6.0);
}

TEST(Hll, LargeCardinalityWithinErrorBound) {
  db::HyperLogLog hll(12);
  datanet::common::Rng rng(5);
  constexpr std::uint64_t kN = 500000;
  for (std::uint64_t i = 0; i < kN; ++i) hll.insert(rng());
  // 1.04/sqrt(4096) ~ 1.6%; allow 4 sigma.
  EXPECT_NEAR(hll.estimate(), static_cast<double>(kN), kN * 0.065);
}

TEST(Hll, PrecisionTradesMemoryForAccuracy) {
  db::HyperLogLog coarse(6), fine(14);
  EXPECT_LT(coarse.memory_bytes(), fine.memory_bytes());
  datanet::common::Rng rng(9);
  std::vector<std::uint64_t> keys(100000);
  for (auto& k : keys) k = rng();
  for (const auto k : keys) {
    coarse.insert(k);
    fine.insert(k);
  }
  const double err_coarse = std::fabs(coarse.estimate() - 100000.0);
  const double err_fine = std::fabs(fine.estimate() - 100000.0);
  EXPECT_LT(err_fine, err_coarse + 2000.0);
}

TEST(Hll, MergeEqualsUnion) {
  db::HyperLogLog a(12), b(12), u(12);
  datanet::common::Rng rng(11);
  for (int i = 0; i < 30000; ++i) {
    const auto k = rng();
    if (i % 3 == 0) {
      a.insert(k);
      u.insert(k);
    } else if (i % 3 == 1) {
      b.insert(k);
      u.insert(k);
    } else {  // shared keys
      a.insert(k);
      b.insert(k);
      u.insert(k);
    }
  }
  a.merge(b);
  EXPECT_NEAR(a.estimate(), u.estimate(), 1e-9);  // identical registers
}

TEST(Hll, MergeRejectsPrecisionMismatch) {
  db::HyperLogLog a(10), b(12);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Hll, SerializeRoundTrip) {
  db::HyperLogLog hll(10);
  datanet::common::Rng rng(13);
  for (int i = 0; i < 5000; ++i) hll.insert(rng());
  const auto bytes = hll.serialize();
  const auto back = db::HyperLogLog::deserialize(bytes);
  EXPECT_EQ(back.precision(), 10u);
  EXPECT_DOUBLE_EQ(back.estimate(), hll.estimate());
  EXPECT_THROW(db::HyperLogLog::deserialize("garbage"), std::invalid_argument);
  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_THROW(db::HyperLogLog::deserialize(truncated), std::invalid_argument);
}

TEST(Hll, RejectsBadPrecision) {
  EXPECT_THROW(db::HyperLogLog(3), std::invalid_argument);
  EXPECT_THROW(db::HyperLogLog(17), std::invalid_argument);
}

// ---- DistinctUsers job ----

namespace {
std::string user_block(std::initializer_list<std::pair<const char*, const char*>>
                           key_user_pairs) {
  std::string data;
  std::uint64_t ts = 0;
  for (const auto& [key, user] : key_user_pairs) {
    data += std::to_string(ts++) + "\t" + key + "\tclient=" + user + " x\n";
  }
  return data;
}
}  // namespace

TEST(DistinctUsers, CountsUniqueEntitiesPerKey) {
  const auto data = user_block({{"a", "u1"},
                                {"a", "u2"},
                                {"a", "u1"},
                                {"b", "u1"},
                                {"b", "u3"},
                                {"b", "u4"}});
  datanet::mapred::Engine engine({.num_nodes = 1});
  const auto report =
      engine.run(datanet::apps::make_distinct_users_job("client="),
                 {{.node = 0, .data = data, .charged_bytes = 0}});
  EXPECT_EQ(report.output.at("a"), "2");
  EXPECT_EQ(report.output.at("b"), "3");
}

TEST(DistinctUsers, MergesAcrossSplits) {
  const auto b1 = user_block({{"a", "u1"}, {"a", "u2"}});
  const auto b2 = user_block({{"a", "u2"}, {"a", "u3"}});
  datanet::mapred::Engine engine({.num_nodes = 2});
  const auto report =
      engine.run(datanet::apps::make_distinct_users_job("client="),
                 {{.node = 0, .data = b1, .charged_bytes = 0},
                  {.node = 1, .data = b2, .charged_bytes = 0}});
  EXPECT_EQ(report.output.at("a"), "3");  // u2 deduplicated across splits
}

TEST(DistinctUsers, SkipsRecordsWithoutField) {
  const std::string data = "1\ta\tno user here\n2\ta\tclient=u9 yes\n";
  datanet::mapred::Engine engine({.num_nodes = 1});
  const auto report =
      engine.run(datanet::apps::make_distinct_users_job("client="),
                 {{.node = 0, .data = data, .charged_bytes = 0}});
  EXPECT_EQ(report.output.at("a"), "1");
}

TEST(DistinctUsers, RejectsEmptyField) {
  EXPECT_THROW(datanet::apps::make_distinct_users_job(""),
               std::invalid_argument);
}

TEST(DistinctUsers, ApproximationOnLargeEntitySets) {
  // 5000 distinct users across two splits: the HLL estimate lands within a
  // few percent while shuffling only sketches.
  std::string b1, b2;
  for (int i = 0; i < 5000; ++i) {
    auto& dst = (i % 2) ? b1 : b2;
    dst += std::to_string(i) + "\tmovie\tclient=user" + std::to_string(i) + "\n";
  }
  datanet::mapred::Engine engine({.num_nodes = 2});
  const auto report =
      engine.run(datanet::apps::make_distinct_users_job("client="),
                 {{.node = 0, .data = b1, .charged_bytes = 0},
                  {.node = 1, .data = b2, .charged_bytes = 0}});
  const double est = std::stod(report.output.at("movie"));
  EXPECT_NEAR(est, 5000.0, 5000.0 * 0.07);
  // Shuffle volume bounded by sketch size, not event count.
  EXPECT_LT(report.shuffle_bytes, 3u * 4096u + 1024u);
}
