// Tests for the datanet CLI: flag parsing and the three subcommands driven
// through the library entry points (no process spawning).

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli/args.hpp"
#include "cli/commands.hpp"

namespace dcli = datanet::cli;

// ---- Args ----

TEST(Args, ParsesFlagValuePairs) {
  std::string err;
  const auto args = dcli::Args::parse({"--out", "x.log", "--records", "100"}, &err);
  ASSERT_TRUE(args);
  EXPECT_EQ(args->get("out"), "x.log");
  EXPECT_EQ(args->get_u64("records"), 100u);
}

TEST(Args, ParsesEqualsForm) {
  std::string err;
  const auto args = dcli::Args::parse({"--alpha=0.4", "--type=movie"}, &err);
  ASSERT_TRUE(args);
  EXPECT_DOUBLE_EQ(*args->get_double("alpha"), 0.4);
  EXPECT_EQ(args->get("type"), "movie");
}

TEST(Args, BooleanFlags) {
  std::string err;
  const auto args = dcli::Args::parse({"--verbose", "--in", "f"}, &err);
  ASSERT_TRUE(args);
  EXPECT_TRUE(args->has("verbose"));
  EXPECT_FALSE(args->has("quiet"));
}

TEST(Args, TrailingFlagIsBoolean) {
  std::string err;
  const auto args = dcli::Args::parse({"--in", "f", "--show-output"}, &err);
  ASSERT_TRUE(args);
  EXPECT_TRUE(args->has("show-output"));
}

TEST(Args, PositionalArgs) {
  std::string err;
  const auto args = dcli::Args::parse({"pos1", "--k", "3", "pos2"}, &err);
  ASSERT_TRUE(args);
  ASSERT_EQ(args->positional().size(), 2u);
  EXPECT_EQ(args->positional()[0], "pos1");
}

TEST(Args, Defaults) {
  std::string err;
  const auto args = dcli::Args::parse({}, &err);
  ASSERT_TRUE(args);
  EXPECT_EQ(args->get_or("type", "movie"), "movie");
  EXPECT_EQ(args->get_u64_or("records", 7), 7u);
  EXPECT_DOUBLE_EQ(args->get_double_or("alpha", 0.3), 0.3);
}

TEST(Args, MalformedNumbersYieldNullopt) {
  std::string err;
  const auto args = dcli::Args::parse({"--records", "abc"}, &err);
  ASSERT_TRUE(args);
  EXPECT_FALSE(args->get_u64("records"));
}

TEST(Args, BareDashesRejected) {
  std::string err;
  EXPECT_FALSE(dcli::Args::parse({"--"}, &err));
  EXPECT_FALSE(err.empty());
}

TEST(Args, UnusedFlagsReported) {
  std::string err;
  const auto args = dcli::Args::parse({"--in", "f", "--typo", "x"}, &err);
  ASSERT_TRUE(args);
  (void)args->get("in");
  const auto unused = args->unused_flags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

// ---- commands ----

namespace {
struct TempDir {
  std::filesystem::path dir;
  TempDir() {
    dir = std::filesystem::temp_directory_path() /
          ("datanet_cli_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
  }
  ~TempDir() { std::filesystem::remove_all(dir); }
  std::string file(const std::string& name) const { return (dir / name).string(); }
};

int run(std::initializer_list<const char*> argv, std::string* output) {
  std::ostringstream out;
  const int rc = dcli::run_cli({argv.begin(), argv.end()}, out);
  if (output) *output = out.str();
  return rc;
}
}  // namespace

TEST(Cli, HelpAndUnknownCommand) {
  std::string out;
  EXPECT_EQ(run({"--help"}, &out), 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);
  EXPECT_EQ(run({"frobnicate"}, &out), 1);
  EXPECT_NE(out.find("unknown command"), std::string::npos);
  EXPECT_EQ(run({}, &out), 1);
}

TEST(Cli, GenerateRequiresOut) {
  std::string out;
  EXPECT_EQ(run({"generate"}, &out), 1);
  EXPECT_NE(out.find("--out"), std::string::npos);
}

TEST(Cli, GenerateInspectAnalyzePipeline) {
  TempDir tmp;
  const auto log = tmp.file("movies.log");
  std::string out;
  ASSERT_EQ(run({"generate", "--out", log.c_str(), "--type", "movie",
                 "--records", "8000", "--seed", "3"},
                &out),
            0)
      << out;
  EXPECT_NE(out.find("wrote 8000 movie records"), std::string::npos);

  ASSERT_EQ(run({"inspect", "--in", log.c_str(), "--top", "3"}, &out), 0) << out;
  EXPECT_NE(out.find("sub-datasets"), std::string::npos);
  EXPECT_NE(out.find("movie_00000"), std::string::npos);
  EXPECT_NE(out.find("Gamma fit"), std::string::npos);

  ASSERT_EQ(run({"analyze", "--in", log.c_str(), "--key", "movie_00000",
                 "--job", "wordcount", "--nodes", "8", "--block-size", "16384"},
                &out),
            0)
      << out;
  EXPECT_NE(out.find("locality"), std::string::npos);
  EXPECT_NE(out.find("datanet"), std::string::npos);
  EXPECT_NE(out.find("improvement"), std::string::npos);
}

TEST(Cli, GenerateRejectsUnknownType) {
  TempDir tmp;
  std::string out;
  EXPECT_EQ(run({"generate", "--out", tmp.file("x").c_str(), "--type", "bogus"},
                &out),
            1);
  EXPECT_NE(out.find("unknown --type"), std::string::npos);
}

TEST(Cli, InspectMissingFileFails) {
  std::string out;
  EXPECT_EQ(run({"inspect", "--in", "/no/such/file"}, &out), 1);
  EXPECT_NE(out.find("error"), std::string::npos);
}

TEST(Cli, AnalyzeUnknownJobFails) {
  TempDir tmp;
  const auto log = tmp.file("g.log");
  std::string out;
  ASSERT_EQ(run({"generate", "--out", log.c_str(), "--records", "2000"}, &out), 0);
  EXPECT_EQ(run({"analyze", "--in", log.c_str(), "--key", "movie_00000",
                 "--job", "nope"},
                &out),
            1);
  EXPECT_NE(out.find("unknown --job"), std::string::npos);
}

TEST(Cli, AnalyzeSessionizeOnGithub) {
  TempDir tmp;
  const auto log = tmp.file("gh.log");
  std::string out;
  ASSERT_EQ(run({"generate", "--out", log.c_str(), "--type", "github",
                 "--records", "6000"},
                &out),
            0);
  ASSERT_EQ(run({"analyze", "--in", log.c_str(), "--key", "PushEvent", "--job",
                 "sessionize", "--field", "actor=", "--gap", "3600", "--nodes",
                 "4", "--show-output"},
                &out),
            0)
      << out;
  EXPECT_NE(out.find("sessions="), std::string::npos);
}

TEST(Cli, WarnsOnUnknownFlags) {
  TempDir tmp;
  std::string out;
  ASSERT_EQ(run({"generate", "--out", tmp.file("w.log").c_str(), "--records",
                 "1000", "--bogus-flag", "7"},
                &out),
            0);
  EXPECT_NE(out.find("warning: unknown flag --bogus-flag"), std::string::npos);
}

TEST(Cli, SimulateCommand) {
  TempDir tmp;
  const auto log = tmp.file("sim.log");
  std::string out;
  ASSERT_EQ(run({"generate", "--out", log.c_str(), "--records", "8000",
                 "--seed", "5"},
                &out),
            0);
  ASSERT_EQ(run({"simulate", "--in", log.c_str(), "--key", "movie_00000",
                 "--nodes", "8", "--slots", "2", "--disk-mbps", "50"},
                &out),
            0)
      << out;
  EXPECT_NE(out.find("event-driven selection"), std::string::npos);
  EXPECT_NE(out.find("makespan"), std::string::npos);
  EXPECT_NE(out.find("datanet"), std::string::npos);
}

TEST(Cli, SimulateUnknownKeyFails) {
  TempDir tmp;
  const auto log = tmp.file("sim2.log");
  std::string out;
  ASSERT_EQ(run({"generate", "--out", log.c_str(), "--records", "2000"}, &out), 0);
  EXPECT_EQ(run({"simulate", "--in", log.c_str(), "--key", "no_such_movie"},
                &out),
            1);
  EXPECT_NE(out.find("not found"), std::string::npos);
}

TEST(Cli, FaultsCommandRunsStragglerPlan) {
  TempDir tmp;
  const auto log = tmp.file("flt.log");
  std::string out;
  ASSERT_EQ(run({"generate", "--out", log.c_str(), "--records", "8000",
                 "--seed", "5"},
                &out),
            0);
  ASSERT_EQ(run({"faults", "--in", log.c_str(), "--key", "movie_00000",
                 "--nodes", "8", "--stall-nodes", "1", "--transient-reads",
                 "2", "--json"},
                &out),
            0)
      << out;
  EXPECT_NE(out.find("fault plan fired"), std::string::npos);
  EXPECT_NE(out.find("timeouts"), std::string::npos);
  EXPECT_NE(out.find("post-fault fsck"), std::string::npos);
  EXPECT_NE(out.find("\"attempts\":"), std::string::npos);
  EXPECT_NE(out.find("\"under_replicated\":"), std::string::npos);
}

TEST(Cli, FaultsRequiresKey) {
  TempDir tmp;
  const auto log = tmp.file("flt2.log");
  std::string out;
  ASSERT_EQ(run({"generate", "--out", log.c_str(), "--records", "1000"}, &out),
            0);
  EXPECT_EQ(run({"faults", "--in", log.c_str()}, &out), 1);
  EXPECT_NE(out.find("--key"), std::string::npos);
}

TEST(Cli, FsckCommandHealsAndRecovers) {
  TempDir tmp;
  const auto log = tmp.file("fsck.log");
  std::string out;
  ASSERT_EQ(run({"generate", "--out", log.c_str(), "--records", "8000",
                 "--seed", "9"},
                &out),
            0);
  const auto workdir = tmp.file("namenode");
  ASSERT_EQ(run({"fsck", "--in", log.c_str(), "--workdir", workdir.c_str(),
                 "--nodes", "8", "--kill-nodes", "1", "--corrupt-replicas",
                 "2", "--repair-rate", "4"},
                &out),
            0)
      << out;
  EXPECT_NE(out.find("checkpoint"), std::string::npos);
  EXPECT_NE(out.find("journal"), std::string::npos);
  EXPECT_NE(out.find("fault plan fired"), std::string::npos);
  EXPECT_NE(out.find("fsck before healing"), std::string::npos);
  EXPECT_NE(out.find("fsck after healing: 0 missing, 0 under-replicated"),
            std::string::npos);
  EXPECT_NE(out.find("recovered namespace digest matches"), std::string::npos);
}

TEST(Cli, FsckRequiresIn) {
  std::string out;
  EXPECT_EQ(run({"fsck"}, &out), 1);
  EXPECT_NE(out.find("--in"), std::string::npos);
}

TEST(Cli, ForecastCommand) {
  TempDir tmp;
  const auto log = tmp.file("f.log");
  std::string out;
  ASSERT_EQ(run({"generate", "--out", log.c_str(), "--records", "12000",
                 "--seed", "9"},
                &out),
            0);
  ASSERT_EQ(run({"forecast", "--in", log.c_str(), "--key", "movie_00000"},
                &out),
            0)
      << out;
  EXPECT_NE(out.find("Gamma"), std::string::npos);
  EXPECT_NE(out.find("gini"), std::string::npos);
  EXPECT_NE(out.find("128"), std::string::npos);  // forecast rows
}

TEST(Cli, InspectReportsConcentration) {
  TempDir tmp;
  const auto log = tmp.file("c.log");
  std::string out;
  ASSERT_EQ(run({"generate", "--out", log.c_str(), "--records", "5000"}, &out), 0);
  ASSERT_EQ(run({"inspect", "--in", log.c_str()}, &out), 0);
  EXPECT_NE(out.find("gini="), std::string::npos);
  EXPECT_NE(out.find("normalized entropy="), std::string::npos);
}

TEST(Cli, AnalyzeDistinctUsers) {
  TempDir tmp;
  const auto log = tmp.file("d.log");
  std::string out;
  ASSERT_EQ(run({"generate", "--out", log.c_str(), "--type", "worldcup",
                 "--records", "6000"},
                &out),
            0);
  ASSERT_EQ(run({"analyze", "--in", log.c_str(), "--key", "page_0000", "--job",
                 "distinct", "--field", "client=", "--nodes", "4"},
                &out),
            0)
      << out;
  EXPECT_NE(out.find("improvement"), std::string::npos);
}

TEST(Cli, AnalyzeJsonOutput) {
  TempDir tmp;
  const auto log = tmp.file("j.log");
  std::string out;
  ASSERT_EQ(run({"generate", "--out", log.c_str(), "--records", "3000"}, &out), 0);
  ASSERT_EQ(run({"analyze", "--in", log.c_str(), "--key", "movie_00000",
                 "--nodes", "4", "--json"},
                &out),
            0)
      << out;
  EXPECT_NE(out.find("\"total_seconds\":"), std::string::npos);
  EXPECT_NE(out.find("\"input_records\":"), std::string::npos);
}

TEST(Cli, FsckExitsNonZeroWhenDataIsLost) {
  TempDir tmp;
  const auto log = tmp.file("loss.log");
  std::string out;
  ASSERT_EQ(run({"generate", "--out", log.c_str(), "--records", "8000",
                 "--seed", "9"},
                &out),
            0);
  // Replication 1: killing nodes loses blocks outright, and the healer has
  // no surviving source — the run must exit non-zero, not report success.
  EXPECT_EQ(run({"fsck", "--in", log.c_str(), "--workdir",
                 tmp.file("loss-nn").c_str(), "--nodes", "8", "--replication",
                 "1", "--kill-nodes", "2", "--corrupt-replicas", "0",
                 "--repair-rate", "4"},
                &out),
            1)
      << out;
  EXPECT_NE(out.find("not healthy after healing"), std::string::npos);
}

TEST(Cli, FsckShardedPlaneKillsAndRecoversOneShard) {
  TempDir tmp;
  const auto log = tmp.file("plane.log");
  std::string out;
  ASSERT_EQ(run({"generate", "--out", log.c_str(), "--records", "6000",
                 "--seed", "4"},
                &out),
            0);
  ASSERT_EQ(run({"fsck", "--in", log.c_str(), "--meta-shards", "4",
                 "--workdir", tmp.file("plane-nn").c_str(), "--nodes", "8"},
                &out),
            0)
      << out;
  EXPECT_NE(out.find("4 metadata shards"), std::string::npos);
  EXPECT_NE(out.find("other shard(s) still serving"), std::string::npos);
  EXPECT_NE(out.find("recovered shard digest matches"), std::string::npos);
  EXPECT_NE(out.find("plane fsck:"), std::string::npos);
  EXPECT_EQ(out.find("error:"), std::string::npos);
}

TEST(Cli, QueryStatsRequiresPortButNotKey) {
  std::string out;
  // --stats is a valid action without --key, but still needs a server.
  EXPECT_EQ(run({"query", "--stats"}, &out), 1);
  EXPECT_NE(out.find("--port"), std::string::npos);
  // Neither key nor an action: the error names the alternatives.
  EXPECT_EQ(run({"query", "--port", "1"}, &out), 1);
  EXPECT_NE(out.find("--stats/--shutdown"), std::string::npos);
}
